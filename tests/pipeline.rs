//! Cross-crate integration tests: the full pipeline (workload model →
//! instrumented allocator → cache bank + pager) holds its conservation
//! and determinism invariants for every allocator and program.

use alloc_locality_repro::engine::{AllocChoice, Experiment, SimOptions};
use allocators::AllocatorKind;
use cache_sim::CacheConfig;
use workloads::{Program, Scale};

fn quick_opts(scale: f64) -> SimOptions {
    SimOptions {
        cache_configs: vec![
            CacheConfig::direct_mapped(16 * 1024, 32),
            CacheConfig::direct_mapped(64 * 1024, 32),
        ],
        paging: true,
        scale: Scale(scale),
        ..SimOptions::default()
    }
}

#[test]
fn every_allocator_completes_every_program() {
    for program in Program::FIVE {
        for kind in AllocatorKind::ALL {
            let r = Experiment::new(program, AllocChoice::Paper(kind))
                .options(quick_opts(0.001))
                .run()
                .unwrap_or_else(|e| panic!("{program}/{kind}: {e}"));
            assert!(r.alloc_stats.mallocs > 0, "{program}/{kind}: no allocations");
            assert!(r.heap_high_water > 0);
            assert!(r.instrs.total() > 0);
        }
    }
}

#[test]
fn reference_conservation_across_simulators() {
    // Every reference the counting sink sees must reach both caches and
    // the pager: totals line up.
    let r = Experiment::new(Program::Make, AllocChoice::Paper(AllocatorKind::QuickFit))
        .options(quick_opts(0.01))
        .run()
        .expect("runs");
    let word_refs = r.data_refs();
    for (cfg, stats) in &r.cache {
        assert_eq!(
            stats.accesses(),
            word_refs,
            "cache {cfg} saw a different word count than the trace"
        );
        assert!(stats.misses() > 0, "a finite cache must miss sometimes");
        assert!(stats.cold_misses <= stats.misses());
    }
    let curve = r.fault_curve.as_ref().expect("paging enabled");
    assert!(curve.accesses > 0);
    // The pager sees page-granular touches: at least one per trace record
    // is impossible to assert exactly, but it cannot exceed word refs.
    assert!(curve.accesses <= word_refs);
}

#[test]
fn cache_miss_rates_fall_with_size() {
    let r = Experiment::new(Program::Espresso, AllocChoice::Paper(AllocatorKind::FirstFit))
        .options(quick_opts(0.005))
        .run()
        .expect("runs");
    let m16 = r.miss_rate(CacheConfig::direct_mapped(16 * 1024, 32)).expect("16K");
    let m64 = r.miss_rate(CacheConfig::direct_mapped(64 * 1024, 32)).expect("64K");
    assert!(m64 < m16, "64K ({m64}) should miss less than 16K ({m16})");
}

#[test]
fn pager_curve_covers_the_heap() {
    let r = Experiment::new(Program::Gawk, AllocChoice::Paper(AllocatorKind::Bsd))
        .options(quick_opts(0.005))
        .run()
        .expect("runs");
    let curve = r.fault_curve.as_ref().expect("paging enabled");
    let frames_needed = curve.working_set_frames();
    // The working set cannot exceed the heap (plus the stack segment).
    let heap_frames = r.heap_high_water.div_ceil(4096) + 2;
    assert!(
        frames_needed <= heap_frames,
        "working set {frames_needed} frames vs heap {heap_frames}"
    );
    // With the full heap resident, only compulsory faults remain.
    let floor = curve.faults(heap_frames);
    assert!(floor < curve.faults(1));
}

#[test]
fn full_pipeline_is_deterministic() {
    let run = || {
        Experiment::new(Program::GsSmall, AllocChoice::Paper(AllocatorKind::GnuLocal))
            .options(quick_opts(0.002))
            .run()
            .expect("runs")
    };
    let a = run();
    let b = run();
    assert_eq!(a.instrs, b.instrs);
    assert_eq!(a.trace, b.trace);
    assert_eq!(a.heap_high_water, b.heap_high_water);
    assert_eq!(a.cache, b.cache);
    assert_eq!(
        a.fault_curve.as_ref().expect("paging").points,
        b.fault_curve.as_ref().expect("paging").points
    );
}

#[test]
fn sharded_pipeline_matches_inline_bit_for_bit() {
    // Acceptance criterion for the batched pipeline: fanning the
    // reference stream out to worker threads (PipelineMode::Sharded)
    // must leave every measurement — including the recorded trace
    // file — bit-identical to the single-threaded inline pass. Every
    // shard kind is attached: two caches, the pager, a trace writer,
    // a victim buffer, the three-C analyzer, the two-level hierarchy,
    // and fragmentation sampling.
    use alloc_locality_repro::engine::PipelineMode;

    let dir = std::env::temp_dir();
    let trace_for =
        |mode: &str| dir.join(format!("pipeline-eq-{}-{mode}.altr", std::process::id()));
    let run = |mode: PipelineMode, trace: std::path::PathBuf| {
        let opts = SimOptions {
            victim_entries: Some(8),
            three_c: true,
            two_level: true,
            frag_sample_every: 64,
            record_trace: Some(trace),
            ..quick_opts(0.005)
        };
        Experiment::new(Program::Espresso, AllocChoice::Paper(AllocatorKind::FirstFit))
            .options(opts)
            .pipeline(mode)
            .run()
            .expect("runs")
    };

    let inline_trace = trace_for("inline");
    let sharded_trace = trace_for("sharded");
    let a = run(PipelineMode::Inline, inline_trace.clone());
    let b = run(PipelineMode::Sharded, sharded_trace.clone());

    assert_eq!(a.instrs, b.instrs);
    assert_eq!(a.trace, b.trace);
    assert_eq!(a.cache, b.cache);
    assert_eq!(a.fault_curve, b.fault_curve);
    assert_eq!(a.victim, b.victim);
    assert_eq!(a.three_c, b.three_c);
    assert_eq!(a.two_level, b.two_level);
    assert_eq!(a.frag_curve, b.frag_curve);
    assert_eq!(a.heap_high_water, b.heap_high_water);
    assert_eq!(a.alloc_stats, b.alloc_stats);

    let inline_bytes = std::fs::read(&inline_trace).expect("inline trace written");
    let sharded_bytes = std::fs::read(&sharded_trace).expect("sharded trace written");
    assert!(!inline_bytes.is_empty());
    assert_eq!(inline_bytes, sharded_bytes, "trace files must be byte-identical");
    let _ = std::fs::remove_file(inline_trace);
    let _ = std::fs::remove_file(sharded_trace);
}

#[test]
fn sweep_engine_matches_per_cache_bit_for_bit() {
    // Acceptance criterion for the single-pass sweep: simulating the
    // paper's five configurations in one walk (CacheEngine::Sweep) must
    // leave every measurement bit-identical to the per-cache bank
    // (CacheEngine::PerCache), in both pipeline modes, with every other
    // shard kind attached and unaffected.
    use alloc_locality_repro::engine::{CacheEngine, PipelineMode};

    let run = |engine: CacheEngine, mode: PipelineMode| {
        let opts = SimOptions {
            cache_configs: CacheConfig::paper_sweep(),
            cache_engine: engine,
            victim_entries: Some(8),
            three_c: true,
            two_level: true,
            frag_sample_every: 64,
            ..quick_opts(0.003)
        };
        Experiment::new(Program::Espresso, AllocChoice::Paper(AllocatorKind::FirstFit))
            .options(opts)
            .pipeline(mode)
            .run()
            .expect("runs")
    };

    let reference = run(CacheEngine::PerCache, PipelineMode::Inline);
    assert_eq!(reference.cache.len(), 5);
    for mode in [PipelineMode::Inline, PipelineMode::Sharded] {
        let sweep = run(CacheEngine::Sweep, mode);
        assert_eq!(sweep.instrs, reference.instrs);
        assert_eq!(sweep.trace, reference.trace);
        assert_eq!(sweep.cache, reference.cache, "cache stats diverged under {mode:?}");
        assert_eq!(sweep.fault_curve, reference.fault_curve);
        assert_eq!(sweep.victim, reference.victim);
        assert_eq!(sweep.three_c, reference.three_c);
        assert_eq!(sweep.two_level, reference.two_level);
        assert_eq!(sweep.frag_curve, reference.frag_curve);
        assert_eq!(sweep.heap_high_water, reference.heap_high_water);
        assert_eq!(sweep.alloc_stats, reference.alloc_stats);
    }
}

#[test]
fn captured_stream_replays_into_components_identically() {
    // What the perf harness leans on: a stream captured once with
    // capture_runs, replayed directly into the cache components and the
    // pager, reproduces the stats of a normal engine run bit for bit.
    use cache_sim::{CacheBank, SweepCache};
    use sim_mem::AccessSink;
    use vm_sim::StackSim;

    let exp = Experiment::new(Program::Gawk, AllocChoice::Paper(AllocatorKind::Bsd))
        .options(quick_opts(0.003));
    let engine_result = exp.run().expect("engine run");
    let runs = exp.capture_runs().expect("capture");

    let configs: Vec<CacheConfig> = engine_result.cache.iter().map(|&(c, _)| c).collect();
    let mut bank = CacheBank::new(configs.iter().copied());
    bank.record_runs(&runs);
    assert_eq!(bank.results(), engine_result.cache);

    let mut sweep = SweepCache::try_new(configs).expect("sweepable");
    sweep.record_runs(&runs);
    assert_eq!(sweep.results(), engine_result.cache);

    let mut pager = StackSim::paper();
    pager.record_runs(&runs);
    assert_eq!(Some(pager.curve()), engine_result.fault_curve);
}

#[test]
fn custom_and_tagged_variants_run_end_to_end() {
    for choice in
        [AllocChoice::Custom, AllocChoice::CustomBounded(0.25), AllocChoice::GnuLocalTagged]
    {
        let label = choice.label();
        let r = Experiment::new(Program::Make, choice)
            .options(quick_opts(0.005))
            .run()
            .unwrap_or_else(|e| panic!("{label}: {e}"));
        assert!(r.alloc_stats.mallocs > 0);
        assert_eq!(r.alloc_stats.live_granted, {
            // Whatever is still live is bounded by the heap.
            assert!(r.alloc_stats.live_granted <= r.heap_high_water);
            r.alloc_stats.live_granted
        });
    }
}

#[test]
fn exported_trace_replays_identically() {
    // Export a synthetic stream as a text trace, re-import it, and run
    // it as a fixed event stream: every measurement must match the
    // original generated run bit for bit.
    use alloc_locality_repro::engine::Experiment as Exp;
    use workloads::import::{parse_trace, write_trace};

    let scale = 0.01;
    let original = Exp::new(Program::Make, AllocChoice::Paper(AllocatorKind::GnuLocal))
        .options(quick_opts(scale))
        .run()
        .expect("original run");

    let events: Vec<workloads::AppEvent> = Program::Make.spec().events(Scale(scale)).collect();
    let mut text = Vec::new();
    write_trace(&events, &mut text).expect("export");
    let imported = parse_trace(&text[..]).expect("import");

    let replayed = Exp::with_events("make", imported, AllocChoice::Paper(AllocatorKind::GnuLocal))
        .options(quick_opts(scale))
        .run()
        .expect("replayed run");

    assert_eq!(replayed.instrs, original.instrs);
    assert_eq!(replayed.trace, original.trace);
    assert_eq!(replayed.cache, original.cache);
    assert_eq!(replayed.heap_high_water, original.heap_high_water);
    assert_eq!(replayed.alloc_stats, original.alloc_stats);
}

#[test]
fn allocator_metadata_traffic_is_visible_per_class() {
    // The split between application and allocator references must be
    // populated, and the sequential-fit allocator must generate more
    // metadata traffic per operation than segregated storage.
    let opts = quick_opts(0.005);
    let ff = Experiment::new(Program::Espresso, AllocChoice::Paper(AllocatorKind::FirstFit))
        .options(opts.clone())
        .run()
        .expect("runs");
    let bsd = Experiment::new(Program::Espresso, AllocChoice::Paper(AllocatorKind::Bsd))
        .options(opts)
        .run()
        .expect("runs");
    let per_op = |r: &alloc_locality_repro::engine::RunResult| {
        r.trace.meta_refs() as f64 / (r.alloc_stats.mallocs + r.alloc_stats.frees) as f64
    };
    assert!(ff.trace.meta_refs() > 0 && bsd.trace.meta_refs() > 0);
    assert!(
        per_op(&ff) > per_op(&bsd),
        "FirstFit should touch more metadata per op: {} vs {}",
        per_op(&ff),
        per_op(&bsd)
    );
}
