//! The persistent stream cache's contract, end to end:
//!
//! 1. **Replay is invisible in the results.** A warm (cache-hit) run
//!    produces a [`RunResult`] bit-identical to the cold run that
//!    populated the cache, and the instrumented `RunReport` JSONL line
//!    is *byte*-identical — in both pipeline modes.
//! 2. **Damage degrades, it never breaks.** A corrupt or truncated
//!    cache file demotes the run to cold generation, recorded as
//!    `stream_cache.invalid`, and the file is rewritten for next time.

use alloc_locality_repro::engine::{AllocChoice, Experiment, PipelineMode, SimOptions};
use allocators::AllocatorKind;
use cache_sim::CacheConfig;
use obs::MemoryRecorder;
use workloads::{Program, Scale};

/// A fresh per-test cache directory (cleared on entry so reruns and
/// stale files cannot leak across tests).
fn cache_dir(test: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("alsc-it-{test}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn opts(dir: &std::path::Path, pipeline: PipelineMode) -> SimOptions {
    SimOptions {
        cache_configs: vec![
            CacheConfig::direct_mapped(16 * 1024, 32),
            CacheConfig::direct_mapped(64 * 1024, 32),
        ],
        paging: true,
        scale: Scale(0.002),
        frag_sample_every: 500,
        pipeline,
        stream_cache: Some(dir.to_path_buf()),
        ..SimOptions::default()
    }
}

/// The only `.alsc` file in a cache directory.
fn sole_cache_file(dir: &std::path::Path) -> std::path::PathBuf {
    let mut files: Vec<_> = std::fs::read_dir(dir)
        .expect("cache dir exists after a populating run")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "alsc"))
        .collect();
    assert_eq!(files.len(), 1, "expected exactly one stream file in {}", dir.display());
    files.pop().expect("nonempty")
}

#[test]
fn warm_replay_is_bit_identical_in_both_pipeline_modes() {
    for (mode, name) in [(PipelineMode::Inline, "inline"), (PipelineMode::Sharded, "sharded")] {
        let dir = cache_dir(&format!("identity-{name}"));
        let exp = Experiment::new(Program::Espresso, AllocChoice::Paper(AllocatorKind::FirstFit))
            .options(opts(&dir, mode));

        let cold = exp.report().unwrap_or_else(|e| panic!("{name} cold run: {e}"));
        assert!(sole_cache_file(&dir).exists());
        let warm = exp.report().unwrap_or_else(|e| panic!("{name} warm run: {e}"));

        assert_eq!(warm.result, cold.result, "{name}: replayed RunResult diverged");
        assert_eq!(
            warm.to_jsonl_line(),
            cold.to_jsonl_line(),
            "{name}: replayed report line is not byte-identical"
        );
        warm.validate().unwrap_or_else(|e| panic!("{name}: replayed report invalid: {e}"));

        // The uninstrumented entry point replays to the same result too.
        let plain = exp.run().unwrap_or_else(|e| panic!("{name} plain run: {e}"));
        assert_eq!(plain, cold.result, "{name}: run() after populate diverged");

        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn warm_runs_hit_and_cold_runs_miss_in_the_recorder() {
    let dir = cache_dir("counters");
    let exp = Experiment::new(Program::Gawk, AllocChoice::Paper(AllocatorKind::Bsd))
        .options(opts(&dir, PipelineMode::Inline));

    let mut rec = MemoryRecorder::new();
    exp.run_with_recorder(&mut rec).expect("cold run");
    assert_eq!(rec.counter("stream_cache.miss"), 1);
    assert_eq!(rec.counter("stream_cache.store"), 1);
    assert_eq!(rec.counter("stream_cache.hit"), 0);

    let mut rec = MemoryRecorder::new();
    exp.run_with_recorder(&mut rec).expect("warm run");
    assert_eq!(rec.counter("stream_cache.hit"), 1);
    assert_eq!(rec.counter("stream_cache.miss"), 0);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn uninstrumented_replay_ignores_the_sink_fingerprint() {
    // The sidecar's result-reconstruction fields depend only on the
    // stream key, so a run with *different sinks* than the populating
    // run still replays when no byte-reusable metrics are needed.
    let dir = cache_dir("fingerprint");
    let populate = Experiment::new(Program::GsSmall, AllocChoice::Paper(AllocatorKind::QuickFit))
        .options(opts(&dir, PipelineMode::Inline));
    let cold = populate.run().expect("cold run");

    let mut narrower = opts(&dir, PipelineMode::Inline);
    narrower.cache_configs = vec![CacheConfig::direct_mapped(16 * 1024, 32)];
    let warm_exp = Experiment::new(Program::GsSmall, AllocChoice::Paper(AllocatorKind::QuickFit))
        .options(narrower);
    let mut rec = MemoryRecorder::new();
    let warm = warm_exp.run_with_recorder(&mut rec).expect("warm run");
    assert_eq!(rec.counter("stream_cache.hit"), 1, "different sinks must still replay");
    assert_eq!(warm.cache.len(), 1);
    assert_eq!(warm.cache[0], cold.cache[0]);
    assert_eq!(warm.instrs, cold.instrs);
    assert_eq!(warm.trace, cold.trace);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_cache_files_fall_back_to_cold_generation() {
    let dir = cache_dir("corrupt");
    let exp = Experiment::new(Program::Make, AllocChoice::Paper(AllocatorKind::GnuGxx))
        .options(opts(&dir, PipelineMode::Inline));
    let cold = exp.report().expect("populating run");

    // Flip one bit in the middle of the stored stream.
    let path = sole_cache_file(&dir);
    let mut bytes = std::fs::read(&path).expect("read stream file");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&path, &bytes).expect("write damaged file");

    let mut rec = MemoryRecorder::new();
    let damaged = exp.run_with_recorder(&mut rec).expect("damaged file must not break the run");
    assert_eq!(rec.counter("stream_cache.invalid"), 1, "damage must be counted");
    assert_eq!(rec.counter("stream_cache.hit"), 0);
    assert_eq!(rec.counter("stream_cache.store"), 1, "the file must be rewritten");
    assert_eq!(damaged, cold.result, "cold fallback must reproduce the result");

    // Truncation likewise.
    let bytes = std::fs::read(&path).expect("read rewritten file");
    std::fs::write(&path, &bytes[..bytes.len() / 3]).expect("truncate file");
    let mut rec = MemoryRecorder::new();
    let truncated = exp.run_with_recorder(&mut rec).expect("truncated file must not break the run");
    assert_eq!(rec.counter("stream_cache.invalid"), 1);
    assert_eq!(truncated, cold.result);

    // The rewrite healed the cache: the next run replays.
    let mut rec = MemoryRecorder::new();
    let healed = exp.run_with_recorder(&mut rec).expect("healed run");
    assert_eq!(rec.counter("stream_cache.hit"), 1);
    assert_eq!(healed, cold.result);
    // The replayed report validates and reproduces the result; its
    // metrics are those of the *repopulating* run (which counted
    // `stream_cache.invalid` where the first cold run counted a miss),
    // so only the result is owed byte-identity here.
    let warm = exp.report().expect("healed instrumented run");
    warm.validate().expect("healed report validates");
    assert_eq!(warm.result, cold.result);
    assert_eq!(warm.metrics.counter("stream_cache.invalid"), 1);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn replayed_trace_files_are_byte_identical() {
    // The tracer is rebuilt on replay and fed the decoded stream; the
    // ALTR file it writes must match the generated run's byte for byte.
    let dir = cache_dir("tracefile");
    let trace_cold = dir.join("cold.altr");
    let trace_warm = dir.join("warm.altr");
    std::fs::create_dir_all(&dir).expect("create test dir");

    let mut cold_opts = opts(&dir, PipelineMode::Inline);
    cold_opts.record_trace = Some(trace_cold.clone());
    Experiment::new(Program::Ptc, AllocChoice::Paper(AllocatorKind::FirstFit))
        .options(cold_opts)
        .run()
        .expect("cold traced run");

    let mut warm_opts = opts(&dir, PipelineMode::Inline);
    warm_opts.record_trace = Some(trace_warm.clone());
    let mut rec = MemoryRecorder::new();
    Experiment::new(Program::Ptc, AllocChoice::Paper(AllocatorKind::FirstFit))
        .options(warm_opts)
        .run_with_recorder(&mut rec)
        .expect("warm traced run");
    assert_eq!(rec.counter("stream_cache.hit"), 1, "second traced run must replay");

    let cold_bytes = std::fs::read(&trace_cold).expect("cold trace");
    let warm_bytes = std::fs::read(&trace_warm).expect("warm trace");
    assert_eq!(cold_bytes, warm_bytes, "replayed trace file diverged");

    let _ = std::fs::remove_dir_all(&dir);
}
