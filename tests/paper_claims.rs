//! The paper's headline qualitative claims, asserted against the
//! reproduction. These are the "shape" checks EXPERIMENTS.md reports: who
//! wins, roughly by how much, and where the trade-offs fall — not
//! absolute numbers.
//!
//! Each program runs at a scale that guarantees several object lifetimes
//! of steady state (the live set must churn, or sequential-fit
//! fragmentation — the phenomenon under study — never develops).

use alloc_locality_repro::engine::{
    run_parallel, AllocChoice, Experiment, Matrix, SimOptions, MISS_PENALTY_CYCLES,
};
use cache_sim::CacheConfig;
use workloads::{Program, Scale};

/// Scale giving each program at least ~4 mean lifetimes of churn.
fn scale_for(p: Program) -> f64 {
    match p {
        Program::Espresso => 0.02,
        Program::GsLarge => 0.03,
        Program::Gawk => 0.008,
        Program::Make => 0.5, // make is tiny: 24k allocations at full scale
        _ => 0.02,
    }
}

const CLAIM_PROGRAMS: [Program; 4] =
    [Program::Espresso, Program::GsLarge, Program::Gawk, Program::Make];

fn matrix() -> &'static Matrix {
    use std::sync::OnceLock;
    static MATRIX: OnceLock<Matrix> = OnceLock::new();
    MATRIX.get_or_init(|| {
        let jobs = CLAIM_PROGRAMS
            .iter()
            .flat_map(|&p| {
                AllocChoice::paper_five().into_iter().map(move |c| {
                    Experiment::new(p, c)
                        .options(SimOptions { scale: Scale(scale_for(p)), ..SimOptions::default() })
                })
            })
            .collect();
        run_parallel(jobs).expect("paper sweep completes")
    })
}

fn k(size_kb: u32) -> CacheConfig {
    CacheConfig::direct_mapped(size_kb * 1024, 32)
}

/// §1: "the choice of allocator dramatically affects the fraction of
/// time spent doing allocation" — from a few percent (BSD) upward.
#[test]
fn claim_alloc_time_fraction_spread() {
    let m = matrix();
    for program in m.programs() {
        let bsd = m.get(program, "BSD").expect("run").alloc_fraction();
        let ff = m.get(program, "FirstFit").expect("run").alloc_fraction();
        assert!(bsd < 0.05, "{program}: BSD should be a few percent, got {bsd}");
        assert!(ff > bsd, "{program}: FirstFit ({ff}) must exceed BSD ({bsd})");
    }
}

/// §4.2: "the DSA implementation with the largest cache miss ratio is
/// FIRSTFIT". Asserted against the pure segregated-storage designs on
/// GS, and against all four on the small-object program (espresso).
/// (Our QuickFit forwards GS's many >32-byte requests to its embedded
/// GNU G++, so on GS it tracks the first-fit family, as the paper's own
/// GS numbers show.)
#[test]
fn claim_firstfit_worst_cache_locality() {
    let m = matrix();
    for cfg in CacheConfig::paper_sweep() {
        let ff = m.get("GS", "FirstFit").expect("run").miss_rate(cfg).expect("cfg");
        for alloc in ["BSD", "GNU local"] {
            let other = m.get("GS", alloc).expect("run").miss_rate(cfg).expect("cfg");
            assert!(ff > other, "{cfg}: GS FirstFit ({ff:.4}) should exceed {alloc} ({other:.4})");
        }
    }
    for cfg in [k(16), k(32), k(64)] {
        let ff = m.get("espresso", "FirstFit").expect("run").miss_rate(cfg).expect("cfg");
        for alloc in ["QuickFit", "GNU G++", "BSD", "GNU local"] {
            let other = m.get("espresso", alloc).expect("run").miss_rate(cfg).expect("cfg");
            assert!(
                ff > other,
                "{cfg}: espresso FirstFit ({ff:.4}) should exceed {alloc} ({other:.4})"
            );
        }
    }
}

/// §4.2: the other first-fit implementation (GNU G++) also misses more
/// than the segregated-storage designs on GS at the paper's headline
/// sizes.
#[test]
fn claim_gnu_gxx_second_worst() {
    let m = matrix();
    for cfg in [k(16), k(32), k(64)] {
        let gxx = m.get("GS", "GNU G++").expect("run").miss_rate(cfg).expect("cfg");
        for alloc in ["BSD", "GNU local"] {
            let seg = m.get("GS", alloc).expect("run").miss_rate(cfg).expect("cfg");
            assert!(
                gxx > seg,
                "{cfg}: GNU G++ ({gxx:.4}) should exceed segregated {alloc} ({seg:.4})"
            );
        }
    }
}

/// §4.1: searching a freelist is disastrous for page locality — under
/// restricted memory, FIRSTFIT faults far more than segregated storage.
#[test]
fn claim_firstfit_pages_poorly() {
    let m = matrix();
    let rate = |alloc: &str, frames: u64| {
        let r = m.get("GS", alloc).expect("run");
        let curve = r.fault_curve.as_ref().expect("paging");
        curve.faults(frames) as f64 / curve.accesses as f64
    };
    let ff_run = m.get("GS", "FirstFit").expect("run");
    let half = ff_run.heap_high_water.div_ceil(4096) / 2;
    let ff = rate("FirstFit", half);
    for alloc in ["BSD", "GNU local", "QuickFit"] {
        let other = rate(alloc, half);
        assert!(
            ff > other,
            "at half memory FirstFit ({ff:.5}) should out-fault {alloc} ({other:.5})"
        );
    }
}

/// §4.1: BSD "wastes considerable space": its heap exceeds the exact-fit
/// allocators' on every program.
#[test]
fn claim_bsd_wastes_space() {
    let m = matrix();
    for program in ["espresso", "GS", "gawk"] {
        let bsd = m.get(program, "BSD").expect("run").heap_high_water;
        let ql = m.get(program, "QuickFit").expect("run").heap_high_water;
        assert!(bsd > ql, "{program}: BSD heap ({bsd}) should exceed QuickFit's ({ql})");
    }
}

/// §4.2 / Table 5: GNU LOCAL's locality engineering works (its miss rate
/// at 64K is at or near the bottom) but its CPU overhead makes its
/// instruction count the highest of the segregated allocators.
#[test]
fn claim_gnu_local_trades_cpu_for_locality() {
    let m = matrix();
    let espresso = |alloc: &str| m.get("espresso", alloc).expect("run");
    let gl = espresso("GNU local");
    let bsd = espresso("BSD");
    let ql = espresso("QuickFit");
    // Locality: best or near-best miss rate at 64K.
    let gl_miss = gl.miss_rate(k(64)).expect("cfg");
    assert!(gl_miss <= bsd.miss_rate(k(64)).expect("cfg") * 1.05);
    // CPU: more instructions than the fast segregated allocators.
    assert!(gl.instrs.total() > bsd.instrs.total());
    assert!(gl.instrs.total() > ql.instrs.total());
}

/// §4.2 / Tables 4–5: at a modest 25-cycle penalty, the fast allocators
/// (BSD, QuickFit) beat FIRSTFIT on total estimated time on the
/// high-turnover programs. (ptc never frees, so FIRSTFIT degenerates to
/// a cheap bump allocator there — in the paper too, the ptc spread is
/// small.)
#[test]
fn claim_fast_allocators_win_total_time() {
    let m = matrix();
    for program in ["espresso", "GS", "gawk", "make"] {
        let t = |alloc: &str| {
            m.get(program, alloc)
                .expect("run")
                .time_estimate(k(16), MISS_PENALTY_CYCLES)
                .expect("cfg")
                .cycles()
        };
        let ff = t("FirstFit");
        assert!(t("BSD") < ff, "{program}: BSD should beat FirstFit");
        if program == "make" {
            // The paper's make spread is tiny (3.43-3.69s across all five
            // allocators): only require QuickFit to be competitive.
            assert!(
                (t("QuickFit") as f64) < ff as f64 * 1.05,
                "make: QuickFit should be within 5% of FirstFit"
            );
        } else {
            assert!(t("QuickFit") < ff, "{program}: QuickFit should beat FirstFit");
        }
    }
}

/// §1: cache effects of DSA choice move total execution time by a
/// double-digit percentage ("up to 25%") on the allocation-intensive
/// programs.
#[test]
fn claim_total_time_spread_is_significant() {
    let m = matrix();
    let mut max_spread = 0.0f64;
    for program in m.programs() {
        let times: Vec<u64> = m
            .runs
            .iter()
            .filter(|r| r.program == program)
            .map(|r| r.time_estimate(k(16), MISS_PENALTY_CYCLES).expect("cfg").cycles())
            .collect();
        let best = *times.iter().min().expect("runs") as f64;
        let worst = *times.iter().max().expect("runs") as f64;
        max_spread = max_spread.max(worst / best - 1.0);
    }
    assert!(
        max_spread > 0.10,
        "allocator choice should move execution time by >10%, got {:.1}%",
        max_spread * 100.0
    );
}

/// Figures 6–8 / §4.2: "large caches contain enough of the working set
/// that all algorithms begin to perform well" — the allocator spread
/// narrows as the cache grows.
#[test]
fn claim_allocators_converge_at_large_caches() {
    let m = matrix();
    let spread = |cfg: CacheConfig| {
        let rates: Vec<f64> = m
            .runs
            .iter()
            .filter(|r| r.program == "GS")
            .map(|r| r.miss_rate(cfg).expect("cfg"))
            .collect();
        let max = rates.iter().cloned().fold(f64::MIN, f64::max);
        let min = rates.iter().cloned().fold(f64::MAX, f64::min);
        max - min
    };
    assert!(
        spread(k(256)) < spread(k(16)),
        "the absolute miss-rate spread should narrow from 16K to 256K"
    );
}
