//! The `--json` pipeline: every result type must round-trip through
//! serde so recorded artifacts can be re-loaded, diffed, and re-plotted.

use alloc_locality_repro::engine::experiments::{
    exec_time_figure, fig1, miss_curves, paging_figure, table1, time_table,
};
use alloc_locality_repro::engine::{AllocChoice, Experiment, Matrix, RunResult, SimOptions};
use allocators::AllocatorKind;
use cache_sim::CacheConfig;
use workloads::{Program, Scale};

fn sample_run() -> RunResult {
    Experiment::new(Program::Make, AllocChoice::Paper(AllocatorKind::QuickFit))
        .options(SimOptions {
            cache_configs: vec![CacheConfig::direct_mapped(16 * 1024, 32)],
            paging: true,
            scale: Scale(0.02),
            victim_entries: Some(4),
            three_c: true,
            two_level: true,
            ..SimOptions::default()
        })
        .run()
        .expect("run completes")
}

#[test]
fn run_result_round_trips_through_json() {
    let run = sample_run();
    let json = serde_json::to_string(&run).expect("serialize");
    let back: RunResult = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back.program, run.program);
    assert_eq!(back.allocator, run.allocator);
    assert_eq!(back.instrs, run.instrs);
    assert_eq!(back.trace, run.trace);
    assert_eq!(back.cache, run.cache);
    assert_eq!(back.heap_high_water, run.heap_high_water);
    assert_eq!(back.alloc_stats, run.alloc_stats);
    assert_eq!(back.victim, run.victim);
    assert_eq!(back.three_c, run.three_c);
    assert_eq!(back.two_level, run.two_level);
    assert_eq!(
        back.fault_curve.as_ref().map(|c| &c.points),
        run.fault_curve.as_ref().map(|c| &c.points)
    );
}

#[test]
fn figures_and_tables_round_trip() {
    let m = Matrix { runs: vec![sample_run()] };
    let cfg = CacheConfig::direct_mapped(16 * 1024, 32);

    let f1 = fig1(&m);
    let back: alloc_locality_repro::engine::experiments::Fig1 =
        serde_json::from_str(&serde_json::to_string(&f1).expect("ser")).expect("de");
    assert_eq!(back, f1);

    let pf = paging_figure(&m, "make");
    let back: alloc_locality_repro::engine::experiments::PagingFigure =
        serde_json::from_str(&serde_json::to_string(&pf).expect("ser")).expect("de");
    assert_eq!(back, pf);

    let mc = miss_curves(&m, "make");
    let back: alloc_locality_repro::engine::experiments::MissCurveFigure =
        serde_json::from_str(&serde_json::to_string(&mc).expect("ser")).expect("de");
    assert_eq!(back, mc);

    let et = exec_time_figure(&m, cfg);
    let back: alloc_locality_repro::engine::experiments::ExecTimeFigure =
        serde_json::from_str(&serde_json::to_string(&et).expect("ser")).expect("de");
    assert_eq!(back, et);

    let tt = time_table(&m, cfg);
    let back: alloc_locality_repro::engine::experiments::TimeTable =
        serde_json::from_str(&serde_json::to_string(&tt).expect("ser")).expect("de");
    assert_eq!(back, tt);

    let t1 = table1();
    let back: alloc_locality_repro::engine::experiments::Table1 =
        serde_json::from_str(&serde_json::to_string(&t1).expect("ser")).expect("de");
    assert_eq!(back, t1);
}

#[test]
fn matrix_round_trips_and_indexes() {
    let m = Matrix { runs: vec![sample_run()] };
    let json = serde_json::to_string(&m).expect("ser");
    let back: Matrix = serde_json::from_str(&json).expect("de");
    assert_eq!(back.runs.len(), 1);
    assert!(back.get("make", "QuickFit").is_some());
    assert!(back.get("make", "BSD").is_none());
    assert_eq!(back.programs(), vec!["make"]);
    assert_eq!(back.allocators(), vec!["QuickFit"]);
}
