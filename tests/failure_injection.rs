//! Failure-injection tests: allocators must degrade gracefully, not
//! corrupt state, when the simulated operating system refuses memory or
//! the caller misuses the API.

use alloc_locality_repro::engine::{AllocChoice, EngineError, Experiment, SimOptions};
use allocators::{AllocError, Allocator, AllocatorKind};
use sim_mem::{Address, CountingSink, HeapImage, InstrCounter, MemCtx};
use workloads::{Program, Scale};

fn with_limited_heap<R>(limit: u64, f: impl FnOnce(&mut MemCtx<'_>) -> R) -> R {
    let mut heap = HeapImage::with_limit(limit);
    let mut sink = CountingSink::new();
    let mut instrs = InstrCounter::new();
    let mut ctx = MemCtx::new(&mut heap, &mut sink, &mut instrs);
    f(&mut ctx)
}

/// Exhaust the heap, verify the error, then free everything and verify
/// the allocator recovered and can serve again.
fn exhaust_and_recover(kind: AllocatorKind) {
    with_limited_heap(256 * 1024, |ctx| {
        let mut a = kind.build(ctx).expect("metadata fits");
        let mut live = Vec::new();
        let oom = loop {
            match a.malloc(1024, ctx) {
                Ok(p) => live.push(p),
                Err(e) => break e,
            }
            assert!(live.len() < 10_000, "{kind:?} never exhausted a 256K heap");
        };
        assert!(matches!(oom, AllocError::Oom(_)), "{kind:?}: expected Oom, got {oom}");
        assert!(!live.is_empty(), "{kind:?} allocated nothing before OOM");
        // The failed call must not have corrupted anything: free all and
        // allocate again from recycled memory.
        for p in live.drain(..) {
            a.free(p, ctx).unwrap_or_else(|e| panic!("{kind:?}: post-OOM free failed: {e}"));
        }
        assert_eq!(a.stats().live_objects(), 0);
        let p = a
            .malloc(1024, ctx)
            .unwrap_or_else(|e| panic!("{kind:?}: cannot allocate after recovery: {e}"));
        a.free(p, ctx).expect("free recovered block");
    });
}

#[test]
fn all_allocators_survive_heap_exhaustion() {
    for kind in AllocatorKind::ALL {
        exhaust_and_recover(kind);
    }
}

#[test]
fn engine_surfaces_oom_as_typed_error() {
    let opts = SimOptions {
        heap_limit: 16 * 1024, // far below GS's multi-megabyte live set
        paging: false,
        cache_configs: vec![],
        scale: Scale(0.01),
        ..SimOptions::default()
    };
    let err = Experiment::new(Program::GsLarge, AllocChoice::Paper(AllocatorKind::Bsd))
        .options(opts)
        .run()
        .expect_err("16K heap cannot hold GS");
    let EngineError::Alloc { source, at_event } = err;
    assert!(matches!(source, AllocError::Oom(_)));
    assert!(at_event > 0, "OOM should happen mid-run, not at setup");
}

#[test]
fn invalid_frees_are_reported_where_detectable() {
    with_limited_heap(1 << 20, |ctx| {
        for kind in AllocatorKind::ALL {
            let mut a = kind.build(ctx).expect("build");
            let p = a.malloc(64, ctx).expect("malloc");
            // Freeing an address that was never returned: each allocator
            // detects what its metadata allows; none may panic.
            let bogus = p + 1024 * 512;
            let _ = a.free(bogus, ctx);
            // The original block must still free cleanly afterwards.
            a.free(p, ctx).unwrap_or_else(|e| panic!("{kind:?}: live free failed: {e}"));
        }
    });
}

#[test]
fn double_free_detection_in_tagged_allocators() {
    with_limited_heap(1 << 20, |ctx| {
        for kind in [AllocatorKind::FirstFit, AllocatorKind::GnuGxx, AllocatorKind::Bsd] {
            let mut a = kind.build(ctx).expect("build");
            let p = a.malloc(48, ctx).expect("malloc");
            a.free(p, ctx).expect("first free");
            assert!(
                matches!(a.free(p, ctx), Err(AllocError::InvalidFree(_))),
                "{kind:?} should detect an immediate double free"
            );
        }
    });
}

#[test]
fn zero_and_huge_requests_behave() {
    with_limited_heap(64 << 20, |ctx| {
        for kind in AllocatorKind::ALL {
            let mut a = kind.build(ctx).expect("build");
            // malloc(0) returns a unique, freeable pointer.
            let z1 = a.malloc(0, ctx).expect("malloc(0)");
            let z2 = a.malloc(0, ctx).expect("malloc(0)");
            assert_ne!(z1, z2, "{kind:?}: malloc(0) must return unique pointers");
            a.free(z1, ctx).expect("free zero-size");
            a.free(z2, ctx).expect("free zero-size");
            // A multi-megabyte request either succeeds or reports.
            match a.malloc(8 << 20, ctx) {
                Ok(p) => a.free(p, ctx).expect("free huge"),
                Err(AllocError::Oom(_)) | Err(AllocError::Unsupported(_)) => {}
                Err(e) => panic!("{kind:?}: unexpected error {e}"),
            }
        }
    });
}

#[test]
fn oom_mid_structure_leaves_allocator_usable() {
    // Drive FirstFit to OOM during an extension (not just the first
    // sbrk), then verify the boundary-tag heap still walks clean.
    use allocators::layout::{list, TAG};
    use allocators::verify::check_tagged_heap;
    use allocators::FirstFit;

    with_limited_heap(64 * 1024, |ctx| {
        let mut ff = FirstFit::new(ctx).expect("metadata fits");
        let mut live = Vec::new();
        while let Ok(p) = ff.malloc(700, ctx) {
            live.push(p);
        }
        let start = ff.freelist_head() + list::SENTINEL_BYTES + TAG;
        check_tagged_heap(ctx, start).expect("heap clean after OOM");
        for p in live {
            ff.free(p, ctx).expect("free");
        }
        let walk = check_tagged_heap(ctx, start).expect("heap clean after drain");
        assert_eq!(walk.allocated_blocks, 0);
    });
}

#[test]
fn free_of_never_allocated_address_into_foreign_region() {
    // Address arithmetic attacks: pointers into allocator metadata must
    // not be accepted by the descriptor-driven allocator.
    with_limited_heap(1 << 20, |ctx| {
        let mut gl = AllocatorKind::GnuLocal.build(ctx).expect("build");
        let p = gl.malloc(32, ctx).expect("malloc");
        // Misaligned inside a fragment chunk.
        assert!(matches!(gl.free(p + 2, ctx), Err(AllocError::InvalidFree(_))));
        // Below the heap entirely.
        assert!(matches!(gl.free(Address::new(0x100), ctx), Err(AllocError::InvalidFree(_))));
        gl.free(p, ctx).expect("real free still works");
    });
}
