//! The observability subsystem's two contracts, checked end to end:
//!
//! 1. **Recording observes, it never participates.** Attaching any
//!    recorder must leave the [`RunResult`] bit-identical to a
//!    recorder-free run, in both pipeline modes and under both cache
//!    engines.
//! 2. **The JSONL report schema is stable.** A [`RunReport`] emitted by
//!    an instrumented run round-trips through its JSONL encoding and
//!    passes its own validation.

use alloc_locality::RunReport;
use alloc_locality_repro::engine::{
    AllocChoice, CacheEngine, Experiment, PipelineMode, SimOptions,
};
use allocators::AllocatorKind;
use cache_sim::CacheConfig;
use obs::NullRecorder;
use workloads::{Program, Scale};

/// The heavy configuration: full paper sweep, pager, victim buffer,
/// three-C analyzer, two-level hierarchy, fragmentation sampling — every
/// shard kind the engine can instrument.
fn full_opts(engine: CacheEngine) -> SimOptions {
    SimOptions {
        cache_configs: CacheConfig::paper_sweep(),
        cache_engine: engine,
        paging: true,
        victim_entries: Some(8),
        three_c: true,
        two_level: true,
        frag_sample_every: 64,
        scale: Scale(0.003),
        ..SimOptions::default()
    }
}

fn experiment(engine: CacheEngine, mode: PipelineMode) -> Experiment {
    Experiment::new(Program::Espresso, AllocChoice::Paper(AllocatorKind::FirstFit))
        .options(full_opts(engine))
        .pipeline(mode)
}

#[test]
fn recording_is_invisible_in_every_engine_and_pipeline_mode() {
    for engine in [CacheEngine::PerCache, CacheEngine::Sweep] {
        for mode in [PipelineMode::Inline, PipelineMode::Sharded] {
            let exp = experiment(engine, mode);
            let plain = exp.run().expect("plain run");

            let mut null = NullRecorder;
            let with_null = exp.run_with_recorder(&mut null).expect("null-recorder run");
            assert_eq!(
                with_null, plain,
                "NullRecorder perturbed the result under {engine:?}/{mode:?}"
            );

            let (with_memory, metrics) = exp.run_instrumented().expect("instrumented run");
            assert_eq!(
                with_memory, plain,
                "MemoryRecorder perturbed the result under {engine:?}/{mode:?}"
            );

            // The run it did not perturb, it did observe.
            let search = metrics.histogram("alloc.search_len").expect("search lengths");
            assert_eq!(
                search.count, plain.alloc_stats.mallocs,
                "one search-length sample per malloc under {engine:?}/{mode:?}"
            );
            let coalesce = metrics.histogram("alloc.coalesce_per_free").expect("coalesce counts");
            assert_eq!(coalesce.count, plain.alloc_stats.frees);
            assert!(metrics.counter("ctx.flush.batches") > 0);
            assert!(metrics.counter("alloc.tag_writes") > 0, "FirstFit writes boundary tags");
            assert!(metrics.span("engine.drive").is_some(), "drive phase was timed");
            if mode == PipelineMode::Sharded {
                assert!(metrics.counter("pipeline.workers") > 0);
                assert!(metrics.span("pipeline.worker_busy").is_some());
            }
        }
    }
}

#[test]
fn extension_allocators_emit_full_reports() {
    // The recorder hooks must reach beyond the paper five: every
    // extension allocator's report carries the per-malloc search-length
    // and per-free coalesce histograms the schema demands, so served
    // jobs validate no matter which allocator they name.
    for choice in
        [AllocChoice::BestFit, AllocChoice::Buddy, AllocChoice::Custom, AllocChoice::Predictive]
    {
        let label = choice.label();
        let exp = Experiment::new(Program::Espresso, choice).options(SimOptions {
            cache_configs: vec![CacheConfig::direct_mapped(16 * 1024, 32)],
            paging: false,
            scale: Scale(0.002),
            ..SimOptions::default()
        });
        let report = exp.report().unwrap_or_else(|e| panic!("{label}: {e}"));
        report.validate().unwrap_or_else(|e| panic!("{label}: {e}"));
        let search = report.metrics.histograms.get("alloc.search_len").expect("search histogram");
        assert_eq!(
            search.count, report.result.alloc_stats.mallocs,
            "{label}: one search-length sample per malloc"
        );
        let coalesce =
            report.metrics.histograms.get("alloc.coalesce_per_free").expect("coalesce histogram");
        assert_eq!(
            coalesce.count, report.result.alloc_stats.frees,
            "{label}: one coalesce sample per free"
        );
    }
}

#[test]
fn allocator_engine_counters_surface_through_the_recorder() {
    // The O(1) hot-path machinery must be visible to the recorder — and,
    // per the test above, invisible to the result. FirstFit probes its
    // size-class occupancy bitmap once per freelist search (one search
    // per malloc) and counts every boundary-tag merge.
    let (result, metrics) = experiment(CacheEngine::Sweep, PipelineMode::Inline)
        .run_instrumented()
        .expect("instrumented run");
    assert_eq!(
        metrics.counter(obs::names::BITMAP_PROBE),
        result.alloc_stats.mallocs,
        "one occupancy-bitmap probe per FirstFit search"
    );
    assert_eq!(
        metrics.counter(obs::names::BOUNDARY_COALESCE),
        result.alloc_stats.coalesces,
        "one boundary-coalesce count per merge"
    );
    assert!(result.alloc_stats.coalesces > 0, "workload must exercise coalescing");

    // QuickFit pops warm quicklists; the hit counter covers exactly the
    // warm pops, a subset of the fast-path mallocs in its stats.
    let exp = Experiment::new(Program::Espresso, AllocChoice::Paper(AllocatorKind::QuickFit))
        .options(SimOptions {
            cache_configs: vec![CacheConfig::direct_mapped(16 * 1024, 32)],
            paging: false,
            scale: Scale(0.002),
            ..SimOptions::default()
        });
    let (result, metrics) = exp.run_instrumented().expect("QuickFit instrumented run");
    let quick = metrics.counter(obs::names::QUICK_HIT);
    assert!(quick > 0, "warm quicklist pops must be counted");
    assert!(
        quick <= result.alloc_stats.quick_hits,
        "warm pops are a subset of fast-path mallocs ({quick} > {})",
        result.alloc_stats.quick_hits
    );
}

#[test]
fn tracing_is_invisible_in_every_engine_and_pipeline_mode() {
    // The hierarchical tracer rides the same Recorder contract, so it
    // inherits contract 1: a traced run must produce bit-identical
    // results — and, since the tracer embeds a MemoryRecorder, the same
    // flat metrics an instrumented run yields.
    for engine in [CacheEngine::PerCache, CacheEngine::Sweep] {
        for mode in [PipelineMode::Inline, PipelineMode::Sharded] {
            let exp = experiment(engine, mode);
            let plain = exp.run().expect("plain run");
            let (_, plain_metrics) = exp.run_instrumented().expect("instrumented run");

            let (traced, metrics, trace) = exp.run_traced().expect("traced run");
            assert_eq!(traced, plain, "Tracer perturbed the result under {engine:?}/{mode:?}");
            // Span *timings* are wall-clock and differ run to run, and
            // pipeline.send_stalls counts scheduling-dependent
            // backpressure; the deterministic metric content must not
            // differ.
            let deterministic = |m: &obs::MetricsSnapshot| -> Vec<(String, u64)> {
                m.counters
                    .iter()
                    .filter(|(name, _)| name.as_str() != "pipeline.send_stalls")
                    .map(|(name, &v)| (name.clone(), v))
                    .collect()
            };
            assert_eq!(
                deterministic(&metrics),
                deterministic(&plain_metrics),
                "span structure leaked into counters under {engine:?}/{mode:?}"
            );
            assert_eq!(
                metrics.histograms, plain_metrics.histograms,
                "span structure leaked into histograms under {engine:?}/{mode:?}"
            );
            assert_eq!(
                metrics.spans.keys().collect::<Vec<_>>(),
                plain_metrics.spans.keys().collect::<Vec<_>>(),
                "tracing changed which flat span timers exist under {engine:?}/{mode:?}"
            );

            // The span tree is a valid v1 artifact...
            trace.validate().unwrap_or_else(|e| panic!("{engine:?}/{mode:?}: invalid trace: {e}"));
            assert_eq!(trace.schema, obs::TRACE_SCHEMA);
            assert_eq!(trace.version, obs::TRACE_VERSION);
            assert_eq!(trace.dropped_spans, 0, "this workload is far under the span cap");

            // ...with the engine's phases present and correctly nested:
            // alloc_build and events are children of the drive phase.
            let drive = trace.span("engine.drive").expect("drive span");
            for child in ["engine.alloc_build", "engine.events"] {
                let span = trace
                    .span(child)
                    .unwrap_or_else(|| panic!("{engine:?}/{mode:?}: missing span {child}"));
                assert_eq!(span.parent, Some(drive.id), "{child} must nest under engine.drive");
            }
            assert!(trace.span("engine.finalize").is_some(), "finalize phase was traced");
            assert!(trace.span("ctx.flush").is_some(), "event flushes were traced");

            // The JSON line round-trips losslessly.
            let line = trace.to_json_line();
            assert!(!line.contains('\n'));
            let back = obs::TraceReport::parse(&line).expect("parse trace line");
            back.validate().expect("parsed trace validates");
            assert_eq!(back, trace);
        }
    }
}

#[test]
fn run_report_round_trips_through_jsonl() {
    let report =
        experiment(CacheEngine::Sweep, PipelineMode::Inline).report().expect("instrumented run");
    report.validate().expect("fresh report validates");

    let line = report.to_jsonl_line();
    assert!(!line.contains('\n'), "a JSONL record must be one line");
    let back = RunReport::parse(&line).expect("parse emitted line");
    back.validate().expect("parsed report validates");
    assert_eq!(back, report, "JSONL round trip must be lossless");

    // The schema fields consumers route on are populated and consistent.
    assert_eq!(back.schema, alloc_locality::RUN_REPORT_SCHEMA);
    assert_eq!(back.version, alloc_locality::RUN_REPORT_VERSION);
    assert_eq!(back.program, back.result.program);
    assert_eq!(back.allocator, back.result.allocator);
}
