//! Phase structure vs. coalescing: when does FIRSTFIT's space economy
//! actually pay?
//!
//! The paper concludes that coalescing "will in most cases both increase
//! total execution time and reduce program reference locality". The
//! strongest case *for* coalescing is a phase-structured program: cohorts
//! of objects die together, leaving adjacent free blocks that merge into
//! large reusable regions. This example runs the same workload with and
//! without phase structure, under FIRSTFIT (coalescing) and BSD (never
//! coalesces), to show both sides of the trade-off.
//!
//! ```sh
//! cargo run --release --example phase_structure [scale]
//! ```

use alloc_locality_repro::engine::{AllocChoice, Experiment, SimOptions};
use allocators::AllocatorKind;
use cache_sim::CacheConfig;
use workloads::{PhaseBehavior, Program, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale: f64 = std::env::args().nth(1).map(|s| s.parse()).transpose()?.unwrap_or(0.02);
    let k16 = CacheConfig::direct_mapped(16 * 1024, 32);

    println!("espresso with and without phase structure (scale {scale})\n");
    println!(
        "{:<10} {:<10} {:>8} {:>10} {:>10} {:>10}",
        "workload", "allocator", "heap KB", "coalesces", "miss@16K", "in-alloc"
    );
    for (label, phases) in
        [("steady", None), ("phased", Some(PhaseBehavior { period: 2000, cohort_fraction: 0.8 }))]
    {
        let mut spec = Program::Espresso.spec();
        spec.phases = phases;
        for kind in [AllocatorKind::FirstFit, AllocatorKind::Bsd, AllocatorKind::GnuLocal] {
            let r = Experiment::with_spec(spec.clone(), AllocChoice::Paper(kind))
                .options(SimOptions {
                    cache_configs: vec![k16],
                    paging: false,
                    scale: Scale(scale),
                    ..SimOptions::default()
                })
                .run()?;
            println!(
                "{:<10} {:<10} {:>8} {:>10} {:>9.2}% {:>9.2}%",
                label,
                r.allocator,
                r.heap_high_water / 1024,
                r.alloc_stats.coalesces,
                r.miss_rate(k16).expect("16K simulated") * 100.0,
                r.alloc_fraction() * 100.0,
            );
        }
        println!();
    }
    println!(
        "Cohort deaths hand FirstFit long runs of adjacent free blocks:\n\
         its coalescing count roughly doubles, its freelist collapses to\n\
         a few large regions, and both its time-in-malloc and its miss\n\
         rate close most of the gap to the segregated allocators. The\n\
         paper's anti-coalescing conclusion is calibrated for\n\
         steady-state churn; phase-structured programs are where\n\
         coalescing earns its keep."
    );
    Ok(())
}
