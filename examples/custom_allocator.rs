//! Synthesize the allocator the paper's §4.4 recommends and compare it
//! against the five measured designs.
//!
//! The pipeline: profile the workload's allocation sizes, derive a
//! Figure 9 size-mapping array (exact classes for hot sizes over a
//! bounded-fragmentation backbone), and run the resulting tag-free,
//! chunked, no-search allocator head-to-head.
//!
//! ```sh
//! cargo run --release --example custom_allocator [scale]
//! ```

use alloc_locality_repro::engine::{
    sample_profile, AllocChoice, Experiment, SimOptions, MISS_PENALTY_CYCLES,
};
use allocators::{AllocatorKind, SizeMap};
use cache_sim::CacheConfig;
use workloads::{Program, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale: f64 = std::env::args().nth(1).map(|s| s.parse()).transpose()?.unwrap_or(0.01);
    let program = Program::Espresso;

    // Step 1: empirical measurement of the program's behaviour.
    let profile = sample_profile(&program.spec(), 20_000);
    println!("{}: top request sizes {:?}", program.label(), profile.top_sizes(5));

    // Step 2: derive the size classes (Figure 9's size-mapping array).
    let map = SizeMap::from_profile(&profile, 16, 0.25);
    println!("derived {} size classes; examples:", map.class_sizes().len());
    for req in [8u32, 16, 20, 24, 100, 1000] {
        println!("  request {req:>5} -> class {:>5}", map.rounded(req).expect("mapped"));
    }

    // Step 3: head-to-head.
    let k64 = CacheConfig::direct_mapped(64 * 1024, 32);
    let opts = SimOptions { scale: Scale(scale), ..SimOptions::default() };
    println!(
        "\n{:<12} {:>8} {:>10} {:>10} {:>10}",
        "allocator", "heap KB", "in-alloc", "miss@64K", "time@64K"
    );
    for choice in [
        AllocChoice::Paper(AllocatorKind::Bsd),
        AllocChoice::Paper(AllocatorKind::QuickFit),
        AllocChoice::Paper(AllocatorKind::GnuLocal),
        AllocChoice::Custom,
    ] {
        let r = Experiment::new(program, choice).options(opts.clone()).run()?;
        let t = r.time_estimate(k64, MISS_PENALTY_CYCLES).expect("64K simulated");
        println!(
            "{:<12} {:>8} {:>9.2}% {:>9.2}% {:>9.3}s",
            r.allocator,
            r.heap_high_water / 1024,
            r.alloc_fraction() * 100.0,
            r.miss_rate(k64).expect("64K simulated") * 100.0,
            t.total_seconds(),
        );
    }
    println!(
        "\nOn espresso the synthesized allocator pairs QuickFit-class speed\n\
         with GNU-LOCAL-class locality and uses less space than BSD — the\n\
         design point the paper's conclusions argue for. (On very small\n\
         heaps, e.g. gawk's 60 KB, the chunk granularity costs instead:\n\
         try `allocator_shootout gawk`.)"
    );
    Ok(())
}
