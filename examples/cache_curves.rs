//! Sweep cache geometry for one workload: the paper's direct-mapped
//! 16K–256K sweep (Figures 6–8) plus the associativity extension the
//! related work discusses (Wilson et al. on cache associativity).
//!
//! ```sh
//! cargo run --release --example cache_curves [scale]
//! ```

use alloc_locality_repro::engine::{AllocChoice, Experiment, SimOptions};
use allocators::AllocatorKind;
use cache_sim::CacheConfig;
use workloads::{Program, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale: f64 = std::env::args().nth(1).map(|s| s.parse()).transpose()?.unwrap_or(0.01);

    // Direct-mapped sweep plus 2-way and 4-way variants of each size.
    let mut configs = Vec::new();
    for kb in [16u32, 32, 64, 128, 256] {
        for assoc in [1u32, 2, 4] {
            configs.push(CacheConfig::set_associative(kb * 1024, 32, assoc));
        }
    }

    println!("GS-Medium miss rates by cache geometry (scale {scale})\n");
    println!("{:<12} {:>10} {:>10} {:>10}", "cache", "1-way", "2-way", "4-way");
    for kind in [AllocatorKind::FirstFit, AllocatorKind::Bsd] {
        let result = Experiment::new(Program::GsMedium, AllocChoice::Paper(kind))
            .options(SimOptions {
                cache_configs: configs.clone(),
                paging: false,
                scale: Scale(scale),
                ..SimOptions::default()
            })
            .run()?;
        println!("--- {}", kind.label());
        for kb in [16u32, 32, 64, 128, 256] {
            let rate = |assoc: u32| {
                result
                    .miss_rate(CacheConfig::set_associative(kb * 1024, 32, assoc))
                    .map(|r| format!("{:.2}%", r * 100.0))
                    .unwrap_or_default()
            };
            println!("{:<12} {:>10} {:>10} {:>10}", format!("{kb}K"), rate(1), rate(2), rate(4));
        }
    }
    println!(
        "\nAssociativity damps the conflict misses of the sequential-fit\n\
         allocator more than the segregated one — its freelist traffic is\n\
         what collides with application data in a direct-mapped cache."
    );
    Ok(())
}
