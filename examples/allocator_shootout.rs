//! The paper's core comparison as a one-screen shootout: run all five
//! allocators (plus the synthesized `Custom`) on one program and print
//! the metrics every figure in the paper is built from.
//!
//! ```sh
//! cargo run --release --example allocator_shootout [program] [scale]
//! # program: espresso | gs | ptc | gawk | make   (default espresso)
//! ```

use alloc_locality_repro::engine::MISS_PENALTY_CYCLES;
use alloc_locality_repro::engine::{run_parallel, AllocChoice, Experiment, SimOptions};
use cache_sim::CacheConfig;
use workloads::{Program, Scale};

fn parse_program(name: &str) -> Option<Program> {
    match name {
        "espresso" => Some(Program::Espresso),
        "gs" => Some(Program::GsLarge),
        "ptc" => Some(Program::Ptc),
        "gawk" => Some(Program::Gawk),
        "make" => Some(Program::Make),
        _ => None,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let program = args
        .next()
        .map(|n| parse_program(&n).ok_or(format!("unknown program {n:?}")))
        .transpose()?
        .unwrap_or(Program::Espresso);
    let scale: f64 = args.next().map(|s| s.parse()).transpose()?.unwrap_or(0.01);

    let mut choices = AllocChoice::paper_five();
    choices.push(AllocChoice::BestFit);
    choices.push(AllocChoice::Buddy);
    choices.push(AllocChoice::Custom);
    choices.push(AllocChoice::Predictive);
    let opts = SimOptions { scale: Scale(scale), ..SimOptions::default() };
    let jobs =
        choices.into_iter().map(|c| Experiment::new(program, c).options(opts.clone())).collect();
    let matrix = run_parallel(jobs)?;

    let k16 = CacheConfig::direct_mapped(16 * 1024, 32);
    let k64 = CacheConfig::direct_mapped(64 * 1024, 32);
    println!("{} at scale {scale} — lower is better everywhere\n", program.label());
    println!(
        "{:<20} {:>8} {:>9} {:>9} {:>9} {:>10} {:>10}",
        "allocator", "heap KB", "in-alloc", "miss@16K", "miss@64K", "time@16K", "time@64K"
    );
    for r in &matrix.runs {
        let t16 = r.time_estimate(k16, MISS_PENALTY_CYCLES).expect("16K simulated");
        let t64 = r.time_estimate(k64, MISS_PENALTY_CYCLES).expect("64K simulated");
        println!(
            "{:<20} {:>8} {:>8.2}% {:>8.2}% {:>8.2}% {:>9.3}s {:>9.3}s",
            r.allocator,
            r.heap_high_water / 1024,
            r.alloc_fraction() * 100.0,
            r.miss_rate(k16).expect("16K simulated") * 100.0,
            r.miss_rate(k64).expect("64K simulated") * 100.0,
            t16.total_seconds(),
            t64.total_seconds(),
        );
    }

    println!("\npage-fault resilience (faults per million refs at half / full heap):");
    for r in &matrix.runs {
        let Some(curve) = &r.fault_curve else { continue };
        let frames = r.heap_high_water.div_ceil(4096);
        let rate = |f: u64| curve.faults(f) as f64 / curve.accesses.max(1) as f64 * 1e6;
        println!("  {:<20} {:>10.1} {:>10.1}", r.allocator, rate(frames / 2), rate(frames));
    }
    Ok(())
}
