//! Quickstart: allocate through an instrumented allocator and watch the
//! reference trace, then run a full paper-style experiment in a few
//! lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use alloc_locality_repro::engine::{AllocChoice, Experiment};
use alloc_locality_repro::sim_mem::{CountingSink, HeapImage, InstrCounter, MemCtx, Phase};
use allocators::{Allocator, AllocatorKind, QuickFit};
use cache_sim::CacheConfig;
use workloads::{Program, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Level 1: drive one allocator by hand. -------------------------
    // The heap image, reference sink, and instruction counter are the
    // three facets the paper measures; MemCtx binds them so the
    // allocator cannot touch memory without being observed.
    let mut heap = HeapImage::new();
    let mut sink = CountingSink::new();
    let mut instrs = InstrCounter::new();
    let mut ctx = MemCtx::new(&mut heap, &mut sink, &mut instrs);

    let mut quickfit = QuickFit::new(&mut ctx)?;
    ctx.set_phase(Phase::Malloc);
    let a = quickfit.malloc(24, &mut ctx)?;
    let b = quickfit.malloc(24, &mut ctx)?;
    ctx.set_phase(Phase::Free);
    quickfit.free(a, &mut ctx)?;
    quickfit.free(b, &mut ctx)?;

    println!("QuickFit by hand:");
    println!("  payloads at {a} and {b}");
    println!("  heap grew to {} bytes", heap.high_water());
    println!(
        "  {} metadata references, {} instructions inside the allocator",
        sink.stats().meta_refs(),
        instrs.allocator_total(),
    );

    // --- Level 2: a full experiment. ------------------------------------
    // One line per concept: program model, allocator choice, scale, and
    // the simulators (cache sweep + pager) run in a single pass.
    let result = Experiment::new(Program::Espresso, AllocChoice::Paper(AllocatorKind::Bsd))
        .scale(Scale(0.005))
        .run()?;

    let k64 = CacheConfig::direct_mapped(64 * 1024, 32);
    println!("\nespresso under BSD (scale 0.005):");
    println!("  {} allocations, {} frees", result.alloc_stats.mallocs, result.alloc_stats.frees);
    println!("  peak heap {} KB", result.heap_high_water / 1024);
    println!("  {:.2}% of instructions in malloc/free", result.alloc_fraction() * 100.0);
    if let Some(rate) = result.miss_rate(k64) {
        println!("  {:.2}% miss rate in a 64K direct-mapped cache", rate * 100.0);
    }
    if let Some(curve) = &result.fault_curve {
        println!(
            "  working set: {} pages ({} KB) for cold-faults-only paging",
            curve.working_set_frames(),
            curve.working_set_frames() * 4,
        );
    }
    Ok(())
}
