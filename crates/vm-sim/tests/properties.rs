//! Property tests for the stack-distance simulator: it must agree with a
//! brute-force LRU oracle on arbitrary page streams, and its fault curve
//! must have LRU's inclusion property.

use proptest::prelude::*;
use sim_mem::{AccessSink, Address, MemRef};
use vm_sim::StackSim;

/// Brute-force LRU stack: returns (cold, histogram of distances).
fn oracle(pages: &[u64]) -> (u64, Vec<u64>) {
    let mut stack: Vec<u64> = Vec::new();
    let mut hist = vec![0u64; pages.len() + 2];
    let mut cold = 0;
    for &p in pages {
        match stack.iter().position(|&q| q == p) {
            Some(pos) => {
                hist[pos + 1] += 1;
                stack.remove(pos);
            }
            None => cold += 1,
        }
        stack.insert(0, p);
    }
    (cold, hist)
}

fn oracle_faults(pages: &[u64], mem: u64) -> u64 {
    let (cold, hist) = oracle(pages);
    cold + hist
        .iter()
        .enumerate()
        .skip(1)
        .filter(|&(d, _)| d as u64 > mem)
        .map(|(_, &c)| c)
        .sum::<u64>()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Exact agreement with the oracle at every memory size.
    #[test]
    fn matches_naive_lru(
        pages in proptest::collection::vec(0u64..40, 1..400),
    ) {
        let mut sim = StackSim::new(4096);
        for &p in &pages {
            sim.access_page(p);
        }
        for mem in 0..45u64 {
            prop_assert_eq!(
                sim.faults_at(mem),
                oracle_faults(&pages, mem),
                "divergence at memory {}", mem
            );
        }
    }

    /// Inclusion: more memory never faults more; the curve bottoms out at
    /// the compulsory faults (= distinct pages).
    #[test]
    fn curve_is_monotone_and_bottoms_at_cold(
        pages in proptest::collection::vec(0u64..100, 1..500),
    ) {
        let mut sim = StackSim::new(4096);
        for &p in &pages {
            sim.access_page(p);
        }
        let curve = sim.curve();
        for w in curve.points.windows(2) {
            prop_assert!(w[0].1 >= w[1].1);
        }
        let distinct = sim.distinct_pages();
        prop_assert_eq!(sim.faults_at(u64::MAX), distinct);
        prop_assert_eq!(curve.faults(0), sim.accesses());
    }

    /// Page decomposition: an address-range access touches exactly the
    /// pages the range spans.
    #[test]
    fn ranges_touch_the_right_pages(start in 0u64..1_000_000, len in 1u32..100_000) {
        let mut sim = StackSim::new(4096);
        sim.access_addr(start.into(), len);
        let expected = (start + u64::from(len) - 1) / 4096 - start / 4096 + 1;
        prop_assert_eq!(sim.distinct_pages(), expected);
    }

    /// The suffix-sum fault curve agrees with `faults_at` pointwise at
    /// every memory size it covers.
    #[test]
    fn curve_agrees_with_pointwise_faults(
        pages in proptest::collection::vec(0u64..60, 1..400),
    ) {
        let mut sim = StackSim::new(4096);
        for &p in &pages {
            sim.access_page(p);
        }
        let curve = sim.curve();
        for &(mem, faults) in &curve.points {
            prop_assert_eq!(faults, sim.faults_at(mem), "divergence at memory {}", mem);
        }
    }

    /// Batch delivery through the `AccessSink` trait is invisible: a
    /// reference stream chopped at an arbitrary boundary produces the
    /// same fault curve as per-record delivery.
    #[test]
    fn batch_boundaries_are_invisible(
        refs in proptest::collection::vec((0u64..1_000_000, 1u32..20_000), 1..200),
        cut in 0usize..=200,
    ) {
        let stream: Vec<MemRef> =
            refs.iter().map(|&(a, l)| MemRef::app_read(Address::new(a), l)).collect();

        let mut per_record = StackSim::new(4096);
        for &r in &stream {
            per_record.record(r);
        }

        let mut batched = StackSim::new(4096);
        let split = cut % (stream.len() + 1);
        batched.record_batch(&stream[..split]);
        batched.record_batch(&stream[split..]);

        prop_assert_eq!(per_record.curve().points, batched.curve().points);
        prop_assert_eq!(per_record.distinct_pages(), batched.distinct_pages());
    }

    /// Run-compressed delivery — repeats counted in O(1) for
    /// single-page references — produces exactly the fault curve,
    /// access count, and page population of per-record delivery.
    #[test]
    fn run_delivery_matches_per_record(
        runs in proptest::collection::vec(
            (0u64..1_000_000, 1u32..20_000, 1u32..60),
            1..150,
        ),
        cut in 0usize..=150,
    ) {
        use sim_mem::RefRun;
        let runs: Vec<RefRun> = runs
            .iter()
            .map(|&(a, l, count)| RefRun { r: MemRef::app_read(Address::new(a), l), count })
            .collect();

        let mut fast = StackSim::new(4096);
        let split = cut % (runs.len() + 1);
        fast.record_runs(&runs[..split]);
        fast.record_runs(&runs[split..]);

        let mut slow = StackSim::new(4096);
        for run in &runs {
            for _ in 0..run.count {
                slow.record(run.r);
            }
        }

        prop_assert_eq!(fast.curve().points, slow.curve().points);
        prop_assert_eq!(fast.accesses(), slow.accesses());
        prop_assert_eq!(fast.distinct_pages(), slow.distinct_pages());
    }

    /// The multi-page span fast path: streams built entirely of
    /// *repeated page-straddling* references (2 to ~50 pages, so every
    /// run takes the span arithmetic) produce exactly the fault curve,
    /// access count, and page population of per-record replay.
    #[test]
    fn multi_page_run_fast_path_matches_per_record(
        runs in proptest::collection::vec(
            (0u64..2_000_000, 4097u32..200_000, 2u32..40),
            1..60,
        ),
        cut in 0usize..=60,
    ) {
        use sim_mem::RefRun;
        let runs: Vec<RefRun> = runs
            .iter()
            .map(|&(a, l, count)| RefRun { r: MemRef::app_read(Address::new(a), l), count })
            .collect();

        let mut fast = StackSim::new(4096);
        let split = cut % (runs.len() + 1);
        fast.record_runs(&runs[..split]);
        fast.record_runs(&runs[split..]);

        let mut slow = StackSim::new(4096);
        for run in &runs {
            for _ in 0..run.count {
                slow.record(run.r);
            }
        }

        prop_assert_eq!(fast.curve().points, slow.curve().points);
        prop_assert_eq!(fast.accesses(), slow.accesses());
        prop_assert_eq!(fast.distinct_pages(), slow.distinct_pages());
    }

    /// Compaction (forced by long streams over few pages) never changes
    /// results: two simulators fed the same stream with different
    /// interleavings of the same accesses agree.
    #[test]
    fn long_streams_survive_compaction(reps in 1usize..80, npages in 1u64..32) {
        let mut sim = StackSim::new(4096);
        let mut pages = Vec::new();
        for r in 0..reps as u64 {
            for p in 0..npages {
                // Vary order per round to exercise distances.
                let page = if r % 2 == 0 { p } else { npages - 1 - p };
                sim.access_page(page);
                pages.push(page);
            }
        }
        for mem in [0, 1, npages / 2, npages, npages + 5] {
            prop_assert_eq!(sim.faults_at(mem), oracle_faults(&pages, mem));
        }
    }
}
