//! VMSIM-style virtual-memory simulation.
//!
//! The paper measured page-fault rates with "VMSIM, a fast implementation
//! of a stack simulation algorithm", using 4-kilobyte pages. Stack
//! simulation (Mattson et al.) exploits LRU's inclusion property: one
//! pass over the trace yields the fault count for *every* memory size
//! simultaneously, which is exactly what Figures 2 and 3 plot.
//!
//! [`StackSim`] computes exact LRU stack distances with the
//! Bennett–Kruskal algorithm: a Fenwick tree over access-time slots marks
//! the most recent access of each page, so the reuse distance of an
//! access is a prefix-sum query — O(log n) per reference, with periodic
//! compaction to keep the tree bounded by the number of distinct pages.
//!
//! # Example
//!
//! ```
//! use vm_sim::StackSim;
//!
//! let mut sim = StackSim::new(4096);
//! for page in [0u64, 4096, 8192, 0, 4096, 8192] {
//!     sim.access_addr(page.into(), 4);
//! }
//! // Three pages cycled twice: with 3+ pages of memory only the 3 cold
//! // faults remain; with 2 pages every access faults.
//! assert_eq!(sim.faults_at(3), 3);
//! assert_eq!(sim.faults_at(2), 6);
//! ```

use serde::{Deserialize, Serialize};
use sim_mem::{AccessSink, Address, MemRef, RefRun};
use std::collections::HashMap;

/// The paper's page size: 4 kilobytes.
pub const PAGE_SIZE: u64 = 4096;

/// Depth of the MRU top-of-stack segment: page traffic is heavily
/// skewed toward recently used pages, so a 2 KB move-to-front array
/// holding the [`MRU_DEPTH`] most recent distinct pages absorbs nearly
/// every access with pure positional arithmetic — index `i` *is* stack
/// distance `i + 1` — leaving the HashMap/Fenwick machinery only the
/// rare deeper hits.
const MRU_DEPTH: usize = 256;

/// How many of the hottest entries are scanned before consulting the
/// map: deep scans are only worth it once the map has confirmed the page
/// is front-resident, but the top handful of entries absorbs the bulk of
/// all traffic at a cost below a single hash probe.
const FAST_PROBE: usize = 8;

/// Slot sentinel marking a page as resident in the MRU segment (its
/// recency is positional, not slot-based, while it lives there).
const IN_FRONT: usize = usize::MAX;

/// Binary indexed tree over access-time slots.
#[derive(Debug, Clone, Default)]
struct Fenwick {
    tree: Vec<u64>,
}

impl Fenwick {
    fn with_capacity(n: usize) -> Self {
        Fenwick { tree: vec![0; n + 1] }
    }

    fn len(&self) -> usize {
        self.tree.len() - 1
    }

    /// Adds `delta` at 1-based position `i`.
    fn add(&mut self, mut i: usize, delta: i64) {
        while i < self.tree.len() {
            self.tree[i] = self.tree[i].wrapping_add(delta as u64);
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of positions `1..=i`.
    fn prefix(&self, mut i: usize) -> u64 {
        let mut s = 0u64;
        while i > 0 {
            s = s.wrapping_add(self.tree[i]);
            i -= i & i.wrapping_neg();
        }
        s
    }

    /// Sum of positions `a..=b` (1-based, inclusive).
    fn range(&self, a: usize, b: usize) -> u64 {
        if b < a {
            0
        } else {
            self.prefix(b) - self.prefix(a - 1)
        }
    }
}

/// Exact LRU stack-distance simulator over fixed-size pages.
///
/// Feed it references (it implements [`AccessSink`], so it can tee off a
/// [`sim_mem::MemCtx`] pipeline) and read out the fault-versus-memory
/// curve at the end.
#[derive(Debug, Clone)]
pub struct StackSim {
    page_size: u64,
    /// `log2(page_size)`, so page numbers come from a shift, not a
    /// division, on the per-reference fast path.
    page_shift: u32,
    /// page -> 1-based time slot of its most recent access.
    last: HashMap<u64, usize>,
    tree: Fenwick,
    /// Next free 1-based time slot.
    now: usize,
    /// hist[d] = accesses with stack distance d (index 0 unused).
    hist: Vec<u64>,
    /// Accesses to pages never seen before.
    cold: u64,
    /// Total page-granular accesses.
    accesses: u64,
    /// References absorbed by the run fast path in `record_runs`
    /// (repeats counted straight into `hist[span]`). An observability
    /// counter — it never feeds the fault curve.
    fastpath_refs: u64,
    /// The MRU segment: the [`MRU_DEPTH`] most recently accessed
    /// distinct pages, most recent first — the literal top of the LRU
    /// stack, so a hit at index `i` *is* a stack-distance-`i+1` access
    /// with no HashMap or Fenwick work. Pages in this array carry the
    /// [`IN_FRONT`] sentinel in `last`; only pages demoted off its end
    /// hold a real time slot in the tree, which makes every front entry
    /// more recent than every tree entry by construction (a deep hit's
    /// distance is `mru_len` + its rank among the tree's live slots).
    mru_pages: [u64; MRU_DEPTH],
    /// Occupied prefix of `mru_pages`.
    mru_len: usize,
    /// Lazily-built suffix sums of `hist` (`suffix[d] = Σ_{i≥d} hist[i]`),
    /// tagged with the access count they were computed at so any further
    /// access invalidates them. `RefCell`, not a plain field: queries
    /// take `&self`, and the simulator is moved — never shared — across
    /// pipeline workers.
    suffix: std::cell::RefCell<(u64, Vec<u64>)>,
}

impl StackSim {
    /// Creates a simulator for `page_size`-byte pages (a power of two).
    ///
    /// # Panics
    ///
    /// Panics if `page_size` is not a power of two.
    pub fn new(page_size: u64) -> Self {
        assert!(page_size.is_power_of_two(), "page size must be a power of two");
        StackSim {
            page_size,
            page_shift: page_size.trailing_zeros(),
            last: HashMap::new(),
            tree: Fenwick::with_capacity(1024),
            now: 1,
            hist: vec![0; 2],
            cold: 0,
            accesses: 0,
            fastpath_refs: 0,
            mru_pages: [0; MRU_DEPTH],
            mru_len: 0,
            suffix: std::cell::RefCell::new((0, Vec::new())),
        }
    }

    /// Creates a simulator with the paper's 4 KB pages.
    pub fn paper() -> Self {
        Self::new(PAGE_SIZE)
    }

    /// References absorbed by the `record_runs` fast path (repeats
    /// counted as exact-distance histogram arithmetic without tree
    /// work). An observability counter — not part of the fault curve.
    pub fn fastpath_refs(&self) -> u64 {
        self.fastpath_refs
    }

    /// Records an access of `size` bytes at `addr`, touching every page
    /// the range spans.
    pub fn access_addr(&mut self, addr: Address, size: u32) {
        let first = addr.raw() >> self.page_shift;
        let last = (addr.raw() + u64::from(size.max(1)) - 1) >> self.page_shift;
        if first == last {
            // Nearly every reference is word-sized and page-aligned
            // traffic is rare, so the single-page case skips the range
            // loop entirely.
            self.access_page(first);
        } else {
            for page in first..=last {
                self.access_page(page);
            }
        }
    }

    /// Records an access to a page number directly.
    pub fn access_page(&mut self, page: u64) {
        self.accesses += 1;
        // Probe the hottest few entries without touching the map: most
        // traffic lands here at a cost below a single hash probe.
        let probe = self.mru_len.min(FAST_PROBE);
        for i in 0..probe {
            if self.mru_pages[i] == page {
                self.front_hit(i, page);
                return;
            }
        }
        match self.last.get(&page).copied() {
            None => {
                self.cold += 1;
                self.last.insert(page, IN_FRONT);
                self.push_front(page);
            }
            Some(IN_FRONT) => {
                // The map confirms the page sits somewhere in the MRU
                // segment; now a deep scan is worth its cost.
                let i = probe
                    + self.mru_pages[probe..self.mru_len]
                        .iter()
                        .position(|&p| p == page)
                        .expect("front-resident page is in the MRU segment");
                self.front_hit(i, page);
            }
            Some(slot) => {
                // Deep hit: every front entry is more recent, as is
                // every live tree slot above this one, and the page
                // itself completes the distance.
                let deeper = self.tree.range(slot + 1, self.now - 1) as usize;
                let d = self.mru_len + deeper + 1;
                if self.hist.len() <= d {
                    self.hist.resize(d + 1, 0);
                }
                self.hist[d] += 1;
                self.tree.add(slot, -1);
                self.last.insert(page, IN_FRONT);
                self.push_front(page);
            }
        }
    }

    /// Records a hit at MRU index `i` (stack distance `i + 1`) and moves
    /// the entry to the front.
    #[inline]
    fn front_hit(&mut self, i: usize, page: u64) {
        let d = i + 1;
        if self.hist.len() <= d {
            self.hist.resize(d + 1, 0);
        }
        self.hist[d] += 1;
        self.mru_pages.copy_within(0..i, 1);
        self.mru_pages[0] = page;
    }

    /// Inserts `page` at the front of the MRU segment, demoting the
    /// least-recent entry into the overflow tree (with a fresh time
    /// slot, above every live slot) when the segment is full.
    fn push_front(&mut self, page: u64) {
        if self.mru_len == MRU_DEPTH {
            let evicted = self.mru_pages[MRU_DEPTH - 1];
            if self.now > self.tree.len() {
                self.compact();
            }
            let slot = self.now;
            self.now += 1;
            self.last.insert(evicted, slot);
            self.tree.add(slot, 1);
            self.mru_len -= 1;
        }
        self.mru_pages.copy_within(0..self.mru_len, 1);
        self.mru_pages[0] = page;
        self.mru_len += 1;
    }

    /// Renumbers time slots 1..=P in LRU order, keeping the tree bounded
    /// by the number of demoted distinct pages. Front-resident pages
    /// hold the [`IN_FRONT`] sentinel and have no slot to renumber.
    fn compact(&mut self) {
        let mut entries: Vec<(u64, usize)> =
            self.last.iter().filter(|&(_, &t)| t != IN_FRONT).map(|(&p, &t)| (p, t)).collect();
        entries.sort_by_key(|&(_, t)| t);
        let n = entries.len().max(1);
        self.tree = Fenwick::with_capacity((n * 2).max(1024));
        for (rank, (page, _)) in entries.into_iter().enumerate() {
            self.last.insert(page, rank + 1);
            self.tree.add(rank + 1, 1);
        }
        self.now = n + 1;
    }

    /// Total page-granular accesses observed.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Number of distinct pages ever touched.
    pub fn distinct_pages(&self) -> u64 {
        self.last.len() as u64
    }

    /// Page faults with an LRU-managed memory of `pages` page frames:
    /// compulsory faults plus every access whose stack distance exceeds
    /// the memory size — `faults(m) = cold + Σ_{d>m} hist[d]`.
    ///
    /// An O(1) indexed lookup into the histogram's suffix sums, which
    /// are (re)built in one reverse pass whenever an access has landed
    /// since the last build. (The old implementation rescanned the
    /// whole histogram per call, which made [`StackSim::curve`]
    /// quadratic in the deepest stack distance.)
    pub fn faults_at(&self, pages: u64) -> u64 {
        let mut cache = self.suffix.borrow_mut();
        if cache.0 != self.accesses || cache.1.len() != self.hist.len() + 1 {
            let mut suffix = vec![0u64; self.hist.len() + 1];
            for d in (1..self.hist.len()).rev() {
                suffix[d] = suffix[d + 1] + self.hist[d];
            }
            *cache = (self.accesses, suffix);
        }
        let idx = pages.saturating_add(1).min(cache.1.len() as u64 - 1) as usize;
        self.cold + cache.1[idx]
    }

    /// The full fault curve: `curve()[m]` is the fault count with `m`
    /// page frames (index 0 = every access faults conceptually, reported
    /// as faults at 0 frames = all accesses beyond distance 0).
    ///
    /// One suffix-sum pass (the first [`StackSim::faults_at`] call
    /// builds the cache) plus an indexed lookup per point.
    pub fn curve(&self) -> FaultCurve {
        let max = self.hist.len() as u64;
        let points = (0..=max).map(|m| (m, self.faults_at(m))).collect();
        FaultCurve { page_size: self.page_size, accesses: self.accesses, points }
    }
}

impl AccessSink for StackSim {
    fn record(&mut self, r: MemRef) {
        self.access_addr(r.addr, r.size);
    }

    /// Run fast path: the reference's page span is decomposed once per
    /// run. After the first occurrence, the span's pages occupy the top
    /// `span` stack positions (most recent last), so each page touched
    /// by a repeat sits at exactly depth `span` and rotates back to the
    /// top — every one of the repeat's `span` page accesses has stack
    /// distance exactly `span`, and the stack's top returns to where the
    /// first occurrence left it. The repeats therefore collapse to
    /// histogram arithmetic with no per-page stack work, for *any* span:
    /// `span == 1` reduces to the historical stack-distance-1 case.
    ///
    /// The internal bookkeeping (MRU segment, Fenwick slots) is left at
    /// the first occurrence's state rather than the post-repeat state,
    /// but the two represent the same logical LRU stack, and every
    /// output — `hist`, `cold`, `accesses`, the page population —
    /// derives only from state the fast path advances exactly.
    fn record_runs(&mut self, runs: &[RefRun]) {
        for run in runs {
            self.access_addr(run.r.addr, run.r.size);
            if run.count > 1 {
                let extra = u64::from(run.count - 1);
                let span = run.r.block_span(self.page_size);
                let d = span as usize;
                if self.hist.len() <= d {
                    // The slow path's repeats would record distance
                    // `span` and grow the histogram identically.
                    self.hist.resize(d + 1, 0);
                }
                self.hist[d] += span * extra;
                self.accesses += span * extra;
                self.fastpath_refs += extra;
            }
        }
    }
}

/// Fault counts as a function of memory size, extracted from a
/// [`StackSim`] in one pass.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultCurve {
    /// Page size the curve was computed at.
    pub page_size: u64,
    /// Total accesses, for converting counts to rates.
    pub accesses: u64,
    /// `(page_frames, faults)` points for every frame count up to the
    /// deepest observed stack distance.
    pub points: Vec<(u64, u64)>,
}

impl FaultCurve {
    /// Fault count with `frames` page frames (saturates at the curve's
    /// flat tail: cold faults only).
    pub fn faults(&self, frames: u64) -> u64 {
        match self.points.get(frames as usize) {
            Some(&(_, f)) => f,
            None => self.points.last().map(|&(_, f)| f).unwrap_or(0),
        }
    }

    /// Fault *rate* (faults per access) with memory of `bytes`.
    pub fn rate_at_bytes(&self, bytes: u64) -> f64 {
        if self.accesses == 0 {
            return 0.0;
        }
        self.faults(bytes / self.page_size) as f64 / self.accesses as f64
    }

    /// The number of page frames needed to suffer cold faults only.
    pub fn working_set_frames(&self) -> u64 {
        let floor = self.points.last().map(|&(_, f)| f).unwrap_or(0);
        self.points.iter().find(|&&(_, f)| f == floor).map(|&(m, _)| m).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_scan_is_all_cold() {
        let mut s = StackSim::new(4096);
        for i in 0..100u64 {
            s.access_page(i);
        }
        assert_eq!(s.faults_at(1), 100);
        assert_eq!(s.faults_at(1000), 100);
        assert_eq!(s.distinct_pages(), 100);
    }

    #[test]
    fn cyclic_scan_thrashes_small_memory() {
        let mut s = StackSim::new(4096);
        for _ in 0..10 {
            for i in 0..4u64 {
                s.access_page(i);
            }
        }
        // 4-page cycle: distance is always 4 after warmup.
        assert_eq!(s.faults_at(4), 4, "fits: only cold faults");
        assert_eq!(s.faults_at(3), 40, "LRU thrashes a cyclic scan");
    }

    #[test]
    fn repeated_access_is_distance_one() {
        let mut s = StackSim::new(4096);
        for _ in 0..5 {
            s.access_page(7);
        }
        assert_eq!(s.faults_at(1), 1);
        assert_eq!(s.accesses(), 5);
    }

    #[test]
    fn lru_inclusion_faults_never_increase_with_memory() {
        let mut s = StackSim::new(4096);
        // Pseudo-random page stream.
        let mut x = 12345u64;
        for _ in 0..5000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            s.access_page(x % 50);
        }
        let curve = s.curve();
        for w in curve.points.windows(2) {
            assert!(w[0].1 >= w[1].1, "faults increased with more memory");
        }
    }

    #[test]
    fn stack_distance_matches_naive_lru() {
        // Cross-check against a brute-force LRU stack.
        let mut s = StackSim::new(4096);
        let mut stack: Vec<u64> = Vec::new();
        let mut hist: Vec<u64> = vec![0; 64];
        let mut cold = 0u64;
        let mut x = 999u64;
        let mut pages = Vec::new();
        for _ in 0..2000 {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            pages.push(x % 23);
        }
        for &p in &pages {
            s.access_page(p);
            match stack.iter().position(|&q| q == p) {
                Some(pos) => {
                    hist[pos + 1] += 1;
                    stack.remove(pos);
                }
                None => cold += 1,
            }
            stack.insert(0, p);
        }
        for m in 0..30u64 {
            let naive: u64 = cold
                + hist
                    .iter()
                    .enumerate()
                    .skip(1)
                    .filter(|&(d, _)| d as u64 > m)
                    .map(|(_, &c)| c)
                    .sum::<u64>();
            assert_eq!(s.faults_at(m), naive, "mismatch at memory {m}");
        }
    }

    #[test]
    fn curve_matches_pointwise_faults_at() {
        // The suffix-sum curve must agree with the direct histogram scan
        // at every memory size.
        let mut s = StackSim::new(4096);
        let mut x = 77u64;
        for _ in 0..8000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            s.access_page(x % 200);
        }
        let curve = s.curve();
        for &(m, f) in &curve.points {
            assert_eq!(f, s.faults_at(m), "curve disagrees at {m} frames");
        }
        assert_eq!(curve.points.len(), s.curve().points.len());
    }

    #[test]
    fn compaction_preserves_distances() {
        // Enough accesses to force several compactions (tree cap 1024).
        let mut s = StackSim::new(4096);
        for round in 0..200u64 {
            for i in 0..16u64 {
                s.access_page(i);
                let _ = round;
            }
        }
        assert_eq!(s.faults_at(16), 16);
        assert_eq!(s.faults_at(15), 16 + 199 * 16);
    }

    #[test]
    fn multi_page_refs_touch_every_page() {
        let mut s = StackSim::new(4096);
        s.access_addr(Address::new(4000), 8192);
        assert_eq!(s.distinct_pages(), 3);
    }

    #[test]
    fn curve_rates_and_working_set() {
        let mut s = StackSim::new(4096);
        for _ in 0..100 {
            for i in 0..8u64 {
                s.access_page(i);
            }
        }
        let curve = s.curve();
        assert_eq!(curve.working_set_frames(), 8);
        assert!(curve.rate_at_bytes(8 * 4096) < 0.02);
        assert!((curve.rate_at_bytes(4 * 4096) - 1.0).abs() < 0.02);
    }

    #[test]
    fn sink_impl_decomposes_refs() {
        use sim_mem::AccessSink;
        let mut s = StackSim::paper();
        s.record(MemRef::app_write(Address::new(0), 4096 * 2));
        assert_eq!(s.distinct_pages(), 2);
    }

    /// The pre-MRU stack simulator, ported verbatim (its only shortcut
    /// was a repeat of the immediately preceding page), as the reference
    /// the MRU fast path is equivalence-tested against.
    struct ReferenceSim {
        page_size: u64,
        page_shift: u32,
        last: HashMap<u64, usize>,
        tree: Fenwick,
        now: usize,
        hist: Vec<u64>,
        cold: u64,
        accesses: u64,
        last_page: Option<u64>,
    }

    impl ReferenceSim {
        fn new(page_size: u64) -> Self {
            ReferenceSim {
                page_size,
                page_shift: page_size.trailing_zeros(),
                last: HashMap::new(),
                tree: Fenwick::with_capacity(1024),
                now: 1,
                hist: vec![0; 2],
                cold: 0,
                accesses: 0,
                last_page: None,
            }
        }

        fn access_addr(&mut self, addr: Address, size: u32) {
            let first = addr.raw() >> self.page_shift;
            let last = (addr.raw() + u64::from(size.max(1)) - 1) >> self.page_shift;
            for page in first..=last {
                self.access_page(page);
            }
        }

        fn access_page(&mut self, page: u64) {
            self.accesses += 1;
            if self.last_page == Some(page) {
                self.hist[1] += 1;
                return;
            }
            self.last_page = Some(page);
            if self.now > self.tree.len() {
                self.compact();
            }
            let slot = self.now;
            self.now += 1;
            match self.last.insert(page, slot) {
                None => {
                    self.cold += 1;
                    self.tree.add(slot, 1);
                }
                Some(prev) => {
                    let d = (self.tree.range(prev + 1, slot - 1) + 1) as usize;
                    if self.hist.len() <= d {
                        self.hist.resize(d + 1, 0);
                    }
                    self.hist[d] += 1;
                    self.tree.add(prev, -1);
                    self.tree.add(slot, 1);
                }
            }
        }

        fn compact(&mut self) {
            let mut entries: Vec<(u64, usize)> = self.last.iter().map(|(&p, &t)| (p, t)).collect();
            entries.sort_by_key(|&(_, t)| t);
            let n = entries.len().max(1);
            self.tree = Fenwick::with_capacity((n * 2).max(1024));
            for (rank, (page, _)) in entries.into_iter().enumerate() {
                self.last.insert(page, rank + 1);
                self.tree.add(rank + 1, 1);
            }
            self.now = n + 1;
        }

        fn record_runs(&mut self, runs: &[RefRun]) {
            for run in runs {
                self.access_addr(run.r.addr, run.r.size);
                if run.count > 1 {
                    if run.r.single_block(self.page_size) {
                        let extra = u64::from(run.count - 1);
                        self.accesses += extra;
                        self.hist[1] += extra;
                    } else {
                        for _ in 1..run.count {
                            self.access_addr(run.r.addr, run.r.size);
                        }
                    }
                }
            }
        }

        /// The reference's fault curve, built exactly as
        /// [`StackSim::curve`] builds its own (same index range, same
        /// histogram-length-dependent point count).
        fn curve(&self) -> FaultCurve {
            let faults_at = |m: u64| {
                self.cold
                    + self
                        .hist
                        .iter()
                        .enumerate()
                        .skip(1)
                        .filter(|&(d, _)| d as u64 > m)
                        .map(|(_, &c)| c)
                        .sum::<u64>()
            };
            let max = self.hist.len() as u64;
            let points = (0..=max).map(|m| (m, faults_at(m))).collect();
            FaultCurve { page_size: self.page_size, accesses: self.accesses, points }
        }
    }

    /// A skewed page-reference stream: mostly a few hot pages (exercising
    /// MRU hits at every depth), salted with cold sweeps (evictions),
    /// revisits of mid-aged pages (slow-path hits over stale state), and
    /// multi-page references.
    fn skewed_refs(n: usize, seed: u64) -> Vec<MemRef> {
        let mut x = seed;
        let mut step = move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            x
        };
        let mut refs = Vec::with_capacity(n);
        for _ in 0..n {
            let r = step();
            let page = match r % 100 {
                0..=59 => r % 4,           // hot: top of stack
                60..=84 => 10 + r % 12,    // warm: straddles MRU_DEPTH
                85..=94 => 100 + r % 400,  // cool: mostly evicted
                _ => 10_000 + r % 100_000, // cold sweep
            };
            let size = match r % 17 {
                0 => 4096 * 2,
                1 => 5000,
                _ => 4,
            };
            refs.push(MemRef::app_read(Address::new(page * 4096 + (r % 7) * 4), size as u32));
        }
        refs
    }

    #[test]
    fn mru_fast_path_is_bit_identical_to_the_reference() {
        for seed in [1u64, 42, 977, 31337] {
            let refs = skewed_refs(20_000, seed);
            let mut fast = StackSim::paper();
            let mut reference = ReferenceSim::new(PAGE_SIZE);
            for &r in &refs {
                fast.access_addr(r.addr, r.size);
                reference.access_addr(r.addr, r.size);
            }
            assert_eq!(fast.accesses(), reference.accesses, "seed {seed}");
            assert_eq!(fast.distinct_pages(), reference.last.len() as u64, "seed {seed}");
            assert_eq!(fast.curve(), reference.curve(), "seed {seed}");
        }
    }

    #[test]
    fn mru_fast_path_is_bit_identical_under_run_delivery() {
        use sim_mem::AccessSink;
        for seed in [7u64, 555] {
            // Chop the stream into runs with repeat counts, including
            // repeated multi-page references (which bypass the run fast
            // path) and repeated single-page ones (which use it).
            let refs = skewed_refs(6_000, seed);
            let mut x = seed ^ 0xabcdef;
            let runs: Vec<RefRun> = refs
                .iter()
                .map(|&r| {
                    x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                    RefRun { r, count: 1 + (x % 9) as u32 }
                })
                .collect();
            let mut fast = StackSim::paper();
            let mut reference = ReferenceSim::new(PAGE_SIZE);
            // Deliver in uneven slices to move the run boundaries around.
            let mut i = 0;
            let mut chunk = 1;
            while i < runs.len() {
                let end = (i + chunk).min(runs.len());
                fast.record_runs(&runs[i..end]);
                reference.record_runs(&runs[i..end]);
                i = end;
                chunk = chunk % 37 + 1;
            }
            assert_eq!(fast.accesses(), reference.accesses, "seed {seed}");
            assert_eq!(fast.curve(), reference.curve(), "seed {seed}");
        }
    }
}
