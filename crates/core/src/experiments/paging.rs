//! Figures 2 and 3: page-fault rate as a function of memory size.
//!
//! The paper plots, per allocator, faults-per-reference (log scale)
//! against physical memory, for GhostScript (Figure 2) and ptc (Figure
//! 3). Two properties matter: where each curve ends (the allocator's
//! total space requirement) and its slope (how gracefully the allocator
//! degrades when memory is restricted). The stack-distance simulator
//! yields the whole curve from one pass.

use serde::{Deserialize, Serialize};

use crate::report::TextTable;
use crate::Matrix;

/// The fault curve of one allocator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PagingSeries {
    /// Allocator label.
    pub allocator: String,
    /// Peak memory the allocator requested (bytes): the curve's end.
    pub max_heap_bytes: u64,
    /// `(memory_kbytes, faults per million references)` samples.
    pub points: Vec<(u64, f64)>,
}

impl PagingSeries {
    /// Fault rate (per million refs) at the largest sampled memory size
    /// that is at most `kbytes`.
    pub fn rate_at(&self, kbytes: u64) -> Option<f64> {
        self.points.iter().rev().find(|&&(kb, _)| kb <= kbytes).map(|&(_, r)| r)
    }
}

/// One paging figure (Figure 2 or 3, depending on the program).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PagingFigure {
    /// Program label.
    pub program: String,
    /// One series per allocator.
    pub series: Vec<PagingSeries>,
}

impl PagingFigure {
    /// Renders the figure as a table, one row per sampled memory size.
    pub fn to_text(&self) -> String {
        let mut headers = vec!["memory".to_string()];
        headers.extend(self.series.iter().map(|s| s.allocator.clone()));
        let mut t = TextTable::new(headers);
        // Use the union of sampled sizes from the longest series.
        let samples: Vec<u64> = self
            .series
            .iter()
            .max_by_key(|s| s.points.len())
            .map(|s| s.points.iter().map(|&(kb, _)| kb).collect())
            .unwrap_or_default();
        for kb in samples {
            let mut cells = vec![format!("{kb}K")];
            for s in &self.series {
                cells.push(match s.rate_at(kb) {
                    Some(r) => format!("{r:.1}"),
                    None => "-".to_string(),
                });
            }
            t.row(cells);
        }
        let mut out = format!(
            "Page fault rate for {} (faults per million references vs. memory size)\n{t}",
            self.program
        );
        out.push_str("max heap: ");
        for s in &self.series {
            out.push_str(&format!("{}={}K  ", s.allocator, s.max_heap_bytes / 1024));
        }
        out.push('\n');
        out
    }
}

impl PagingFigure {
    /// Renders the figure as a terminal chart (log-scale fault rate vs.
    /// memory size), mirroring the paper's presentation.
    pub fn to_chart(&self) -> String {
        let mut chart = crate::chart::AsciiChart::new(
            format!("Page fault rate for {} (faults/M refs vs. memory KB)", self.program),
            64,
            20,
        )
        .log_y();
        for s in &self.series {
            chart.series(
                s.allocator.clone(),
                s.points.iter().map(|&(kb, r)| (kb as f64, r)).collect(),
            );
        }
        chart.render()
    }
}

/// Number of memory-size samples per curve.
const SAMPLES: u64 = 24;

/// Extracts the paging figure for one program from the matrix.
pub fn paging_figure(matrix: &Matrix, program: &str) -> PagingFigure {
    let mut series = Vec::new();
    for run in matrix.runs.iter().filter(|r| r.program == program) {
        let Some(curve) = &run.fault_curve else { continue };
        let max_frames = run.heap_high_water.div_ceil(curve.page_size).max(1);
        let step = max_frames.div_ceil(SAMPLES).max(1);
        let mut points = Vec::new();
        let mut frames = step;
        while frames <= max_frames + step {
            let faults = curve.faults(frames);
            let rate = faults as f64 / curve.accesses.max(1) as f64 * 1e6;
            points.push((frames * curve.page_size / 1024, rate));
            frames += step;
        }
        series.push(PagingSeries {
            allocator: run.allocator.clone(),
            max_heap_bytes: run.heap_high_water,
            points,
        });
    }
    PagingFigure { program: program.to_string(), series }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AllocChoice, Experiment, Matrix, SimOptions};
    use allocators::AllocatorKind;
    use workloads::{Program, Scale};

    fn run(kind: AllocatorKind) -> crate::RunResult {
        Experiment::new(Program::Ptc, AllocChoice::Paper(kind))
            .options(SimOptions {
                cache_configs: vec![],
                paging: true,
                scale: Scale(0.02),
                ..SimOptions::default()
            })
            .run()
            .unwrap()
    }

    #[test]
    fn curves_decrease_with_memory_and_end_at_max_heap() {
        let m = Matrix { runs: vec![run(AllocatorKind::Bsd), run(AllocatorKind::FirstFit)] };
        let fig = paging_figure(&m, "ptc");
        assert_eq!(fig.series.len(), 2);
        for s in &fig.series {
            assert!(!s.points.is_empty());
            for w in s.points.windows(2) {
                assert!(w[0].1 >= w[1].1 - 1e-9, "{}: fault rate increased", s.allocator);
            }
            let last_kb = s.points.last().unwrap().0;
            assert!(last_kb * 1024 >= s.max_heap_bytes, "curve covers the heap");
        }
        assert!(fig.to_text().contains("ptc"));
    }
}
