//! Figure 1: percent of execution time in `malloc` and `free`.
//!
//! The paper counts instructions (assuming no cache-miss penalty) and
//! plots, per application and allocator, the fraction of all instructions
//! spent inside the storage allocator. The headline: the choice of
//! allocator moves this from a few percent (BSD, QuickFit) to ≈30%
//! (FirstFit, GNU LOCAL on some programs).

use serde::{Deserialize, Serialize};
use sim_mem::Phase;

use crate::report::TextTable;
use crate::Matrix;

/// One (program, allocator) cell of Figure 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig1Row {
    /// Program label.
    pub program: String,
    /// Allocator label.
    pub allocator: String,
    /// Fraction of instructions inside `malloc`.
    pub malloc_fraction: f64,
    /// Fraction of instructions inside `free`.
    pub free_fraction: f64,
}

impl Fig1Row {
    /// Combined allocator fraction (the bar height in the paper).
    pub fn total_fraction(&self) -> f64 {
        self.malloc_fraction + self.free_fraction
    }
}

/// The full figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig1 {
    /// All cells, program-major in matrix order.
    pub rows: Vec<Fig1Row>,
}

impl Fig1 {
    /// Renders the figure as a table of percentages.
    pub fn to_text(&self) -> String {
        let mut t = TextTable::new(["program", "allocator", "malloc", "free", "total"]);
        for r in &self.rows {
            t.row([
                r.program.clone(),
                r.allocator.clone(),
                format!("{:.2}%", r.malloc_fraction * 100.0),
                format!("{:.2}%", r.free_fraction * 100.0),
                format!("{:.2}%", r.total_fraction() * 100.0),
            ]);
        }
        format!("Figure 1: time in malloc/free (% of instructions)\n{t}")
    }
}

/// Computes Figure 1 from a matrix of runs.
pub fn fig1(matrix: &Matrix) -> Fig1 {
    let rows = matrix
        .runs
        .iter()
        .map(|r| {
            let total = r.instrs.total().max(1) as f64;
            Fig1Row {
                program: r.program.clone(),
                allocator: r.allocator.clone(),
                malloc_fraction: r.instrs.phase_total(Phase::Malloc) as f64 / total,
                free_fraction: r.instrs.phase_total(Phase::Free) as f64 / total,
            }
        })
        .collect();
    Fig1 { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AllocChoice, SimOptions};
    use allocators::AllocatorKind;
    use workloads::{Program, Scale};

    #[test]
    fn fractions_are_sane_and_ordered() {
        let opts = SimOptions {
            cache_configs: vec![],
            paging: false,
            scale: Scale(0.002),
            ..SimOptions::default()
        };
        let m = crate::standard_matrix(
            &[Program::Espresso],
            &[AllocChoice::Paper(AllocatorKind::FirstFit), AllocChoice::Paper(AllocatorKind::Bsd)],
            &opts,
        )
        .unwrap();
        let fig = fig1(&m);
        assert_eq!(fig.rows.len(), 2);
        for r in &fig.rows {
            assert!(r.total_fraction() > 0.0 && r.total_fraction() < 0.9);
        }
        let ff = &fig.rows[0];
        let bsd = &fig.rows[1];
        assert!(ff.total_fraction() > bsd.total_fraction());
        assert!(fig.to_text().contains("Figure 1"));
    }
}
