//! Tables 1–3: the test programs and their statistics.

use serde::{Deserialize, Serialize};
use workloads::Program;

use crate::report::TextTable;
use crate::Matrix;

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Program label.
    pub program: String,
    /// The paper's description.
    pub description: String,
}

/// Table 1: general information about the test programs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1 {
    /// One row per program.
    pub rows: Vec<Table1Row>,
}

impl Table1 {
    /// Renders the table.
    pub fn to_text(&self) -> String {
        let mut t = TextTable::new(["program", "description"]);
        for r in &self.rows {
            t.row([r.program.clone(), r.description.clone()]);
        }
        format!("Table 1: test programs\n{t}")
    }
}

/// Produces Table 1 (static: the program inventory).
pub fn table1() -> Table1 {
    let rows = Program::FIVE
        .iter()
        .map(|p| Table1Row {
            program: p.label().to_string(),
            description: p.description().to_string(),
        })
        .collect();
    Table1 { rows }
}

/// One row of Table 2/3: paper values beside measured values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2Row {
    /// Program label.
    pub program: String,
    /// Scale the measured run used.
    pub scale: f64,
    /// Measured total instructions.
    pub instrs: u64,
    /// Measured word-granular data references.
    pub data_refs: u64,
    /// Measured peak heap bytes.
    pub heap_bytes: u64,
    /// Measured objects allocated.
    pub allocated: u64,
    /// Measured objects freed.
    pub freed: u64,
    /// Paper: total instructions (millions, full scale).
    pub paper_instr_millions: f64,
    /// Paper: data references (millions, full scale).
    pub paper_refs_millions: f64,
    /// Paper: max heap (kilobytes).
    pub paper_heap_kbytes: u64,
    /// Paper: objects allocated (thousands).
    pub paper_allocated_thousands: f64,
    /// Paper: objects freed (thousands).
    pub paper_freed_thousands: f64,
}

impl Table2Row {
    /// Measured / paper ratio for a per-run count, adjusting the paper
    /// value by the run's scale (counts shrink with scale; the heap does
    /// not — compare that one directly).
    pub fn alloc_ratio_vs_scaled_paper(&self) -> f64 {
        let expected = self.paper_allocated_thousands * 1e3 * self.scale;
        self.allocated as f64 / expected.max(1.0)
    }
}

/// Table 2 (five programs) or Table 3 (GhostScript input sets),
/// FIRSTFIT baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2 {
    /// Caption label ("Table 2" or "Table 3").
    pub caption: String,
    /// One row per program.
    pub rows: Vec<Table2Row>,
}

impl Table2 {
    /// Renders the table, measured beside scale-adjusted paper values.
    pub fn to_text(&self) -> String {
        let mut t = TextTable::new([
            "program",
            "instr (M)",
            "refs (M)",
            "heap (K)",
            "alloc'd (k)",
            "freed (k)",
            "paper heap (K)",
            "paper alloc'd (k, scaled)",
        ]);
        for r in &self.rows {
            t.row([
                r.program.clone(),
                format!("{:.1}", r.instrs as f64 / 1e6),
                format!("{:.1}", r.data_refs as f64 / 1e6),
                format!("{}", r.heap_bytes / 1024),
                format!("{:.1}", r.allocated as f64 / 1e3),
                format!("{:.1}", r.freed as f64 / 1e3),
                format!("{}", r.paper_heap_kbytes),
                format!("{:.1}", r.paper_allocated_thousands * r.scale),
            ]);
        }
        format!("{}: program statistics under FirstFit (measured vs. paper)\n{t}", self.caption)
    }
}

fn stats_table(matrix: &Matrix, programs: &[Program], caption: &str) -> Table2 {
    let rows = programs
        .iter()
        .filter_map(|p| {
            let run = matrix.get(p.label(), "FirstFit")?;
            let paper = p.paper_stats();
            Some(Table2Row {
                program: p.label().to_string(),
                scale: run.scale,
                instrs: run.instrs.total(),
                data_refs: run.data_refs(),
                heap_bytes: run.heap_high_water,
                allocated: run.alloc_stats.mallocs,
                freed: run.alloc_stats.frees,
                paper_instr_millions: paper.instr_millions,
                paper_refs_millions: paper.refs_millions,
                paper_heap_kbytes: paper.heap_kbytes,
                paper_allocated_thousands: paper.allocated_thousands,
                paper_freed_thousands: paper.freed_thousands,
            })
        })
        .collect();
    Table2 { caption: caption.to_string(), rows }
}

/// Produces Table 2 from FirstFit runs of the five programs, or Table 3
/// when given the GhostScript input sets.
pub fn table2(matrix: &Matrix, programs: &[Program]) -> Table2 {
    let caption = if programs == Program::GS_INPUTS { "Table 3" } else { "Table 2" };
    stats_table(matrix, programs, caption)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AllocChoice, Experiment, SimOptions};
    use allocators::AllocatorKind;
    use workloads::Scale;

    #[test]
    fn table1_lists_the_five_programs() {
        let t = table1();
        assert_eq!(t.rows.len(), 5);
        assert!(t.to_text().contains("espresso"));
        assert!(t.to_text().contains("Pascal-to-C"));
    }

    #[test]
    fn table2_compares_measured_with_paper() {
        let scale = 0.01;
        let run = Experiment::new(Program::Make, AllocChoice::Paper(AllocatorKind::FirstFit))
            .options(SimOptions {
                cache_configs: vec![],
                paging: false,
                scale: Scale(scale),
                ..SimOptions::default()
            })
            .run()
            .unwrap();
        let m = Matrix { runs: vec![run] };
        let t = table2(&m, &[Program::Make]);
        assert_eq!(t.caption, "Table 2");
        assert_eq!(t.rows.len(), 1);
        let r = &t.rows[0];
        // Allocation counts should track the scaled paper value closely.
        let ratio = r.alloc_ratio_vs_scaled_paper();
        assert!((0.9..1.1).contains(&ratio), "alloc ratio {ratio}");
        assert!(r.freed <= r.allocated);
        assert!(t.to_text().contains("make"));
    }
}
