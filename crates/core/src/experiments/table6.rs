//! Table 6: the effect of boundary tags on the GNU LOCAL allocator.
//!
//! The paper re-ran GNU LOCAL with eight extra bytes per object, touched
//! as boundary tags would be, to isolate the cache pollution tags cause.
//! Finding: tags cost 0.1%–1.1% of execution time with a 64K cache —
//! real but small, so "boundary-tag elimination has mixed performance
//! advantages ... and is not warranted if the elimination increases the
//! cost of allocation and deallocation significantly".

use cache_sim::CacheConfig;
use serde::{Deserialize, Serialize};

use crate::model::MISS_PENALTY_CYCLES;
use crate::report::TextTable;
use crate::Matrix;

/// One program column of Table 6.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table6Row {
    /// Program label.
    pub program: String,
    /// Miss rate with emulated tags.
    pub tagged_miss_rate: f64,
    /// Miss penalty as a fraction of execution time, with tags.
    pub tagged_miss_fraction: f64,
    /// Miss rate without tags (stock GNU LOCAL).
    pub plain_miss_rate: f64,
    /// Miss penalty fraction without tags.
    pub plain_miss_fraction: f64,
}

impl Table6Row {
    /// The paper's bottom row: execution-time increase due to the cache
    /// misses boundary tags cause (percentage points of the untagged
    /// execution time).
    pub fn penalty_due_to_tags(&self) -> f64 {
        self.tagged_miss_fraction - self.plain_miss_fraction
    }
}

/// Table 6.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table6 {
    /// The simulated cache (64K direct-mapped in the paper).
    pub cache: CacheConfig,
    /// One row per program.
    pub rows: Vec<Table6Row>,
}

impl Table6 {
    /// Renders the table.
    pub fn to_text(&self) -> String {
        let mut t = TextTable::new([
            "program",
            "miss rate (w/tags)",
            "miss penalty % (w/tags)",
            "miss rate (no tags)",
            "miss penalty % (no tags)",
            "penalty due to tags",
        ]);
        for r in &self.rows {
            t.row([
                r.program.clone(),
                format!("{:.3}%", r.tagged_miss_rate * 100.0),
                format!("{:.2}%", r.tagged_miss_fraction * 100.0),
                format!("{:.3}%", r.plain_miss_rate * 100.0),
                format!("{:.2}%", r.plain_miss_fraction * 100.0),
                format!("{:.2}%", r.penalty_due_to_tags() * 100.0),
            ]);
        }
        format!("Table 6: effect of boundary tags on GNU LOCAL ({})\n{t}", self.cache)
    }
}

/// Computes Table 6 from a matrix containing both "GNU local" and
/// "GNU local (w/tags)" runs.
pub fn table6(matrix: &Matrix, cache: CacheConfig) -> Table6 {
    let mut rows = Vec::new();
    for program in matrix.programs() {
        let Some(plain) = matrix.get(program, "GNU local") else { continue };
        let Some(tagged) = matrix.get(program, "GNU local (w/tags)") else { continue };
        let (Some(ps), Some(ts)) = (plain.cache_stats(cache), tagged.cache_stats(cache)) else {
            continue;
        };
        let pf = plain
            .time_estimate(cache, MISS_PENALTY_CYCLES)
            .map(|e| e.miss_fraction())
            .unwrap_or(0.0);
        let tf = tagged
            .time_estimate(cache, MISS_PENALTY_CYCLES)
            .map(|e| e.miss_fraction())
            .unwrap_or(0.0);
        rows.push(Table6Row {
            program: program.to_string(),
            tagged_miss_rate: ts.miss_rate(),
            tagged_miss_fraction: tf,
            plain_miss_rate: ps.miss_rate(),
            plain_miss_fraction: pf,
        });
    }
    Table6 { cache, rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{standard_matrix, AllocChoice, SimOptions};
    use allocators::AllocatorKind;
    use workloads::{Program, Scale};

    #[test]
    fn tags_increase_miss_penalty() {
        let cache = CacheConfig::direct_mapped(64 * 1024, 32);
        let opts = SimOptions {
            cache_configs: vec![cache],
            paging: false,
            scale: Scale(0.01),
            ..SimOptions::default()
        };
        let m = standard_matrix(
            &[Program::Espresso],
            &[AllocChoice::Paper(AllocatorKind::GnuLocal), AllocChoice::GnuLocalTagged],
            &opts,
        )
        .unwrap();
        let t = table6(&m, cache);
        assert_eq!(t.rows.len(), 1);
        let r = &t.rows[0];
        assert!(r.penalty_due_to_tags() > -0.002, "tags should not reduce the miss penalty: {r:?}");
        assert!(r.penalty_due_to_tags() < 0.05, "tag effect should be small: {r:?}");
        assert!(t.to_text().contains("GNU LOCAL"));
    }
}
