//! Figures 6–8: data-cache miss rate as a function of cache size.
//!
//! For each GhostScript input set, the paper plots the miss rate of all
//! five allocators across direct-mapped caches from 16K to 256K. The
//! shape to reproduce: FIRSTFIT worst at every size, GNU G++ second
//! worst, the three segregated allocators clustered below, and all
//! curves converging as the cache approaches the working-set size.

use serde::{Deserialize, Serialize};

use crate::report::TextTable;
use crate::Matrix;

/// One allocator's miss-rate curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MissCurveSeries {
    /// Allocator label.
    pub allocator: String,
    /// `(cache_kbytes, miss_rate)` samples, ascending by size.
    pub points: Vec<(u32, f64)>,
}

impl MissCurveSeries {
    /// Miss rate at an exact cache size, if simulated.
    pub fn rate_at(&self, kbytes: u32) -> Option<f64> {
        self.points.iter().find(|&&(kb, _)| kb == kbytes).map(|&(_, r)| r)
    }
}

/// Figure 6, 7, or 8, depending on the program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MissCurveFigure {
    /// Program label.
    pub program: String,
    /// One curve per allocator.
    pub series: Vec<MissCurveSeries>,
}

impl MissCurveFigure {
    /// Renders the figure as a size × allocator table of percentages.
    pub fn to_text(&self) -> String {
        let mut headers = vec!["cache".to_string()];
        headers.extend(self.series.iter().map(|s| s.allocator.clone()));
        let mut t = TextTable::new(headers);
        let sizes: Vec<u32> = self
            .series
            .first()
            .map(|s| s.points.iter().map(|&(kb, _)| kb).collect())
            .unwrap_or_default();
        for kb in sizes {
            let mut cells = vec![format!("{kb}K")];
            for s in &self.series {
                cells.push(match s.rate_at(kb) {
                    Some(r) => format!("{:.2}%", r * 100.0),
                    None => "-".to_string(),
                });
            }
            t.row(cells);
        }
        format!("Data cache miss rate for {} (direct-mapped, 32B blocks)\n{t}", self.program)
    }
}

impl MissCurveFigure {
    /// Renders the figure as a terminal chart (miss rate % vs. cache
    /// KB), mirroring the paper's presentation.
    pub fn to_chart(&self) -> String {
        let mut chart = crate::chart::AsciiChart::new(
            format!("Data cache miss rate for {} (% vs. cache KB)", self.program),
            64,
            16,
        );
        for s in &self.series {
            chart.series(
                s.allocator.clone(),
                s.points.iter().map(|&(kb, r)| (f64::from(kb), r * 100.0)).collect(),
            );
        }
        chart.render()
    }
}

/// Extracts the miss-rate curves for one program from the matrix.
pub fn miss_curves(matrix: &Matrix, program: &str) -> MissCurveFigure {
    let mut series = Vec::new();
    for run in matrix.runs.iter().filter(|r| r.program == program) {
        let mut points: Vec<(u32, f64)> =
            run.cache.iter().map(|(cfg, s)| (cfg.size / 1024, s.miss_rate())).collect();
        points.sort_by_key(|&(kb, _)| kb);
        series.push(MissCurveSeries { allocator: run.allocator.clone(), points });
    }
    MissCurveFigure { program: program.to_string(), series }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{standard_matrix, AllocChoice, SimOptions};
    use allocators::AllocatorKind;
    use cache_sim::CacheConfig;
    use workloads::{Program, Scale};

    #[test]
    fn curves_fall_with_cache_size() {
        let opts = SimOptions {
            cache_configs: CacheConfig::paper_sweep(),
            paging: false,
            scale: Scale(0.01),
            ..SimOptions::default()
        };
        let m = standard_matrix(
            &[Program::GsSmall],
            &[AllocChoice::Paper(AllocatorKind::FirstFit), AllocChoice::Paper(AllocatorKind::Bsd)],
            &opts,
        )
        .unwrap();
        let fig = miss_curves(&m, "GS-Small");
        assert_eq!(fig.series.len(), 2);
        for s in &fig.series {
            assert_eq!(s.points.len(), 5);
            assert_eq!(s.points.first().unwrap().0, 16);
            assert_eq!(s.points.last().unwrap().0, 256);
            for w in s.points.windows(2) {
                // Direct-mapped caches are not strictly monotone, but a
                // doubling should not *raise* the rate noticeably.
                assert!(w[1].1 <= w[0].1 * 1.1 + 1e-6, "{}: rate rose {w:?}", s.allocator);
            }
        }
        assert!(fig.to_text().contains("GS-Small"));
    }
}
