//! One function per table and figure of the paper's evaluation (§4).
//!
//! Each function consumes a [`crate::Matrix`] of runs and produces a
//! typed, serializable result with a `to_text()` rendering that mirrors
//! the paper's presentation. The per-experiment index in DESIGN.md maps
//! each to the bench target and repro subcommand that regenerates it.
//!
//! | Function | Paper artifact |
//! |---|---|
//! | [`fig1`] | Figure 1: % of time in malloc/free |
//! | [`paging_figure`] | Figures 2–3: page-fault rate vs. memory size |
//! | [`exec_time_figure`] | Figures 4–5: normalized execution time |
//! | [`miss_curves`] | Figures 6–8: miss rate vs. cache size |
//! | [`table1`] | Table 1: program descriptions |
//! | [`table2`] | Tables 2–3: program statistics, paper vs. measured |
//! | [`time_table`] | Tables 4–5: estimated time / miss time |
//! | [`table6`] | Table 6: boundary-tag effect on GNU LOCAL |
//! | [`conflict_analysis`] | Extension: three-C miss decomposition |
//! | [`victim_study`] | Extension: Jouppi victim cache |
//! | [`two_level_study`] | Extension: Mogul & Borg two-level hierarchy |
//! | [`future_work_table`] | Extension: §4.4 + §5.1 allocators head-to-head |

mod exec_time;
mod extensions;
mod fig1;
mod miss_curves;
mod paging;
mod table6;
mod tables;

pub use exec_time::{
    exec_time_figure, time_table, ExecTimeFigure, ExecTimeRow, TimeTable, TimeTableRow,
};
pub use extensions::{
    conflict_analysis, future_work_table, two_level_study, victim_study, ConflictAnalysis,
    ConflictRow, FutureWorkRow, FutureWorkTable, TwoLevelRow, TwoLevelStudy, VictimRow,
    VictimStudy,
};
pub use fig1::{fig1, Fig1, Fig1Row};
pub use miss_curves::{miss_curves, MissCurveFigure, MissCurveSeries};
pub use paging::{paging_figure, PagingFigure, PagingSeries};
pub use table6::{table6, Table6, Table6Row};
pub use tables::{table1, table2, Table1, Table1Row, Table2, Table2Row};
