//! Figures 4–5 and Tables 4–5: estimated execution time under the cache
//! model.
//!
//! Figures 4 and 5 normalize each (program, allocator) execution time to
//! the FIRSTFIT baseline of the same program: the shaded bar is the
//! instruction-only time, the overlay adds the cache-miss penalty (16K
//! cache in Figure 4, 64K in Figure 5, 25-cycle penalty in both).
//! Tables 4 and 5 print the same data as absolute "total time / miss
//! time" seconds.

use cache_sim::CacheConfig;
use serde::{Deserialize, Serialize};

use crate::model::{TimeEstimate, MISS_PENALTY_CYCLES};
use crate::report::TextTable;
use crate::Matrix;

/// One bar of Figure 4/5.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecTimeRow {
    /// Program label.
    pub program: String,
    /// Allocator label.
    pub allocator: String,
    /// Instruction-only time, normalized to the program's FIRSTFIT
    /// instruction-only time (the shaded bar).
    pub normalized_base: f64,
    /// Time including cache penalty, same normalization (the overlay).
    pub normalized_with_cache: f64,
}

/// Figure 4 or 5, depending on the cache configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecTimeFigure {
    /// The simulated cache.
    pub cache: CacheConfig,
    /// Miss penalty in cycles.
    pub penalty: u64,
    /// One row per (program, allocator).
    pub rows: Vec<ExecTimeRow>,
}

impl ExecTimeFigure {
    /// Renders the figure.
    pub fn to_text(&self) -> String {
        let mut t = TextTable::new(["program", "allocator", "base (norm)", "with cache (norm)"]);
        for r in &self.rows {
            t.row([
                r.program.clone(),
                r.allocator.clone(),
                format!("{:.3}", r.normalized_base),
                format!("{:.3}", r.normalized_with_cache),
            ]);
        }
        format!(
            "Normalized execution time ({}, {}-cycle miss penalty)\n{t}",
            self.cache, self.penalty
        )
    }
}

/// Computes Figure 4/5 for the given cache configuration. Runs lacking
/// that configuration are skipped; programs lacking a FirstFit baseline
/// are normalized to the program's first run instead.
pub fn exec_time_figure(matrix: &Matrix, cache: CacheConfig) -> ExecTimeFigure {
    let mut rows = Vec::new();
    for program in matrix.programs() {
        let baseline = matrix
            .get(program, "FirstFit")
            .or_else(|| matrix.runs.iter().find(|r| r.program == program))
            .map(|r| r.instrs.total().max(1) as f64)
            .unwrap_or(1.0);
        for run in matrix.runs.iter().filter(|r| r.program == program) {
            let Some(est) = run.time_estimate(cache, MISS_PENALTY_CYCLES) else { continue };
            rows.push(ExecTimeRow {
                program: run.program.clone(),
                allocator: run.allocator.clone(),
                normalized_base: run.instrs.total() as f64 / baseline,
                normalized_with_cache: est.cycles() as f64 / baseline,
            });
        }
    }
    ExecTimeFigure { cache, penalty: MISS_PENALTY_CYCLES, rows }
}

/// One row of Table 4/5.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeTableRow {
    /// Program label.
    pub program: String,
    /// Allocator label.
    pub allocator: String,
    /// Total estimated seconds (at the DECstation clock).
    pub total_seconds: f64,
    /// Seconds of that spent waiting on cache misses.
    pub miss_seconds: f64,
    /// The raw estimate, for further analysis.
    pub estimate: TimeEstimate,
}

/// Table 4 (16K cache) or Table 5 (64K cache).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeTable {
    /// The simulated cache.
    pub cache: CacheConfig,
    /// One row per (program, allocator).
    pub rows: Vec<TimeTableRow>,
}

impl TimeTable {
    /// Renders the table in the paper's "total / miss" format.
    pub fn to_text(&self) -> String {
        let mut t = TextTable::new(["program", "allocator", "total time (sec) / miss time (sec)"]);
        for r in &self.rows {
            t.row([
                r.program.clone(),
                r.allocator.clone(),
                format!("{:.2} / {:.2}", r.total_seconds, r.miss_seconds),
            ]);
        }
        format!(
            "Estimated execution time and cache-miss time ({})\n\
             (seconds at 25 MHz; workload scale shrinks absolute values relative to the paper)\n{t}",
            self.cache
        )
    }
}

/// Computes Table 4/5 for the given cache configuration.
pub fn time_table(matrix: &Matrix, cache: CacheConfig) -> TimeTable {
    let rows = matrix
        .runs
        .iter()
        .filter_map(|run| {
            let est = run.time_estimate(cache, MISS_PENALTY_CYCLES)?;
            Some(TimeTableRow {
                program: run.program.clone(),
                allocator: run.allocator.clone(),
                total_seconds: est.total_seconds(),
                miss_seconds: est.miss_seconds(),
                estimate: est,
            })
        })
        .collect();
    TimeTable { cache, rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::estimated_seconds;
    use crate::{standard_matrix, AllocChoice, SimOptions};
    use allocators::AllocatorKind;
    use workloads::{Program, Scale};

    fn small_matrix() -> Matrix {
        let opts = SimOptions {
            cache_configs: vec![CacheConfig::direct_mapped(16 * 1024, 32)],
            paging: false,
            scale: Scale(0.01),
            ..SimOptions::default()
        };
        standard_matrix(
            &[Program::Make],
            &[
                AllocChoice::Paper(AllocatorKind::FirstFit),
                AllocChoice::Paper(AllocatorKind::QuickFit),
            ],
            &opts,
        )
        .unwrap()
    }

    #[test]
    fn firstfit_is_the_unit_baseline() {
        let m = small_matrix();
        let cfg = CacheConfig::direct_mapped(16 * 1024, 32);
        let fig = exec_time_figure(&m, cfg);
        let ff = fig.rows.iter().find(|r| r.allocator == "FirstFit").unwrap();
        assert!((ff.normalized_base - 1.0).abs() < 1e-12);
        assert!(ff.normalized_with_cache >= ff.normalized_base);
        // QuickFit executes fewer instructions than FirstFit.
        let qf = fig.rows.iter().find(|r| r.allocator == "QuickFit").unwrap();
        assert!(qf.normalized_base < 1.0);
    }

    #[test]
    fn table_rows_decompose_time() {
        let m = small_matrix();
        let cfg = CacheConfig::direct_mapped(16 * 1024, 32);
        let table = time_table(&m, cfg);
        assert_eq!(table.rows.len(), 2);
        for r in &table.rows {
            assert!(r.total_seconds > r.miss_seconds);
            assert!((estimated_seconds(r.estimate.cycles()) - r.total_seconds).abs() < 1e-12);
        }
        assert!(table.to_text().contains("16K"));
    }

    #[test]
    fn missing_cache_config_yields_empty_rows() {
        let m = small_matrix();
        let other = CacheConfig::direct_mapped(128 * 1024, 32);
        assert!(time_table(&m, other).rows.is_empty());
        assert!(exec_time_figure(&m, other).rows.is_empty());
    }
}
