//! Extension experiments beyond the paper's evaluation, each anchored in
//! a work the paper cites or proposes:
//!
//! * [`conflict_analysis`] — three-C decomposition of each allocator's
//!   misses (Hill), quantifying §4.2's conflict-miss story;
//! * [`victim_study`] — does Jouppi's victim cache (reference [11])
//!   rescue the sequential-fit allocators?
//! * [`two_level_study`] — the Mogul & Borg (reference [19]) two-level
//!   hierarchy with a 200-cycle L2 miss penalty: does the allocator
//!   ranking survive a modern memory system?
//! * [`future_work_table`] — the synthesized (§4.4) and
//!   lifetime-predicting (§5.1) allocators measured head-to-head with
//!   the paper's five.

use cache_sim::{CacheConfig, L1_MISS_PENALTY, L2_MISS_PENALTY};
use serde::{Deserialize, Serialize};

use crate::report::TextTable;
use crate::Matrix;

/// One allocator's three-C decomposition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConflictRow {
    /// Program label.
    pub program: String,
    /// Allocator label.
    pub allocator: String,
    /// Compulsory misses.
    pub compulsory: u64,
    /// Capacity misses.
    pub capacity: u64,
    /// Conflict misses.
    pub conflict: u64,
    /// Conflict share of replacement misses.
    pub conflict_fraction: f64,
}

/// The conflict-analysis table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConflictAnalysis {
    /// Cache the decomposition ran against.
    pub cache: CacheConfig,
    /// One row per run that carried three-C data.
    pub rows: Vec<ConflictRow>,
}

impl ConflictAnalysis {
    /// Renders the table.
    pub fn to_text(&self) -> String {
        let mut t = TextTable::new([
            "program",
            "allocator",
            "compulsory",
            "capacity",
            "conflict",
            "conflict %",
        ]);
        for r in &self.rows {
            t.row([
                r.program.clone(),
                r.allocator.clone(),
                r.compulsory.to_string(),
                r.capacity.to_string(),
                r.conflict.to_string(),
                format!("{:.0}%", r.conflict_fraction * 100.0),
            ]);
        }
        format!("Extension: three-C miss decomposition ({})\n{t}", self.cache)
    }
}

/// Extracts the three-C table from runs that simulated it.
pub fn conflict_analysis(matrix: &Matrix, cache: CacheConfig) -> ConflictAnalysis {
    let rows = matrix
        .runs
        .iter()
        .filter_map(|run| {
            let c = run.three_c.as_ref()?;
            Some(ConflictRow {
                program: run.program.clone(),
                allocator: run.allocator.clone(),
                compulsory: c.compulsory,
                capacity: c.capacity,
                conflict: c.conflict,
                conflict_fraction: c.conflict_fraction(),
            })
        })
        .collect();
    ConflictAnalysis { cache, rows }
}

/// One allocator under a victim cache.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VictimRow {
    /// Program label.
    pub program: String,
    /// Allocator label.
    pub allocator: String,
    /// Plain direct-mapped miss rate.
    pub plain_miss_rate: f64,
    /// Effective miss rate with the victim buffer.
    pub victim_miss_rate: f64,
    /// Fraction of misses the buffer absorbed.
    pub rescue_rate: f64,
}

/// The victim-cache study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VictimStudy {
    /// Main cache geometry.
    pub cache: CacheConfig,
    /// Victim buffer entries.
    pub entries: usize,
    /// One row per run that carried victim data.
    pub rows: Vec<VictimRow>,
}

impl VictimStudy {
    /// Renders the table.
    pub fn to_text(&self) -> String {
        let mut t =
            TextTable::new(["program", "allocator", "plain miss", "with victim", "rescued"]);
        for r in &self.rows {
            t.row([
                r.program.clone(),
                r.allocator.clone(),
                format!("{:.2}%", r.plain_miss_rate * 100.0),
                format!("{:.2}%", r.victim_miss_rate * 100.0),
                format!("{:.0}%", r.rescue_rate * 100.0),
            ]);
        }
        format!("Extension: {}-entry victim cache on a {} (Jouppi)\n{t}", self.entries, self.cache)
    }
}

/// Extracts the victim study from runs that simulated it.
pub fn victim_study(matrix: &Matrix, cache: CacheConfig, entries: usize) -> VictimStudy {
    let rows = matrix
        .runs
        .iter()
        .filter_map(|run| {
            let v = run.victim.as_ref()?;
            Some(VictimRow {
                program: run.program.clone(),
                allocator: run.allocator.clone(),
                plain_miss_rate: run.miss_rate(cache)?,
                victim_miss_rate: v.miss_rate(),
                rescue_rate: v.rescue_rate(),
            })
        })
        .collect();
    VictimStudy { cache, entries, rows }
}

/// One allocator under the two-level hierarchy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TwoLevelRow {
    /// Program label.
    pub program: String,
    /// Allocator label.
    pub allocator: String,
    /// L1 miss rate.
    pub l1_miss_rate: f64,
    /// Global (to-memory) miss rate.
    pub global_miss_rate: f64,
    /// Estimated cycles with the flat 25-cycle model.
    pub flat_cycles: u64,
    /// Estimated cycles with the two-level (10/200) model.
    pub two_level_cycles: u64,
}

/// The two-level hierarchy study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TwoLevelStudy {
    /// One row per run that carried hierarchy data.
    pub rows: Vec<TwoLevelRow>,
}

impl TwoLevelStudy {
    /// Renders the table.
    pub fn to_text(&self) -> String {
        let mut t = TextTable::new([
            "program",
            "allocator",
            "L1 miss",
            "global miss",
            "flat-25 cycles (M)",
            "two-level cycles (M)",
        ]);
        for r in &self.rows {
            t.row([
                r.program.clone(),
                r.allocator.clone(),
                format!("{:.2}%", r.l1_miss_rate * 100.0),
                format!("{:.3}%", r.global_miss_rate * 100.0),
                format!("{:.1}", r.flat_cycles as f64 / 1e6),
                format!("{:.1}", r.two_level_cycles as f64 / 1e6),
            ]);
        }
        format!(
            "Extension: two-level hierarchy, {L1_MISS_PENALTY}-cycle L1 / {L2_MISS_PENALTY}-cycle L2 penalties (Mogul & Borg)\n{t}"
        )
    }
}

/// Extracts the two-level study from runs that simulated it.
pub fn two_level_study(matrix: &Matrix, flat_cache: CacheConfig) -> TwoLevelStudy {
    let rows = matrix
        .runs
        .iter()
        .filter_map(|run| {
            let tl = run.two_level.as_ref()?;
            let flat = run.time_estimate(flat_cache, crate::MISS_PENALTY_CYCLES)?;
            Some(TwoLevelRow {
                program: run.program.clone(),
                allocator: run.allocator.clone(),
                l1_miss_rate: tl.l1.miss_rate(),
                global_miss_rate: tl.global_miss_rate(),
                flat_cycles: flat.cycles(),
                two_level_cycles: run.instrs.total()
                    + tl.stall_cycles(L1_MISS_PENALTY, L2_MISS_PENALTY),
            })
        })
        .collect();
    TwoLevelStudy { rows }
}

/// The future-work comparison: Custom (§4.4) and Predictive (§5.1)
/// beside the paper's five.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FutureWorkTable {
    /// The cache used for miss rates and the time model.
    pub cache: CacheConfig,
    /// One row per (program, allocator).
    pub rows: Vec<FutureWorkRow>,
}

/// One row of the future-work comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FutureWorkRow {
    /// Program label.
    pub program: String,
    /// Allocator label.
    pub allocator: String,
    /// Peak heap bytes.
    pub heap_bytes: u64,
    /// Fraction of instructions in malloc/free.
    pub alloc_fraction: f64,
    /// Miss rate at the chosen cache.
    pub miss_rate: f64,
    /// Estimated total cycles.
    pub cycles: u64,
}

impl FutureWorkTable {
    /// Renders the table.
    pub fn to_text(&self) -> String {
        let mut t = TextTable::new([
            "program",
            "allocator",
            "heap KB",
            "in-alloc",
            "miss rate",
            "cycles (M)",
        ]);
        for r in &self.rows {
            t.row([
                r.program.clone(),
                r.allocator.clone(),
                (r.heap_bytes / 1024).to_string(),
                format!("{:.2}%", r.alloc_fraction * 100.0),
                format!("{:.2}%", r.miss_rate * 100.0),
                format!("{:.1}", r.cycles as f64 / 1e6),
            ]);
        }
        format!(
            "Extension: synthesized (§4.4) and lifetime-predicting (§5.1) allocators ({})\n{t}",
            self.cache
        )
    }
}

/// Builds the future-work table from any matrix.
pub fn future_work_table(matrix: &Matrix, cache: CacheConfig) -> FutureWorkTable {
    let rows = matrix
        .runs
        .iter()
        .filter_map(|run| {
            let est = run.time_estimate(cache, crate::MISS_PENALTY_CYCLES)?;
            Some(FutureWorkRow {
                program: run.program.clone(),
                allocator: run.allocator.clone(),
                heap_bytes: run.heap_high_water,
                alloc_fraction: run.alloc_fraction(),
                miss_rate: run.miss_rate(cache)?,
                cycles: est.cycles(),
            })
        })
        .collect();
    FutureWorkTable { cache, rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_parallel, AllocChoice, Experiment, SimOptions};
    use allocators::AllocatorKind;
    use workloads::{Program, Scale};

    fn ext_matrix() -> Matrix {
        let cfg = CacheConfig::direct_mapped(16 * 1024, 32);
        let opts = SimOptions {
            cache_configs: vec![cfg],
            paging: false,
            scale: Scale(0.02),
            victim_entries: Some(8),
            three_c: true,
            two_level: true,
            ..SimOptions::default()
        };
        let jobs = vec![
            Experiment::new(Program::Make, AllocChoice::Paper(AllocatorKind::FirstFit))
                .options(opts.clone()),
            Experiment::new(Program::Make, AllocChoice::Paper(AllocatorKind::Bsd))
                .options(opts.clone()),
            Experiment::new(Program::Make, AllocChoice::Predictive).options(opts),
        ];
        run_parallel(jobs).expect("runs complete")
    }

    #[test]
    fn extension_tables_populate_and_cohere() {
        let cfg = CacheConfig::direct_mapped(16 * 1024, 32);
        let m = ext_matrix();

        let cc = conflict_analysis(&m, cfg);
        assert_eq!(cc.rows.len(), 3);
        for r in &cc.rows {
            let total = r.compulsory + r.capacity + r.conflict;
            let run = m.get(&r.program, &r.allocator).expect("run");
            assert_eq!(total, run.cache_stats(cfg).expect("cfg").misses());
        }
        assert!(cc.to_text().contains("three-C"));

        let vs = victim_study(&m, cfg, 8);
        assert_eq!(vs.rows.len(), 3);
        for r in &vs.rows {
            assert!(r.victim_miss_rate <= r.plain_miss_rate + 1e-12);
        }

        let tl = two_level_study(&m, cfg);
        assert_eq!(tl.rows.len(), 3);
        for r in &tl.rows {
            assert!(r.global_miss_rate <= r.l1_miss_rate);
        }

        let fw = future_work_table(&m, cfg);
        assert_eq!(fw.rows.len(), 3);
        assert!(fw.to_text().contains("Predictive"));
    }
}
