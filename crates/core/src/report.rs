//! Plain-text table rendering for the repro harness.

use std::fmt;

/// A column-aligned text table.
///
/// # Example
///
/// ```
/// use alloc_locality::report::TextTable;
/// let mut t = TextTable::new(["allocator", "miss rate"]);
/// t.row(["FirstFit", "5.1%"]);
/// t.row(["BSD", "1.9%"]);
/// let s = t.to_string();
/// assert!(s.contains("FirstFit"));
/// assert!(s.lines().count() >= 4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        TextTable { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row; missing cells render empty, extras are kept.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.headers.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        let measure = |widths: &mut Vec<usize>, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        };
        measure(&mut widths, &self.headers);
        for r in &self.rows {
            measure(&mut widths, r);
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, w) in widths.iter().enumerate() {
                let empty = String::new();
                let cell = cells.get(i).unwrap_or(&empty);
                if i + 1 == widths.len() {
                    writeln!(f, "{cell}")?;
                } else {
                    write!(f, "{cell:<w$}  ")?;
                }
            }
            Ok(())
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for r in &self.rows {
            write_row(f, r)?;
        }
        Ok(())
    }
}

/// Formats a fraction as a percentage with two decimals.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

/// Formats a float with three significant decimals.
pub fn num(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a byte count as kilobytes.
pub fn kb(bytes: u64) -> String {
    format!("{}K", bytes / 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_pads_columns() {
        let mut t = TextTable::new(["a", "long-header"]);
        t.row(["xxxxxxxx", "1"]);
        t.row(["y", "2"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // Both data rows start their second column at the same offset.
        let col = |l: &str| l.find('1').or_else(|| l.find('2')).unwrap();
        assert_eq!(col(lines[2]), col(lines[3]));
    }

    #[test]
    fn ragged_rows_are_tolerated() {
        let mut t = TextTable::new(["a", "b", "c"]);
        t.row(["1"]);
        t.row(["1", "2", "3"]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        let _ = t.to_string();
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.1234), "12.34%");
        assert_eq!(num(1.23456), "1.235");
        assert_eq!(kb(4096), "4K");
    }
}
