//! Wire-format job specifications for the serving layer.
//!
//! A [`JobSpec`] is the JSON body a client POSTs to the simulation
//! daemon: one (program, allocator, cache geometry, scale) cell,
//! expressed with the same labels the paper's tables print. The spec is
//! *normalized* (defaults filled in) before anything else happens, so
//! two requests that mean the same run hash to the same
//! [`JobSpec::job_id`] — that content address is what makes the server's
//! result cache deduplicate identical re-submissions.
//!
//! Validation happens against the same vocabulary [`Experiment`] accepts:
//! a spec that passes [`JobSpec::validate`] always builds via
//! [`JobSpec::to_experiment`], and the run it describes is bit-identical
//! to the same experiment constructed by hand (the server adds nothing
//! to the simulation).

use allocators::bsd::BsdConfig;
use allocators::first_fit::FirstFitConfig;
use allocators::gnu_gxx::GnuGxxConfig;
use allocators::predictive::PredictiveConfig;
use allocators::quick_fit::QuickFitConfig;
use cache_sim::CacheConfig;
use serde::{Deserialize, Serialize};
use std::fmt;
use workloads::{Program, Scale};

use crate::engine::{AllocChoice, Experiment, SimOptions, DEFAULT_SCALE};

/// Upper bound on the number of cache configurations one job may sweep.
pub const MAX_CACHE_CONFIGS: usize = 8;

/// Largest per-configuration cache size accepted, in kilobytes.
pub const MAX_CACHE_KB: u32 = 1024;

/// Largest workload scale accepted (1.0 = the paper's full counts).
pub const MAX_SCALE: f64 = 1.0;

/// One simulation job as submitted to the daemon.
///
/// Optional fields default to the paper's setup: `scale` 0 means
/// [`DEFAULT_SCALE`], an empty `cache_kb` means the 16K–256K sweep,
/// `block` 0 means 32-byte lines, `paging` omitted means on, and
/// `alloc_config` omitted means the paper's allocator parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Program label as the paper prints it ("espresso", "GS", "ptc",
    /// "gawk", "make", "GS-Small", "GS-Medium").
    pub program: String,
    /// Allocator label ("FirstFit", "QuickFit", "GNU G++", "BSD",
    /// "GNU local") or one of the extension allocators ("BestFit",
    /// "Buddy", "Custom", "Predictive").
    pub allocator: String,
    /// Workload scale in (0, 1]; 0/omitted selects [`DEFAULT_SCALE`].
    pub scale: f64,
    /// Direct-mapped cache sizes to sweep, in KB; empty/omitted selects
    /// the paper's 16K–256K sweep.
    pub cache_kb: Vec<u32>,
    /// Cache block size in bytes; 0/omitted selects the paper's 32.
    pub block: u32,
    /// Whether to run the LRU stack-distance pager; omitted means true.
    pub paging: Option<bool>,
    /// Allocator tuning knobs; omitted means the paper's parameters for
    /// the chosen allocator. Serialized only when present, so every
    /// spec that predates the field keeps its exact canonical line and
    /// therefore its [`JobSpec::job_id`].
    pub alloc_config: Option<AllocConfig>,
}

/// Allocator tuning knobs carried by a [`JobSpec`].
///
/// Every knob is optional; an absent knob means the paper's value for
/// the chosen allocator. Each knob applies only to the families that
/// expose it — [`JobSpec::validate`] rejects the rest:
///
/// | knob | allocators |
/// |---|---|
/// | `split_threshold` | FirstFit, GNU G++ |
/// | `coalesce` | FirstFit, GNU G++ |
/// | `roving` | FirstFit |
/// | `fast_max` | QuickFit |
/// | `min_shift` | BSD |
/// | `short_age` | Predictive |
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocConfig {
    /// Minimum remainder payload for a split (FirstFit, GNU G++).
    pub split_threshold: Option<u32>,
    /// Whether `free` coalesces adjacent blocks (FirstFit, GNU G++).
    pub coalesce: Option<bool>,
    /// Whether the search pointer roves (FirstFit).
    pub roving: Option<bool>,
    /// Largest payload served from the exact-size fast lists (QuickFit).
    pub fast_max: Option<u32>,
    /// log2 of the smallest rounding class (BSD).
    pub min_shift: Option<u32>,
    /// Working-set clock: frees younger than this are "short" (Predictive).
    pub short_age: Option<u32>,
}

/// Largest accepted `split_threshold`, in bytes.
pub const MAX_SPLIT_THRESHOLD: u32 = 4096;

/// Largest accepted QuickFit fast-list payload bound, in bytes.
pub const MAX_FAST_MAX: u32 = 1024;

/// Largest accepted BSD `min_shift` (2^12 = one page).
pub const MAX_MIN_SHIFT: u32 = 12;

impl AllocConfig {
    /// True when no knob is set.
    pub fn is_empty(&self) -> bool {
        *self == AllocConfig::default()
    }

    /// Drops knobs equal to the paper's value for `allocator` — and the
    /// whole config when nothing remains — so an explicitly-defaulted
    /// config hashes identically to no config at all.
    pub fn normalized_for(&self, allocator: &str) -> Option<AllocConfig> {
        fn drop_eq<T: PartialEq>(knob: &mut Option<T>, default: T) {
            if knob.as_ref() == Some(&default) {
                *knob = None;
            }
        }
        let mut c = *self;
        match allocator {
            "FirstFit" => {
                let d = FirstFitConfig::default();
                drop_eq(&mut c.split_threshold, d.split_threshold);
                drop_eq(&mut c.coalesce, d.coalesce);
                drop_eq(&mut c.roving, d.roving);
            }
            "GNU G++" => {
                let d = GnuGxxConfig::default();
                drop_eq(&mut c.split_threshold, d.split_threshold);
                drop_eq(&mut c.coalesce, d.coalesce);
            }
            "QuickFit" => drop_eq(&mut c.fast_max, QuickFitConfig::default().fast_max),
            "BSD" => drop_eq(&mut c.min_shift, BsdConfig::default().min_shift),
            "Predictive" => drop_eq(&mut c.short_age, PredictiveConfig::default().short_age),
            _ => {}
        }
        if c.is_empty() {
            None
        } else {
            Some(c)
        }
    }

    /// Checks every set knob against the family that owns it and its
    /// accepted range.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] naming the first rejected knob.
    pub fn validate_for(&self, allocator: &str) -> Result<(), SpecError> {
        let allowed: &[&str] = match allocator {
            "FirstFit" => &["split_threshold", "coalesce", "roving"],
            "GNU G++" => &["split_threshold", "coalesce"],
            "QuickFit" => &["fast_max"],
            "BSD" => &["min_shift"],
            "Predictive" => &["short_age"],
            _ => &[],
        };
        let set = [
            ("split_threshold", self.split_threshold.is_some()),
            ("coalesce", self.coalesce.is_some()),
            ("roving", self.roving.is_some()),
            ("fast_max", self.fast_max.is_some()),
            ("min_shift", self.min_shift.is_some()),
            ("short_age", self.short_age.is_some()),
        ];
        for (name, present) in set {
            if present && !allowed.contains(&name) {
                return Err(SpecError::new(format!(
                    "knob {name:?} does not apply to allocator {allocator:?}"
                )));
            }
        }
        if let Some(t) = self.split_threshold {
            if t > MAX_SPLIT_THRESHOLD {
                return Err(SpecError::new(format!(
                    "split_threshold {t} exceeds {MAX_SPLIT_THRESHOLD}"
                )));
            }
        }
        if let Some(m) = self.fast_max {
            if !(4..=MAX_FAST_MAX).contains(&m) || m % 4 != 0 {
                return Err(SpecError::new(format!(
                    "fast_max {m} is not a multiple of 4 in 4..={MAX_FAST_MAX}"
                )));
            }
        }
        if let Some(s) = self.min_shift {
            if !(3..=MAX_MIN_SHIFT).contains(&s) {
                return Err(SpecError::new(format!("min_shift {s} outside 3..={MAX_MIN_SHIFT}")));
            }
        }
        if self.short_age == Some(0) {
            return Err(SpecError::new("short_age must be positive"));
        }
        Ok(())
    }

    /// The tuned [`AllocChoice`] this config selects for `allocator`;
    /// unset knobs take the paper's value. `None` for families with no
    /// tunable knobs.
    pub fn to_choice(&self, allocator: &str) -> Option<AllocChoice> {
        match allocator {
            "FirstFit" => {
                let d = FirstFitConfig::default();
                Some(AllocChoice::FirstFitTuned(FirstFitConfig {
                    split_threshold: self.split_threshold.unwrap_or(d.split_threshold),
                    coalesce: self.coalesce.unwrap_or(d.coalesce),
                    roving: self.roving.unwrap_or(d.roving),
                }))
            }
            "GNU G++" => {
                let d = GnuGxxConfig::default();
                Some(AllocChoice::GnuGxxTuned(GnuGxxConfig {
                    split_threshold: self.split_threshold.unwrap_or(d.split_threshold),
                    coalesce: self.coalesce.unwrap_or(d.coalesce),
                }))
            }
            "QuickFit" => Some(AllocChoice::QuickFitTuned(QuickFitConfig {
                fast_max: self.fast_max.unwrap_or(QuickFitConfig::default().fast_max),
            })),
            "BSD" => Some(AllocChoice::BsdTuned(BsdConfig {
                min_shift: self.min_shift.unwrap_or(BsdConfig::default().min_shift),
            })),
            "Predictive" => Some(AllocChoice::PredictiveTuned(PredictiveConfig {
                short_age: self.short_age.unwrap_or(PredictiveConfig::default().short_age),
            })),
            _ => None,
        }
    }
}

// `JobSpec` and `AllocConfig` serialize by hand rather than by derive:
// the derive emits every field, and a permanent `"alloc_config":null`
// in the canonical line would silently renumber every pre-existing job
// id (cold-starting persisted report caches). Omitting the field when
// `None` keeps old specs byte-stable.
impl Serialize for JobSpec {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            ("program".to_string(), self.program.to_value()),
            ("allocator".to_string(), self.allocator.to_value()),
            ("scale".to_string(), self.scale.to_value()),
            ("cache_kb".to_string(), self.cache_kb.to_value()),
            ("block".to_string(), self.block.to_value()),
            ("paging".to_string(), self.paging.to_value()),
        ];
        if let Some(cfg) = &self.alloc_config {
            fields.push(("alloc_config".to_string(), cfg.to_value()));
        }
        serde::Value::Object(fields)
    }
}

impl Deserialize for JobSpec {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let fields =
            v.as_object().ok_or_else(|| serde::Error::custom("JobSpec: expected an object"))?;
        fn required<T: Deserialize>(
            fields: &[(String, serde::Value)],
            name: &str,
        ) -> Result<T, serde::Error> {
            match serde::__find_field(fields, name) {
                Some(v) => T::from_value(v),
                None => Err(serde::Error::custom(format!("JobSpec: missing field `{name}`"))),
            }
        }
        fn defaulted<T: Deserialize + Default>(
            fields: &[(String, serde::Value)],
            name: &str,
        ) -> Result<T, serde::Error> {
            match serde::__find_field(fields, name) {
                Some(v) => T::from_value(v),
                None => Ok(T::default()),
            }
        }
        Ok(JobSpec {
            program: required(fields, "program")?,
            allocator: required(fields, "allocator")?,
            scale: defaulted(fields, "scale")?,
            cache_kb: defaulted(fields, "cache_kb")?,
            block: defaulted(fields, "block")?,
            paging: defaulted(fields, "paging")?,
            alloc_config: defaulted(fields, "alloc_config")?,
        })
    }
}

impl Serialize for AllocConfig {
    fn to_value(&self) -> serde::Value {
        let mut fields = Vec::new();
        let mut push = |name: &str, v: Option<serde::Value>| {
            if let Some(v) = v {
                fields.push((name.to_string(), v));
            }
        };
        push("split_threshold", self.split_threshold.map(|v| v.to_value()));
        push("coalesce", self.coalesce.map(|v| v.to_value()));
        push("roving", self.roving.map(|v| v.to_value()));
        push("fast_max", self.fast_max.map(|v| v.to_value()));
        push("min_shift", self.min_shift.map(|v| v.to_value()));
        push("short_age", self.short_age.map(|v| v.to_value()));
        serde::Value::Object(fields)
    }
}

impl Deserialize for AllocConfig {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let fields = v
            .as_object()
            .ok_or_else(|| serde::Error::custom("alloc_config: expected an object"))?;
        fn knob<T: Deserialize>(
            fields: &[(String, serde::Value)],
            name: &str,
        ) -> Result<Option<T>, serde::Error> {
            match serde::__find_field(fields, name) {
                Some(v) => Option::<T>::from_value(v),
                None => Ok(None),
            }
        }
        Ok(AllocConfig {
            split_threshold: knob(fields, "split_threshold")?,
            coalesce: knob(fields, "coalesce")?,
            roving: knob(fields, "roving")?,
            fast_max: knob(fields, "fast_max")?,
            min_shift: knob(fields, "min_shift")?,
            short_age: knob(fields, "short_age")?,
        })
    }
}

/// Why a [`JobSpec`] was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(String);

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for SpecError {}

impl SpecError {
    /// A rejection with the given human-readable reason.
    pub fn new(msg: impl Into<String>) -> Self {
        SpecError(msg.into())
    }
}

/// Programs the serving layer accepts, by paper label.
pub const SERVABLE_PROGRAMS: [Program; 7] = [
    Program::Espresso,
    Program::GsLarge,
    Program::Ptc,
    Program::Gawk,
    Program::Make,
    Program::GsSmall,
    Program::GsMedium,
];

/// Allocator labels the serving layer accepts: the paper five plus the
/// extension allocators that also emit full run reports.
pub const SERVABLE_ALLOCATORS: [&str; 9] = [
    "FirstFit",
    "QuickFit",
    "GNU G++",
    "BSD",
    "GNU local",
    "BestFit",
    "Buddy",
    "Custom",
    "Predictive",
];

/// Resolves a paper label to its [`Program`].
pub fn program_by_label(label: &str) -> Option<Program> {
    SERVABLE_PROGRAMS.into_iter().find(|p| p.label() == label)
}

/// Resolves an allocator label to its [`AllocChoice`].
pub fn allocator_by_label(label: &str) -> Option<AllocChoice> {
    use allocators::AllocatorKind;
    match label {
        "BestFit" => Some(AllocChoice::BestFit),
        "Buddy" => Some(AllocChoice::Buddy),
        "Custom" => Some(AllocChoice::Custom),
        "Predictive" => Some(AllocChoice::Predictive),
        _ => AllocatorKind::ALL.into_iter().find(|k| k.label() == label).map(AllocChoice::Paper),
    }
}

impl JobSpec {
    /// A spec for one cell with every option defaulted.
    pub fn cell(program: &str, allocator: &str, scale: f64) -> Self {
        JobSpec {
            program: program.to_string(),
            allocator: allocator.to_string(),
            scale,
            cache_kb: Vec::new(),
            block: 0,
            paging: None,
            alloc_config: None,
        }
    }

    /// The spec with every omitted field replaced by its default, so
    /// equivalent requests serialize (and therefore hash) identically.
    pub fn normalized(&self) -> JobSpec {
        JobSpec {
            program: self.program.clone(),
            allocator: self.allocator.clone(),
            scale: if self.scale <= 0.0 { DEFAULT_SCALE.0 } else { self.scale },
            cache_kb: if self.cache_kb.is_empty() {
                vec![16, 32, 64, 128, 256]
            } else {
                self.cache_kb.clone()
            },
            block: if self.block == 0 { CacheConfig::PAPER_BLOCK } else { self.block },
            paging: Some(self.paging.unwrap_or(true)),
            alloc_config: self
                .alloc_config
                .as_ref()
                .and_then(|c| c.normalized_for(&self.allocator)),
        }
    }

    /// Checks the spec against the engine's vocabulary and limits.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] naming the first rejected field.
    pub fn validate(&self) -> Result<(), SpecError> {
        let n = self.normalized();
        if program_by_label(&n.program).is_none() {
            return Err(SpecError::new(format!(
                "unknown program {:?}; expected one of {}",
                n.program,
                SERVABLE_PROGRAMS.map(Program::label).join(", ")
            )));
        }
        if allocator_by_label(&n.allocator).is_none() {
            return Err(SpecError::new(format!(
                "unknown allocator {:?}; expected one of {}",
                n.allocator,
                SERVABLE_ALLOCATORS.join(", ")
            )));
        }
        if let Some(cfg) = &n.alloc_config {
            cfg.validate_for(&n.allocator)?;
        }
        if !(n.scale > 0.0 && n.scale <= MAX_SCALE && n.scale.is_finite()) {
            return Err(SpecError::new(format!("scale {} outside (0, {MAX_SCALE}]", n.scale)));
        }
        if n.cache_kb.len() > MAX_CACHE_CONFIGS {
            return Err(SpecError::new(format!(
                "{} cache configurations exceed the limit of {MAX_CACHE_CONFIGS}",
                n.cache_kb.len()
            )));
        }
        if !n.block.is_power_of_two() || !(8..=256).contains(&n.block) {
            return Err(SpecError::new(format!(
                "block size {} is not a power of two in 8..=256",
                n.block
            )));
        }
        for &kb in &n.cache_kb {
            if kb == 0 || kb > MAX_CACHE_KB || !kb.is_power_of_two() {
                return Err(SpecError::new(format!(
                    "cache size {kb}K is not a power of two in 1..={MAX_CACHE_KB}"
                )));
            }
            if kb * 1024 < n.block {
                return Err(SpecError::new(format!(
                    "cache size {kb}K is smaller than one {}-byte block",
                    n.block
                )));
            }
        }
        Ok(())
    }

    /// The canonical single-line JSON of the normalized spec — the bytes
    /// the content hash covers.
    ///
    /// # Panics
    ///
    /// Panics if serialization fails, which for this in-memory struct
    /// would be a serializer bug.
    pub fn canonical_line(&self) -> String {
        serde_json::to_string(&self.normalized()).expect("serialize job spec")
    }

    /// Content-addressed job id: FNV-1a over [`JobSpec::canonical_line`],
    /// printed as 16 hex digits. Identical runs — however their optional
    /// fields were spelled — share an id.
    pub fn job_id(&self) -> String {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = FNV_OFFSET;
        for byte in self.canonical_line().bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
        format!("{hash:016x}")
    }

    /// The allocator (tuned when `alloc_config` is set) this spec selects.
    ///
    /// # Errors
    ///
    /// Returns the same [`SpecError`] as [`JobSpec::validate`].
    pub fn to_choice(&self) -> Result<AllocChoice, SpecError> {
        self.validate()?;
        let n = self.normalized();
        Ok(match &n.alloc_config {
            Some(cfg) => cfg.to_choice(&n.allocator).expect("validated"),
            None => allocator_by_label(&n.allocator).expect("validated"),
        })
    }

    /// The simulation options this spec selects. Shared by
    /// [`JobSpec::to_experiment`] and the sweep executor's shared-trace
    /// path, so both construct structurally identical runs.
    ///
    /// # Errors
    ///
    /// Returns the same [`SpecError`] as [`JobSpec::validate`].
    pub fn to_options(&self) -> Result<SimOptions, SpecError> {
        self.validate()?;
        let n = self.normalized();
        Ok(SimOptions {
            cache_configs: n
                .cache_kb
                .iter()
                .map(|&kb| CacheConfig::direct_mapped(kb * 1024, n.block))
                .collect(),
            paging: n.paging.unwrap_or(true),
            scale: Scale(n.scale),
            ..SimOptions::default()
        })
    }

    /// Builds the experiment this spec describes.
    ///
    /// # Errors
    ///
    /// Returns the same [`SpecError`] as [`JobSpec::validate`].
    pub fn to_experiment(&self) -> Result<Experiment, SpecError> {
        let choice = self.to_choice()?;
        let opts = self.to_options()?;
        let program = program_by_label(&self.normalized().program).expect("validated");
        Ok(Experiment::new(program, choice).options(opts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_normalize_to_the_paper_setup() {
        let spec = JobSpec::cell("espresso", "FirstFit", 0.0);
        let n = spec.normalized();
        assert_eq!(n.scale, DEFAULT_SCALE.0);
        assert_eq!(n.cache_kb, vec![16, 32, 64, 128, 256]);
        assert_eq!(n.block, 32);
        assert_eq!(n.paging, Some(true));
        spec.validate().expect("defaulted spec is valid");
    }

    #[test]
    fn equivalent_spellings_share_a_job_id() {
        let implicit = JobSpec::cell("gawk", "BSD", 0.0);
        let explicit = JobSpec {
            program: "gawk".into(),
            allocator: "BSD".into(),
            scale: DEFAULT_SCALE.0,
            cache_kb: vec![16, 32, 64, 128, 256],
            block: 32,
            paging: Some(true),
            alloc_config: None,
        };
        assert_eq!(implicit.job_id(), explicit.job_id());
        assert_ne!(implicit.job_id(), JobSpec::cell("make", "BSD", 0.0).job_id());
        assert_ne!(implicit.job_id(), JobSpec::cell("gawk", "FirstFit", 0.0).job_id());
    }

    #[test]
    fn bad_specs_are_rejected_with_reasons() {
        let bad = |f: fn(&mut JobSpec)| {
            let mut s = JobSpec::cell("espresso", "BSD", 0.005);
            f(&mut s);
            s.validate().unwrap_err().to_string()
        };
        assert!(bad(|s| s.program = "tetris".into()).contains("unknown program"));
        assert!(bad(|s| s.allocator = "jemalloc".into()).contains("unknown allocator"));
        assert!(bad(|s| s.scale = 2.0).contains("scale"));
        assert!(bad(|s| s.scale = f64::NAN).contains("scale"));
        assert!(bad(|s| s.cache_kb = vec![48]).contains("power of two"));
        assert!(bad(|s| s.cache_kb = vec![4096]).contains("power of two"));
        assert!(bad(|s| s.cache_kb = vec![16; 9]).contains("limit"));
        assert!(bad(|s| s.block = 48).contains("block"));
    }

    #[test]
    fn every_servable_label_resolves() {
        for p in SERVABLE_PROGRAMS {
            assert!(program_by_label(p.label()).is_some(), "{}", p.label());
        }
        for a in SERVABLE_ALLOCATORS {
            assert!(allocator_by_label(a).is_some(), "{a}");
        }
    }

    #[test]
    fn spec_builds_the_experiment_it_describes() {
        let spec = JobSpec {
            cache_kb: vec![16],
            paging: Some(false),
            ..JobSpec::cell("make", "QuickFit", 0.002)
        };
        let r = spec.to_experiment().unwrap().run().unwrap();
        assert_eq!(r.program, "make");
        assert_eq!(r.allocator, "QuickFit");
        assert_eq!(r.scale, 0.002);
        assert_eq!(r.cache.len(), 1);
        assert!(r.fault_curve.is_none());
    }

    #[test]
    fn spec_round_trips_through_json_with_unknown_fields_ignored() {
        let line = r#"{"program":"ptc","allocator":"GNU local","scale":0.01,"future":true}"#;
        let spec: JobSpec = serde_json::from_str(line).expect("parse");
        assert_eq!(spec.program, "ptc");
        assert_eq!(spec.allocator, "GNU local");
        assert_eq!(spec.scale, 0.01);
        spec.validate().expect("valid");
    }

    #[test]
    fn specs_without_alloc_config_keep_their_pre_field_canonical_line() {
        // The exact bytes canonical_line() produced before alloc_config
        // existed. A change here renumbers every persisted job id.
        let spec = JobSpec::cell("espresso", "FirstFit", 0.0);
        assert_eq!(
            spec.canonical_line(),
            r#"{"program":"espresso","allocator":"FirstFit","scale":0.02,"cache_kb":[16,32,64,128,256],"block":32,"paging":true}"#
        );
        assert!(!spec.canonical_line().contains("alloc_config"));
    }

    #[test]
    fn explicit_default_knobs_hash_like_no_config_at_all() {
        let plain = JobSpec::cell("espresso", "FirstFit", 0.0);
        let defaulted = JobSpec {
            alloc_config: Some(AllocConfig {
                split_threshold: Some(24),
                coalesce: Some(true),
                roving: Some(true),
                ..AllocConfig::default()
            }),
            ..plain.clone()
        };
        assert_eq!(plain.job_id(), defaulted.job_id());
        let tuned = JobSpec {
            alloc_config: Some(AllocConfig { split_threshold: Some(16), ..AllocConfig::default() }),
            ..plain.clone()
        };
        assert_ne!(plain.job_id(), tuned.job_id());
    }

    #[test]
    fn alloc_config_round_trips_and_parses_from_json() {
        let line = r#"{"program":"gawk","allocator":"QuickFit","alloc_config":{"fast_max":64}}"#;
        let spec: JobSpec = serde_json::from_str(line).expect("parse");
        assert_eq!(spec.alloc_config.unwrap().fast_max, Some(64));
        spec.validate().expect("valid");
        let reparsed: JobSpec = serde_json::from_str(&spec.canonical_line()).expect("reparse");
        assert_eq!(reparsed.job_id(), spec.job_id());
        assert_eq!(reparsed.alloc_config.unwrap().fast_max, Some(64));
    }

    #[test]
    fn knobs_foreign_to_the_family_are_rejected() {
        let with = |cfg: AllocConfig, alloc: &str| {
            let mut s = JobSpec::cell("espresso", alloc, 0.002);
            s.alloc_config = Some(cfg);
            s.validate()
        };
        let fast = AllocConfig { fast_max: Some(64), ..AllocConfig::default() };
        assert!(with(fast, "QuickFit").is_ok());
        assert!(with(fast, "FirstFit").unwrap_err().to_string().contains("fast_max"));
        assert!(with(fast, "BSD").unwrap_err().to_string().contains("fast_max"));
        let split = AllocConfig { split_threshold: Some(48), ..AllocConfig::default() };
        assert!(with(split, "FirstFit").is_ok());
        assert!(with(split, "GNU G++").is_ok());
        assert!(with(split, "Predictive").unwrap_err().to_string().contains("split_threshold"));
        let roving = AllocConfig { roving: Some(false), ..AllocConfig::default() };
        assert!(with(roving, "FirstFit").is_ok());
        assert!(with(roving, "GNU G++").unwrap_err().to_string().contains("roving"));
    }

    #[test]
    fn out_of_range_knobs_are_rejected() {
        let with = |cfg: AllocConfig, alloc: &str| {
            let mut s = JobSpec::cell("espresso", alloc, 0.002);
            s.alloc_config = Some(cfg);
            s.validate().unwrap_err().to_string()
        };
        let c = |f: fn(&mut AllocConfig)| {
            let mut cfg = AllocConfig::default();
            f(&mut cfg);
            cfg
        };
        assert!(with(c(|c| c.fast_max = Some(30)), "QuickFit").contains("multiple of 4"));
        assert!(with(c(|c| c.fast_max = Some(2048)), "QuickFit").contains("multiple of 4"));
        assert!(with(c(|c| c.min_shift = Some(2)), "BSD").contains("min_shift"));
        assert!(with(c(|c| c.min_shift = Some(13)), "BSD").contains("min_shift"));
        assert!(with(c(|c| c.short_age = Some(0)), "Predictive").contains("short_age"));
        assert!(with(c(|c| c.split_threshold = Some(8192)), "FirstFit").contains("split_threshold"));
    }

    #[test]
    fn tuned_spec_builds_the_tuned_experiment() {
        let mut spec = JobSpec { cache_kb: vec![16], ..JobSpec::cell("make", "BSD", 0.002) };
        spec.alloc_config = Some(AllocConfig { min_shift: Some(6), ..AllocConfig::default() });
        let r = spec.to_experiment().unwrap().run().unwrap();
        assert_eq!(r.allocator, "BSD(min_shift=6)");
        // Coarser classes grant strictly more than the paper's BSD.
        let base = JobSpec { cache_kb: vec![16], ..JobSpec::cell("make", "BSD", 0.002) }
            .to_experiment()
            .unwrap()
            .run()
            .unwrap();
        assert!(r.alloc_stats.peak_granted > base.alloc_stats.peak_granted);
    }
}
