//! Wire-format job specifications for the serving layer.
//!
//! A [`JobSpec`] is the JSON body a client POSTs to the simulation
//! daemon: one (program, allocator, cache geometry, scale) cell,
//! expressed with the same labels the paper's tables print. The spec is
//! *normalized* (defaults filled in) before anything else happens, so
//! two requests that mean the same run hash to the same
//! [`JobSpec::job_id`] — that content address is what makes the server's
//! result cache deduplicate identical re-submissions.
//!
//! Validation happens against the same vocabulary [`Experiment`] accepts:
//! a spec that passes [`JobSpec::validate`] always builds via
//! [`JobSpec::to_experiment`], and the run it describes is bit-identical
//! to the same experiment constructed by hand (the server adds nothing
//! to the simulation).

use cache_sim::CacheConfig;
use serde::{Deserialize, Serialize};
use std::fmt;
use workloads::{Program, Scale};

use crate::engine::{AllocChoice, Experiment, SimOptions, DEFAULT_SCALE};

/// Upper bound on the number of cache configurations one job may sweep.
pub const MAX_CACHE_CONFIGS: usize = 8;

/// Largest per-configuration cache size accepted, in kilobytes.
pub const MAX_CACHE_KB: u32 = 1024;

/// Largest workload scale accepted (1.0 = the paper's full counts).
pub const MAX_SCALE: f64 = 1.0;

/// One simulation job as submitted to the daemon.
///
/// Optional fields default to the paper's setup: `scale` 0 means
/// [`DEFAULT_SCALE`], an empty `cache_kb` means the 16K–256K sweep,
/// `block` 0 means 32-byte lines, and `paging` omitted means on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Program label as the paper prints it ("espresso", "GS", "ptc",
    /// "gawk", "make", "GS-Small", "GS-Medium").
    pub program: String,
    /// Allocator label ("FirstFit", "QuickFit", "GNU G++", "BSD",
    /// "GNU local") or one of the extension allocators ("BestFit",
    /// "Buddy", "Custom", "Predictive").
    pub allocator: String,
    /// Workload scale in (0, 1]; 0/omitted selects [`DEFAULT_SCALE`].
    #[serde(default)]
    pub scale: f64,
    /// Direct-mapped cache sizes to sweep, in KB; empty/omitted selects
    /// the paper's 16K–256K sweep.
    #[serde(default)]
    pub cache_kb: Vec<u32>,
    /// Cache block size in bytes; 0/omitted selects the paper's 32.
    #[serde(default)]
    pub block: u32,
    /// Whether to run the LRU stack-distance pager; omitted means true.
    #[serde(default)]
    pub paging: Option<bool>,
}

/// Why a [`JobSpec`] was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(String);

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for SpecError {}

impl SpecError {
    fn new(msg: impl Into<String>) -> Self {
        SpecError(msg.into())
    }
}

/// Programs the serving layer accepts, by paper label.
pub const SERVABLE_PROGRAMS: [Program; 7] = [
    Program::Espresso,
    Program::GsLarge,
    Program::Ptc,
    Program::Gawk,
    Program::Make,
    Program::GsSmall,
    Program::GsMedium,
];

/// Allocator labels the serving layer accepts: the paper five plus the
/// extension allocators that also emit full run reports.
pub const SERVABLE_ALLOCATORS: [&str; 9] = [
    "FirstFit",
    "QuickFit",
    "GNU G++",
    "BSD",
    "GNU local",
    "BestFit",
    "Buddy",
    "Custom",
    "Predictive",
];

/// Resolves a paper label to its [`Program`].
pub fn program_by_label(label: &str) -> Option<Program> {
    SERVABLE_PROGRAMS.into_iter().find(|p| p.label() == label)
}

/// Resolves an allocator label to its [`AllocChoice`].
pub fn allocator_by_label(label: &str) -> Option<AllocChoice> {
    use allocators::AllocatorKind;
    match label {
        "BestFit" => Some(AllocChoice::BestFit),
        "Buddy" => Some(AllocChoice::Buddy),
        "Custom" => Some(AllocChoice::Custom),
        "Predictive" => Some(AllocChoice::Predictive),
        _ => AllocatorKind::ALL.into_iter().find(|k| k.label() == label).map(AllocChoice::Paper),
    }
}

impl JobSpec {
    /// A spec for one cell with every option defaulted.
    pub fn cell(program: &str, allocator: &str, scale: f64) -> Self {
        JobSpec {
            program: program.to_string(),
            allocator: allocator.to_string(),
            scale,
            cache_kb: Vec::new(),
            block: 0,
            paging: None,
        }
    }

    /// The spec with every omitted field replaced by its default, so
    /// equivalent requests serialize (and therefore hash) identically.
    pub fn normalized(&self) -> JobSpec {
        JobSpec {
            program: self.program.clone(),
            allocator: self.allocator.clone(),
            scale: if self.scale <= 0.0 { DEFAULT_SCALE.0 } else { self.scale },
            cache_kb: if self.cache_kb.is_empty() {
                vec![16, 32, 64, 128, 256]
            } else {
                self.cache_kb.clone()
            },
            block: if self.block == 0 { CacheConfig::PAPER_BLOCK } else { self.block },
            paging: Some(self.paging.unwrap_or(true)),
        }
    }

    /// Checks the spec against the engine's vocabulary and limits.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] naming the first rejected field.
    pub fn validate(&self) -> Result<(), SpecError> {
        let n = self.normalized();
        if program_by_label(&n.program).is_none() {
            return Err(SpecError::new(format!(
                "unknown program {:?}; expected one of {}",
                n.program,
                SERVABLE_PROGRAMS.map(Program::label).join(", ")
            )));
        }
        if allocator_by_label(&n.allocator).is_none() {
            return Err(SpecError::new(format!(
                "unknown allocator {:?}; expected one of {}",
                n.allocator,
                SERVABLE_ALLOCATORS.join(", ")
            )));
        }
        if !(n.scale > 0.0 && n.scale <= MAX_SCALE && n.scale.is_finite()) {
            return Err(SpecError::new(format!("scale {} outside (0, {MAX_SCALE}]", n.scale)));
        }
        if n.cache_kb.len() > MAX_CACHE_CONFIGS {
            return Err(SpecError::new(format!(
                "{} cache configurations exceed the limit of {MAX_CACHE_CONFIGS}",
                n.cache_kb.len()
            )));
        }
        if !n.block.is_power_of_two() || !(8..=256).contains(&n.block) {
            return Err(SpecError::new(format!(
                "block size {} is not a power of two in 8..=256",
                n.block
            )));
        }
        for &kb in &n.cache_kb {
            if kb == 0 || kb > MAX_CACHE_KB || !kb.is_power_of_two() {
                return Err(SpecError::new(format!(
                    "cache size {kb}K is not a power of two in 1..={MAX_CACHE_KB}"
                )));
            }
            if kb * 1024 < n.block {
                return Err(SpecError::new(format!(
                    "cache size {kb}K is smaller than one {}-byte block",
                    n.block
                )));
            }
        }
        Ok(())
    }

    /// The canonical single-line JSON of the normalized spec — the bytes
    /// the content hash covers.
    ///
    /// # Panics
    ///
    /// Panics if serialization fails, which for this in-memory struct
    /// would be a serializer bug.
    pub fn canonical_line(&self) -> String {
        serde_json::to_string(&self.normalized()).expect("serialize job spec")
    }

    /// Content-addressed job id: FNV-1a over [`JobSpec::canonical_line`],
    /// printed as 16 hex digits. Identical runs — however their optional
    /// fields were spelled — share an id.
    pub fn job_id(&self) -> String {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = FNV_OFFSET;
        for byte in self.canonical_line().bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
        format!("{hash:016x}")
    }

    /// Builds the experiment this spec describes.
    ///
    /// # Errors
    ///
    /// Returns the same [`SpecError`] as [`JobSpec::validate`].
    pub fn to_experiment(&self) -> Result<Experiment, SpecError> {
        self.validate()?;
        let n = self.normalized();
        let program = program_by_label(&n.program).expect("validated");
        let choice = allocator_by_label(&n.allocator).expect("validated");
        let opts = SimOptions {
            cache_configs: n
                .cache_kb
                .iter()
                .map(|&kb| CacheConfig::direct_mapped(kb * 1024, n.block))
                .collect(),
            paging: n.paging.unwrap_or(true),
            scale: Scale(n.scale),
            ..SimOptions::default()
        };
        Ok(Experiment::new(program, choice).options(opts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_normalize_to_the_paper_setup() {
        let spec = JobSpec::cell("espresso", "FirstFit", 0.0);
        let n = spec.normalized();
        assert_eq!(n.scale, DEFAULT_SCALE.0);
        assert_eq!(n.cache_kb, vec![16, 32, 64, 128, 256]);
        assert_eq!(n.block, 32);
        assert_eq!(n.paging, Some(true));
        spec.validate().expect("defaulted spec is valid");
    }

    #[test]
    fn equivalent_spellings_share_a_job_id() {
        let implicit = JobSpec::cell("gawk", "BSD", 0.0);
        let explicit = JobSpec {
            program: "gawk".into(),
            allocator: "BSD".into(),
            scale: DEFAULT_SCALE.0,
            cache_kb: vec![16, 32, 64, 128, 256],
            block: 32,
            paging: Some(true),
        };
        assert_eq!(implicit.job_id(), explicit.job_id());
        assert_ne!(implicit.job_id(), JobSpec::cell("make", "BSD", 0.0).job_id());
        assert_ne!(implicit.job_id(), JobSpec::cell("gawk", "FirstFit", 0.0).job_id());
    }

    #[test]
    fn bad_specs_are_rejected_with_reasons() {
        let bad = |f: fn(&mut JobSpec)| {
            let mut s = JobSpec::cell("espresso", "BSD", 0.005);
            f(&mut s);
            s.validate().unwrap_err().to_string()
        };
        assert!(bad(|s| s.program = "tetris".into()).contains("unknown program"));
        assert!(bad(|s| s.allocator = "jemalloc".into()).contains("unknown allocator"));
        assert!(bad(|s| s.scale = 2.0).contains("scale"));
        assert!(bad(|s| s.scale = f64::NAN).contains("scale"));
        assert!(bad(|s| s.cache_kb = vec![48]).contains("power of two"));
        assert!(bad(|s| s.cache_kb = vec![4096]).contains("power of two"));
        assert!(bad(|s| s.cache_kb = vec![16; 9]).contains("limit"));
        assert!(bad(|s| s.block = 48).contains("block"));
    }

    #[test]
    fn every_servable_label_resolves() {
        for p in SERVABLE_PROGRAMS {
            assert!(program_by_label(p.label()).is_some(), "{}", p.label());
        }
        for a in SERVABLE_ALLOCATORS {
            assert!(allocator_by_label(a).is_some(), "{a}");
        }
    }

    #[test]
    fn spec_builds_the_experiment_it_describes() {
        let spec = JobSpec {
            cache_kb: vec![16],
            paging: Some(false),
            ..JobSpec::cell("make", "QuickFit", 0.002)
        };
        let r = spec.to_experiment().unwrap().run().unwrap();
        assert_eq!(r.program, "make");
        assert_eq!(r.allocator, "QuickFit");
        assert_eq!(r.scale, 0.002);
        assert_eq!(r.cache.len(), 1);
        assert!(r.fault_curve.is_none());
    }

    #[test]
    fn spec_round_trips_through_json_with_unknown_fields_ignored() {
        let line = r#"{"program":"ptc","allocator":"GNU local","scale":0.01,"future":true}"#;
        let spec: JobSpec = serde_json::from_str(line).expect("parse");
        assert_eq!(spec.program, "ptc");
        assert_eq!(spec.allocator, "GNU local");
        assert_eq!(spec.scale, 0.01);
        spec.validate().expect("valid");
    }
}
