//! The stable JSONL report emitted by `repro --metrics`.
//!
//! Each experiment cell produces one [`RunReport`] — one line of JSON —
//! carrying the run's identity, its full [`RunResult`], and the frozen
//! [`MetricsSnapshot`] the recorder collected while the run executed.
//! The schema is versioned so downstream tooling (CI's `report_check`,
//! dashboards, regression diffs) can consume reports across repository
//! revisions: additions bump [`RUN_REPORT_VERSION`]; renames or removals
//! are not allowed without a new schema name.

use obs::MetricsSnapshot;
use serde::{Deserialize, Serialize};

use crate::engine::RunResult;

/// The schema identifier every report carries.
pub const RUN_REPORT_SCHEMA: &str = "alloc-locality.run-report";

/// Current schema version. Bump on additive changes; consumers accept
/// any version `<=` the one they were built against.
pub const RUN_REPORT_VERSION: u32 = 1;

/// Histogram metrics every well-formed report must carry: the paper's
/// finding-1 search lengths per malloc, and — whenever the program
/// freed anything — the finding-2 coalesce counts per free. They are
/// the whole point of instrumenting the allocators, so a report without
/// them is a wiring bug, not a quiet run.
pub const REQUIRED_HISTOGRAMS: [&str; 2] = ["alloc.search_len", "alloc.coalesce_per_free"];

/// One experiment cell's metrics + result, as serialized to a JSONL line.
///
/// # Example
///
/// ```
/// use alloc_locality::{AllocChoice, Experiment};
/// use alloc_locality::run_report::RunReport;
/// use allocators::AllocatorKind;
/// use workloads::{Program, Scale};
///
/// # fn main() -> Result<(), alloc_locality::EngineError> {
/// let report = Experiment::new(Program::Make, AllocChoice::Paper(AllocatorKind::Bsd))
///     .scale(Scale(0.005))
///     .report()?;
/// let line = report.to_jsonl_line();
/// let back = RunReport::parse(&line).unwrap();
/// back.validate().unwrap();
/// assert_eq!(back, report);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Always [`RUN_REPORT_SCHEMA`].
    pub schema: String,
    /// Always [`RUN_REPORT_VERSION`] at emission time.
    pub version: u32,
    /// Program label, duplicated from `result` so consumers can route a
    /// line without deserializing the full result payload.
    pub program: String,
    /// Allocator label, duplicated like `program`.
    pub allocator: String,
    /// Workload scale, duplicated like `program`.
    pub scale: f64,
    /// Everything the recorder saw during the run.
    pub metrics: MetricsSnapshot,
    /// The run's full simulation result (bit-identical to the same
    /// experiment run without a recorder).
    pub result: RunResult,
}

impl RunReport {
    /// Wraps a finished run and its metrics in the current schema.
    pub fn new(result: RunResult, metrics: MetricsSnapshot) -> Self {
        RunReport {
            schema: RUN_REPORT_SCHEMA.to_string(),
            version: RUN_REPORT_VERSION,
            program: result.program.clone(),
            allocator: result.allocator.clone(),
            scale: result.scale,
            metrics,
            result,
        }
    }

    /// Serializes to one line of JSON (no trailing newline).
    ///
    /// # Panics
    ///
    /// Panics if serialization fails, which for this in-memory tree
    /// would be a serializer bug.
    pub fn to_jsonl_line(&self) -> String {
        serde_json::to_string(self).expect("serialize run report")
    }

    /// Parses one JSONL line.
    ///
    /// # Errors
    ///
    /// Returns the deserializer's message for malformed JSON or a
    /// mismatched shape.
    pub fn parse(line: &str) -> Result<Self, String> {
        serde_json::from_str(line.trim()).map_err(|e| e.to_string())
    }

    /// Checks the schema invariants every emitted report must satisfy.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant: wrong
    /// schema name, a version newer than this binary, an identity field
    /// disagreeing with the embedded result, a missing required
    /// histogram, or a run that recorded no batch flushes at all.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema != RUN_REPORT_SCHEMA {
            return Err(format!("schema is {:?}, expected {RUN_REPORT_SCHEMA:?}", self.schema));
        }
        if self.version == 0 || self.version > RUN_REPORT_VERSION {
            return Err(format!(
                "version {} outside supported range 1..={RUN_REPORT_VERSION}",
                self.version
            ));
        }
        if self.program != self.result.program {
            return Err(format!(
                "program {:?} disagrees with result.program {:?}",
                self.program, self.result.program
            ));
        }
        if self.allocator != self.result.allocator {
            return Err(format!(
                "allocator {:?} disagrees with result.allocator {:?}",
                self.allocator, self.result.allocator
            ));
        }
        // `ptc` never frees, so the coalesce histogram is only owed by
        // runs that actually freed something.
        let owed: &[(&str, u64)] = &[
            ("alloc.search_len", self.result.alloc_stats.mallocs),
            ("alloc.coalesce_per_free", self.result.alloc_stats.frees),
        ];
        for &(name, ops) in owed {
            if ops == 0 {
                continue;
            }
            let hist = self
                .metrics
                .histogram(name)
                .ok_or_else(|| format!("required histogram {name:?} missing"))?;
            if hist.count == 0 {
                return Err(format!("required histogram {name:?} is empty"));
            }
        }
        if self.metrics.counter("ctx.flush.batches") == 0 {
            return Err("no batch flushes recorded: the recorder was not wired in".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{AllocChoice, Experiment};
    use allocators::AllocatorKind;
    use workloads::{Program, Scale};

    fn sample() -> RunReport {
        Experiment::new(Program::Espresso, AllocChoice::Paper(AllocatorKind::FirstFit))
            .scale(Scale(0.005))
            .report()
            .expect("sample run")
    }

    #[test]
    fn report_round_trips_and_validates() {
        let report = sample();
        report.validate().expect("fresh report is valid");
        let line = report.to_jsonl_line();
        assert!(!line.contains('\n'), "JSONL lines must be single-line");
        let back = RunReport::parse(&line).expect("parse");
        assert_eq!(back, report);
    }

    #[test]
    fn validation_rejects_broken_reports() {
        let good = sample();

        let mut bad = good.clone();
        bad.schema = "something.else".to_string();
        assert!(bad.validate().unwrap_err().contains("schema"));

        let mut bad = good.clone();
        bad.version = RUN_REPORT_VERSION + 1;
        assert!(bad.validate().unwrap_err().contains("version"));

        let mut bad = good.clone();
        bad.program = "mislabeled".to_string();
        assert!(bad.validate().unwrap_err().contains("program"));

        let mut bad = good.clone();
        bad.metrics.histograms.remove("alloc.search_len");
        assert!(bad.validate().unwrap_err().contains("alloc.search_len"));

        let mut bad = good;
        bad.metrics.counters.remove("ctx.flush.batches");
        assert!(bad.validate().unwrap_err().contains("flush"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(RunReport::parse("not json").is_err());
        assert!(RunReport::parse("{}").is_err());
    }

    #[test]
    fn unknown_fields_from_future_emitters_are_ignored() {
        // Forward compatibility: a v1 consumer must parse and validate a
        // line from a later additive revision — extra fields at the top
        // level and inside nested objects are skipped, not errors.
        let report = sample();
        let mut tree: serde::Value =
            serde_json::from_str(&report.to_jsonl_line()).expect("line parses as a tree");
        let serde::Value::Object(fields) = &mut tree else {
            panic!("report line is not an object")
        };
        fields.push(("future_field".into(), serde::Value::Bool(true)));
        fields.push((
            "future_block".into(),
            serde::Value::Object(vec![("nested".into(), serde::Value::UInt(7))]),
        ));
        for (name, value) in fields.iter_mut() {
            if name == "metrics" {
                let serde::Value::Object(inner) = value else { panic!("metrics is not an object") };
                inner.push(("future_gauges".into(), serde::Value::Object(Vec::new())));
            }
        }
        let line = serde_json::to_string(&tree).expect("re-serialize widened tree");

        let back = RunReport::parse(&line).expect("widened line still parses");
        back.validate().expect("widened line still validates");
        assert_eq!(back, report, "unknown fields must not change what was parsed");
    }
}
