//! Terminal line charts, so the `repro` binary can print the paper's
//! *figures* as figures rather than tables only.
//!
//! Each series gets a letter; points are plotted on a character grid
//! with optional log-scaled Y (the paper's Figures 2–3 are log-scale).

use std::fmt;

/// A multi-series scatter/line chart rendered to text.
///
/// # Example
///
/// ```
/// use alloc_locality::chart::AsciiChart;
/// let mut c = AsciiChart::new("faults", 40, 10);
/// c.series("FirstFit", vec![(0.0, 100.0), (1.0, 50.0), (2.0, 10.0)]);
/// c.series("BSD", vec![(0.0, 30.0), (1.0, 20.0), (2.0, 8.0)]);
/// let s = c.render();
/// assert!(s.contains("A = FirstFit"));
/// assert!(s.contains("B = BSD"));
/// ```
#[derive(Debug, Clone)]
pub struct AsciiChart {
    title: String,
    width: usize,
    height: usize,
    log_y: bool,
    series: Vec<(String, Vec<(f64, f64)>)>,
}

impl AsciiChart {
    /// Creates a chart with a plot area of `width` × `height` cells.
    pub fn new(title: impl Into<String>, width: usize, height: usize) -> Self {
        AsciiChart {
            title: title.into(),
            width: width.max(10),
            height: height.max(4),
            log_y: false,
            series: Vec::new(),
        }
    }

    /// Switches the Y axis to log scale (non-positive values are
    /// clamped to the smallest positive plotted value).
    pub fn log_y(mut self) -> Self {
        self.log_y = true;
        self
    }

    /// Adds a named series of `(x, y)` points.
    pub fn series(&mut self, name: impl Into<String>, points: Vec<(f64, f64)>) -> &mut Self {
        self.series.push((name.into(), points));
        self
    }

    fn y_transform(&self, y: f64, floor: f64) -> f64 {
        if self.log_y {
            y.max(floor).log10()
        } else {
            y
        }
    }

    /// Renders the chart.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let all: Vec<(f64, f64)> =
            self.series.iter().flat_map(|(_, pts)| pts.iter().copied()).collect();
        if all.is_empty() {
            return format!("{} (no data)\n", self.title);
        }
        let (mut xmin, mut xmax) = (f64::INFINITY, f64::NEG_INFINITY);
        let mut floor = f64::INFINITY;
        for &(x, y) in &all {
            xmin = xmin.min(x);
            xmax = xmax.max(x);
            if y > 0.0 {
                floor = floor.min(y);
            }
        }
        if !floor.is_finite() {
            floor = 1e-9;
        }
        let (mut ymin, mut ymax) = (f64::INFINITY, f64::NEG_INFINITY);
        for &(_, y) in &all {
            let t = self.y_transform(y, floor);
            ymin = ymin.min(t);
            ymax = ymax.max(t);
        }
        if (xmax - xmin).abs() < 1e-12 {
            xmax = xmin + 1.0;
        }
        if (ymax - ymin).abs() < 1e-12 {
            ymax = ymin + 1.0;
        }

        let mut grid = vec![vec![b' '; self.width]; self.height];
        for (si, (_, pts)) in self.series.iter().enumerate() {
            let marker = b'A' + (si % 26) as u8;
            for &(x, y) in pts {
                let ty = self.y_transform(y, floor);
                let col = ((x - xmin) / (xmax - xmin) * (self.width - 1) as f64).round() as usize;
                let row = ((ymax - ty) / (ymax - ymin) * (self.height - 1) as f64).round() as usize;
                let cell = &mut grid[row.min(self.height - 1)][col.min(self.width - 1)];
                // Overlaps show the later series; '*' marks collisions.
                *cell = if *cell == b' ' || *cell == marker { marker } else { b'*' };
            }
        }

        let untransform = |t: f64| if self.log_y { 10f64.powf(t) } else { t };
        let fmt_val = |v: f64| {
            if v.abs() >= 1000.0 {
                format!("{v:.0}")
            } else if v.abs() >= 1.0 {
                format!("{v:.1}")
            } else {
                format!("{v:.3}")
            }
        };
        out.push_str(&format!("{}{}\n", self.title, if self.log_y { " (log y)" } else { "" }));
        for (i, row) in grid.iter().enumerate() {
            let label = if i == 0 {
                fmt_val(untransform(ymax))
            } else if i == self.height - 1 {
                fmt_val(untransform(ymin))
            } else {
                String::new()
            };
            out.push_str(&format!("{label:>10} |{}\n", String::from_utf8_lossy(row)));
        }
        out.push_str(&format!("{:>10} +{}\n", "", "-".repeat(self.width)));
        out.push_str(&format!(
            "{:>10}  {}{}{}\n",
            "",
            fmt_val(xmin),
            " ".repeat(self.width.saturating_sub(fmt_val(xmin).len() + fmt_val(xmax).len())),
            fmt_val(xmax)
        ));
        for (si, (name, _)) in self.series.iter().enumerate() {
            let marker = (b'A' + (si % 26) as u8) as char;
            out.push_str(&format!("{:>12} = {}\n", marker, name));
        }
        out
    }
}

impl fmt::Display for AsciiChart {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chart_with(points: Vec<(f64, f64)>) -> String {
        let mut c = AsciiChart::new("t", 30, 8);
        c.series("s", points);
        c.render()
    }

    #[test]
    fn empty_chart_degrades_gracefully() {
        let c = AsciiChart::new("empty", 30, 8);
        assert!(c.render().contains("no data"));
    }

    #[test]
    fn single_point_renders() {
        let s = chart_with(vec![(1.0, 5.0)]);
        assert!(s.contains('A'));
        assert!(s.contains("A = s"));
    }

    #[test]
    fn descending_series_occupies_descending_rows() {
        let s = chart_with(vec![(0.0, 100.0), (1.0, 50.0), (2.0, 0.0)]);
        let rows: Vec<&str> = s.lines().collect();
        // First marker row is above the last marker row.
        let first = rows.iter().position(|l| l.contains('A')).expect("marker");
        let last = rows.iter().rposition(|l| l.contains("A")).expect("marker");
        assert!(first < last);
    }

    #[test]
    fn log_scale_compresses_magnitudes() {
        let mut c = AsciiChart::new("log", 30, 8).log_y();
        c.series("s", vec![(0.0, 1.0), (1.0, 10.0), (2.0, 100.0), (3.0, 1000.0)]);
        let s = c.render();
        assert!(s.contains("(log y)"));
        // Equal ratios land on (roughly) equally spaced rows: collect
        // the row index of each column's marker.
        let grid_rows: Vec<(usize, usize)> = s
            .lines()
            .enumerate()
            .filter(|(_, l)| l.contains('|'))
            .flat_map(|(ri, l)| {
                l.char_indices().filter(move |&(_, ch)| ch == 'A').map(move |(ci, _)| (ri, ci))
            })
            .collect();
        assert_eq!(grid_rows.len(), 4);
        let rows: Vec<usize> = grid_rows.iter().map(|&(r, _)| r).collect();
        let gaps: Vec<i64> = rows.windows(2).map(|w| w[0] as i64 - w[1] as i64).collect();
        assert!(gaps.windows(2).all(|g| (g[0] - g[1]).abs() <= 1), "gaps {gaps:?}");
    }

    #[test]
    fn collisions_are_starred() {
        let mut c = AsciiChart::new("x", 30, 8);
        c.series("a", vec![(0.0, 1.0)]);
        c.series("b", vec![(0.0, 1.0)]);
        assert!(c.render().contains('*'));
    }
}
