//! `alloc-locality`: the experiment engine reproducing *Improving the
//! Cache Locality of Memory Allocation* (Grunwald, Zorn & Henderson,
//! PLDI 1993).
//!
//! The engine drives a synthetic application model ([`workloads`]) against
//! an instrumented allocator ([`allocators`]), feeding every resulting
//! data reference — the application's object touches and the allocator's
//! own metadata traffic — through a cache-simulator bank ([`cache_sim`])
//! and an LRU stack-distance pager ([`vm_sim`]) in a single pass, exactly
//! as the paper's PIXIE + TYCHO + VMSIM pipeline did.
//!
//! Entry points:
//!
//! * [`Experiment`] — builder for one (program, allocator, simulator)
//!   run, producing a [`RunResult`].
//! * [`standard_matrix`] — the paper's 5×5 program/allocator sweep, run
//!   in parallel.
//! * [`experiments`] — one function per table and figure of the paper's
//!   evaluation, consuming a [`Matrix`] and producing printable,
//!   serializable result structs.
//!
//! # Example
//!
//! ```
//! use alloc_locality::{AllocChoice, Experiment};
//! use allocators::AllocatorKind;
//! use workloads::{Program, Scale};
//!
//! # fn main() -> Result<(), alloc_locality::EngineError> {
//! let result = Experiment::new(Program::Make, AllocChoice::Paper(AllocatorKind::Bsd))
//!     .scale(Scale(0.01))
//!     .run()?;
//! assert!(result.instrs.total() > 0);
//! assert!(result.alloc_stats.mallocs > 0);
//! # Ok(())
//! # }
//! ```

pub mod chart;
pub mod engine;
pub mod experiments;
pub mod job_spec;
pub mod model;
pub mod report;
pub mod run_report;

pub use engine::{
    default_threads, profile_from_events, run_parallel, run_parallel_instrumented,
    run_parallel_progress, run_parallel_traced, run_parallel_with, sample_profile, standard_matrix,
    standard_matrix_with, AllocChoice, CacheEngine, EngineError, Experiment, FragSample, Matrix,
    PipelineMode, RunResult, SimOptions, WorkloadSource,
};
pub use job_spec::{AllocConfig, JobSpec, SpecError};
pub use model::{estimated_cycles, estimated_seconds, CLOCK_HZ, MISS_PENALTY_CYCLES};
pub use run_report::{RunReport, RUN_REPORT_SCHEMA, RUN_REPORT_VERSION};
