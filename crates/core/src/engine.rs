//! The trace-driven experiment engine.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use allocators::first_fit::FirstFitConfig;
use allocators::gnu_gxx::GnuGxxConfig;
use allocators::gnu_local::GnuLocalConfig;
use allocators::{
    AllocError, AllocStats, Allocator, AllocatorKind, BestFit, Bsd, BsdConfig, Buddy, Custom,
    FirstFit, GnuGxx, GnuLocal, Predictive, PredictiveConfig, QuickFit, QuickFitConfig, SizeMap,
    SizeProfile,
};
use cache_sim::{
    Cache, CacheConfig, CacheStats, SweepCache, ThreeC, ThreeCAnalyzer, TwoLevelCache,
    TwoLevelStats, VictimCache, VictimStats,
};
use obs::{MemoryRecorder, Recorder, Stopwatch};
use std::sync::mpsc::{SyncSender, TrySendError};
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};
use sim_mem::stream::{
    fnv1a, CacheLookup, Fnv64, SidecarLookup, StreamCache, STREAM_FORMAT_VERSION,
};
use sim_mem::{
    AccessSink, Address, CountingSink, HeapImage, InstrCounter, MemCtx, MemRef, Phase, RefRun,
    TraceStats,
};
use vm_sim::{FaultCurve, StackSim};
use workloads::{AppEvent, Program, Scale, WorkloadSpec};

use crate::model::TimeEstimate;

/// Default workload scale for the repro harness: 2% of the paper's
/// allocation counts, far past each model's steady state (see
/// EXPERIMENTS.md for the scale used in the recorded results).
pub const DEFAULT_SCALE: Scale = Scale(0.02);

/// How many allocations to sample when deriving a [`SizeProfile`] for
/// the synthesized allocator.
pub const PROFILE_SAMPLES: u64 = 20_000;

/// How one run delivers its reference stream to the measurement sinks.
///
/// Every consumer of the stream — each simulated cache, the pager, the
/// extension analyzers, the trace writer — is independent of the others,
/// so the same batched stream can be replayed into them serially or
/// concurrently. Both modes produce **bit-identical** [`RunResult`]s;
/// the only difference is wall-clock time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PipelineMode {
    /// Every sink consumes each batch on the driving thread, in turn.
    /// The default: no thread overhead, right for sweeps that already
    /// parallelize across (program, allocator) runs.
    #[default]
    Inline,
    /// Sinks are sharded across worker threads fed by bounded channels
    /// of shared reference batches. Right for a single heavy run — a
    /// full cache bank plus pager — on an otherwise idle machine.
    Sharded,
}

/// How the cache configurations of a run are simulated.
///
/// Both paths produce **bit-identical** [`RunResult::cache`] entries;
/// the sweep is simply one walk over the stream instead of one per
/// configuration (see [`cache_sim::SweepCache`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum CacheEngine {
    /// Single-pass [`SweepCache`] when the configurations share the
    /// sweep structure (all direct-mapped, one block size — the paper's
    /// setup); falls back to per-cache simulation otherwise.
    #[default]
    Sweep,
    /// One independent [`Cache`] per configuration, unconditionally.
    /// Kept as the reference implementation the sweep is benchmarked
    /// and equivalence-tested against.
    PerCache,
}

/// Simulation options for one run.
#[derive(Debug, Clone)]
pub struct SimOptions {
    /// Cache configurations simulated in one pass (empty to skip).
    pub cache_configs: Vec<CacheConfig>,
    /// How those configurations are simulated (see [`CacheEngine`]).
    pub cache_engine: CacheEngine,
    /// Whether to run the LRU stack-distance pager.
    pub paging: bool,
    /// Workload scale.
    pub scale: Scale,
    /// Simulated heap ceiling in bytes.
    pub heap_limit: u64,
    /// Record the full reference stream to this file (ALTR format).
    pub record_trace: Option<std::path::PathBuf>,
    /// Attach a victim buffer of this many entries to the first cache
    /// configuration (Jouppi's conflict-miss remedy; extension study).
    pub victim_entries: Option<usize>,
    /// Run three-C miss classification against the first cache
    /// configuration.
    pub three_c: bool,
    /// Simulate the Mogul & Borg-style two-level hierarchy (16K
    /// direct-mapped L1 over 256K 4-way L2).
    pub two_level: bool,
    /// Sample heap usage every this many allocations (0 = off),
    /// producing [`RunResult::frag_curve`] — live bytes vs. bytes
    /// requested from the OS over time, the paper's space-efficiency
    /// story as a curve.
    pub frag_sample_every: u64,
    /// How the reference stream reaches the sinks (see [`PipelineMode`]).
    pub pipeline: PipelineMode,
    /// Persistent stream-cache directory. When set, a run first looks
    /// for its captured reference stream (keyed by the run's *driver
    /// identity* — program, allocator, scale, seed) under this
    /// directory and, on a hit, replays the decoded stream straight
    /// into the sinks, skipping workload generation and allocator
    /// simulation entirely. On a miss the run executes normally and
    /// stores its stream for the next time. Results are bit-identical
    /// either way.
    pub stream_cache: Option<std::path::PathBuf>,
    /// Size bound in bytes for the stream-cache directory. After each
    /// store, the oldest-written stream files are evicted until the
    /// directory fits (the entry just written is spared). `None` =
    /// unbounded, the historical behavior.
    pub stream_cache_bytes: Option<u64>,
    /// Batches in flight per sharded-pipeline worker channel before the
    /// producer blocks (clamped to at least 1). The default keeps the
    /// historical depth; raising it trades memory for producer slack on
    /// many-core hosts, and `pipeline.send_stalls` in the run metrics
    /// shows whether it is the bottleneck.
    pub channel_depth: usize,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            cache_configs: CacheConfig::paper_sweep(),
            cache_engine: CacheEngine::default(),
            paging: true,
            scale: DEFAULT_SCALE,
            heap_limit: sim_mem::heap::DEFAULT_LIMIT,
            record_trace: None,
            victim_entries: None,
            three_c: false,
            two_level: false,
            frag_sample_every: 0,
            pipeline: PipelineMode::Inline,
            stream_cache: None,
            stream_cache_bytes: None,
            channel_depth: BATCH_CHANNEL_DEPTH,
        }
    }
}

/// Which allocator a run uses: the paper's five, the synthesized
/// allocator, the Table 6 tagged variant, or tuned ablation variants.
#[derive(Debug, Clone)]
pub enum AllocChoice {
    /// One of the paper's five allocators.
    Paper(AllocatorKind),
    /// The synthesized allocator, profiled on the workload itself.
    Custom,
    /// Best fit over the FIRSTFIT block layout: the rest of the
    /// sequential-fit family the paper's conclusions indict.
    BestFit,
    /// Binary buddy: Standish's third taxonomy category (§2.1).
    Buddy,
    /// The synthesized allocator with pure bounded-fragmentation classes
    /// (no profile), for the size-class ablation.
    CustomBounded(f64),
    /// GNU LOCAL with emulated 8-byte boundary tags (Table 6).
    GnuLocalTagged,
    /// The call-site lifetime predictor (§5.1 future work, Barrett &
    /// Zorn).
    Predictive,
    /// FIRSTFIT with explicit knobs (ablations: split threshold,
    /// coalescing, roving pointer).
    FirstFitTuned(FirstFitConfig),
    /// GNU G++ with explicit knobs.
    GnuGxxTuned(GnuGxxConfig),
    /// QUICKFIT with an explicit fast-list payload bound.
    QuickFitTuned(QuickFitConfig),
    /// BSD with explicit rounding classes.
    BsdTuned(BsdConfig),
    /// PREDICTIVE with an explicit working-set clock.
    PredictiveTuned(PredictiveConfig),
}

impl AllocChoice {
    /// The five paper allocators, in figure order.
    pub fn paper_five() -> Vec<AllocChoice> {
        AllocatorKind::ALL.into_iter().map(AllocChoice::Paper).collect()
    }

    /// Display label used in result tables.
    pub fn label(&self) -> String {
        match self {
            AllocChoice::Paper(k) => k.label().to_string(),
            AllocChoice::Custom => "Custom".to_string(),
            AllocChoice::BestFit => "BestFit".to_string(),
            AllocChoice::Buddy => "Buddy".to_string(),
            AllocChoice::Predictive => "Predictive".to_string(),
            AllocChoice::CustomBounded(b) => format!("Custom(bound={b})"),
            AllocChoice::GnuLocalTagged => "GNU local (w/tags)".to_string(),
            AllocChoice::FirstFitTuned(c) => format!(
                "FirstFit(split={},coalesce={},roving={})",
                c.split_threshold, c.coalesce, c.roving
            ),
            AllocChoice::GnuGxxTuned(c) => {
                format!("GNU G++(split={},coalesce={})", c.split_threshold, c.coalesce)
            }
            AllocChoice::QuickFitTuned(c) => format!("QuickFit(fast_max={})", c.fast_max),
            AllocChoice::BsdTuned(c) => format!("BSD(min_shift={})", c.min_shift),
            AllocChoice::PredictiveTuned(c) => {
                format!("Predictive(short_age={})", c.short_age)
            }
        }
    }

    fn build(
        &self,
        ctx: &mut MemCtx<'_>,
        source: &WorkloadSource,
    ) -> Result<Box<dyn Allocator>, AllocError> {
        Ok(match self {
            AllocChoice::Paper(k) => k.build(ctx)?,
            AllocChoice::Custom => {
                let profile = match source {
                    WorkloadSource::Spec(spec) => sample_profile(spec, PROFILE_SAMPLES),
                    WorkloadSource::Events(events) => {
                        profile_from_events(events.iter().copied(), PROFILE_SAMPLES)
                    }
                };
                Box::new(Custom::from_profile(ctx, &profile)?)
            }
            AllocChoice::BestFit => Box::new(BestFit::new(ctx)?),
            AllocChoice::Buddy => Box::new(Buddy::new(ctx)?),
            AllocChoice::Predictive => Box::new(Predictive::new(ctx)?),
            AllocChoice::CustomBounded(bound) => {
                Box::new(Custom::with_size_map(ctx, SizeMap::bounded_fragmentation(*bound))?)
            }
            AllocChoice::GnuLocalTagged => Box::new(GnuLocal::with_config(
                ctx,
                GnuLocalConfig { emulate_boundary_tags: true },
            )?),
            AllocChoice::FirstFitTuned(cfg) => Box::new(FirstFit::with_config(ctx, *cfg)?),
            AllocChoice::GnuGxxTuned(cfg) => Box::new(GnuGxx::with_config(ctx, *cfg)?),
            AllocChoice::QuickFitTuned(cfg) => Box::new(QuickFit::with_config(ctx, *cfg)?),
            AllocChoice::BsdTuned(cfg) => Box::new(Bsd::with_config(ctx, *cfg)?),
            AllocChoice::PredictiveTuned(cfg) => Box::new(Predictive::with_config(ctx, *cfg)?),
        })
    }
}

/// Derives an allocation-size profile by sampling the workload's own
/// request stream — the paper's "empirical measurements of a particular
/// program's behaviour".
pub fn sample_profile(spec: &WorkloadSpec, samples: u64) -> SizeProfile {
    profile_from_events(spec.events(Scale(1.0)), samples)
}

/// Collects a size profile from the first `samples` allocations of any
/// event stream.
pub fn profile_from_events(
    events: impl IntoIterator<Item = AppEvent>,
    samples: u64,
) -> SizeProfile {
    let mut profile = SizeProfile::new();
    let mut seen = 0;
    for event in events {
        if let AppEvent::Malloc { size, .. } = event {
            profile.record(size);
            seen += 1;
            if seen >= samples {
                break;
            }
        }
    }
    profile
}

/// One fragmentation sample: `(allocations so far, live granted bytes,
/// heap bytes obtained from the OS)`.
pub type FragSample = (u64, u64, u64);

/// Everything measured by one (program, allocator) run.
///
/// `PartialEq` is part of the contract: the engine's delivery paths
/// (pipeline modes, cache engines, metrics on/off) are equivalence-
/// tested by comparing whole results for bit-identity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Program label ("espresso", "GS", ...).
    pub program: String,
    /// Allocator label ("FirstFit", "BSD", ...).
    pub allocator: String,
    /// Scale the run used.
    pub scale: f64,
    /// Instruction counts by phase (app / malloc / free).
    pub instrs: InstrCounter,
    /// Reference counts and bytes by class.
    pub trace: TraceStats,
    /// Per-configuration cache statistics.
    pub cache: Vec<(CacheConfig, CacheStats)>,
    /// Page-fault curve, if paging was simulated.
    pub fault_curve: Option<FaultCurve>,
    /// Victim-cache statistics, if requested.
    pub victim: Option<VictimStats>,
    /// Three-C miss classification, if requested.
    pub three_c: Option<ThreeC>,
    /// Two-level hierarchy statistics, if requested.
    pub two_level: Option<TwoLevelStats>,
    /// [`FragSample`] points, if fragmentation sampling was enabled.
    #[serde(default)]
    pub frag_curve: Vec<FragSample>,
    /// Peak bytes obtained from the simulated operating system.
    pub heap_high_water: u64,
    /// The allocator's own statistics.
    pub alloc_stats: AllocStats,
}

impl RunResult {
    /// Word-granular data references (the paper's `D`).
    pub fn data_refs(&self) -> u64 {
        self.trace.total_words()
    }

    /// Cache statistics for a configuration simulated in this run.
    pub fn cache_stats(&self, config: CacheConfig) -> Option<&CacheStats> {
        self.cache.iter().find(|(c, _)| *c == config).map(|(_, s)| s)
    }

    /// Data-cache miss rate for a configuration.
    pub fn miss_rate(&self, config: CacheConfig) -> Option<f64> {
        self.cache_stats(config).map(CacheStats::miss_rate)
    }

    /// The paper's execution-time estimate for a simulated configuration.
    pub fn time_estimate(&self, config: CacheConfig, penalty: u64) -> Option<TimeEstimate> {
        self.cache_stats(config).map(|s| TimeEstimate {
            instructions: self.instrs.total(),
            misses: s.misses(),
            penalty,
        })
    }

    /// Fraction of instructions inside malloc/free (Figure 1).
    pub fn alloc_fraction(&self) -> f64 {
        self.instrs.alloc_fraction()
    }
}

/// Errors from the experiment engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The allocator failed (out of simulated memory, or a bug surfaced
    /// as an invalid free).
    Alloc {
        /// The failing operation's event ordinal.
        at_event: u64,
        /// The underlying allocator error.
        source: AllocError,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Alloc { at_event, source } => {
                write!(f, "allocator failed at event {at_event}: {source}")
            }
        }
    }
}

impl Error for EngineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EngineError::Alloc { source, .. } => Some(source),
        }
    }
}

/// Synthesizes stack/static data traffic: runs of consecutive words
/// inside a small segment below the heap, sweeping up and down as a call
/// stack does. The segment is hot — it fits any simulated cache — which
/// is exactly why real programs' overall data miss rates are far lower
/// than their heap-only miss rates.
#[derive(Debug)]
struct StackWalker {
    /// Current offset (bytes) within the segment.
    pos: u64,
    /// Direction of the sweep: grows toward `STACK_SEGMENT_BYTES`, then
    /// shrinks back.
    growing: bool,
}

/// Base address of the simulated stack segment (below the heap).
const STACK_BASE: u64 = 0x0800_0000;

/// Active stack window in bytes.
const STACK_SEGMENT_BYTES: u64 = 4096;

/// Words touched per emitted stack reference.
const STACK_RUN_WORDS: u64 = 8;

impl StackWalker {
    fn new() -> Self {
        StackWalker { pos: 0, growing: true }
    }

    fn touch(&mut self, words: u64, ctx: &mut MemCtx<'_>) {
        let mut remaining = words;
        while remaining > 0 {
            let run = remaining.min(STACK_RUN_WORDS);
            ctx.app_touch(Address::new(STACK_BASE + self.pos), (run * 4) as u32, self.growing);
            remaining -= run;
            if self.growing {
                self.pos += run * 4;
                if self.pos + STACK_RUN_WORDS * 4 > STACK_SEGMENT_BYTES {
                    self.growing = false;
                }
            } else {
                self.pos = self.pos.saturating_sub(run * 4);
                if self.pos == 0 {
                    self.growing = true;
                }
            }
        }
    }
}

/// Default batches in flight per worker channel before the producer
/// blocks ([`SimOptions::channel_depth`] overrides it per run).
///
/// A few batches of slack per consumer absorb scheduling jitter; a
/// deeper queue only grows memory without speeding up a pipeline whose
/// throughput is set by its slowest consumer.
pub const BATCH_CHANNEL_DEPTH: usize = 8;

/// One independent consumer of the reference stream.
///
/// Every measurement the engine takes is a fold over the stream that
/// shares no state with its peers, so each can be boxed into a shard and
/// placed on whichever thread the [`PipelineMode`] dictates. Shards are
/// kept in a canonical order (caches in configuration order, then pager,
/// tracer, victim, three-C, two-level) so results can be reassembled
/// identically however the shards were distributed.
enum SinkShard {
    /// All cache configurations in one single-pass sweep (one shard).
    Sweep(SweepCache),
    /// One cache configuration simulated independently.
    Cache(Cache),
    Pager(Box<StackSim>),
    Tracer(trace::TraceWriter<std::io::BufWriter<std::fs::File>>),
    Victim(VictimCache),
    ThreeC(ThreeCAnalyzer),
    TwoLevel(TwoLevelCache),
}

impl SinkShard {
    /// Stable metric label for this shard kind; per-shard consume time
    /// is accumulated under `span:<label>` (so the sweep engine and the
    /// per-cache engine are directly comparable per run).
    fn label(&self) -> &'static str {
        match self {
            SinkShard::Sweep(_) => "sink.sweep",
            SinkShard::Cache(_) => "sink.cache",
            SinkShard::Pager(_) => "sink.pager",
            SinkShard::Tracer(_) => "sink.tracer",
            SinkShard::Victim(_) => "sink.victim",
            SinkShard::ThreeC(_) => "sink.three_c",
            SinkShard::TwoLevel(_) => "sink.two_level",
        }
    }

    /// References this shard swallowed via its O(1) run-repeat fast
    /// path, when the shard kind tracks it (the PR 2 optimization the
    /// recorder makes visible).
    fn fastpath_refs(&self) -> Option<(&'static str, u64)> {
        match self {
            SinkShard::Sweep(s) => Some(("sink.sweep.fastpath_refs", s.fastpath_refs())),
            SinkShard::Cache(c) => Some(("sink.cache.fastpath_refs", c.fastpath_refs())),
            SinkShard::Pager(p) => Some(("sink.pager.fastpath_refs", p.fastpath_refs())),
            _ => None,
        }
    }
}

impl AccessSink for SinkShard {
    fn record(&mut self, r: MemRef) {
        match self {
            SinkShard::Sweep(s) => s.record(r),
            SinkShard::Cache(s) => s.record(r),
            SinkShard::Pager(s) => s.record(r),
            SinkShard::Tracer(s) => s.record(r),
            SinkShard::Victim(s) => s.record(r),
            SinkShard::ThreeC(s) => s.record(r),
            SinkShard::TwoLevel(s) => s.record(r),
        }
    }

    fn record_batch(&mut self, batch: &[MemRef]) {
        match self {
            SinkShard::Sweep(s) => s.record_batch(batch),
            SinkShard::Cache(s) => s.record_batch(batch),
            SinkShard::Pager(s) => s.record_batch(batch),
            SinkShard::Tracer(s) => s.record_batch(batch),
            SinkShard::Victim(s) => s.record_batch(batch),
            SinkShard::ThreeC(s) => s.record_batch(batch),
            SinkShard::TwoLevel(s) => s.record_batch(batch),
        }
    }

    fn record_runs(&mut self, runs: &[RefRun]) {
        match self {
            SinkShard::Sweep(s) => s.record_runs(runs),
            SinkShard::Cache(s) => s.record_runs(runs),
            SinkShard::Pager(s) => s.record_runs(runs),
            SinkShard::Tracer(s) => s.record_runs(runs),
            SinkShard::Victim(s) => s.record_runs(runs),
            SinkShard::ThreeC(s) => s.record_runs(runs),
            SinkShard::TwoLevel(s) => s.record_runs(runs),
        }
    }
}

/// [`PipelineMode::Inline`]: the counting sink and every shard consume
/// each batch on the calling thread.
struct InlineSink {
    counting: CountingSink,
    shards: Vec<SinkShard>,
    /// Per-shard consume time in nanoseconds, aligned with `shards`.
    /// `None` (the uninstrumented path) skips the clock reads entirely,
    /// so metrics-off runs pay nothing.
    timings: Option<Vec<u64>>,
}

impl InlineSink {
    fn new(counting: CountingSink, shards: Vec<SinkShard>, timed: bool) -> Self {
        let timings = timed.then(|| vec![0u64; shards.len()]);
        InlineSink { counting, shards, timings }
    }
}

impl AccessSink for InlineSink {
    fn record(&mut self, r: MemRef) {
        self.counting.record(r);
        for shard in &mut self.shards {
            shard.record(r);
        }
    }

    fn record_batch(&mut self, batch: &[MemRef]) {
        self.counting.record_batch(batch);
        for shard in &mut self.shards {
            shard.record_batch(batch);
        }
    }

    fn record_runs(&mut self, runs: &[RefRun]) {
        self.counting.record_runs(runs);
        match &mut self.timings {
            None => {
                for shard in &mut self.shards {
                    shard.record_runs(runs);
                }
            }
            Some(times) => {
                for (shard, spent) in self.shards.iter_mut().zip(times.iter_mut()) {
                    let sw = Stopwatch::start();
                    shard.record_runs(runs);
                    *spent += sw.elapsed_ns();
                }
            }
        }
    }
}

/// [`PipelineMode::Sharded`]: run-compressed batches are wrapped in an
/// [`Arc`] and broadcast to one bounded channel per worker (SPMC by
/// cloning the `Arc`, not the data) — the compression also shrinks what
/// crosses the channels. The cheap counting fold stays on the producer
/// thread. Dropping the sink closes every channel, which is how workers
/// learn the stream ended — on both the success and the error path.
struct BroadcastSink {
    counting: CountingSink,
    senders: Vec<SyncSender<Arc<Vec<RefRun>>>>,
    /// Sends that found a worker's channel full and had to block —
    /// the pipeline's backpressure signal (`pipeline.send_stalls`).
    /// Counted on the producer thread; delivery order and blocking
    /// behaviour are identical to a plain `send`.
    send_stalls: u64,
}

impl AccessSink for BroadcastSink {
    fn record(&mut self, r: MemRef) {
        self.record_runs(&[RefRun::once(r)]);
    }

    fn record_batch(&mut self, batch: &[MemRef]) {
        let runs: Vec<RefRun> = batch.iter().map(|&r| RefRun::once(r)).collect();
        self.record_runs(&runs);
    }

    fn record_runs(&mut self, runs: &[RefRun]) {
        self.counting.record_runs(runs);
        let runs = Arc::new(runs.to_vec());
        for tx in &self.senders {
            // A send only fails if a worker panicked; the panic itself
            // resurfaces when the worker is joined.
            match tx.try_send(Arc::clone(&runs)) {
                Ok(()) => {}
                Err(TrySendError::Full(batch)) => {
                    self.send_stalls += 1;
                    let _ = tx.send(batch);
                }
                Err(TrySendError::Disconnected(_)) => {}
            }
        }
    }
}

/// Collects the run-compressed reference stream exactly as a sink shard
/// would see it: the concatenation of every flushed batch, preserving
/// run boundaries (including splits at batch edges).
struct RunCollector {
    runs: Vec<RefRun>,
}

impl AccessSink for RunCollector {
    fn record(&mut self, r: MemRef) {
        self.runs.push(RefRun::once(r));
    }

    fn record_batch(&mut self, batch: &[MemRef]) {
        self.runs.extend(batch.iter().map(|&r| RefRun::once(r)));
    }

    fn record_runs(&mut self, runs: &[RefRun]) {
        self.runs.extend_from_slice(runs);
    }
}

/// The producer side of a cache-populating run: folds the counting
/// statistics while collecting the run-compressed stream for storage.
struct CaptureSink {
    counting: CountingSink,
    runs: Vec<RefRun>,
}

impl AccessSink for CaptureSink {
    fn record(&mut self, r: MemRef) {
        self.counting.record(r);
        self.runs.push(RefRun::once(r));
    }

    fn record_batch(&mut self, batch: &[MemRef]) {
        self.counting.record_batch(batch);
        self.runs.extend(batch.iter().map(|&r| RefRun::once(r)));
    }

    fn record_runs(&mut self, runs: &[RefRun]) {
        self.counting.record_runs(runs);
        self.runs.extend_from_slice(runs);
    }
}

/// Tees every metric into an internal [`MemoryRecorder`] — whose frozen
/// snapshot becomes the stream file's sidecar — and, when the caller
/// attached one, the caller's recorder too. Both therefore observe
/// byte-identical metrics on a populating run, which is what lets a
/// later replay hand back the stored snapshot as *the* metrics of the
/// run and keep `RunReport` lines byte-identical to the generated ones.
struct TeeRecorder<'a> {
    mem: MemoryRecorder,
    user: Option<&'a mut dyn Recorder>,
}

impl Recorder for TeeRecorder<'_> {
    fn enabled(&self) -> bool {
        true
    }

    fn add(&mut self, name: &'static str, delta: u64) {
        self.mem.add(name, delta);
        if let Some(user) = &mut self.user {
            user.add(name, delta);
        }
    }

    fn observe(&mut self, name: &'static str, value: u64) {
        self.mem.observe(name, value);
        if let Some(user) = &mut self.user {
            user.observe(name, value);
        }
    }

    fn span_ns(&mut self, name: &'static str, nanos: u64) {
        self.mem.span_ns(name, nanos);
        if let Some(user) = &mut self.user {
            user.span_ns(name, nanos);
        }
    }

    // Hierarchical spans exist only in the caller's recorder (a
    // `Tracer`, typically); the internal `MemoryRecorder` — and thus
    // the sidecar snapshot replays reuse — never sees span structure,
    // so traced and untraced populating runs freeze identical sidecars.
    fn span_enter(&mut self, name: &'static str) {
        if let Some(user) = &mut self.user {
            user.span_enter(name);
        }
    }

    fn span_exit(&mut self) {
        if let Some(user) = &mut self.user {
            user.span_exit();
        }
    }
}

/// Everything a replay cannot reconstruct from the reference stream
/// alone: the driver-side products of the populating run, serialized as
/// JSON into the stream file's sidecar.
///
/// The stream *key* covers every option the driver's outputs depend on
/// (workload, allocator, scale, heap limit, fragmentation sampling), so
/// these fields are valid for any run that hits the same key. The
/// metrics snapshot additionally depends on the *sink* configuration —
/// which sinks existed, which pipeline delivered to them — so it carries
/// the populating run's [`Experiment::options_fingerprint`] and is only
/// reused when the fingerprints match.
#[derive(Serialize, Deserialize)]
struct StreamSidecar {
    /// [`Experiment::options_fingerprint`] of the populating run.
    options_fp: u64,
    /// Instruction counts by phase.
    instrs: InstrCounter,
    /// Counting-fold statistics over the stream.
    trace: TraceStats,
    /// Fragmentation samples (empty unless sampling was keyed on).
    frag_curve: Vec<FragSample>,
    /// Peak bytes obtained from the simulated operating system.
    heap_high_water: u64,
    /// The allocator's own statistics.
    alloc_stats: AllocStats,
    /// The populating run's full frozen metrics.
    metrics: obs::MetricsSnapshot,
    /// The populating run's complete finalized result. Like `metrics`,
    /// it depends on the sink configuration, so it is only reused when
    /// `options_fp` matches — and then it answers the whole run from the
    /// sidecar alone, with neither the stream body decoded nor the
    /// sinks rebuilt.
    #[serde(default)]
    result: Option<RunResult>,
}

/// Sink results reassembled from finalized shards, in canonical order.
struct FinalizedShards {
    cache: Vec<(CacheConfig, CacheStats)>,
    fault_curve: Option<FaultCurve>,
    victim: Option<VictimStats>,
    three_c: Option<ThreeC>,
    two_level: Option<TwoLevelStats>,
}

/// Drains every shard into its result slot (and closes the trace file).
fn finalize_shards(shards: Vec<SinkShard>) -> FinalizedShards {
    let mut out = FinalizedShards {
        cache: Vec::new(),
        fault_curve: None,
        victim: None,
        three_c: None,
        two_level: None,
    };
    for shard in shards {
        match shard {
            SinkShard::Sweep(s) => out.cache.extend(s.results()),
            SinkShard::Cache(c) => out.cache.push((c.config(), *c.stats())),
            SinkShard::Pager(p) => out.fault_curve = Some(p.curve()),
            SinkShard::Tracer(t) => {
                t.finish().expect("finalize trace file");
            }
            SinkShard::Victim(v) => out.victim = Some(*v.stats()),
            SinkShard::ThreeC(a) => out.three_c = Some(a.classify()),
            SinkShard::TwoLevel(t) => out.two_level = Some(t.stats()),
        }
    }
    out
}

/// What [`Experiment::run_inner`] hands back: the result, plus — on a
/// warm instrumented replay — the populating run's frozen metrics,
/// which [`Experiment::run_instrumented`] returns in place of the live
/// recorder's snapshot so replayed reports are byte-identical to
/// generated ones.
struct RunOutcome {
    result: RunResult,
    replay_metrics: Option<obs::MetricsSnapshot>,
}

/// Where a run's application events come from: a synthetic model, or a
/// fixed stream (e.g. imported with [`workloads::import::parse_trace`]).
#[derive(Debug, Clone)]
pub enum WorkloadSource {
    /// Generate events from a workload model, honouring the run's scale.
    Spec(WorkloadSpec),
    /// Replay this exact stream (the scale option is ignored).
    Events(std::sync::Arc<Vec<AppEvent>>),
}

/// Builder for one run.
///
/// # Example
///
/// ```
/// use alloc_locality::{AllocChoice, Experiment};
/// use allocators::AllocatorKind;
/// use workloads::{Program, Scale};
///
/// # fn main() -> Result<(), alloc_locality::EngineError> {
/// let r = Experiment::new(Program::Gawk, AllocChoice::Paper(AllocatorKind::QuickFit))
///     .scale(Scale(0.005))
///     .paging(false)
///     .run()?;
/// assert_eq!(r.allocator, "QuickFit");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Experiment {
    source: WorkloadSource,
    program_label: String,
    choice: AllocChoice,
    opts: SimOptions,
    /// Stream-cache provenance for a fixed event stream: the workload
    /// spec the events were generated from, when the caller knows it
    /// (see [`Experiment::stream_source`]). `None` for spec-sourced runs
    /// (the source itself is the provenance) and for imported traces.
    provenance: Option<WorkloadSpec>,
}

impl Experiment {
    /// An experiment on one of the paper's programs.
    pub fn new(program: Program, choice: AllocChoice) -> Self {
        Experiment {
            source: WorkloadSource::Spec(program.spec()),
            program_label: program.label().to_string(),
            choice,
            opts: SimOptions::default(),
            provenance: None,
        }
    }

    /// An experiment on a custom workload specification.
    pub fn with_spec(spec: WorkloadSpec, choice: AllocChoice) -> Self {
        let label = spec.name.clone();
        Experiment {
            source: WorkloadSource::Spec(spec),
            program_label: label,
            choice,
            opts: SimOptions::default(),
            provenance: None,
        }
    }

    /// An experiment replaying a fixed event stream — typically imported
    /// from a real program's allocation trace. The scale option is
    /// ignored for replayed streams.
    pub fn with_events(
        label: impl Into<String>,
        events: Vec<AppEvent>,
        choice: AllocChoice,
    ) -> Self {
        Experiment {
            source: WorkloadSource::Events(std::sync::Arc::new(events)),
            program_label: label.into(),
            choice,
            opts: SimOptions::default(),
            provenance: None,
        }
    }

    /// An experiment replaying a shared, already-captured event stream
    /// without copying it — the design-space sweep path: the workload's
    /// event sequence is generated once and every sweep point drives the
    /// same `Arc` through its own allocator. The scale option is ignored
    /// for event generation (the stream is fixed) but still recorded in
    /// the result; set it via [`Experiment::scale`] to the scale the
    /// events were generated at so the run is bit-identical to the same
    /// experiment built from the program spec directly.
    pub fn with_shared_events(
        label: impl Into<String>,
        events: std::sync::Arc<Vec<AppEvent>>,
        choice: AllocChoice,
    ) -> Self {
        Experiment {
            source: WorkloadSource::Events(events),
            program_label: label.into(),
            choice,
            opts: SimOptions::default(),
            provenance: None,
        }
    }

    /// Declares the workload spec a fixed event stream was generated
    /// from, giving the run the *same* stream-cache identity as a
    /// spec-built run of that workload. Only meaningful together with
    /// [`Experiment::stream_cache`] on an
    /// [`Experiment::with_shared_events`] run whose events really are
    /// `spec.events(scale)` — the shared-trace executors' invariant —
    /// in which case a populating run stores a stream that later
    /// spec-built (or provenance-declared) runs replay, and a warm run
    /// replays without touching the shared events at all. Ignored for
    /// spec-sourced runs.
    pub fn stream_source(mut self, spec: WorkloadSpec) -> Self {
        self.provenance = Some(spec);
        self
    }

    /// Sets the workload scale.
    pub fn scale(mut self, scale: Scale) -> Self {
        self.opts.scale = scale;
        self
    }

    /// Sets the cache configurations to simulate (empty disables cache
    /// simulation).
    pub fn caches(mut self, configs: Vec<CacheConfig>) -> Self {
        self.opts.cache_configs = configs;
        self
    }

    /// Enables or disables page-fault simulation.
    pub fn paging(mut self, on: bool) -> Self {
        self.opts.paging = on;
        self
    }

    /// Replaces all options at once.
    pub fn options(mut self, opts: SimOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Selects how the reference stream reaches the sinks.
    pub fn pipeline(mut self, mode: PipelineMode) -> Self {
        self.opts.pipeline = mode;
        self
    }

    /// Selects how the cache configurations are simulated.
    pub fn cache_engine(mut self, engine: CacheEngine) -> Self {
        self.opts.cache_engine = engine;
        self
    }

    /// Enables the persistent stream cache under `dir` (see
    /// [`SimOptions::stream_cache`]).
    pub fn stream_cache(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.opts.stream_cache = Some(dir.into());
        self
    }

    /// Bounds the stream-cache directory's size (see
    /// [`SimOptions::stream_cache_bytes`]).
    pub fn stream_cache_bytes(mut self, max_bytes: Option<u64>) -> Self {
        self.opts.stream_cache_bytes = max_bytes;
        self
    }

    /// Sets the sharded pipeline's per-worker channel depth (see
    /// [`SimOptions::channel_depth`]).
    pub fn channel_depth(mut self, depth: usize) -> Self {
        self.opts.channel_depth = depth;
        self
    }

    /// Builds the run's sinks in canonical order (see [`SinkShard`]):
    /// caches first — one sweep shard, or per-cache shards in
    /// configuration order — then pager, tracer, victim, three-C,
    /// two-level.
    fn build_shards(&self) -> Vec<SinkShard> {
        let mut shards: Vec<SinkShard> = Vec::new();
        let sweep = match self.opts.cache_engine {
            CacheEngine::Sweep => SweepCache::try_new(self.opts.cache_configs.iter().copied()),
            CacheEngine::PerCache => None,
        };
        match sweep {
            Some(sweep) => shards.push(SinkShard::Sweep(sweep)),
            None => shards.extend(
                self.opts.cache_configs.iter().map(|&cfg| SinkShard::Cache(Cache::new(cfg))),
            ),
        }
        if self.opts.paging {
            shards.push(SinkShard::Pager(Box::new(StackSim::paper())));
        }
        if let Some(path) = &self.opts.record_trace {
            let file = std::fs::File::create(path)
                .unwrap_or_else(|e| panic!("cannot create trace file {}: {e}", path.display()));
            shards.push(SinkShard::Tracer(trace::TraceWriter::new(std::io::BufWriter::new(file))));
        }
        let first_cache = self.opts.cache_configs.first().copied();
        if let Some(entries) = self.opts.victim_entries {
            if let Some(cfg) = first_cache {
                shards.push(SinkShard::Victim(VictimCache::new(cfg, entries)));
            }
        }
        if self.opts.three_c {
            shards.push(SinkShard::ThreeC(ThreeCAnalyzer::new(
                first_cache.expect("three_c needs a cache config"),
            )));
        }
        if self.opts.two_level {
            shards.push(SinkShard::TwoLevel(TwoLevelCache::paper_default()));
        }
        shards
    }

    /// Reborrows an optional recorder for a shorter-lived callee.
    ///
    /// `Option<&mut dyn Recorder>` is invariant in the trait object's
    /// lifetime (no coercion reaches inside `Option`), so passing
    /// `recorder.as_deref_mut()` straight to a callee pins the original
    /// borrow for the callee's whole signature lifetime. Rewrapping the
    /// `Some` arm gives the compiler a per-element coercion site.
    fn reborrow<'s>(recorder: &'s mut Option<&mut dyn Recorder>) -> Option<&'s mut dyn Recorder> {
        match recorder.as_deref_mut() {
            Some(rec) => Some(rec),
            None => None,
        }
    }

    /// The workload loop: builds the allocator, replays every event
    /// through a batching [`MemCtx`] over `sink`, and flushes. Both
    /// pipeline modes share this — the mode only decides what `sink`
    /// does with each batch.
    fn drive(
        &self,
        heap: &mut HeapImage,
        instrs: &mut InstrCounter,
        sink: &mut dyn AccessSink,
        recorder: Option<&mut dyn Recorder>,
    ) -> Result<(Vec<FragSample>, AllocStats), EngineError> {
        let mut ctx = MemCtx::batched(heap, sink, instrs);
        if let Some(rec) = recorder {
            ctx = ctx.with_recorder(rec);
        }
        ctx.set_phase(Phase::Malloc);
        ctx.obs_span_enter("engine.alloc_build");
        let mut allocator = self
            .choice
            .build(&mut ctx, &self.source)
            .map_err(|source| EngineError::Alloc { at_event: 0, source })?;
        ctx.obs_span_exit();
        ctx.set_phase(Phase::App);

        let mut objects: HashMap<u64, (Address, u32)> = HashMap::new();
        let mut frag_curve = Vec::new();
        // The stack segment sits below the heap; its traffic cycles
        // through a small hot window, as real call stacks do.
        let mut stack = StackWalker::new();
        let events: Box<dyn Iterator<Item = AppEvent>> = match &self.source {
            WorkloadSource::Spec(spec) => Box::new(spec.events(self.opts.scale)),
            WorkloadSource::Events(events) => Box::new(events.iter().copied()),
        };
        ctx.obs_span_enter("engine.events");
        for (n, event) in events.enumerate() {
            let at_event = n as u64;
            match event {
                AppEvent::Malloc { id, size, site } => {
                    ctx.set_phase(Phase::Malloc);
                    let addr = allocator
                        .malloc_at(size, site, &mut ctx)
                        .map_err(|source| EngineError::Alloc { at_event, source })?;
                    ctx.set_phase(Phase::App);
                    objects.insert(id, (addr, size));
                    let every = self.opts.frag_sample_every;
                    if every > 0 && allocator.stats().mallocs.is_multiple_of(every) {
                        frag_curve.push((
                            allocator.stats().mallocs,
                            allocator.stats().live_granted,
                            ctx.heap().in_use(),
                        ));
                    }
                }
                AppEvent::Free { id } => {
                    let (addr, _) = objects.remove(&id).expect("generator frees live ids");
                    ctx.set_phase(Phase::Free);
                    allocator
                        .free(addr, &mut ctx)
                        .map_err(|source| EngineError::Alloc { at_event, source })?;
                    ctx.set_phase(Phase::App);
                }
                AppEvent::Access { id, offset, len, write } => {
                    let &(addr, _) = objects.get(&id).expect("generator touches live ids");
                    ctx.app_touch(addr + u64::from(offset), len, write);
                }
                AppEvent::Compute { instrs } => {
                    ctx.ops(instrs);
                }
                AppEvent::Stack { words } => {
                    stack.touch(words, &mut ctx);
                }
            }
        }
        ctx.flush();
        ctx.obs_span_exit();
        Ok((frag_curve, *allocator.stats()))
    }

    /// Drives the run with every shard on its own worker (round-robin
    /// grouped when there are more shards than hardware threads), then
    /// hands the shards back in canonical order.
    #[allow(clippy::type_complexity)]
    fn run_sharded(
        &self,
        heap: &mut HeapImage,
        instrs: &mut InstrCounter,
        counting: CountingSink,
        shards: Vec<SinkShard>,
        mut recorder: Option<&mut dyn Recorder>,
    ) -> Result<(Vec<FragSample>, AllocStats, Vec<SinkShard>, CountingSink), EngineError> {
        if shards.is_empty() {
            // Only the counting fold is active: nothing to fan out.
            let mut sink = InlineSink::new(counting, shards, false);
            let (frag_curve, alloc_stats) =
                self.drive(heap, instrs, &mut sink, Self::reborrow(&mut recorder))?;
            return Ok((frag_curve, alloc_stats, sink.shards, sink.counting));
        }
        // Workers only read the clock when a recorder will consume the
        // busy times, so the uninstrumented pipeline is unchanged.
        let timed = recorder.is_some();
        let workers = shards.len().min(default_threads().max(1));
        let mut groups: Vec<Vec<(usize, SinkShard)>> = (0..workers).map(|_| Vec::new()).collect();
        for (position, shard) in shards.into_iter().enumerate() {
            groups[position % workers].push((position, shard));
        }
        std::thread::scope(|s| {
            let mut senders = Vec::with_capacity(workers);
            let mut handles = Vec::with_capacity(workers);
            for mut group in groups {
                let (tx, rx) = std::sync::mpsc::sync_channel::<Arc<Vec<RefRun>>>(
                    self.opts.channel_depth.max(1),
                );
                senders.push(tx);
                handles.push(s.spawn(move || {
                    let mut busy_ns = 0u64;
                    while let Ok(runs) = rx.recv() {
                        if timed {
                            let sw = Stopwatch::start();
                            for (_, shard) in &mut group {
                                shard.record_runs(&runs);
                            }
                            busy_ns += sw.elapsed_ns();
                        } else {
                            for (_, shard) in &mut group {
                                shard.record_runs(&runs);
                            }
                        }
                    }
                    (group, busy_ns)
                }));
            }
            let mut sink = BroadcastSink { counting, senders, send_stalls: 0 };
            let driven = self.drive(heap, instrs, &mut sink, Self::reborrow(&mut recorder));
            // Drop the senders: each channel closes, each worker drains
            // its queue and returns its shards — on error paths too.
            let BroadcastSink { counting, senders, send_stalls } = sink;
            drop(senders);
            let mut tagged: Vec<(usize, SinkShard)> = Vec::new();
            let mut busy_times = Vec::with_capacity(workers);
            for handle in handles {
                let (group, busy_ns) = handle.join().expect("pipeline worker panicked");
                tagged.extend(group);
                busy_times.push(busy_ns);
            }
            if let Some(rec) = recorder {
                rec.add("pipeline.send_stalls", send_stalls);
                rec.add("pipeline.workers", busy_times.len() as u64);
                for busy_ns in busy_times {
                    rec.span_ns("pipeline.worker_busy", busy_ns);
                }
            }
            tagged.sort_by_key(|&(position, _)| position);
            let shards = tagged.into_iter().map(|(_, shard)| shard).collect();
            let (frag_curve, alloc_stats) = driven?;
            Ok((frag_curve, alloc_stats, shards, counting))
        })
    }

    /// Drives the workload once and returns its run-compressed reference
    /// stream — the exact sequence of [`RefRun`]s every sink shard of
    /// this run would consume. Component benchmarks and equivalence
    /// tests use this to replay a realistic stream into a sink directly,
    /// without paying the workload driver on every repetition.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Alloc`] if the allocator reports an error
    /// (out of simulated memory, invalid free).
    pub fn capture_runs(&self) -> Result<Vec<RefRun>, EngineError> {
        let mut heap = HeapImage::with_limit(self.opts.heap_limit);
        let mut instrs = InstrCounter::new();
        let mut collector = RunCollector { runs: Vec::new() };
        self.drive(&mut heap, &mut instrs, &mut collector, None)?;
        Ok(collector.runs)
    }

    /// Runs the experiment to completion.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Alloc`] if the allocator reports an error
    /// (out of simulated memory, invalid free).
    pub fn run(&self) -> Result<RunResult, EngineError> {
        Ok(self.run_inner(None, false)?.result)
    }

    /// Runs the experiment with every metric delivered to `recorder`.
    ///
    /// The result is **bit-identical** to [`Experiment::run`]: recording
    /// observes the run, it never participates in it.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Alloc`] if the allocator reports an error
    /// (out of simulated memory, invalid free).
    pub fn run_with_recorder(&self, recorder: &mut dyn Recorder) -> Result<RunResult, EngineError> {
        Ok(self.run_inner(Some(recorder), false)?.result)
    }

    /// Runs the experiment with an in-memory recorder attached and
    /// returns the result together with the frozen metrics.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Alloc`] if the allocator reports an error
    /// (out of simulated memory, invalid free).
    pub fn run_instrumented(&self) -> Result<(RunResult, obs::MetricsSnapshot), EngineError> {
        let mut rec = MemoryRecorder::new();
        let outcome = self.run_inner(Some(&mut rec), true)?;
        // On a warm replay the populating run's frozen snapshot stands
        // in for the live one, keeping reports byte-identical to the
        // generated run's; the live recorder saw only replay telemetry.
        let metrics = outcome.replay_metrics.unwrap_or_else(|| rec.snapshot());
        Ok((outcome.result, metrics))
    }

    /// Runs the experiment with a hierarchical [`obs::Tracer`] attached
    /// and returns the result, the frozen flat metrics, and the span
    /// tree as an [`obs::TraceReport`] (trace id `program/allocator`).
    ///
    /// Result and metrics are **bit-identical** to
    /// [`Experiment::run_instrumented`]: span structure lives outside
    /// the tracer's flat snapshot, and on a warm replay the populating
    /// run's sidecar metrics stand in exactly as they do there.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Alloc`] if the allocator reports an error
    /// (out of simulated memory, invalid free).
    #[allow(clippy::type_complexity)]
    pub fn run_traced(
        &self,
    ) -> Result<(RunResult, obs::MetricsSnapshot, obs::TraceReport), EngineError> {
        let mut tracer = obs::Tracer::new();
        let (result, metrics) = self.run_traced_with(&mut tracer)?;
        let trace_id = format!("{}/{}", self.program_label, self.choice.label());
        let (_, trace) = tracer.finish(trace_id);
        Ok((result, metrics, trace))
    }

    /// [`Experiment::run_traced`] over a caller-owned tracer, so callers
    /// (the serve daemon) can open their own enclosing spans around the
    /// run and finish the trace themselves.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Alloc`] if the allocator reports an error
    /// (out of simulated memory, invalid free).
    pub fn run_traced_with(
        &self,
        tracer: &mut obs::Tracer,
    ) -> Result<(RunResult, obs::MetricsSnapshot), EngineError> {
        let outcome = self.run_inner(Some(tracer), true)?;
        let metrics = outcome.replay_metrics.unwrap_or_else(|| tracer.metrics_snapshot());
        Ok((outcome.result, metrics))
    }

    /// Runs the experiment instrumented and wraps the outcome in the
    /// stable JSONL schema of [`crate::run_report`].
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Alloc`] if the allocator reports an error
    /// (out of simulated memory, invalid free).
    pub fn report(&self) -> Result<crate::run_report::RunReport, EngineError> {
        let (result, metrics) = self.run_instrumented()?;
        Ok(crate::run_report::RunReport::new(result, metrics))
    }

    /// Dispatches a run: a warm stream-cache replay when one applies,
    /// the plain generated run otherwise (populating the cache when one
    /// is configured). `need_metrics` marks an instrumented run whose
    /// metrics must be byte-reusable (see [`RunOutcome`]).
    fn run_inner(
        &self,
        mut recorder: Option<&mut dyn Recorder>,
        need_metrics: bool,
    ) -> Result<RunOutcome, EngineError> {
        let Some(key) = self.stream_key() else {
            let result = self.run_generated(Self::reborrow(&mut recorder))?;
            return Ok(RunOutcome { result, replay_metrics: None });
        };
        let cache =
            StreamCache::new(self.opts.stream_cache.as_ref().expect("key implies directory"))
                .with_max_bytes(self.opts.stream_cache_bytes);
        if let Some(rec) = Self::reborrow(&mut recorder) {
            rec.span_enter("stream_cache.probe");
        }
        // Stored-result fast path: when the sidecar alone already
        // answers this run (same options fingerprint, finalized result
        // stored), the stream body — routinely hundreds of megabytes —
        // is never decoded and no sinks are built. Runs recording a
        // reference trace file always replay instead: the file is a
        // side effect a stored result cannot reproduce.
        if self.opts.record_trace.is_none() {
            if let SidecarLookup::Hit(bytes) = cache.load_sidecar(key) {
                if let Ok(sidecar) = std::str::from_utf8(&bytes)
                    .map_err(|_| ())
                    .and_then(|text| serde_json::from_str::<StreamSidecar>(text).map_err(|_| ()))
                {
                    if sidecar.options_fp == self.options_fingerprint() {
                        if let Some(result) = sidecar.result {
                            if let Some(rec) = Self::reborrow(&mut recorder) {
                                rec.add("stream_cache.hit", 1);
                                rec.add("stream_cache.result_fastpath", 1);
                                rec.span_exit();
                            }
                            return Ok(RunOutcome {
                                result,
                                replay_metrics: need_metrics.then_some(sidecar.metrics),
                            });
                        }
                    }
                }
            }
        }
        let lookup = cache.load_recorded(key, Self::reborrow(&mut recorder));
        if let Some(rec) = Self::reborrow(&mut recorder) {
            rec.span_exit();
        }
        let lookup_counter = match lookup {
            CacheLookup::Hit { stream, memoized } => {
                if memoized {
                    if let Some(rec) = Self::reborrow(&mut recorder) {
                        rec.add("stream_cache.decode_memo", 1);
                    }
                }
                match self.try_replay(&stream, &mut recorder, need_metrics)? {
                    Some(outcome) => return Ok(outcome),
                    // The stream was usable but its sidecar was not (a
                    // foreign sidecar shape, or an instrumented run over
                    // a different sink configuration): regenerate and
                    // overwrite, last writer wins.
                    None => "stream_cache.sidecar_mismatch",
                }
            }
            CacheLookup::Miss => "stream_cache.miss",
            CacheLookup::Invalid(_) => "stream_cache.invalid",
        };
        self.run_and_populate(&cache, key, lookup_counter, recorder)
    }

    /// The stream-cache content key of this run's driver identity, when
    /// the cache applies: every input the generated reference stream
    /// (and the driver-side sidecar fields) depends on — workload
    /// specification (program and seed included), allocator choice,
    /// scale, heap limit, fragmentation sampling — plus the format
    /// version, so a format bump cold-starts the cache. `None` when no
    /// cache directory is configured or the workload is a fixed event
    /// stream of unknown provenance (an imported trace: nothing to skip
    /// regenerating is known about it, so it is never cached). A fixed
    /// stream *with* declared provenance ([`Experiment::stream_source`])
    /// keys exactly as the spec-built run would, so shared-trace sweep
    /// points populate — and replay — the same cache entries as direct
    /// runs.
    fn stream_key(&self) -> Option<u64> {
        self.opts.stream_cache.as_ref()?;
        let spec = match &self.source {
            WorkloadSource::Spec(spec) => spec,
            WorkloadSource::Events(_) => self.provenance.as_ref()?,
        };
        let spec_json = serde_json::to_string(spec).expect("workload spec serializes");
        let mut h = Fnv64::new();
        h.write_u64(u64::from(STREAM_FORMAT_VERSION));
        h.write(self.program_label.as_bytes());
        h.write(&[0]);
        h.write(spec_json.as_bytes());
        h.write(&[0]);
        h.write(self.choice.label().as_bytes());
        h.write(&[0]);
        h.write_u64(self.opts.scale.0.to_bits());
        h.write_u64(self.opts.heap_limit);
        h.write_u64(self.opts.frag_sample_every);
        Some(h.finish())
    }

    /// Predicts whether this run would find its stream in the cache:
    /// `None` when the stream cache does not apply to it at all (no
    /// directory configured, or a fixed stream without provenance),
    /// otherwise whether the keyed stream file exists right now. A
    /// metadata-only probe — nothing is read, decoded, or validated —
    /// so the answer is telemetry (sweep-level hit/miss counts), not a
    /// replay guarantee: a corrupt or sidecar-mismatched entry still
    /// probes `Some(true)` and the run quietly falls back to generating.
    pub fn stream_cached(&self) -> Option<bool> {
        let key = self.stream_key()?;
        let cache =
            StreamCache::new(self.opts.stream_cache.as_ref().expect("key implies directory"))
                .with_max_bytes(self.opts.stream_cache_bytes);
        Some(cache.contains(key))
    }

    /// Fingerprint of the *sink-side* options: everything a run's
    /// metrics snapshot depends on beyond the stream key (which sinks
    /// exist, how the stream reaches them). A stored snapshot is only
    /// reused when this matches; results themselves never consult it.
    fn options_fingerprint(&self) -> u64 {
        let o = &self.opts;
        let desc = format!(
            "{}|{:?}|{:?}|{}|{}|{:?}|{}|{}|{:?}|{}",
            // The allocator choice label spells out every tuning knob
            // (split threshold, fast-list bound, rounding classes, ...),
            // so sidecar metrics recorded for one configuration can
            // never be reported for another.
            self.choice.label(),
            o.cache_configs,
            o.cache_engine,
            o.paging,
            o.record_trace.is_some(),
            o.victim_entries,
            o.three_c,
            o.two_level,
            o.pipeline,
            // The channel depth shapes pipeline metrics (send_stalls,
            // worker_busy), so snapshots taken at one depth must not be
            // reported for another.
            o.channel_depth
        );
        fnv1a(desc.as_bytes())
    }

    /// Replays a decoded stream into this run's sinks, if its sidecar
    /// is usable: `Ok(None)` demotes the hit to a populating run.
    fn try_replay(
        &self,
        decoded: &sim_mem::DecodedStream,
        recorder: &mut Option<&mut dyn Recorder>,
        need_metrics: bool,
    ) -> Result<Option<RunOutcome>, EngineError> {
        let Ok(sidecar) = std::str::from_utf8(&decoded.sidecar)
            .map_err(|_| ())
            .and_then(|text| serde_json::from_str::<StreamSidecar>(text).map_err(|_| ()))
        else {
            return Ok(None);
        };
        if need_metrics && sidecar.options_fp != self.options_fingerprint() {
            return Ok(None);
        }
        if let Some(rec) = recorder.as_deref_mut() {
            rec.add("stream_cache.hit", 1);
        }
        if let Some(rec) = recorder.as_deref_mut() {
            rec.span_enter("engine.replay");
        }
        let replay_sw = Stopwatch::start();
        let shards = self.replay_into_shards(&decoded.runs, self.build_shards(), recorder);
        if let Some(rec) = recorder.as_deref_mut() {
            rec.span_ns("engine.replay", replay_sw.elapsed_ns());
            for shard in &shards {
                if let Some((name, refs)) = shard.fastpath_refs() {
                    rec.add(name, refs);
                }
            }
            rec.span_exit();
            rec.span_enter("engine.finalize");
        }
        let finalize_sw = Stopwatch::start();
        let parts = finalize_shards(shards);
        if let Some(rec) = recorder.as_deref_mut() {
            rec.span_ns("engine.finalize", finalize_sw.elapsed_ns());
            rec.span_exit();
        }
        let result = RunResult {
            program: self.program_label.clone(),
            allocator: self.choice.label(),
            scale: self.opts.scale.0,
            instrs: sidecar.instrs,
            trace: sidecar.trace,
            cache: parts.cache,
            fault_curve: parts.fault_curve,
            victim: parts.victim,
            three_c: parts.three_c,
            two_level: parts.two_level,
            frag_curve: sidecar.frag_curve,
            heap_high_water: sidecar.heap_high_water,
            alloc_stats: sidecar.alloc_stats,
        };
        Ok(Some(RunOutcome { result, replay_metrics: need_metrics.then_some(sidecar.metrics) }))
    }

    /// Delivers an already-captured stream to the shards under the
    /// run's pipeline mode — the warm-path replacement for
    /// [`Experiment::drive`]. Sharded delivery needs no channels: the
    /// whole stream is already in memory, so each worker walks the
    /// slice once for its shard group.
    fn replay_into_shards(
        &self,
        runs: &[RefRun],
        mut shards: Vec<SinkShard>,
        recorder: &mut Option<&mut dyn Recorder>,
    ) -> Vec<SinkShard> {
        match self.opts.pipeline {
            PipelineMode::Inline => match recorder.as_deref_mut() {
                None => {
                    for shard in &mut shards {
                        shard.record_runs(runs);
                    }
                    shards
                }
                Some(rec) => {
                    for shard in &mut shards {
                        let sw = Stopwatch::start();
                        shard.record_runs(runs);
                        rec.span_ns(shard.label(), sw.elapsed_ns());
                    }
                    shards
                }
            },
            PipelineMode::Sharded => {
                if shards.is_empty() {
                    return shards;
                }
                let timed = recorder.is_some();
                let workers = shards.len().min(default_threads().max(1));
                let mut groups: Vec<Vec<(usize, SinkShard)>> =
                    (0..workers).map(|_| Vec::new()).collect();
                for (position, shard) in shards.drain(..).enumerate() {
                    groups[position % workers].push((position, shard));
                }
                let mut tagged: Vec<(usize, SinkShard)> = Vec::new();
                let mut busy_times = Vec::with_capacity(workers);
                std::thread::scope(|s| {
                    let handles: Vec<_> = groups
                        .into_iter()
                        .map(|mut group| {
                            s.spawn(move || {
                                let sw = timed.then(Stopwatch::start);
                                for (_, shard) in &mut group {
                                    shard.record_runs(runs);
                                }
                                (group, sw.map_or(0, |sw| sw.elapsed_ns()))
                            })
                        })
                        .collect();
                    for handle in handles {
                        let (group, busy_ns) = handle.join().expect("replay worker panicked");
                        tagged.extend(group);
                        busy_times.push(busy_ns);
                    }
                });
                if let Some(rec) = recorder.as_deref_mut() {
                    rec.add("pipeline.workers", busy_times.len() as u64);
                    for busy_ns in busy_times {
                        rec.span_ns("pipeline.worker_busy", busy_ns);
                    }
                }
                tagged.sort_by_key(|&(position, _)| position);
                tagged.into_iter().map(|(_, shard)| shard).collect()
            }
        }
    }

    /// A cold run that also captures its stream and stores it (with the
    /// sidecar holding everything a replay cannot reconstruct) under
    /// `key`. The stream is captured once and then *replayed* into the
    /// shards through the same code path a warm run uses, so the two
    /// paths cannot drift. `lookup_counter` records why the cache did
    /// not answer. A failed store is a missed optimization, never a
    /// failed run.
    fn run_and_populate(
        &self,
        cache: &StreamCache,
        key: u64,
        lookup_counter: &'static str,
        user: Option<&mut dyn Recorder>,
    ) -> Result<RunOutcome, EngineError> {
        let mut tee = TeeRecorder { mem: MemoryRecorder::new(), user };
        tee.add(lookup_counter, 1);
        let mut heap = HeapImage::with_limit(self.opts.heap_limit);
        let mut instrs = InstrCounter::new();
        let mut capture = CaptureSink { counting: CountingSink::new(), runs: Vec::new() };
        tee.span_enter("engine.drive");
        let drive_sw = Stopwatch::start();
        let (frag_curve, alloc_stats) =
            self.drive(&mut heap, &mut instrs, &mut capture, Some(&mut tee))?;
        tee.span_ns("engine.drive", drive_sw.elapsed_ns());
        tee.span_exit();

        tee.span_enter("engine.replay");
        let replay_sw = Stopwatch::start();
        let shards = {
            let mut recorder: Option<&mut dyn Recorder> = Some(&mut tee);
            self.replay_into_shards(&capture.runs, self.build_shards(), &mut recorder)
        };
        tee.span_ns("engine.replay", replay_sw.elapsed_ns());
        for shard in &shards {
            if let Some((name, refs)) = shard.fastpath_refs() {
                tee.add(name, refs);
            }
        }
        tee.span_exit();
        tee.span_enter("engine.finalize");
        let finalize_sw = Stopwatch::start();
        let parts = finalize_shards(shards);
        tee.span_ns("engine.finalize", finalize_sw.elapsed_ns());
        tee.span_exit();
        // Counts the store *attempt*, and does so before the snapshot is
        // frozen so the stored metrics equal what the caller's recorder
        // observed on this run.
        tee.add("stream_cache.store", 1);

        let trace = capture.counting.stats();
        let heap_high_water = heap.high_water();
        let result = RunResult {
            program: self.program_label.clone(),
            allocator: self.choice.label(),
            scale: self.opts.scale.0,
            instrs,
            trace,
            cache: parts.cache,
            fault_curve: parts.fault_curve,
            victim: parts.victim,
            three_c: parts.three_c,
            two_level: parts.two_level,
            frag_curve,
            heap_high_water,
            alloc_stats,
        };
        let sidecar = StreamSidecar {
            options_fp: self.options_fingerprint(),
            instrs,
            trace,
            frag_curve: result.frag_curve.clone(),
            heap_high_water,
            alloc_stats,
            metrics: tee.mem.snapshot(),
            result: Some(result.clone()),
        };
        let sidecar_json = serde_json::to_string(&sidecar).expect("sidecar serializes");
        let _ = cache.store(key, sidecar_json.as_bytes(), &capture.runs);
        Ok(RunOutcome { result, replay_metrics: None })
    }

    /// The plain generated run: drive the workload straight into the
    /// sinks under the configured pipeline mode (the original engine
    /// path, untouched by the stream cache).
    fn run_generated(
        &self,
        mut recorder: Option<&mut dyn Recorder>,
    ) -> Result<RunResult, EngineError> {
        let mut heap = HeapImage::with_limit(self.opts.heap_limit);
        let mut instrs = InstrCounter::new();
        let counting = CountingSink::new();
        let shards = self.build_shards();
        if let Some(rec) = recorder.as_deref_mut() {
            rec.span_enter("engine.drive");
        }
        let drive_sw = Stopwatch::start();
        let (frag_curve, alloc_stats, shards, counting) = match self.opts.pipeline {
            PipelineMode::Inline => {
                let mut sink = InlineSink::new(counting, shards, recorder.is_some());
                let (frag_curve, alloc_stats) =
                    self.drive(&mut heap, &mut instrs, &mut sink, Self::reborrow(&mut recorder))?;
                if let (Some(rec), Some(times)) = (recorder.as_deref_mut(), &sink.timings) {
                    for (shard, &spent) in sink.shards.iter().zip(times.iter()) {
                        rec.span_ns(shard.label(), spent);
                    }
                }
                (frag_curve, alloc_stats, sink.shards, sink.counting)
            }
            PipelineMode::Sharded => self.run_sharded(
                &mut heap,
                &mut instrs,
                counting,
                shards,
                Self::reborrow(&mut recorder),
            )?,
        };
        if let Some(rec) = recorder.as_deref_mut() {
            rec.span_ns("engine.drive", drive_sw.elapsed_ns());
            for shard in &shards {
                if let Some((name, refs)) = shard.fastpath_refs() {
                    rec.add(name, refs);
                }
            }
            rec.span_exit();
            rec.span_enter("engine.finalize");
        }

        let finalize_sw = Stopwatch::start();
        let parts = finalize_shards(shards);
        if let Some(rec) = recorder {
            rec.span_ns("engine.finalize", finalize_sw.elapsed_ns());
            rec.span_exit();
        }

        Ok(RunResult {
            program: self.program_label.clone(),
            allocator: self.choice.label(),
            scale: self.opts.scale.0,
            instrs,
            trace: counting.stats(),
            cache: parts.cache,
            fault_curve: parts.fault_curve,
            victim: parts.victim,
            three_c: parts.three_c,
            two_level: parts.two_level,
            frag_curve,
            heap_high_water: heap.high_water(),
            alloc_stats,
        })
    }
}

/// A collection of runs, indexed by program and allocator label.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Matrix {
    /// The member runs.
    pub runs: Vec<RunResult>,
}

impl Matrix {
    /// Finds a run by program and allocator label.
    pub fn get(&self, program: &str, allocator: &str) -> Option<&RunResult> {
        self.runs.iter().find(|r| r.program == program && r.allocator == allocator)
    }

    /// Distinct program labels, in insertion order.
    pub fn programs(&self) -> Vec<&str> {
        let mut seen = Vec::new();
        for r in &self.runs {
            if !seen.contains(&r.program.as_str()) {
                seen.push(r.program.as_str());
            }
        }
        seen
    }

    /// Distinct allocator labels, in insertion order.
    pub fn allocators(&self) -> Vec<&str> {
        let mut seen = Vec::new();
        for r in &self.runs {
            if !seen.contains(&r.allocator.as_str()) {
                seen.push(r.allocator.as_str());
            }
        }
        seen
    }

    /// Merges another matrix's runs into this one.
    pub fn extend(&mut self, other: Matrix) {
        self.runs.extend(other.runs);
    }
}

/// Runs the full program × allocator sweep in parallel (a worker pool of
/// `available_parallelism` threads over the job list) and returns the
/// results in job order.
///
/// # Errors
///
/// Returns the first [`EngineError`] any run produced.
pub fn standard_matrix(
    programs: &[Program],
    choices: &[AllocChoice],
    opts: &SimOptions,
) -> Result<Matrix, EngineError> {
    standard_matrix_with(programs, choices, opts, default_threads())
}

/// [`standard_matrix`] with an explicit worker-pool size.
///
/// # Errors
///
/// Returns the first [`EngineError`] any run produced.
pub fn standard_matrix_with(
    programs: &[Program],
    choices: &[AllocChoice],
    opts: &SimOptions,
    threads: usize,
) -> Result<Matrix, EngineError> {
    let jobs: Vec<Experiment> = programs
        .iter()
        .flat_map(|&p| {
            choices.iter().map(move |c| Experiment::new(p, c.clone()).options(opts.clone()))
        })
        .collect();
    run_parallel_with(jobs, threads)
}

/// Runs a list of experiments on a thread pool, preserving order.
///
/// # Errors
///
/// Returns the first [`EngineError`] any run produced.
pub fn run_parallel(jobs: Vec<Experiment>) -> Result<Matrix, EngineError> {
    run_parallel_with(jobs, default_threads())
}

/// The default worker count: one per hardware thread.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4)
}

/// Runs a list of experiments on a pool of exactly `threads` workers
/// (clamped to the job count), preserving order.
///
/// # Errors
///
/// Returns the first [`EngineError`] any run produced.
pub fn run_parallel_with(jobs: Vec<Experiment>, threads: usize) -> Result<Matrix, EngineError> {
    let runs = pool_map(jobs, threads, |exp| exp.run(), |_, _| {})?;
    Ok(Matrix { runs })
}

/// [`run_parallel_with`], invoking `progress(completed_so_far, run)`
/// after each experiment finishes (from whichever worker finished it —
/// the callback must be `Sync`). Drives `repro --verbose`.
///
/// # Errors
///
/// Returns the first [`EngineError`] any run produced.
pub fn run_parallel_progress(
    jobs: Vec<Experiment>,
    threads: usize,
    progress: impl Fn(usize, &RunResult) + Sync,
) -> Result<Matrix, EngineError> {
    let runs = pool_map(jobs, threads, |exp| exp.run(), |done, r: &RunResult| progress(done, r))?;
    Ok(Matrix { runs })
}

/// Runs every experiment instrumented (an in-memory recorder each) on a
/// worker pool, returning `(result, metrics)` pairs in job order and
/// invoking `progress(completed_so_far, result)` per finished cell.
///
/// # Errors
///
/// Returns the first [`EngineError`] any run produced.
#[allow(clippy::type_complexity)]
pub fn run_parallel_instrumented(
    jobs: Vec<Experiment>,
    threads: usize,
    progress: impl Fn(usize, &RunResult) + Sync,
) -> Result<Vec<(RunResult, obs::MetricsSnapshot)>, EngineError> {
    pool_map(
        jobs,
        threads,
        |exp| exp.run_instrumented(),
        |done, pair: &(RunResult, obs::MetricsSnapshot)| progress(done, &pair.0),
    )
}

/// Runs every experiment with a hierarchical tracer (one span tree per
/// cell) on a worker pool, returning `(result, metrics, trace)` triples
/// in job order and invoking `progress(completed_so_far, result)` per
/// finished cell. Results and metrics are bit-identical to
/// [`run_parallel_instrumented`]. Drives `repro --trace`.
///
/// # Errors
///
/// Returns the first [`EngineError`] any run produced.
#[allow(clippy::type_complexity)]
pub fn run_parallel_traced(
    jobs: Vec<Experiment>,
    threads: usize,
    progress: impl Fn(usize, &RunResult) + Sync,
) -> Result<Vec<(RunResult, obs::MetricsSnapshot, obs::TraceReport)>, EngineError> {
    pool_map(
        jobs,
        threads,
        |exp| exp.run_traced(),
        |done, triple: &(RunResult, obs::MetricsSnapshot, obs::TraceReport)| {
            progress(done, &triple.0);
        },
    )
}

/// The shared worker pool: a `Mutex`-guarded job queue drained by scoped
/// threads, results reassembled in job order. `done` is called with the
/// number of completed jobs (1-based) after each one.
fn pool_map<T: Send>(
    jobs: Vec<Experiment>,
    threads: usize,
    work: impl Fn(&Experiment) -> Result<T, EngineError> + Sync,
    done: impl Fn(usize, &T) + Sync,
) -> Result<Vec<T>, EngineError> {
    let n = jobs.len();
    let results: Mutex<Vec<Option<Result<T, EngineError>>>> =
        Mutex::new((0..n).map(|_| None).collect());
    let queue: Mutex<Vec<(usize, Experiment)>> = Mutex::new(jobs.into_iter().enumerate().collect());
    let completed = std::sync::atomic::AtomicUsize::new(0);
    let workers = threads.max(1).min(n.max(1));
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let job = queue.lock().expect("queue lock").pop();
                match job {
                    Some((idx, exp)) => {
                        let result = work(&exp);
                        if let Ok(value) = &result {
                            let so_far =
                                completed.fetch_add(1, std::sync::atomic::Ordering::SeqCst) + 1;
                            done(so_far, value);
                        }
                        results.lock().expect("results lock")[idx] = Some(result);
                    }
                    None => break,
                }
            });
        }
    });
    let mut out = Vec::with_capacity(n);
    for slot in results.into_inner().expect("results lock") {
        out.push(slot.expect("every job ran")?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts() -> SimOptions {
        SimOptions {
            cache_configs: vec![CacheConfig::direct_mapped(16 * 1024, 32)],
            paging: true,
            scale: Scale(0.002),
            ..SimOptions::default()
        }
    }

    #[test]
    fn run_produces_consistent_counts() {
        let r = Experiment::new(Program::Make, AllocChoice::Paper(AllocatorKind::Bsd))
            .options(quick_opts())
            .run()
            .unwrap();
        assert_eq!(r.program, "make");
        assert_eq!(r.allocator, "BSD");
        assert!(r.alloc_stats.mallocs > 0);
        assert!(r.alloc_stats.frees <= r.alloc_stats.mallocs);
        assert!(r.trace.app_refs() > 0);
        assert!(r.trace.meta_refs() > 0);
        assert!(r.instrs.phase_total(Phase::Malloc) > 0);
        assert!(r.heap_high_water > 0);
        let (_, cache) = &r.cache[0];
        // A reference produces one cache access per block it spans, so
        // block-level accesses are at least the trace records and at most
        // the word count.
        assert!(cache.accesses() >= r.trace.total_refs());
        assert!(cache.accesses() <= r.data_refs());
        assert!(r.fault_curve.is_some());
    }

    #[test]
    fn identical_experiments_are_deterministic() {
        let mk = || {
            Experiment::new(Program::Gawk, AllocChoice::Paper(AllocatorKind::QuickFit))
                .options(quick_opts())
                .run()
                .unwrap()
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.instrs, b.instrs);
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.cache[0].1, b.cache[0].1);
        assert_eq!(a.heap_high_water, b.heap_high_water);
    }

    #[test]
    fn all_five_allocators_complete_all_five_programs() {
        let opts = SimOptions { scale: Scale(0.001), ..quick_opts() };
        let m = standard_matrix(&Program::FIVE, &AllocChoice::paper_five(), &opts).unwrap();
        assert_eq!(m.runs.len(), 25);
        assert_eq!(m.programs().len(), 5);
        assert_eq!(m.allocators().len(), 5);
        for r in &m.runs {
            assert!(r.alloc_stats.mallocs > 0, "{}/{} did nothing", r.program, r.allocator);
        }
    }

    #[test]
    fn fragmentation_sampling_produces_a_curve() {
        let r = Experiment::new(Program::Gawk, AllocChoice::Paper(AllocatorKind::FirstFit))
            .options(SimOptions {
                cache_configs: vec![],
                paging: false,
                scale: Scale(0.003),
                frag_sample_every: 500,
                ..SimOptions::default()
            })
            .run()
            .unwrap();
        assert!(r.frag_curve.len() >= 5, "expected samples, got {}", r.frag_curve.len());
        for &(allocs, live, heap) in &r.frag_curve {
            assert!(allocs > 0);
            assert!(live <= heap, "live {live} cannot exceed heap {heap}");
        }
        // Samples are ordered and the heap never shrinks (sbrk only).
        for w in r.frag_curve.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].2 <= w[1].2);
        }
    }

    #[test]
    fn custom_allocator_runs_via_profile() {
        let r = Experiment::new(Program::Espresso, AllocChoice::Custom)
            .options(quick_opts())
            .run()
            .unwrap();
        assert_eq!(r.allocator, "Custom");
        assert!(r.alloc_stats.mallocs > 0);
    }

    #[test]
    fn tagged_gnu_local_touches_more_metadata() {
        let plain = Experiment::new(Program::Make, AllocChoice::Paper(AllocatorKind::GnuLocal))
            .options(quick_opts())
            .run()
            .unwrap();
        let tagged = Experiment::new(Program::Make, AllocChoice::GnuLocalTagged)
            .options(quick_opts())
            .run()
            .unwrap();
        // The emulated tags inflate every object by 8 bytes, so granted
        // space strictly grows. (Metadata *reference* counts can move
        // either way: bigger classes mean fewer fragments per chunk
        // carve, which can offset the per-object tag touches.)
        // (Chunk-granular sbrk makes heap_high_water non-monotone in the
        // class mix, so granted bytes are the reliable signal.)
        assert!(tagged.alloc_stats.peak_granted > plain.alloc_stats.peak_granted);
    }

    #[test]
    fn sample_profile_reflects_the_mixture() {
        let profile = sample_profile(&Program::Gawk.spec(), 2000);
        assert_eq!(profile.total(), 2000);
        // 16 bytes dominates gawk's mixture.
        assert_eq!(profile.top_sizes(1), vec![16]);
    }

    #[test]
    fn first_fit_spends_more_time_allocating_than_bsd() {
        // Figure 1's headline, in miniature.
        let ff = Experiment::new(Program::Espresso, AllocChoice::Paper(AllocatorKind::FirstFit))
            .options(quick_opts())
            .run()
            .unwrap();
        let bsd = Experiment::new(Program::Espresso, AllocChoice::Paper(AllocatorKind::Bsd))
            .options(quick_opts())
            .run()
            .unwrap();
        assert!(
            ff.alloc_fraction() > bsd.alloc_fraction(),
            "FirstFit {:.4} should exceed BSD {:.4}",
            ff.alloc_fraction(),
            bsd.alloc_fraction()
        );
    }
}
