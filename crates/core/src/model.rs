//! The paper's execution-time model.
//!
//! §4.2: "If an application executed I instructions with D data
//! references, a data cache miss rate of M and a miss penalty of P, we
//! estimated the total execution time to be I + (M × P)D. We assume all
//! instructions, including loads and stores, complete in a single machine
//! cycle, and ignore the effects of page faults \[and\] instruction cache
//! misses." Since `M × D` is simply the miss count, the model is
//! `cycles = instructions + misses × penalty`.
//!
//! Seconds are derived at the 25 MHz clock of the paper's test vehicle
//! (DECstation 5000/120), purely so tables print in familiar units.

use serde::{Deserialize, Serialize};

/// The paper's "modest cache miss penalty" used for Figures 4–5 and
/// Tables 4–5.
pub const MISS_PENALTY_CYCLES: u64 = 25;

/// Clock rate of the DECstation 5000/120 (25 MHz R3000).
pub const CLOCK_HZ: f64 = 25_000_000.0;

/// Total estimated cycles: `I + misses × P`.
pub fn estimated_cycles(instructions: u64, misses: u64, penalty: u64) -> u64 {
    instructions + misses * penalty
}

/// Converts cycles to seconds at the paper's clock rate.
pub fn estimated_seconds(cycles: u64) -> f64 {
    cycles as f64 / CLOCK_HZ
}

/// An execution-time estimate broken into its components, as Tables 4
/// and 5 print it ("Total time (sec) / Miss time (sec)").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeEstimate {
    /// Instructions executed.
    pub instructions: u64,
    /// Data-cache misses.
    pub misses: u64,
    /// Miss penalty in cycles.
    pub penalty: u64,
}

impl TimeEstimate {
    /// Total cycles.
    pub fn cycles(&self) -> u64 {
        estimated_cycles(self.instructions, self.misses, self.penalty)
    }

    /// Cycles spent waiting on cache misses.
    pub fn miss_cycles(&self) -> u64 {
        self.misses * self.penalty
    }

    /// Total estimated seconds.
    pub fn total_seconds(&self) -> f64 {
        estimated_seconds(self.cycles())
    }

    /// Seconds spent waiting on cache misses.
    pub fn miss_seconds(&self) -> f64 {
        estimated_seconds(self.miss_cycles())
    }

    /// Fraction of execution time attributable to cache misses.
    pub fn miss_fraction(&self) -> f64 {
        if self.cycles() == 0 {
            0.0
        } else {
            self.miss_cycles() as f64 / self.cycles() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_follow_the_paper_formula() {
        assert_eq!(estimated_cycles(1000, 10, 25), 1250);
        assert_eq!(estimated_cycles(1000, 0, 25), 1000);
    }

    #[test]
    fn seconds_at_25mhz() {
        assert!((estimated_seconds(25_000_000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn estimate_decomposition() {
        let t = TimeEstimate { instructions: 1_000_000, misses: 10_000, penalty: 25 };
        assert_eq!(t.cycles(), 1_250_000);
        assert_eq!(t.miss_cycles(), 250_000);
        assert!((t.miss_fraction() - 0.2).abs() < 1e-12);
        assert!((t.total_seconds() - 0.05).abs() < 1e-12);
        assert!((t.miss_seconds() - 0.01).abs() < 1e-12);
    }
}
