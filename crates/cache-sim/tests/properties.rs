//! Property tests for the cache simulator.

use proptest::prelude::*;

use cache_sim::reference::ReferenceSweepCache;
use cache_sim::{Cache, CacheBank, CacheConfig, SweepCache, ThreeCAnalyzer, VictimCache};
use sim_mem::{AccessSink, Address, MemRef, RefRun};

fn refs_strategy() -> impl Strategy<Value = Vec<(u64, u32)>> {
    proptest::collection::vec((0u64..1_000_000, 1u32..256), 1..500)
}

fn to_runs(entries: Vec<(u64, u32, u32, u8)>) -> Vec<RefRun> {
    entries
        .into_iter()
        .map(|(addr, len, count, kind)| {
            let a = Address::new(addr);
            let r = match kind {
                0 => MemRef::app_read(a, len),
                1 => MemRef::app_write(a, len),
                2 => MemRef::meta_read(a, len),
                _ => MemRef::meta_write(a, len),
            };
            RefRun { r, count }
        })
        .collect()
}

/// Arbitrary run-compressed streams: mixed classes, multi-block spans,
/// and repeat counts past the short-circuit fast path.
fn runs_strategy() -> impl Strategy<Value = Vec<RefRun>> {
    proptest::collection::vec((0u64..100_000, 1u32..300, 1u32..50, 0u8..4), 1..200)
        .prop_map(to_runs)
}

/// Streams dominated by *repeated multi-block* references straddling
/// block boundaries: every length spans at least two 32-byte blocks,
/// ranging up to spans wider than the smallest paper-sweep member
/// (512 lines), and every run repeats — the worst case for the span
/// fast path's residency argument. Addresses cluster so spans overlap
/// and conflict across runs.
fn straddling_runs_strategy() -> impl Strategy<Value = Vec<RefRun>> {
    proptest::collection::vec((0u64..60_000, 33u32..20_000, 2u32..40, 0u8..4), 1..100)
        .prop_map(to_runs)
}

/// Expands a run-compressed stream back into raw references.
fn expand(runs: &[RefRun]) -> Vec<MemRef> {
    let mut refs = Vec::new();
    for run in runs {
        for _ in 0..run.count {
            refs.push(run.r);
        }
    }
    refs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Cold misses equal the number of distinct blocks ever touched, for
    /// any geometry.
    #[test]
    fn cold_misses_are_distinct_blocks(
        refs in refs_strategy(),
        size_kb in prop_oneof![Just(1u32), Just(16), Just(64)],
        assoc in prop_oneof![Just(1u32), Just(2), Just(8)],
    ) {
        let mut cache = Cache::new(CacheConfig::set_associative(size_kb * 1024, 32, assoc));
        let mut blocks = std::collections::HashSet::new();
        for &(addr, len) in &refs {
            let r = MemRef::app_read(Address::new(addr), len);
            blocks.extend(r.blocks(32));
            cache.access(r);
        }
        prop_assert_eq!(cache.stats().cold_misses, blocks.len() as u64);
    }

    /// Misses never exceed block touches; accesses count words.
    #[test]
    fn counters_are_consistent(refs in refs_strategy()) {
        let mut cache = Cache::new(CacheConfig::direct_mapped(16 * 1024, 32));
        let mut words = 0u64;
        let mut block_touches = 0u64;
        for &(addr, len) in &refs {
            let r = MemRef::app_write(Address::new(addr), len);
            words += u64::from(len.div_ceil(4));
            block_touches += r.blocks(32).count() as u64;
            cache.access(r);
        }
        prop_assert_eq!(cache.stats().accesses(), words);
        prop_assert!(cache.stats().misses() <= block_touches);
        prop_assert!(cache.stats().cold_misses <= cache.stats().misses());
    }

    /// LRU inclusion within a set: doubling associativity at a fixed set
    /// count (i.e. doubling capacity) never increases misses.
    #[test]
    fn higher_associativity_same_sets_never_misses_more(refs in refs_strategy()) {
        let sets = 128u32;
        let mut small = Cache::new(CacheConfig::set_associative(sets * 32 * 2, 32, 2));
        let mut large = Cache::new(CacheConfig::set_associative(sets * 32 * 4, 32, 4));
        for &(addr, len) in &refs {
            let r = MemRef::app_read(Address::new(addr), len);
            small.access(r);
            large.access(r);
        }
        prop_assert!(large.stats().misses() <= small.stats().misses());
    }

    /// A working set no larger than the cache, revisited after a warmup
    /// pass, produces no further misses in a fully covering scan
    /// (fully-associative behaviour approximated with high assoc).
    #[test]
    fn warm_working_set_hits(nblocks in 1u64..256) {
        let mut cache = Cache::new(CacheConfig::set_associative(8 * 1024, 32, 256));
        for round in 0..3u32 {
            for b in 0..nblocks {
                cache.access(MemRef::app_read(Address::new(b * 32), 4));
            }
            if round == 0 {
                prop_assert_eq!(cache.stats().misses(), nblocks);
            }
        }
        prop_assert_eq!(cache.stats().misses(), nblocks, "warm set must not miss");
    }

    /// Batch delivery is invisible: chopping the stream into batches at
    /// arbitrary boundaries (including empty batches) via `record_batch`
    /// leaves a cache in exactly the state per-record delivery does.
    #[test]
    fn batch_boundaries_are_invisible(
        refs in refs_strategy(),
        cuts in proptest::collection::vec(0usize..=500, 0..16),
        assoc in prop_oneof![Just(1u32), Just(4)],
    ) {
        let cfg = CacheConfig::set_associative(16 * 1024, 32, assoc);
        let stream: Vec<MemRef> =
            refs.iter().map(|&(a, l)| MemRef::app_read(Address::new(a), l)).collect();

        let mut per_record = Cache::new(cfg);
        for &r in &stream {
            per_record.record(r);
        }

        let mut bounds: Vec<usize> = cuts.iter().map(|&c| c % (stream.len() + 1)).collect();
        bounds.sort_unstable();
        let mut batched = Cache::new(cfg);
        let mut prev = 0;
        for &b in &bounds {
            batched.record_batch(&stream[prev..b]);
            prev = b;
        }
        batched.record_batch(&stream[prev..]);

        prop_assert_eq!(per_record.stats(), batched.stats());
    }

    /// The bank's loop-inverted `record_batch` agrees with per-record
    /// delivery for every member.
    #[test]
    fn bank_batching_is_invisible(refs in refs_strategy(), cut in 0usize..=500) {
        let cfg_a = CacheConfig::direct_mapped(16 * 1024, 32);
        let cfg_b = CacheConfig::set_associative(32 * 1024, 32, 4);
        let stream: Vec<MemRef> =
            refs.iter().map(|&(a, l)| MemRef::app_write(Address::new(a), l)).collect();

        let mut per_record = CacheBank::new([cfg_a, cfg_b]);
        for &r in &stream {
            per_record.record(r);
        }

        let mut batched = CacheBank::new([cfg_a, cfg_b]);
        let split = cut % (stream.len() + 1);
        batched.record_batch(&stream[..split]);
        batched.record_batch(&stream[split..]);

        prop_assert_eq!(per_record.stats_for(cfg_a), batched.stats_for(cfg_a));
        prop_assert_eq!(per_record.stats_for(cfg_b), batched.stats_for(cfg_b));
    }

    /// The single-pass sweep agrees with independent caches on any
    /// stream of raw references over the paper's configurations.
    #[test]
    fn sweep_equals_independent_caches(runs in runs_strategy()) {
        let configs = CacheConfig::paper_sweep();
        let mut sweep = SweepCache::try_new(configs.clone()).expect("paper sweep is sweepable");
        let mut solos: Vec<Cache> = configs.iter().map(|&c| Cache::new(c)).collect();
        for r in expand(&runs) {
            sweep.access(r);
            for c in &mut solos {
                c.access(r);
            }
        }
        for (i, c) in solos.iter().enumerate() {
            prop_assert_eq!(&sweep.results()[i].1, c.stats(), "member {} diverged", i);
        }
    }

    /// Run-compressed delivery into the sweep — chopped into calls at
    /// arbitrary boundaries, so runs straddle batch edges — agrees with
    /// per-record delivery into independent caches, including repeats of
    /// multi-block references.
    #[test]
    fn sweep_run_delivery_equals_expansion(
        runs in runs_strategy(),
        cuts in proptest::collection::vec(0usize..=200, 0..8),
    ) {
        let configs = CacheConfig::paper_sweep();
        let mut sweep = SweepCache::try_new(configs.clone()).expect("paper sweep is sweepable");
        let mut bounds: Vec<usize> = cuts.iter().map(|&c| c % (runs.len() + 1)).collect();
        bounds.sort_unstable();
        let mut prev = 0;
        for &b in &bounds {
            sweep.record_runs(&runs[prev..b]);
            prev = b;
        }
        sweep.record_runs(&runs[prev..]);

        let mut solos: Vec<Cache> = configs.iter().map(|&c| Cache::new(c)).collect();
        for r in expand(&runs) {
            for c in &mut solos {
                c.access(r);
            }
        }
        for (i, c) in solos.iter().enumerate() {
            prop_assert_eq!(&sweep.results()[i].1, c.stats(), "member {} diverged", i);
        }
    }

    /// A single cache's run fast path agrees with expansion for any
    /// associativity (the last-block short-circuit it leans on is not a
    /// direct-mapped-only property).
    #[test]
    fn cache_run_delivery_equals_expansion(
        runs in runs_strategy(),
        assoc in prop_oneof![Just(1u32), Just(4)],
    ) {
        let cfg = CacheConfig::set_associative(16 * 1024, 32, assoc);
        let mut fast = Cache::new(cfg);
        fast.record_runs(&runs);
        let mut slow = Cache::new(cfg);
        for r in expand(&runs) {
            slow.access(r);
        }
        prop_assert_eq!(fast.stats(), slow.stats());
    }

    /// The SoA sweep's multi-block span fast path agrees with a
    /// [`CacheBank`] fed the fully expanded stream *and* with the
    /// pre-restructure implementation under identical run delivery, on
    /// streams built almost entirely of repeated block-straddling
    /// references (spans on both sides of the smallest member's line
    /// count, so both the absorb and the re-walk arms run).
    #[test]
    fn sweep_span_fast_path_matches_bank_and_reference(
        runs in straddling_runs_strategy(),
        cut in 0usize..=100,
    ) {
        let configs = CacheConfig::paper_sweep();
        let mut sweep = SweepCache::try_new(configs.clone()).expect("paper sweep is sweepable");
        let mut old = ReferenceSweepCache::try_new(configs.clone()).expect("sweepable");
        let split = cut % (runs.len() + 1);
        sweep.record_runs(&runs[..split]);
        sweep.record_runs(&runs[split..]);
        old.record_runs(&runs);

        let mut bank = CacheBank::new(configs.clone());
        for r in expand(&runs) {
            bank.record(r);
        }
        prop_assert_eq!(sweep.results(), old.results());
        for (i, &cfg) in configs.iter().enumerate() {
            prop_assert_eq!(
                &sweep.results()[i].1,
                bank.stats_for(cfg).expect("member"),
                "member {} diverged", i
            );
        }
    }

    /// A single cache's span fast path agrees with per-reference replay
    /// on repeated block-straddling runs, across associativities — the
    /// residency argument must hold for LRU sets, not just direct
    /// mapping, and for spans larger than the whole cache (fallback).
    #[test]
    fn cache_span_fast_path_matches_per_ref_replay(
        runs in straddling_runs_strategy(),
        assoc in prop_oneof![Just(1u32), Just(2), Just(8)],
    ) {
        let cfg = CacheConfig::set_associative(16 * 1024, 32, assoc);
        let mut fast = Cache::new(cfg);
        fast.record_runs(&runs);
        let mut slow = Cache::new(cfg);
        for r in expand(&runs) {
            slow.record(r);
        }
        prop_assert_eq!(fast.stats(), slow.stats());
    }

    /// The extension analyzers (victim cache, three-C classifier) see
    /// through run-compressed delivery: their default expand-and-delegate
    /// `record_runs` leaves statistics identical to the raw stream.
    #[test]
    fn analyzers_agree_on_run_delivery(runs in runs_strategy()) {
        let cfg = CacheConfig::direct_mapped(16 * 1024, 32);

        let mut victim_fast = VictimCache::new(cfg, 8);
        victim_fast.record_runs(&runs);
        let mut victim_slow = VictimCache::new(cfg, 8);
        let mut three_c_fast = ThreeCAnalyzer::new(cfg);
        three_c_fast.record_runs(&runs);
        let mut three_c_slow = ThreeCAnalyzer::new(cfg);
        for r in expand(&runs) {
            victim_slow.record(r);
            three_c_slow.record(r);
        }
        prop_assert_eq!(victim_fast.stats(), victim_slow.stats());
        prop_assert_eq!(three_c_fast.classify(), three_c_slow.classify());
    }

    /// A bank's members behave identically to standalone caches fed the
    /// same stream.
    #[test]
    fn bank_equals_standalone(refs in refs_strategy()) {
        let cfg_a = CacheConfig::direct_mapped(16 * 1024, 32);
        let cfg_b = CacheConfig::set_associative(32 * 1024, 32, 4);
        let mut bank = CacheBank::new([cfg_a, cfg_b]);
        let mut solo_a = Cache::new(cfg_a);
        let mut solo_b = Cache::new(cfg_b);
        for &(addr, len) in &refs {
            let r = MemRef::app_read(Address::new(addr), len);
            bank.record(r);
            solo_a.access(r);
            solo_b.access(r);
        }
        prop_assert_eq!(bank.stats_for(cfg_a).expect("member"), solo_a.stats());
        prop_assert_eq!(bank.stats_for(cfg_b).expect("member"), solo_b.stats());
    }
}
