//! Three-C miss classification: compulsory / capacity / conflict.
//!
//! The paper attributes the sequential-fit allocators' misses to their
//! scattered metadata conflicting with application data in a
//! direct-mapped cache. The classic way to quantify that attribution is
//! Hill's three-C model: a miss is *compulsory* if the block was never
//! referenced before, *capacity* if a fully-associative LRU cache of the
//! same size would also miss, and *conflict* otherwise (it exists only
//! because of the restricted mapping). This analyzer runs the target
//! cache and its fully-associative shadow side by side in one pass.

use serde::{Deserialize, Serialize};
use sim_mem::{AccessSink, MemRef};

use crate::{Cache, CacheConfig};

/// The classified miss counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreeC {
    /// Word-granular accesses.
    pub accesses: u64,
    /// First-touch misses.
    pub compulsory: u64,
    /// Misses a size-equal fully-associative LRU cache also takes.
    pub capacity: u64,
    /// Misses caused purely by the restricted mapping.
    pub conflict: u64,
}

impl ThreeC {
    /// All misses of the target cache.
    pub fn total_misses(&self) -> u64 {
        self.compulsory + self.capacity + self.conflict
    }

    /// Fraction of non-compulsory misses that are conflicts — high
    /// values mean associativity (or better placement by the allocator)
    /// would help.
    pub fn conflict_fraction(&self) -> f64 {
        let repl = self.capacity + self.conflict;
        if repl == 0 {
            0.0
        } else {
            self.conflict as f64 / repl as f64
        }
    }
}

/// Runs a target cache and its fully-associative shadow in lockstep.
///
/// # Example
///
/// ```
/// use cache_sim::{CacheConfig, ThreeCAnalyzer};
/// use sim_mem::{Address, MemRef};
///
/// let mut a = ThreeCAnalyzer::new(CacheConfig::direct_mapped(1024, 32));
/// // Two blocks that conflict in the direct-mapped cache but co-exist
/// // in a fully-associative one.
/// for i in 0..6u64 {
///     a.access(MemRef::app_read(Address::new((i % 2) * 1024, ), 4));
/// }
/// let c = a.classify();
/// assert_eq!(c.compulsory, 2);
/// assert_eq!(c.capacity, 0);
/// assert_eq!(c.conflict, 4);
/// ```
#[derive(Debug, Clone)]
pub struct ThreeCAnalyzer {
    target: Cache,
    shadow: Cache,
}

impl ThreeCAnalyzer {
    /// Creates an analyzer for the given target geometry.
    pub fn new(target: CacheConfig) -> Self {
        let shadow = CacheConfig::set_associative(target.size, target.block, target.lines());
        ThreeCAnalyzer { target: Cache::new(target), shadow: Cache::new(shadow) }
    }

    /// Simulates one reference in both caches.
    pub fn access(&mut self, r: MemRef) {
        self.target.access(r);
        self.shadow.access(r);
    }

    /// The classification so far.
    ///
    /// # Panics
    ///
    /// Panics if LRU inclusion is violated (an internal invariant).
    pub fn classify(&self) -> ThreeC {
        let t = self.target.stats();
        let s = self.shadow.stats();
        debug_assert_eq!(t.cold_misses, s.cold_misses);
        let compulsory = t.cold_misses;
        let capacity = s.misses() - compulsory;
        let conflict = t
            .misses()
            .checked_sub(s.misses())
            .expect("a fully-associative LRU cache of equal size cannot miss more");
        ThreeC { accesses: t.accesses(), compulsory, capacity, conflict }
    }

    /// The target cache's raw statistics.
    pub fn target_stats(&self) -> &crate::CacheStats {
        self.target.stats()
    }
}

impl AccessSink for ThreeCAnalyzer {
    fn record(&mut self, r: MemRef) {
        self.access(r);
    }

    /// The target and shadow caches are independent, so each can consume
    /// the whole batch in turn, keeping its state hot (classification
    /// only compares their totals at the end).
    fn record_batch(&mut self, batch: &[MemRef]) {
        for &r in batch {
            self.target.access(r);
        }
        for &r in batch {
            self.shadow.access(r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_mem::Address;

    #[test]
    fn sequential_scan_is_all_compulsory() {
        let mut a = ThreeCAnalyzer::new(CacheConfig::direct_mapped(1024, 32));
        for i in 0..100u64 {
            a.access(MemRef::app_read(Address::new(i * 32), 4));
        }
        let c = a.classify();
        // No block is ever revisited: every miss is a first touch.
        assert_eq!(c.compulsory, 100);
        assert_eq!(c.capacity, 0);
        assert_eq!(c.conflict, 0);
    }

    #[test]
    fn cyclic_overflow_is_capacity() {
        // 64 distinct blocks cycled through a 32-line cache: every
        // access misses in both target and shadow after warmup.
        let mut a = ThreeCAnalyzer::new(CacheConfig::direct_mapped(1024, 32));
        for round in 0..4u64 {
            let _ = round;
            for i in 0..64u64 {
                a.access(MemRef::app_read(Address::new(i * 32), 4));
            }
        }
        let c = a.classify();
        assert_eq!(c.compulsory, 64);
        assert!(c.capacity > 0);
        assert_eq!(c.conflict, 0, "uniform cycle has no mapping artifacts");
    }

    #[test]
    fn ping_pong_is_pure_conflict() {
        let mut a = ThreeCAnalyzer::new(CacheConfig::direct_mapped(1024, 32));
        for i in 0..20u64 {
            a.access(MemRef::app_read(Address::new((i % 2) * 1024), 4));
        }
        let c = a.classify();
        assert_eq!(c.compulsory, 2);
        assert_eq!(c.capacity, 0);
        assert_eq!(c.conflict, 18);
        assert!((c.conflict_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn classes_decompose_total() {
        let mut a = ThreeCAnalyzer::new(CacheConfig::direct_mapped(2048, 32));
        let mut x = 3u64;
        for _ in 0..10_000 {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            a.access(MemRef::app_read(Address::new(x % 16384), 4));
        }
        let c = a.classify();
        assert_eq!(c.total_misses(), a.target_stats().misses());
        assert_eq!(c.accesses, a.target_stats().accesses());
    }
}
