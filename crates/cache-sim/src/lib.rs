//! TYCHO-style data-cache simulation.
//!
//! The paper modified Mark Hill's TYCHO simulator to consume references
//! online ("execution-driven cache simulation ... without storing large
//! trace files") and simulated direct-mapped caches with 32-byte blocks
//! from 16K to 256K. This crate reproduces that setup:
//!
//! * [`Cache`] — one cache configuration: direct-mapped (the paper's
//!   choice) or N-way set-associative with LRU replacement (the extension
//!   Wilson's cited work considers), write-allocate, and cold- vs.
//!   capacity/conflict-miss classification.
//! * [`CacheBank`] — many arbitrary configurations fed by one replay of
//!   the reference stream (each member still decomposes every reference
//!   itself).
//! * [`SweepCache`] — the paper's sweep shape (direct-mapped, common
//!   block size) simulated in a genuine single pass: one block
//!   decomposition, one last-block short-circuit, and one cold-miss
//!   membership set shared by all members, bit-identical to a bank of
//!   independent caches. This is how the miss-rate-vs-cache-size curves
//!   of Figures 6–8 are produced.
//!
//! References of any byte size are decomposed into blocks; statistics are
//! kept separately for application and allocator-metadata references so
//! the *direct* cache cost of an allocator can be separated from its
//! *indirect* effect on application locality.
//!
//! # Example
//!
//! ```
//! use cache_sim::{Cache, CacheConfig};
//! use sim_mem::{Address, MemRef};
//!
//! let mut cache = Cache::new(CacheConfig::direct_mapped(16 * 1024, 32));
//! cache.access(MemRef::app_read(Address::new(0), 4));
//! cache.access(MemRef::app_read(Address::new(8), 4)); // same block: hit
//! let s = cache.stats();
//! assert_eq!(s.accesses(), 2);
//! assert_eq!(s.misses(), 1);
//! assert_eq!(s.cold_misses, 1);
//! ```

pub mod bank;
pub mod cache;
pub mod config;
pub mod hierarchy;
pub mod reference;
pub mod sweep;
pub mod three_c;
pub mod victim;

pub use bank::CacheBank;
pub use cache::{Cache, CacheStats};
pub use config::CacheConfig;
pub use hierarchy::{TwoLevelCache, TwoLevelStats, L1_MISS_PENALTY, L2_MISS_PENALTY};
pub use sweep::SweepCache;
pub use three_c::{ThreeC, ThreeCAnalyzer};
pub use victim::{VictimCache, VictimStats};
