//! Two-level cache hierarchies (Mogul & Borg, ASPLOS 1991 — reference
//! \[19\] of the paper).
//!
//! The paper cites the 200-cycle second-level miss penalty of Mogul and
//! Borg's hypothetical two-level cache and notes that "new processors
//! commonly use a smaller on-chip primary cache, with a larger secondary
//! cache". This module simulates that organization so the execution-time
//! model can be evaluated under modern-for-1993 penalties: L1 misses
//! that hit in L2 pay a small penalty; L2 misses pay the large one.

use serde::{Deserialize, Serialize};
use sim_mem::{AccessSink, MemRef};

use crate::{Cache, CacheConfig, CacheStats};

/// Mogul & Borg's second-level miss penalty, in cycles.
pub const L2_MISS_PENALTY: u64 = 200;

/// A conventional L1-miss penalty when an L2 absorbs it.
pub const L1_MISS_PENALTY: u64 = 10;

/// An inclusive two-level cache: references probe L1; L1 block misses
/// probe L2.
#[derive(Debug, Clone)]
pub struct TwoLevelCache {
    l1: Cache,
    l2: Cache,
}

/// Combined statistics of a two-level hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TwoLevelStats {
    /// First-level statistics (accesses are word-granular).
    pub l1: CacheStats,
    /// Second-level statistics (accesses are L1 block misses).
    pub l2: CacheStats,
}

impl TwoLevelStats {
    /// Stall cycles under the paper's additive model: L1 misses that hit
    /// L2 pay `l1_penalty`; L2 misses pay `l2_penalty`.
    pub fn stall_cycles(&self, l1_penalty: u64, l2_penalty: u64) -> u64 {
        let l2_misses = self.l2.misses();
        let l1_only = self.l1.misses() - l2_misses;
        l1_only * l1_penalty + l2_misses * l2_penalty
    }

    /// Global miss rate: references that go all the way to memory.
    pub fn global_miss_rate(&self) -> f64 {
        if self.l1.accesses() == 0 {
            0.0
        } else {
            self.l2.misses() as f64 / self.l1.accesses() as f64
        }
    }
}

impl TwoLevelCache {
    /// Creates a two-level hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if L2 is not at least as large as L1 or the block sizes
    /// differ (the usual inclusive-hierarchy constraints).
    pub fn new(l1: CacheConfig, l2: CacheConfig) -> Self {
        assert!(l2.size >= l1.size, "L2 must be at least as large as L1");
        assert_eq!(l1.block, l2.block, "matching block sizes");
        TwoLevelCache { l1: Cache::new(l1), l2: Cache::new(l2) }
    }

    /// The paper-flavoured default: 16K direct-mapped L1 over a 256K
    /// 4-way L2, 32-byte blocks.
    pub fn paper_default() -> Self {
        Self::new(
            CacheConfig::direct_mapped(16 * 1024, 32),
            CacheConfig::set_associative(256 * 1024, 32, 4),
        )
    }

    /// Simulates one reference: exactly the blocks that miss in L1 are
    /// forwarded (as block-sized fill requests) to L2.
    pub fn access(&mut self, r: MemRef) {
        let block_bytes = u64::from(self.l1.config().block);
        for block in r.blocks(block_bytes) {
            if !self.l1.contains_block(block) {
                let fill = MemRef {
                    addr: sim_mem::Address::new(block * block_bytes),
                    size: self.l1.config().block,
                    ..r
                };
                self.l2.access(fill);
            }
        }
        self.l1.access(r);
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> TwoLevelStats {
        TwoLevelStats { l1: *self.l1.stats(), l2: *self.l2.stats() }
    }
}

impl AccessSink for TwoLevelCache {
    fn record(&mut self, r: MemRef) {
        self.access(r);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_mem::Address;

    #[test]
    fn l2_absorbs_l1_capacity_misses() {
        // Working set: 64K — thrashes a 16K L1, fits a 256K L2.
        let mut c = TwoLevelCache::paper_default();
        for round in 0..3u32 {
            let _ = round;
            for i in 0..2048u64 {
                c.access(MemRef::app_read(Address::new(i * 32), 4));
            }
        }
        let s = c.stats();
        assert!(s.l1.misses() > 2048, "L1 thrashes");
        assert_eq!(s.l2.misses(), 2048, "L2 holds the set: compulsory only");
        assert!(s.global_miss_rate() < s.l1.miss_rate());
    }

    #[test]
    fn stall_model_weights_levels() {
        let s = TwoLevelStats {
            l1: CacheStats { app_accesses: 1000, app_misses: 100, ..Default::default() },
            l2: CacheStats { app_accesses: 100, app_misses: 10, ..Default::default() },
        };
        // 90 L1-only misses * 10 + 10 L2 misses * 200.
        assert_eq!(s.stall_cycles(L1_MISS_PENALTY, L2_MISS_PENALTY), 90 * 10 + 10 * 200);
        assert!((s.global_miss_rate() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn l1_hits_never_reach_l2() {
        let mut c = TwoLevelCache::paper_default();
        let r = MemRef::app_read(Address::new(64), 4);
        c.access(r);
        let l2_after_first = c.stats().l2.accesses();
        for _ in 0..10 {
            c.access(r);
        }
        assert_eq!(c.stats().l2.accesses(), l2_after_first, "hits are filtered");
    }

    #[test]
    #[should_panic(expected = "at least as large")]
    fn rejects_inverted_hierarchy() {
        TwoLevelCache::new(
            CacheConfig::direct_mapped(64 * 1024, 32),
            CacheConfig::direct_mapped(16 * 1024, 32),
        );
    }
}
