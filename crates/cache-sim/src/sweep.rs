//! Single-pass simulation of the paper's whole cache sweep.
//!
//! [`crate::CacheBank`] simulates N configurations by replaying every
//! reference N times — once per member [`Cache`], each with its own
//! block decomposition, its own last-block short-circuit, and its own
//! cold-miss membership set. The paper's sweep has more structure than
//! that: every configuration is direct-mapped with the *same*
//! power-of-two block size, and the line counts are powers of two, so
//! the set index of a smaller cache is a bit-suffix of the largest
//! cache's index:
//!
//! ```text
//! index_i(block) = block mod lines_i = (block mod lines_max) mod lines_i
//!                = index_max(block) & (lines_i - 1)
//! ```
//!
//! [`SweepCache`] exploits that: one walk over the reference stream
//! decomposes each reference into blocks *once* and updates every tag
//! array from that shared decomposition. Three more pieces of per-member
//! state collapse into shared state, each exactly, because every member
//! consumes the identical stream:
//!
//! * the **last-block short-circuit** — the most recently touched block
//!   is the same for every member;
//! * the **cold-miss [`BlockSet`]** — a block's first-ever touch misses
//!   in *every* member (it cannot be resident anywhere before it has
//!   ever been referenced), so each member's "seen" set would grow
//!   identically anyway;
//! * the **word-granular access counters** — accesses are counted per
//!   reference, not per block fetched, so every member's totals are
//!   equal and one shared pair (app/meta) suffices. Only misses differ
//!   per member.
//!
//! # Data-parallel member pass
//!
//! The per-block member loop is laid out as a branch-minimized
//! struct-of-arrays pass. Miss counters live in flat per-member lanes
//! (one app lane, one meta lane, one cold lane) instead of an
//! array-of-structs, the lane for the reference's class is selected
//! *once* per touch by indexing instead of branching per member, and
//! the hit/miss decision inside the loop is a flag-free compare:
//!
//! ```text
//! miss   = (tag != block) as u64    // no branch
//! tag    = block                    // unconditional: a hit stores the
//!                                   // value already there
//! lane  += miss
//! any   |= miss
//! ```
//!
//! The freshness query is hoisted *out* of the member loop entirely: a
//! block's first-ever touch misses in every member, so when the shared
//! set reports fresh, every cold counter advances by one; and when every
//! member hit, the block was necessarily inserted on its first touch, so
//! skipping the query changes nothing.
//!
//! Before the member pass runs at all, one compare against the
//! *smallest* member's tag filters the common case. The suffix-index
//! structure makes the smallest member a conservative witness for the
//! whole sweep: the blocks aliasing member `j`'s slot for `block` are
//! `{b : b ≡ block mod lines_j}`, and since `lines_min` divides
//! `lines_j`, that set is contained in the blocks aliasing the smallest
//! member's slot. If the smallest member still holds `block`, no
//! aliasing block has been touched since `block`'s own last touch (which
//! stored it into *every* member), so nothing can have evicted it from
//! any member: a smallest-member hit is a hit everywhere. The touch then
//! changes no tag, no miss lane, and no freshness state — returning
//! after the single compare is bit-identical and skips the whole pass on
//! the hit-dominated steady state.
//!
//! # Run-aware multi-block fast path
//!
//! [`AccessSink::record_runs`] decomposes each [`RefRun`] into its block
//! span once. A repeated span of `span = last − first + 1` consecutive
//! blocks with `span ≤ min_lines` (the smallest member's line count)
//! maps to `span` *distinct* indices in every member — consecutive block
//! numbers collide mod `lines` only when the span exceeds `lines`. After
//! the first occurrence's walk, every spanned block is therefore
//! resident in every member, so each repeat would be all hits
//! everywhere: no tag changes, no miss counts, no freshness inserts, and
//! the last-block short-circuit state ends where it already is. The
//! repeats collapse to word counting, exactly as the single-block fast
//! path (which is the `span == 1` case) always did. Spans wider than the
//! smallest member fall back to the full re-walk.
//!
//! The result is bit-identical to a bank of independent [`Cache`]s fed
//! the same stream, at roughly one cache's cost instead of five — the
//! pre-restructure implementation is preserved verbatim as
//! [`crate::reference::ReferenceSweepCache`] and `bench perf --sinks`
//! verifies the identity while timing both.

use sim_mem::{AccessClass, AccessSink, MemRef, RefRun};

use crate::cache::BlockSet;
use crate::{CacheConfig, CacheStats};

/// Many direct-mapped, common-block-size caches simulated in one walk
/// over the reference stream.
///
/// Construct with [`SweepCache::try_new`]; configurations that do not
/// share the sweep structure (associative members, mixed block sizes)
/// are rejected so callers can fall back to a [`crate::CacheBank`].
///
/// # Example
///
/// ```
/// use cache_sim::{CacheConfig, SweepCache};
/// use sim_mem::{AccessSink, Address, MemRef};
///
/// let mut sweep = SweepCache::try_new(CacheConfig::paper_sweep()).unwrap();
/// sweep.record(MemRef::app_read(Address::new(0), 4));
/// assert_eq!(sweep.results().len(), 5);
/// assert!(sweep.results().iter().all(|(_, s)| s.misses() == 1));
/// ```
#[derive(Debug, Clone)]
pub struct SweepCache {
    /// `log2` of the shared block size, so block numbers come from a
    /// shift on the per-reference fast path.
    block_shift: u32,
    /// Member configurations, in construction order.
    configs: Vec<CacheConfig>,
    /// Per member: line-index mask (`lines - 1`).
    masks: Vec<u64>,
    /// Per member: offset of its tag array within `tags`.
    offsets: Vec<usize>,
    /// All members' tag arrays, concatenated (`u64::MAX` = invalid).
    tags: Vec<u64>,
    /// Per-member miss lanes, struct-of-arrays: the app lane (all
    /// members, construction order) followed by the meta lane, indexed
    /// by `class as usize * members + member`.
    miss_lanes: Vec<u64>,
    /// Per-member cold-miss lane.
    miss_cold: Vec<u64>,
    /// Shared word-granular access counters, indexed by
    /// `AccessClass as usize` (identical for every member; see the
    /// module docs).
    words: [u64; 2],
    /// Every block number ever referenced — shared by all members.
    seen: BlockSet,
    /// The most recently touched block (`u64::MAX` before any access).
    last_block: u64,
    /// The smallest member's line count: the widest block span whose
    /// repeats the run fast path may absorb (see the module docs).
    min_lines: u64,
    /// Offset of the smallest member's tag array within `tags`: the
    /// all-members-hit filter probes this member first (see the module
    /// docs).
    min_offset: usize,
    /// References absorbed by the run fast path in `record_runs` (repeat
    /// occurrences that advanced only the shared word counters). An
    /// observability counter, deliberately outside the per-member
    /// [`CacheStats`].
    fastpath_refs: u64,
}

impl SweepCache {
    /// Builds a single-pass sweep over `configs`, or `None` if they do
    /// not share the sweep structure: at least one member, all
    /// direct-mapped, all with the same block size. (Power-of-two sizes
    /// are already guaranteed by [`CacheConfig`]'s constructors.)
    pub fn try_new(configs: impl IntoIterator<Item = CacheConfig>) -> Option<Self> {
        let configs: Vec<CacheConfig> = configs.into_iter().collect();
        let block = configs.first()?.block;
        if configs.iter().any(|c| c.assoc != 1 || c.block != block) {
            return None;
        }
        let mut offsets = Vec::with_capacity(configs.len());
        let mut masks = Vec::with_capacity(configs.len());
        let mut total = 0usize;
        for c in &configs {
            offsets.push(total);
            masks.push(u64::from(c.lines()) - 1);
            total += c.lines() as usize;
        }
        let min_lines = configs.iter().map(|c| u64::from(c.lines())).min()?;
        let min_idx = masks.iter().position(|&m| m == min_lines - 1).expect("min exists");
        let min_offset = offsets[min_idx];
        Some(SweepCache {
            block_shift: block.trailing_zeros(),
            miss_lanes: vec![0; 2 * configs.len()],
            miss_cold: vec![0; configs.len()],
            configs,
            masks,
            offsets,
            tags: vec![u64::MAX; total],
            words: [0; 2],
            seen: BlockSet::new(),
            last_block: u64::MAX,
            min_lines,
            min_offset,
            fastpath_refs: 0,
        })
    }

    /// The member configurations, in construction order.
    pub fn configs(&self) -> &[CacheConfig] {
        &self.configs
    }

    /// Statistics for the member with exactly this configuration, if any.
    pub fn stats_for(&self, config: CacheConfig) -> Option<CacheStats> {
        self.configs.iter().position(|&c| c == config).map(|i| self.member_stats(i))
    }

    /// `(config, stats)` pairs for reporting, in construction order.
    pub fn results(&self) -> Vec<(CacheConfig, CacheStats)> {
        (0..self.configs.len()).map(|i| (self.configs[i], self.member_stats(i))).collect()
    }

    /// References absorbed by the `record_runs` fast path (counted, not
    /// re-simulated). An observability counter — not part of any
    /// member's [`CacheStats`].
    pub fn fastpath_refs(&self) -> u64 {
        self.fastpath_refs
    }

    /// Folds a member's miss lanes into a [`CacheStats`] at reporting
    /// time — the lanes themselves stay flat counters on the hot path.
    fn member_stats(&self, i: usize) -> CacheStats {
        let members = self.configs.len();
        CacheStats {
            app_accesses: self.words[AccessClass::AppData as usize],
            app_misses: self.miss_lanes[AccessClass::AppData as usize * members + i],
            meta_accesses: self.words[AccessClass::AllocatorMeta as usize],
            meta_misses: self.miss_lanes[AccessClass::AllocatorMeta as usize * members + i],
            cold_misses: self.miss_cold[i],
        }
    }

    /// Simulates one reference against every member: the block
    /// decomposition happens once, each spanned block updates all tag
    /// arrays, and the shared access counters advance by the number of
    /// words referenced.
    pub fn access(&mut self, r: MemRef) {
        let first = r.addr.raw() >> self.block_shift;
        let last = (r.addr.raw() + u64::from(r.size.max(1)) - 1) >> self.block_shift;
        self.walk_span(first, last, r.class);
        self.count_words(r, 1);
    }

    /// Touches every block in `first..=last` through the shared
    /// last-block short-circuit.
    #[inline]
    fn walk_span(&mut self, first: u64, last: u64, class: AccessClass) {
        if first == last {
            // Nearly every reference is word-sized: one block, one
            // shared short-circuit check.
            if first != self.last_block {
                self.last_block = first;
                self.touch_block(first, class);
            }
        } else {
            for block in first..=last {
                if block == self.last_block {
                    continue;
                }
                self.last_block = block;
                self.touch_block(block, class);
            }
        }
    }

    /// Advances the shared word-granular access counters by `n`
    /// occurrences of `r`, without touching tags.
    #[inline]
    fn count_words(&mut self, r: MemRef, n: u64) {
        self.words[r.class as usize] += r.words() * n;
    }

    /// Brings `block` into every member: the branch-minimized
    /// struct-of-arrays pass described in the module docs.
    #[inline]
    fn touch_block(&mut self, block: u64, class: AccessClass) {
        // Smallest-member filter: a hit here is provably a hit in every
        // member (see the module docs), and an all-hit touch changes no
        // state at all.
        if self.tags[self.min_offset + (block & (self.min_lines - 1)) as usize] == block {
            return;
        }
        let SweepCache { offsets, masks, tags, miss_lanes, miss_cold, seen, .. } = self;
        let members = offsets.len();
        // One indexed lane selection per touch instead of a class
        // branch per missing member.
        let base = class as usize * members;
        let lane = &mut miss_lanes[base..base + members];
        let mut any = 0u64;
        for ((&offset, &mask), m) in offsets.iter().zip(masks.iter()).zip(lane.iter_mut()) {
            let slot = offset + (block & mask) as usize;
            // Flag-free hit/miss: the store is unconditional (a hit
            // rewrites the value already there) and the miss feeds the
            // lane as an integer.
            let miss = u64::from(tags[slot] != block);
            tags[slot] = block;
            *m += miss;
            any |= miss;
        }
        // Freshness hoisted out of the member loop. If every member hit,
        // the block was inserted on its first-ever touch (which missed
        // everywhere), so skipping the query is state-identical; if the
        // query reports fresh, that first-ever touch is happening now
        // and every member's miss was cold.
        if any != 0 && seen.insert(block) {
            for cold in miss_cold.iter_mut() {
                *cold += 1;
            }
        }
    }
}

impl AccessSink for SweepCache {
    fn record(&mut self, r: MemRef) {
        self.access(r);
    }

    fn record_batch(&mut self, batch: &[MemRef]) {
        for &r in batch {
            self.access(r);
        }
    }

    /// Run fast path: the block span is decomposed once per run. After
    /// the first occurrence's walk, a span no wider than the smallest
    /// member leaves every spanned block resident in every member, so
    /// each repeat would be all hits — only the shared word counters
    /// move (see the module docs). Wider spans fall back to the full
    /// re-walk per repeat.
    fn record_runs(&mut self, runs: &[RefRun]) {
        let shift = self.block_shift;
        let min_lines = self.min_lines;
        // Word and fast-path counters accumulate in locals across the
        // whole slice and fold into the struct at flush.
        let mut words = [0u64; 2];
        let mut fastpath = 0u64;
        for run in runs {
            let r = run.r;
            let first = r.addr.raw() >> shift;
            let last = (r.addr.raw() + u64::from(r.size.max(1)) - 1) >> shift;
            self.walk_span(first, last, r.class);
            let n = u64::from(run.count);
            words[r.class as usize] += r.words() * n;
            if run.count > 1 {
                if last - first < min_lines {
                    fastpath += n - 1;
                } else {
                    for _ in 1..run.count {
                        self.walk_span(first, last, r.class);
                    }
                }
            }
        }
        self.words[0] += words[0];
        self.words[1] += words[1];
        self.fastpath_refs += fastpath;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::ReferenceSweepCache;
    use crate::Cache;
    use sim_mem::Address;

    fn paper() -> SweepCache {
        SweepCache::try_new(CacheConfig::paper_sweep()).expect("paper sweep is sweepable")
    }

    /// Reference model: independent caches fed the same stream.
    fn bank(configs: &[CacheConfig]) -> Vec<Cache> {
        configs.iter().map(|&c| Cache::new(c)).collect()
    }

    #[test]
    fn rejects_non_sweep_shapes() {
        assert!(SweepCache::try_new([]).is_none(), "empty");
        assert!(
            SweepCache::try_new([CacheConfig::set_associative(16 * 1024, 32, 2)]).is_none(),
            "associative"
        );
        assert!(
            SweepCache::try_new([
                CacheConfig::direct_mapped(16 * 1024, 32),
                CacheConfig::direct_mapped(16 * 1024, 16),
            ])
            .is_none(),
            "mixed block sizes"
        );
    }

    #[test]
    fn matches_independent_caches_on_a_mixed_stream() {
        let configs = CacheConfig::paper_sweep();
        let mut sweep = paper();
        let mut caches = bank(&configs);
        // A mix of classes, sizes, conflicts, and revisits.
        let mut x = 7u64;
        for i in 0..50_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let addr = Address::new(x % (1 << 20));
            let r = match i % 4 {
                0 => MemRef::app_read(addr, 4),
                1 => MemRef::app_write(addr, (x % 300) as u32 + 1),
                2 => MemRef::meta_read(addr, 4),
                _ => MemRef::meta_write(addr, 8),
            };
            sweep.access(r);
            for c in &mut caches {
                c.access(r);
            }
        }
        for (i, c) in caches.iter().enumerate() {
            assert_eq!(sweep.results()[i].1, *c.stats(), "member {i} diverged");
        }
    }

    #[test]
    fn run_fast_path_matches_expansion() {
        let configs = CacheConfig::paper_sweep();
        let mut fast = paper();
        let mut slow = bank(&configs);
        let runs = [
            RefRun { r: MemRef::app_write(Address::new(100), 4), count: 1000 },
            RefRun { r: MemRef::app_read(Address::new(100), 4), count: 3 },
            // Multi-block, span within the smallest member: absorbed by
            // the span fast path.
            RefRun { r: MemRef::app_write(Address::new(90), 64), count: 7 },
            RefRun { r: MemRef::meta_read(Address::new(4096), 4), count: 2 },
            // Span wider than the smallest member (512 lines × 32 B):
            // must take the re-walk fallback.
            RefRun { r: MemRef::app_read(Address::new(64), 600 * 32), count: 3 },
        ];
        fast.record_runs(&runs);
        for run in &runs {
            for _ in 0..run.count {
                for c in &mut slow {
                    c.access(run.r);
                }
            }
        }
        for (i, c) in slow.iter().enumerate() {
            assert_eq!(fast.results()[i].1, *c.stats(), "member {i} diverged");
        }
        // 999 + 2 + 6 + 1 repeats absorbed; the wide span's 2 repeats
        // are re-walked.
        assert_eq!(fast.fastpath_refs(), 999 + 2 + 6 + 1);
    }

    #[test]
    fn multi_block_spans_absorb_repeats_exactly() {
        // A span that conflicts *within itself* in the smallest member
        // would break the fast path's residency argument; the gate
        // excludes it. Here: spans of every width around the 512-line
        // boundary of the 16K member, interleaved with conflicting
        // single blocks, against both the old implementation and a
        // fresh expansion.
        let configs = CacheConfig::paper_sweep();
        let mut fast = paper();
        let mut old = ReferenceSweepCache::try_new(configs.clone()).unwrap();
        let mut slow = bank(&configs);
        let mut runs = Vec::new();
        for (i, &blocks) in [1u64, 2, 3, 511, 512, 513, 700].iter().enumerate() {
            let addr = Address::new(i as u64 * 1_000_000 + 17);
            let size = (blocks * 32) as u32;
            runs.push(RefRun { r: MemRef::app_read(addr, size), count: 5 });
            // Conflict with the span's first block in the 16K member.
            let conflict = Address::new(i as u64 * 1_000_000 + 17 + 512 * 32);
            runs.push(RefRun { r: MemRef::meta_write(conflict, 4), count: 2 });
            runs.push(RefRun { r: MemRef::app_read(addr, size), count: 4 });
        }
        fast.record_runs(&runs);
        old.record_runs(&runs);
        for run in &runs {
            for _ in 0..run.count {
                for c in &mut slow {
                    c.access(run.r);
                }
            }
        }
        assert_eq!(fast.results(), old.results());
        for (i, c) in slow.iter().enumerate() {
            assert_eq!(fast.results()[i].1, *c.stats(), "member {i} diverged");
        }
    }

    #[test]
    fn stats_for_and_configs_report_members() {
        let sweep = paper();
        assert_eq!(sweep.configs().len(), 5);
        let k64 = CacheConfig::direct_mapped(64 * 1024, 32);
        assert!(sweep.stats_for(k64).is_some());
        assert!(sweep.stats_for(CacheConfig::direct_mapped(512 * 1024, 32)).is_none());
    }

    #[test]
    fn shared_cold_classification_counts_once_per_member() {
        let mut sweep = paper();
        sweep.access(MemRef::app_read(Address::new(0), 4));
        for (_, s) in sweep.results() {
            assert_eq!(s.cold_misses, 1);
            assert_eq!(s.misses(), 1);
        }
        // Conflict eviction in the smallest member only: 16K = 512
        // lines, so block 512 conflicts with block 0 there and nowhere
        // else. Re-touching block 0 then misses only in the 16K member,
        // and that miss is *not* cold.
        sweep.access(MemRef::app_read(Address::new(512 * 32), 4));
        sweep.access(MemRef::app_read(Address::new(0), 4));
        let results = sweep.results();
        assert_eq!(results[0].1.misses(), 3, "16K: cold, cold, conflict");
        assert_eq!(results[0].1.cold_misses, 2);
        for (_, s) in &results[1..] {
            assert_eq!(s.misses(), 2, "bigger members keep both blocks");
            assert_eq!(s.cold_misses, 2);
        }
    }
}
