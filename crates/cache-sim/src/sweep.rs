//! Single-pass simulation of the paper's whole cache sweep.
//!
//! [`crate::CacheBank`] simulates N configurations by replaying every
//! reference N times — once per member [`Cache`], each with its own
//! block decomposition, its own last-block short-circuit, and its own
//! cold-miss membership set. The paper's sweep has more structure than
//! that: every configuration is direct-mapped with the *same*
//! power-of-two block size, and the line counts are powers of two, so
//! the set index of a smaller cache is a bit-suffix of the largest
//! cache's index:
//!
//! ```text
//! index_i(block) = block mod lines_i = (block mod lines_max) mod lines_i
//!                = index_max(block) & (lines_i - 1)
//! ```
//!
//! [`SweepCache`] exploits that: one walk over the reference stream
//! decomposes each reference into blocks *once* and updates every tag
//! array from that shared decomposition. Three more pieces of per-member
//! state collapse into shared state, each exactly, because every member
//! consumes the identical stream:
//!
//! * the **last-block short-circuit** — the most recently touched block
//!   is the same for every member;
//! * the **cold-miss [`BlockSet`]** — a block's first-ever touch misses
//!   in *every* member (it cannot be resident anywhere before it has
//!   ever been referenced), so each member's "seen" set would grow
//!   identically anyway; per touch, the freshness answer is computed
//!   once and applied to every member that missed;
//! * the **word-granular access counters** — accesses are counted per
//!   reference, not per block fetched, so every member's totals are
//!   equal and one shared pair (app/meta) suffices. Only misses differ
//!   per member.
//!
//! The result is bit-identical to a bank of independent [`Cache`]s fed
//! the same stream, at roughly one cache's cost instead of five.

use sim_mem::{AccessClass, AccessSink, MemRef, RefRun};

use crate::cache::BlockSet;
use crate::{CacheConfig, CacheStats};

/// Per-member miss counters — the only statistics that differ between
/// members of a sweep (see the module docs).
#[derive(Debug, Clone, Copy, Default)]
struct MemberMisses {
    app: u64,
    meta: u64,
    cold: u64,
}

/// Many direct-mapped, common-block-size caches simulated in one walk
/// over the reference stream.
///
/// Construct with [`SweepCache::try_new`]; configurations that do not
/// share the sweep structure (associative members, mixed block sizes)
/// are rejected so callers can fall back to a [`crate::CacheBank`].
///
/// # Example
///
/// ```
/// use cache_sim::{CacheConfig, SweepCache};
/// use sim_mem::{AccessSink, Address, MemRef};
///
/// let mut sweep = SweepCache::try_new(CacheConfig::paper_sweep()).unwrap();
/// sweep.record(MemRef::app_read(Address::new(0), 4));
/// assert_eq!(sweep.results().len(), 5);
/// assert!(sweep.results().iter().all(|(_, s)| s.misses() == 1));
/// ```
#[derive(Debug, Clone)]
pub struct SweepCache {
    /// `log2` of the shared block size, so block numbers come from a
    /// shift on the per-reference fast path.
    block_shift: u32,
    /// Member configurations, in construction order.
    configs: Vec<CacheConfig>,
    /// Per member: line-index mask (`lines - 1`).
    masks: Vec<u64>,
    /// Per member: offset of its tag array within `tags`.
    offsets: Vec<usize>,
    /// All members' tag arrays, concatenated (`u64::MAX` = invalid).
    tags: Vec<u64>,
    /// Per member miss counters.
    misses: Vec<MemberMisses>,
    /// Shared word-granular access counters (identical for every
    /// member; see the module docs).
    app_words: u64,
    meta_words: u64,
    /// Every block number ever referenced — shared by all members.
    seen: BlockSet,
    /// The most recently touched block (`u64::MAX` before any access).
    last_block: u64,
    /// References absorbed by the run fast path in `record_runs` (repeat
    /// occurrences that advanced only the shared word counters). An
    /// observability counter, deliberately outside the per-member
    /// [`CacheStats`].
    fastpath_refs: u64,
}

impl SweepCache {
    /// Builds a single-pass sweep over `configs`, or `None` if they do
    /// not share the sweep structure: at least one member, all
    /// direct-mapped, all with the same block size. (Power-of-two sizes
    /// are already guaranteed by [`CacheConfig`]'s constructors.)
    pub fn try_new(configs: impl IntoIterator<Item = CacheConfig>) -> Option<Self> {
        let configs: Vec<CacheConfig> = configs.into_iter().collect();
        let block = configs.first()?.block;
        if configs.iter().any(|c| c.assoc != 1 || c.block != block) {
            return None;
        }
        let mut offsets = Vec::with_capacity(configs.len());
        let mut masks = Vec::with_capacity(configs.len());
        let mut total = 0usize;
        for c in &configs {
            offsets.push(total);
            masks.push(u64::from(c.lines()) - 1);
            total += c.lines() as usize;
        }
        Some(SweepCache {
            block_shift: block.trailing_zeros(),
            misses: vec![MemberMisses::default(); configs.len()],
            configs,
            masks,
            offsets,
            tags: vec![u64::MAX; total],
            app_words: 0,
            meta_words: 0,
            seen: BlockSet::new(),
            last_block: u64::MAX,
            fastpath_refs: 0,
        })
    }

    /// The member configurations, in construction order.
    pub fn configs(&self) -> &[CacheConfig] {
        &self.configs
    }

    /// Statistics for the member with exactly this configuration, if any.
    pub fn stats_for(&self, config: CacheConfig) -> Option<CacheStats> {
        self.configs.iter().position(|&c| c == config).map(|i| self.member_stats(i))
    }

    /// `(config, stats)` pairs for reporting, in construction order.
    pub fn results(&self) -> Vec<(CacheConfig, CacheStats)> {
        (0..self.configs.len()).map(|i| (self.configs[i], self.member_stats(i))).collect()
    }

    /// References absorbed by the `record_runs` fast path (counted, not
    /// re-simulated). An observability counter — not part of any
    /// member's [`CacheStats`].
    pub fn fastpath_refs(&self) -> u64 {
        self.fastpath_refs
    }

    fn member_stats(&self, i: usize) -> CacheStats {
        let m = self.misses[i];
        CacheStats {
            app_accesses: self.app_words,
            app_misses: m.app,
            meta_accesses: self.meta_words,
            meta_misses: m.meta,
            cold_misses: m.cold,
        }
    }

    /// Simulates one reference against every member: the block
    /// decomposition happens once, each spanned block updates all tag
    /// arrays, and the shared access counters advance by the number of
    /// words referenced.
    pub fn access(&mut self, r: MemRef) {
        let first = r.addr.raw() >> self.block_shift;
        let last = (r.addr.raw() + u64::from(r.size.max(1)) - 1) >> self.block_shift;
        if first == last {
            // Nearly every reference is word-sized: one block, one
            // shared short-circuit check.
            if first != self.last_block {
                self.last_block = first;
                self.touch_block(first, r.class);
            }
        } else {
            for block in first..=last {
                if block == self.last_block {
                    continue;
                }
                self.last_block = block;
                self.touch_block(block, r.class);
            }
        }
        self.count_words(r, 1);
    }

    /// Advances the shared word-granular access counters by `n`
    /// occurrences of `r`, without touching tags.
    #[inline]
    fn count_words(&mut self, r: MemRef, n: u64) {
        let words = r.words() * n;
        match r.class {
            AccessClass::AppData => self.app_words += words,
            AccessClass::AllocatorMeta => self.meta_words += words,
        }
    }

    /// Brings `block` into every member, counting misses per member and
    /// classifying cold misses against the shared membership set.
    fn touch_block(&mut self, block: u64, class: AccessClass) {
        let SweepCache { offsets, masks, tags, misses, seen, .. } = self;
        // Freshness is queried at most once per touch: the first member
        // that misses inserts into the shared set, and the answer is
        // reused for its siblings (their own sets would have given the
        // same answer — see the module docs).
        let mut fresh: Option<bool> = None;
        for ((&offset, &mask), m) in offsets.iter().zip(masks.iter()).zip(misses.iter_mut()) {
            let tag = &mut tags[offset + (block & mask) as usize];
            if *tag != block {
                *tag = block;
                let was_fresh = *fresh.get_or_insert_with(|| seen.insert(block));
                match class {
                    AccessClass::AppData => m.app += 1,
                    AccessClass::AllocatorMeta => m.meta += 1,
                }
                m.cold += u64::from(was_fresh);
            }
        }
    }
}

impl AccessSink for SweepCache {
    fn record(&mut self, r: MemRef) {
        self.access(r);
    }

    fn record_batch(&mut self, batch: &[MemRef]) {
        for &r in batch {
            self.access(r);
        }
    }

    /// Run fast path: after the first occurrence of a single-block
    /// reference, every repeat would be swallowed by the shared
    /// last-block short-circuit — only the shared word counters move.
    /// Repeats of multi-block references fall back to the full walk
    /// (their leading blocks are re-looked-up in the raw stream too).
    fn record_runs(&mut self, runs: &[RefRun]) {
        for run in runs {
            self.access(run.r);
            if run.count > 1 {
                if run.r.single_block(1 << self.block_shift) {
                    self.fastpath_refs += u64::from(run.count - 1);
                    self.count_words(run.r, u64::from(run.count - 1));
                } else {
                    for _ in 1..run.count {
                        self.access(run.r);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Cache;
    use sim_mem::Address;

    fn paper() -> SweepCache {
        SweepCache::try_new(CacheConfig::paper_sweep()).expect("paper sweep is sweepable")
    }

    /// Reference model: independent caches fed the same stream.
    fn bank(configs: &[CacheConfig]) -> Vec<Cache> {
        configs.iter().map(|&c| Cache::new(c)).collect()
    }

    #[test]
    fn rejects_non_sweep_shapes() {
        assert!(SweepCache::try_new([]).is_none(), "empty");
        assert!(
            SweepCache::try_new([CacheConfig::set_associative(16 * 1024, 32, 2)]).is_none(),
            "associative"
        );
        assert!(
            SweepCache::try_new([
                CacheConfig::direct_mapped(16 * 1024, 32),
                CacheConfig::direct_mapped(16 * 1024, 16),
            ])
            .is_none(),
            "mixed block sizes"
        );
    }

    #[test]
    fn matches_independent_caches_on_a_mixed_stream() {
        let configs = CacheConfig::paper_sweep();
        let mut sweep = paper();
        let mut caches = bank(&configs);
        // A mix of classes, sizes, conflicts, and revisits.
        let mut x = 7u64;
        for i in 0..50_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let addr = Address::new(x % (1 << 20));
            let r = match i % 4 {
                0 => MemRef::app_read(addr, 4),
                1 => MemRef::app_write(addr, (x % 300) as u32 + 1),
                2 => MemRef::meta_read(addr, 4),
                _ => MemRef::meta_write(addr, 8),
            };
            sweep.access(r);
            for c in &mut caches {
                c.access(r);
            }
        }
        for (i, c) in caches.iter().enumerate() {
            assert_eq!(sweep.results()[i].1, *c.stats(), "member {i} diverged");
        }
    }

    #[test]
    fn run_fast_path_matches_expansion() {
        let configs = CacheConfig::paper_sweep();
        let mut fast = paper();
        let mut slow = bank(&configs);
        let runs = [
            RefRun { r: MemRef::app_write(Address::new(100), 4), count: 1000 },
            RefRun { r: MemRef::app_read(Address::new(100), 4), count: 3 },
            // Multi-block: must take the fallback.
            RefRun { r: MemRef::app_write(Address::new(90), 64), count: 7 },
            RefRun { r: MemRef::meta_read(Address::new(4096), 4), count: 2 },
        ];
        fast.record_runs(&runs);
        for run in &runs {
            for _ in 0..run.count {
                for c in &mut slow {
                    c.access(run.r);
                }
            }
        }
        for (i, c) in slow.iter().enumerate() {
            assert_eq!(fast.results()[i].1, *c.stats(), "member {i} diverged");
        }
    }

    #[test]
    fn stats_for_and_configs_report_members() {
        let sweep = paper();
        assert_eq!(sweep.configs().len(), 5);
        let k64 = CacheConfig::direct_mapped(64 * 1024, 32);
        assert!(sweep.stats_for(k64).is_some());
        assert!(sweep.stats_for(CacheConfig::direct_mapped(512 * 1024, 32)).is_none());
    }

    #[test]
    fn shared_cold_classification_counts_once_per_member() {
        let mut sweep = paper();
        sweep.access(MemRef::app_read(Address::new(0), 4));
        for (_, s) in sweep.results() {
            assert_eq!(s.cold_misses, 1);
            assert_eq!(s.misses(), 1);
        }
        // Conflict eviction in the smallest member only: 16K = 512
        // lines, so block 512 conflicts with block 0 there and nowhere
        // else. Re-touching block 0 then misses only in the 16K member,
        // and that miss is *not* cold.
        sweep.access(MemRef::app_read(Address::new(512 * 32), 4));
        sweep.access(MemRef::app_read(Address::new(0), 4));
        let results = sweep.results();
        assert_eq!(results[0].1.misses(), 3, "16K: cold, cold, conflict");
        assert_eq!(results[0].1.cold_misses, 2);
        for (_, s) in &results[1..] {
            assert_eq!(s.misses(), 2, "bigger members keep both blocks");
            assert_eq!(s.cold_misses, 2);
        }
    }
}
