//! Pre-restructure sink implementations, kept verbatim as correctness
//! and performance baselines.
//!
//! [`ReferenceSweepCache`] is the [`crate::SweepCache`] implementation
//! as it stood before the struct-of-arrays restructure: an
//! array-of-structs miss table, a lazily computed freshness query
//! *inside* the member loop, and a `record_runs` that falls back to a
//! full per-occurrence re-walk for repeated multi-block references.
//!
//! It exists for two reasons, mirroring the pager's verbatim port from
//! the MRU-front rework:
//!
//! * **bit-identity** — `bench perf --sinks` replays the same cached
//!   stream through both implementations and requires their
//!   [`results`](ReferenceSweepCache::results) to match field-for-field;
//! * **speedup measurement** — the same harness times both and gates on
//!   the ratio, so the baseline must be the real old code compiled in
//!   the same binary, not a remembered number.
//!
//! Nothing here should be "improved"; it is a museum piece. Fixes belong
//! in [`crate::sweep`].

use sim_mem::{AccessClass, AccessSink, MemRef, RefRun};

use crate::cache::BlockSet;
use crate::{CacheConfig, CacheStats};

/// Per-member miss counters, array-of-structs as in the original.
#[derive(Debug, Clone, Copy, Default)]
struct MemberMisses {
    app: u64,
    meta: u64,
    cold: u64,
}

/// The pre-SoA [`crate::SweepCache`], verbatim. See the module docs.
#[derive(Debug, Clone)]
pub struct ReferenceSweepCache {
    /// `log2` of the shared block size.
    block_shift: u32,
    /// Member configurations, in construction order.
    configs: Vec<CacheConfig>,
    /// Per member: line-index mask (`lines - 1`).
    masks: Vec<u64>,
    /// Per member: offset of its tag array within `tags`.
    offsets: Vec<usize>,
    /// All members' tag arrays, concatenated (`u64::MAX` = invalid).
    tags: Vec<u64>,
    /// Per member miss counters.
    misses: Vec<MemberMisses>,
    /// Shared word-granular access counters.
    app_words: u64,
    meta_words: u64,
    /// Every block number ever referenced — shared by all members.
    seen: BlockSet,
    /// The most recently touched block (`u64::MAX` before any access).
    last_block: u64,
    /// References absorbed by the single-block run fast path.
    fastpath_refs: u64,
}

impl ReferenceSweepCache {
    /// Builds a single-pass sweep over `configs`, or `None` if they do
    /// not share the sweep structure (same acceptance rule as
    /// [`crate::SweepCache::try_new`]).
    pub fn try_new(configs: impl IntoIterator<Item = CacheConfig>) -> Option<Self> {
        let configs: Vec<CacheConfig> = configs.into_iter().collect();
        let block = configs.first()?.block;
        if configs.iter().any(|c| c.assoc != 1 || c.block != block) {
            return None;
        }
        let mut offsets = Vec::with_capacity(configs.len());
        let mut masks = Vec::with_capacity(configs.len());
        let mut total = 0usize;
        for c in &configs {
            offsets.push(total);
            masks.push(u64::from(c.lines()) - 1);
            total += c.lines() as usize;
        }
        Some(ReferenceSweepCache {
            block_shift: block.trailing_zeros(),
            misses: vec![MemberMisses::default(); configs.len()],
            configs,
            masks,
            offsets,
            tags: vec![u64::MAX; total],
            app_words: 0,
            meta_words: 0,
            seen: BlockSet::new(),
            last_block: u64::MAX,
            fastpath_refs: 0,
        })
    }

    /// `(config, stats)` pairs for reporting, in construction order.
    pub fn results(&self) -> Vec<(CacheConfig, CacheStats)> {
        (0..self.configs.len()).map(|i| (self.configs[i], self.member_stats(i))).collect()
    }

    fn member_stats(&self, i: usize) -> CacheStats {
        let m = self.misses[i];
        CacheStats {
            app_accesses: self.app_words,
            app_misses: m.app,
            meta_accesses: self.meta_words,
            meta_misses: m.meta,
            cold_misses: m.cold,
        }
    }

    /// Simulates one reference against every member (original code).
    pub fn access(&mut self, r: MemRef) {
        let first = r.addr.raw() >> self.block_shift;
        let last = (r.addr.raw() + u64::from(r.size.max(1)) - 1) >> self.block_shift;
        if first == last {
            if first != self.last_block {
                self.last_block = first;
                self.touch_block(first, r.class);
            }
        } else {
            for block in first..=last {
                if block == self.last_block {
                    continue;
                }
                self.last_block = block;
                self.touch_block(block, r.class);
            }
        }
        self.count_words(r, 1);
    }

    /// Advances the shared word-granular access counters by `n`
    /// occurrences of `r`, without touching tags.
    #[inline]
    fn count_words(&mut self, r: MemRef, n: u64) {
        let words = r.words() * n;
        match r.class {
            AccessClass::AppData => self.app_words += words,
            AccessClass::AllocatorMeta => self.meta_words += words,
        }
    }

    /// The original member loop: per-member miss branch, lazily
    /// computed freshness *inside* the loop, class matched per miss.
    fn touch_block(&mut self, block: u64, class: AccessClass) {
        let ReferenceSweepCache { offsets, masks, tags, misses, seen, .. } = self;
        let mut fresh: Option<bool> = None;
        for ((&offset, &mask), m) in offsets.iter().zip(masks.iter()).zip(misses.iter_mut()) {
            let tag = &mut tags[offset + (block & mask) as usize];
            if *tag != block {
                *tag = block;
                let was_fresh = *fresh.get_or_insert_with(|| seen.insert(block));
                match class {
                    AccessClass::AppData => m.app += 1,
                    AccessClass::AllocatorMeta => m.meta += 1,
                }
                m.cold += u64::from(was_fresh);
            }
        }
    }
}

impl AccessSink for ReferenceSweepCache {
    fn record(&mut self, r: MemRef) {
        self.access(r);
    }

    fn record_batch(&mut self, batch: &[MemRef]) {
        for &r in batch {
            self.access(r);
        }
    }

    /// The original run path: single-block repeats are absorbed, every
    /// multi-block repeat re-walks `access()` from scratch.
    fn record_runs(&mut self, runs: &[RefRun]) {
        for run in runs {
            self.access(run.r);
            if run.count > 1 {
                if run.r.single_block(1 << self.block_shift) {
                    self.fastpath_refs += u64::from(run.count - 1);
                    self.count_words(run.r, u64::from(run.count - 1));
                } else {
                    for _ in 1..run.count {
                        self.access(run.r);
                    }
                }
            }
        }
    }
}
