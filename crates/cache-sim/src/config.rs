//! Cache configuration.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Geometry of one simulated data cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes (power of two).
    pub size: u32,
    /// Block (line) size in bytes (power of two); the paper uses 32.
    pub block: u32,
    /// Associativity; 1 means direct-mapped (the paper's configuration).
    pub assoc: u32,
}

impl CacheConfig {
    /// The paper's block size.
    pub const PAPER_BLOCK: u32 = 32;

    /// A direct-mapped cache of `size` bytes with `block`-byte lines.
    ///
    /// # Panics
    ///
    /// Panics if `size` or `block` is not a power of two, or if `block`
    /// does not divide `size`.
    pub fn direct_mapped(size: u32, block: u32) -> Self {
        Self::set_associative(size, block, 1)
    }

    /// An `assoc`-way set-associative cache.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero, `size`/`block` are not powers of
    /// two, or the geometry does not divide evenly.
    pub fn set_associative(size: u32, block: u32, assoc: u32) -> Self {
        assert!(size.is_power_of_two(), "cache size must be a power of two");
        assert!(block.is_power_of_two(), "block size must be a power of two");
        assert!(assoc >= 1, "associativity must be at least 1");
        assert!(size.is_multiple_of(block * assoc), "geometry must divide evenly");
        CacheConfig { size, block, assoc }
    }

    /// The paper's sweep: direct-mapped, 32-byte blocks, 16K–256K in
    /// powers of two (Figures 6–8).
    pub fn paper_sweep() -> Vec<CacheConfig> {
        [16, 32, 64, 128, 256]
            .into_iter()
            .map(|kb| CacheConfig::direct_mapped(kb * 1024, Self::PAPER_BLOCK))
            .collect()
    }

    /// Number of sets.
    pub fn sets(&self) -> u32 {
        self.size / (self.block * self.assoc)
    }

    /// Number of lines.
    pub fn lines(&self) -> u32 {
        self.size / self.block
    }
}

impl fmt::Display for CacheConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.assoc == 1 {
            write!(f, "{}K direct-mapped, {}B blocks", self.size / 1024, self.block)
        } else {
            write!(f, "{}K {}-way, {}B blocks", self.size / 1024, self.assoc, self.block)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_is_derived() {
        let c = CacheConfig::direct_mapped(16 * 1024, 32);
        assert_eq!(c.lines(), 512);
        assert_eq!(c.sets(), 512);
        let c = CacheConfig::set_associative(16 * 1024, 32, 4);
        assert_eq!(c.lines(), 512);
        assert_eq!(c.sets(), 128);
    }

    #[test]
    fn paper_sweep_is_16k_to_256k() {
        let sweep = CacheConfig::paper_sweep();
        assert_eq!(sweep.len(), 5);
        assert_eq!(sweep[0].size, 16 * 1024);
        assert_eq!(sweep[4].size, 256 * 1024);
        assert!(sweep.iter().all(|c| c.assoc == 1 && c.block == 32));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        CacheConfig::direct_mapped(3000, 32);
    }

    #[test]
    fn display_names_are_readable() {
        assert_eq!(
            CacheConfig::direct_mapped(65536, 32).to_string(),
            "64K direct-mapped, 32B blocks"
        );
        assert_eq!(CacheConfig::set_associative(65536, 32, 2).to_string(), "64K 2-way, 32B blocks");
    }
}
