//! Victim caching (Jouppi, ISCA 1990 — reference \[11\] of the paper).
//!
//! The paper motivates its study with Jouppi's projection of ~100-cycle
//! miss penalties; Jouppi's own remedy for direct-mapped conflict misses
//! is a small fully-associative *victim cache* holding recently evicted
//! blocks. This module implements it as an extension experiment: does a
//! few-entry victim buffer rescue the sequential-fit allocators, whose
//! freelist traffic conflicts with application data?

use serde::{Deserialize, Serialize};
use sim_mem::{AccessSink, MemRef};

use crate::cache::BlockSet;
use crate::CacheConfig;

/// Statistics for a victim-cached hierarchy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VictimStats {
    /// Word-granular accesses.
    pub accesses: u64,
    /// Misses in the main (direct-mapped) cache.
    pub main_misses: u64,
    /// Of those, hits in the victim buffer (swapped back, no memory
    /// traffic).
    pub victim_hits: u64,
    /// Blocks never seen before (compulsory misses).
    pub cold_misses: u64,
}

impl VictimStats {
    /// Misses that reach memory: main misses not caught by the victim
    /// buffer.
    pub fn effective_misses(&self) -> u64 {
        self.main_misses - self.victim_hits
    }

    /// Effective miss rate.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.effective_misses() as f64 / self.accesses as f64
        }
    }

    /// Fraction of main-cache misses the victim buffer absorbs.
    pub fn rescue_rate(&self) -> f64 {
        if self.main_misses == 0 {
            0.0
        } else {
            self.victim_hits as f64 / self.main_misses as f64
        }
    }
}

/// A direct-mapped cache backed by a small fully-associative LRU victim
/// buffer.
///
/// # Example
///
/// ```
/// use cache_sim::{CacheConfig, VictimCache};
/// use sim_mem::{Address, MemRef};
///
/// let mut v = VictimCache::new(CacheConfig::direct_mapped(1024, 32), 4);
/// // Two conflicting blocks ping-pong in a direct-mapped cache...
/// for i in 0..8u64 {
///     v.access(MemRef::app_read(Address::new((i % 2) * 1024), 4));
/// }
/// // ...but the victim buffer catches every eviction after the cold
/// // misses.
/// assert_eq!(v.stats().cold_misses, 2);
/// assert_eq!(v.stats().effective_misses(), 2);
/// assert_eq!(v.stats().victim_hits, 6);
/// ```
#[derive(Debug, Clone)]
pub struct VictimCache {
    config: CacheConfig,
    /// Main-cache tags (`u64::MAX` = invalid).
    lines: Vec<u64>,
    /// Victim buffer, MRU first.
    victims: Vec<u64>,
    capacity: usize,
    seen: BlockSet,
    stats: VictimStats,
}

impl VictimCache {
    /// Creates a victim-cached hierarchy. The main cache must be
    /// direct-mapped (that is the configuration victim caches exist
    /// for).
    ///
    /// # Panics
    ///
    /// Panics if `main` is not direct-mapped or `entries` is zero.
    pub fn new(main: CacheConfig, entries: usize) -> Self {
        assert_eq!(main.assoc, 1, "victim caches back direct-mapped caches");
        assert!(entries > 0, "victim buffer needs at least one entry");
        VictimCache {
            config: main,
            lines: vec![u64::MAX; main.lines() as usize],
            victims: Vec::with_capacity(entries),
            capacity: entries,
            seen: BlockSet::new(),
            stats: VictimStats::default(),
        }
    }

    /// The main cache's geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &VictimStats {
        &self.stats
    }

    /// Simulates one reference.
    pub fn access(&mut self, r: MemRef) {
        for block in r.blocks(u64::from(self.config.block)) {
            self.touch_block(block);
        }
        self.stats.accesses += u64::from(r.size.div_ceil(4).max(1));
    }

    fn touch_block(&mut self, block: u64) {
        let idx = (block % u64::from(self.config.lines())) as usize;
        if self.lines[idx] == block {
            return;
        }
        self.stats.main_misses += 1;
        if self.seen.insert(block) {
            self.stats.cold_misses += 1;
        }
        let evicted = self.lines[idx];
        self.lines[idx] = block;
        if let Some(pos) = self.victims.iter().position(|&v| v == block) {
            // Victim hit: swap — the evicted main block takes the
            // victim's slot.
            self.stats.victim_hits += 1;
            self.victims.remove(pos);
            if evicted != u64::MAX {
                self.victims.insert(0, evicted);
            }
        } else if evicted != u64::MAX {
            // Miss everywhere: the evicted block becomes the newest
            // victim.
            self.victims.insert(0, evicted);
            self.victims.truncate(self.capacity);
        }
    }
}

impl AccessSink for VictimCache {
    fn record(&mut self, r: MemRef) {
        self.access(r);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Cache;
    use sim_mem::Address;

    fn dm1k() -> CacheConfig {
        CacheConfig::direct_mapped(1024, 32)
    }

    #[test]
    fn no_conflicts_means_no_victim_traffic() {
        let mut v = VictimCache::new(dm1k(), 4);
        for i in 0..32u64 {
            v.access(MemRef::app_read(Address::new(i * 32), 4));
        }
        assert_eq!(v.stats().main_misses, 32);
        assert_eq!(v.stats().cold_misses, 32);
        assert_eq!(v.stats().victim_hits, 0);
    }

    #[test]
    fn ping_pong_conflict_is_absorbed() {
        let mut v = VictimCache::new(dm1k(), 1);
        for i in 0..10u64 {
            v.access(MemRef::app_read(Address::new((i % 2) * 1024), 4));
        }
        assert_eq!(v.stats().effective_misses(), 2, "only the cold misses remain");
        assert!(v.stats().rescue_rate() > 0.7);
    }

    #[test]
    fn victim_capacity_limits_rescue() {
        // Three conflicting blocks cycle; a 1-entry victim buffer holds
        // only the latest victim, which is never the next one needed.
        let mut v = VictimCache::new(dm1k(), 1);
        for i in 0..30u64 {
            v.access(MemRef::app_read(Address::new((i % 3) * 1024), 4));
        }
        assert_eq!(v.stats().victim_hits, 0);
        // A 2-entry buffer catches them all.
        let mut v = VictimCache::new(dm1k(), 2);
        for i in 0..30u64 {
            v.access(MemRef::app_read(Address::new((i % 3) * 1024), 4));
        }
        assert_eq!(v.stats().effective_misses(), 3);
    }

    #[test]
    fn effective_misses_never_exceed_plain_cache() {
        let mut plain = Cache::new(dm1k());
        let mut v = VictimCache::new(dm1k(), 4);
        let mut x = 7u64;
        for _ in 0..5000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let r = MemRef::app_read(Address::new(x % 8192), 4);
            plain.access(r);
            v.access(r);
        }
        assert!(v.stats().effective_misses() <= plain.stats().misses());
        assert_eq!(v.stats().main_misses, plain.stats().misses());
    }
}
