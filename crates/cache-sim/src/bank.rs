//! Simulating many cache configurations in one pass.

use sim_mem::{AccessSink, MemRef, RefRun};

use crate::{Cache, CacheConfig, CacheStats};

/// A set of caches fed by the same reference stream.
///
/// The paper varies cache size from 16K to 256K per experiment; feeding a
/// bank avoids replaying the workload once per configuration.
/// `CacheBank` implements [`AccessSink`], so it can sit directly on a
/// [`sim_mem::MemCtx`].
///
/// # Example
///
/// ```
/// use cache_sim::{CacheBank, CacheConfig};
/// use sim_mem::{AccessSink, Address, MemRef};
///
/// let mut bank = CacheBank::new(CacheConfig::paper_sweep());
/// bank.record(MemRef::app_read(Address::new(0), 4));
/// assert_eq!(bank.caches().len(), 5);
/// assert!(bank.caches().iter().all(|c| c.stats().misses() == 1));
/// ```
#[derive(Debug, Clone, Default)]
pub struct CacheBank {
    caches: Vec<Cache>,
}

impl CacheBank {
    /// Creates a bank over the given configurations.
    pub fn new(configs: impl IntoIterator<Item = CacheConfig>) -> Self {
        CacheBank { caches: configs.into_iter().map(Cache::new).collect() }
    }

    /// The member caches, in construction order.
    pub fn caches(&self) -> &[Cache] {
        &self.caches
    }

    /// Statistics for the cache with exactly this configuration, if any.
    pub fn stats_for(&self, config: CacheConfig) -> Option<&CacheStats> {
        self.caches.iter().find(|c| c.config() == config).map(|c| c.stats())
    }

    /// `(config, stats)` pairs for reporting.
    pub fn results(&self) -> Vec<(CacheConfig, CacheStats)> {
        self.caches.iter().map(|c| (c.config(), *c.stats())).collect()
    }
}

impl AccessSink for CacheBank {
    fn record(&mut self, r: MemRef) {
        for cache in &mut self.caches {
            cache.access(r);
        }
    }

    /// Inverts the loop nest: each cache consumes the whole batch before
    /// the next starts, so one cache's tag arrays and statistics stay hot
    /// for thousands of references instead of being evicted by its
    /// siblings' on every single reference.
    fn record_batch(&mut self, batch: &[MemRef]) {
        for cache in &mut self.caches {
            for &r in batch {
                cache.access(r);
            }
        }
    }

    /// Run-compressed batches keep the members *inner*, per run — the
    /// opposite nesting from [`CacheBank::record_batch`]. A replayed
    /// stream can be tens of millions of runs (hundreds of megabytes);
    /// letting each member consume the whole slice would stream that
    /// from memory once *per member*, while the members' tag arrays
    /// together are only a few hundred kilobytes and stay cache-resident
    /// under any nesting. Reading each run once and applying it to every
    /// member touches the big operand exactly once, and each member's
    /// own run fast path still absorbs the repeats. Run-boundary
    /// placement never affects sink state (the [`AccessSink`] contract),
    /// so the nesting choice is bit-identical.
    fn record_runs(&mut self, runs: &[RefRun]) {
        for run in runs {
            let run = std::slice::from_ref(run);
            for cache in &mut self.caches {
                cache.record_runs(run);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_mem::Address;

    #[test]
    fn all_members_see_every_reference() {
        let mut bank = CacheBank::new([
            CacheConfig::direct_mapped(1024, 32),
            CacheConfig::direct_mapped(4096, 32),
        ]);
        for i in 0..100u64 {
            bank.record(MemRef::app_read(Address::new(i * 64), 4));
        }
        for c in bank.caches() {
            assert_eq!(c.stats().accesses(), 100);
        }
    }

    #[test]
    fn stats_for_finds_by_config() {
        let cfg = CacheConfig::direct_mapped(2048, 32);
        let mut bank = CacheBank::new([cfg]);
        bank.record(MemRef::meta_write(Address::new(0), 4));
        assert_eq!(bank.stats_for(cfg).unwrap().meta_accesses, 1);
        assert!(bank.stats_for(CacheConfig::direct_mapped(4096, 32)).is_none());
        assert_eq!(bank.results().len(), 1);
    }

    #[test]
    fn larger_caches_in_bank_miss_no_more() {
        let mut bank = CacheBank::new(CacheConfig::paper_sweep());
        // Cyclic scan over 32K: thrashes 16K, fits 32K+.
        for round in 0..3 {
            let _ = round;
            for i in 0..1024u64 {
                bank.record(MemRef::app_read(Address::new(i * 32), 4));
            }
        }
        let misses: Vec<u64> = bank.caches().iter().map(|c| c.stats().misses()).collect();
        for w in misses.windows(2) {
            assert!(w[0] >= w[1], "bigger cache missed more: {misses:?}");
        }
        assert_eq!(misses[1], 1024, "32K holds the whole working set");
    }
}
