//! One simulated cache.

use std::collections::HashSet;

use serde::{Deserialize, Serialize};
use sim_mem::{AccessClass, AccessSink, MemRef};

use crate::CacheConfig;

/// Per-cache counters, split by reference class.
///
/// Accesses are counted in *word* granularity — one per data word
/// touched, matching the paper's per-reference miss rates (each load or
/// store is one data reference) — while misses are counted per block
/// actually fetched.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Word-granular accesses by the application.
    pub app_accesses: u64,
    /// Block misses on application references.
    pub app_misses: u64,
    /// Word-granular accesses by allocator metadata.
    pub meta_accesses: u64,
    /// Block misses on allocator-metadata references.
    pub meta_misses: u64,
    /// Misses to blocks never seen before (compulsory misses).
    pub cold_misses: u64,
}

impl CacheStats {
    /// All word-granular accesses.
    pub fn accesses(&self) -> u64 {
        self.app_accesses + self.meta_accesses
    }

    /// All misses.
    pub fn misses(&self) -> u64 {
        self.app_misses + self.meta_misses
    }

    /// Overall miss ratio (0.0 for an untouched cache).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses() as f64 / self.accesses() as f64
        }
    }

    /// Misses caused by capacity or conflict (total minus compulsory).
    pub fn replacement_misses(&self) -> u64 {
        self.misses() - self.cold_misses
    }
}

/// A write-allocate cache with LRU replacement within each set.
///
/// Direct-mapped configurations (the paper's) take a fast path; higher
/// associativities keep an MRU-ordered tag list per set.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// Direct-mapped: one tag per line (`u64::MAX` = invalid).
    lines: Vec<u64>,
    /// Associative: MRU-first tag lists per set (empty when direct).
    sets: Vec<Vec<u64>>,
    /// Every block number ever referenced, for cold-miss classification.
    seen: HashSet<u64>,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty (all-invalid) cache.
    pub fn new(config: CacheConfig) -> Self {
        let direct = config.assoc == 1;
        Cache {
            config,
            lines: if direct { vec![u64::MAX; config.lines() as usize] } else { Vec::new() },
            sets: if direct {
                Vec::new()
            } else {
                vec![Vec::with_capacity(config.assoc as usize); config.sets() as usize]
            },
            seen: HashSet::new(),
            stats: CacheStats::default(),
        }
    }

    /// The cache's geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Simulates one reference: every block it spans is touched, and the
    /// access counters advance by the number of words referenced.
    /// Returns the number of block misses it caused.
    pub fn access(&mut self, r: MemRef) -> u32 {
        let mut misses = 0;
        for block in r.blocks(u64::from(self.config.block)) {
            let hit = self.touch_block(block);
            if !hit {
                misses += 1;
                match r.class {
                    AccessClass::AppData => self.stats.app_misses += 1,
                    AccessClass::AllocatorMeta => self.stats.meta_misses += 1,
                }
                if self.seen.insert(block) {
                    self.stats.cold_misses += 1;
                }
            }
        }
        let words = u64::from(r.size.div_ceil(4).max(1));
        match r.class {
            AccessClass::AppData => self.stats.app_accesses += words,
            AccessClass::AllocatorMeta => self.stats.meta_accesses += words,
        }
        misses
    }

    /// Checks residency without touching LRU state or statistics.
    pub fn contains_block(&self, block: u64) -> bool {
        if self.config.assoc == 1 {
            let idx = (block % u64::from(self.config.lines())) as usize;
            self.lines[idx] == block
        } else {
            let idx = (block % u64::from(self.config.sets())) as usize;
            self.sets[idx].contains(&block)
        }
    }

    /// Brings `block` into the cache; returns `true` on a hit.
    fn touch_block(&mut self, block: u64) -> bool {
        if self.config.assoc == 1 {
            let idx = (block % u64::from(self.config.lines())) as usize;
            let hit = self.lines[idx] == block;
            self.lines[idx] = block;
            hit
        } else {
            let idx = (block % u64::from(self.config.sets())) as usize;
            let set = &mut self.sets[idx];
            if let Some(pos) = set.iter().position(|&t| t == block) {
                // Move to MRU position.
                set.remove(pos);
                set.insert(0, block);
                true
            } else {
                set.insert(0, block);
                set.truncate(self.config.assoc as usize);
                false
            }
        }
    }
}

impl AccessSink for Cache {
    fn record(&mut self, r: MemRef) {
        self.access(r);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_mem::{Address, MemRef};

    fn dm(size: u32) -> Cache {
        Cache::new(CacheConfig::direct_mapped(size, 32))
    }

    #[test]
    fn same_block_hits_after_cold_miss() {
        let mut c = dm(1024);
        assert_eq!(c.access(MemRef::app_read(Address::new(100), 4)), 1);
        assert_eq!(c.access(MemRef::app_read(Address::new(96), 4)), 0);
        assert_eq!(c.stats().miss_rate(), 0.5);
        assert_eq!(c.stats().cold_misses, 1);
    }

    #[test]
    fn spatial_prefetch_within_block() {
        // A 32-byte object written at once: one miss, then word reads hit.
        let mut c = dm(1024);
        c.access(MemRef::app_write(Address::new(64), 32));
        for off in (64..96).step_by(4) {
            assert_eq!(c.access(MemRef::app_read(Address::new(off), 4)), 0);
        }
    }

    #[test]
    fn conflicting_blocks_evict_in_direct_mapped() {
        let mut c = dm(1024); // 32 lines
        let a = Address::new(0);
        let b = Address::new(1024); // same line, different tag
        c.access(MemRef::app_read(a, 4));
        c.access(MemRef::app_read(b, 4));
        assert_eq!(c.access(MemRef::app_read(a, 4)), 1, "a was evicted by b");
        assert_eq!(c.stats().cold_misses, 2);
        assert_eq!(c.stats().replacement_misses(), 1);
    }

    #[test]
    fn two_way_set_assoc_tolerates_the_conflict() {
        let mut c = Cache::new(CacheConfig::set_associative(1024, 32, 2));
        let a = Address::new(0);
        let b = Address::new(1024);
        c.access(MemRef::app_read(a, 4));
        c.access(MemRef::app_read(b, 4));
        assert_eq!(c.access(MemRef::app_read(a, 4)), 0, "2-way keeps both");
    }

    #[test]
    fn lru_replacement_in_sets() {
        let mut c = Cache::new(CacheConfig::set_associative(1024, 32, 2));
        // Three blocks mapping to the same set (16 sets).
        let a = Address::new(0);
        let b = Address::new(512);
        let d = Address::new(1024);
        c.access(MemRef::app_read(a, 4));
        c.access(MemRef::app_read(b, 4));
        c.access(MemRef::app_read(a, 4)); // a is MRU
        c.access(MemRef::app_read(d, 4)); // evicts b (LRU)
        assert_eq!(c.access(MemRef::app_read(a, 4)), 0);
        assert_eq!(c.access(MemRef::app_read(b, 4)), 1);
    }

    #[test]
    fn multi_block_refs_count_words_and_block_misses() {
        let mut c = dm(4096);
        // 128-byte write = 4 block misses, 32 word accesses.
        assert_eq!(c.access(MemRef::app_write(Address::new(0), 128)), 4);
        assert_eq!(c.stats().app_accesses, 32);
        assert_eq!(c.stats().misses(), 4);
    }

    #[test]
    fn class_split_is_tracked() {
        let mut c = dm(1024);
        c.access(MemRef::app_read(Address::new(0), 4));
        c.access(MemRef::meta_write(Address::new(4096), 4));
        c.access(MemRef::meta_read(Address::new(4096), 4));
        let s = c.stats();
        assert_eq!(s.app_accesses, 1);
        assert_eq!(s.app_misses, 1);
        assert_eq!(s.meta_accesses, 2);
        assert_eq!(s.meta_misses, 1);
    }

    #[test]
    fn bigger_cache_never_misses_more_on_sequential_scan() {
        // Sequential scan with reuse: larger direct-mapped cache wins.
        let mut small = dm(1024);
        let mut large = dm(8192);
        for round in 0..4 {
            for i in 0..64 {
                let r = MemRef::app_read(Address::new(i * 32), 4);
                small.access(r);
                large.access(r);
                let _ = round;
            }
        }
        assert!(large.stats().misses() <= small.stats().misses());
        assert_eq!(large.stats().misses(), 64, "all fit: only cold misses");
    }
}
