//! One simulated cache.

use serde::{Deserialize, Serialize};
use sim_mem::{AccessClass, AccessSink, MemRef, RefRun};

use crate::CacheConfig;

/// Membership set over block numbers, used for cold-miss classification.
///
/// A two-level bitmap: the address space of block numbers is divided
/// into 4096-block leaves (512 bytes each), allocated on first touch.
/// Block numbers cluster tightly — the heap, the stack segment, and the
/// static data each occupy a contiguous range — so the populated leaves
/// are few, while lookups are two array indexes and a mask instead of a
/// `HashSet` probe (hash, bucket walk) per block reference. This is the
/// hottest query in the simulator: every block miss consults it.
#[derive(Debug, Clone, Default)]
pub(crate) struct BlockSet {
    /// Leaf `i` covers block numbers `i * 4096 .. (i + 1) * 4096`.
    leaves: Vec<Option<Box<[u64; 64]>>>,
    len: u64,
}

impl BlockSet {
    pub(crate) fn new() -> Self {
        BlockSet::default()
    }

    /// Inserts `block`; returns `true` if it was not already present.
    #[inline]
    pub(crate) fn insert(&mut self, block: u64) -> bool {
        let leaf = (block >> 12) as usize;
        if leaf >= self.leaves.len() {
            self.leaves.resize(leaf + 1, None);
        }
        let words = self.leaves[leaf].get_or_insert_with(|| Box::new([0u64; 64]));
        let word = ((block >> 6) & 63) as usize;
        let mask = 1u64 << (block & 63);
        let fresh = words[word] & mask == 0;
        words[word] |= mask;
        self.len += u64::from(fresh);
        fresh
    }

    /// Whether `block` has been inserted.
    #[cfg(test)]
    pub(crate) fn contains(&self, block: u64) -> bool {
        let leaf = (block >> 12) as usize;
        match self.leaves.get(leaf) {
            Some(Some(words)) => words[((block >> 6) & 63) as usize] & (1u64 << (block & 63)) != 0,
            _ => false,
        }
    }

    /// Number of distinct blocks inserted.
    #[cfg(test)]
    pub(crate) fn len(&self) -> u64 {
        self.len
    }
}

/// Per-cache counters, split by reference class.
///
/// Accesses are counted in *word* granularity — one per data word
/// touched, matching the paper's per-reference miss rates (each load or
/// store is one data reference) — while misses are counted per block
/// actually fetched.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Word-granular accesses by the application.
    pub app_accesses: u64,
    /// Block misses on application references.
    pub app_misses: u64,
    /// Word-granular accesses by allocator metadata.
    pub meta_accesses: u64,
    /// Block misses on allocator-metadata references.
    pub meta_misses: u64,
    /// Misses to blocks never seen before (compulsory misses).
    pub cold_misses: u64,
}

impl CacheStats {
    /// All word-granular accesses.
    pub fn accesses(&self) -> u64 {
        self.app_accesses + self.meta_accesses
    }

    /// All misses.
    pub fn misses(&self) -> u64 {
        self.app_misses + self.meta_misses
    }

    /// Overall miss ratio (0.0 for an untouched cache).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses() as f64 / self.accesses() as f64
        }
    }

    /// Misses caused by capacity or conflict (total minus compulsory).
    pub fn replacement_misses(&self) -> u64 {
        self.misses() - self.cold_misses
    }
}

/// A write-allocate cache with LRU replacement within each set.
///
/// Direct-mapped configurations (the paper's) take a fast path; higher
/// associativities keep an MRU-ordered tag list per set.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// Direct-mapped: one tag per line (`u64::MAX` = invalid).
    lines: Vec<u64>,
    /// Associative: MRU-first tag lists per set (empty when direct).
    sets: Vec<Vec<u64>>,
    /// Every block number ever referenced, for cold-miss classification.
    seen: BlockSet,
    /// The most recently touched block (`u64::MAX` before any access):
    /// consecutive references to one block — the common case for
    /// word-by-word walks of an object — skip the lookup entirely.
    last_block: u64,
    /// References absorbed by the run fast path in `record_runs` (repeat
    /// occurrences that advanced only the word counters). Kept outside
    /// [`CacheStats`] so statistics stay independent of how the stream
    /// was delivered.
    fastpath_refs: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty (all-invalid) cache.
    pub fn new(config: CacheConfig) -> Self {
        let direct = config.assoc == 1;
        Cache {
            config,
            lines: if direct { vec![u64::MAX; config.lines() as usize] } else { Vec::new() },
            sets: if direct {
                Vec::new()
            } else {
                vec![Vec::with_capacity(config.assoc as usize); config.sets() as usize]
            },
            seen: BlockSet::new(),
            last_block: u64::MAX,
            fastpath_refs: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache's geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// References absorbed by the `record_runs` fast path (counted, not
    /// re-simulated). An observability counter — not part of
    /// [`CacheStats`].
    pub fn fastpath_refs(&self) -> u64 {
        self.fastpath_refs
    }

    /// Simulates one reference: every block it spans is touched, and the
    /// access counters advance by the number of words referenced.
    /// Returns the number of block misses it caused.
    pub fn access(&mut self, r: MemRef) -> u32 {
        let mut misses = 0;
        for block in r.blocks(u64::from(self.config.block)) {
            // The last touched block is necessarily still resident (and,
            // in an associative set, already at the MRU position): no
            // lookup, no LRU work, no miss.
            if block == self.last_block {
                continue;
            }
            self.last_block = block;
            let hit = self.touch_block(block);
            if !hit {
                misses += 1;
                match r.class {
                    AccessClass::AppData => self.stats.app_misses += 1,
                    AccessClass::AllocatorMeta => self.stats.meta_misses += 1,
                }
                if self.seen.insert(block) {
                    self.stats.cold_misses += 1;
                }
            }
        }
        self.count_words(r, 1);
        misses
    }

    /// Advances the word-granular access counters by `n` occurrences of
    /// `r`, without touching tags or LRU state.
    fn count_words(&mut self, r: MemRef, n: u64) {
        let words = r.words() * n;
        match r.class {
            AccessClass::AppData => self.stats.app_accesses += words,
            AccessClass::AllocatorMeta => self.stats.meta_accesses += words,
        }
    }

    /// Checks residency without touching LRU state or statistics.
    pub fn contains_block(&self, block: u64) -> bool {
        if self.config.assoc == 1 {
            let idx = (block % u64::from(self.config.lines())) as usize;
            self.lines[idx] == block
        } else {
            let idx = (block % u64::from(self.config.sets())) as usize;
            self.sets[idx].contains(&block)
        }
    }

    /// Brings `block` into the cache; returns `true` on a hit.
    fn touch_block(&mut self, block: u64) -> bool {
        if self.config.assoc == 1 {
            let idx = (block % u64::from(self.config.lines())) as usize;
            let hit = self.lines[idx] == block;
            self.lines[idx] = block;
            hit
        } else {
            let idx = (block % u64::from(self.config.sets())) as usize;
            let set = &mut self.sets[idx];
            if let Some(pos) = set.iter().position(|&t| t == block) {
                // Move to MRU position: rotate the prefix in place
                // instead of remove + insert (two shifting memmoves).
                set[..=pos].rotate_right(1);
                true
            } else {
                if set.len() < self.config.assoc as usize {
                    set.push(block);
                    set.rotate_right(1);
                } else {
                    // Full set: the rotate parks the LRU tag at the
                    // front, where the new block overwrites it.
                    set.rotate_right(1);
                    set[0] = block;
                }
                false
            }
        }
    }
}

impl AccessSink for Cache {
    fn record(&mut self, r: MemRef) {
        self.access(r);
    }

    /// Run fast path: the reference's block span is decomposed once per
    /// run. When the span fits the cache (`span ≤ lines`), the first
    /// occurrence's walk leaves every spanned block resident — the span
    /// places at most `ceil(span / sets) ≤ assoc` blocks in any set, and
    /// an insertion always evicts an older non-span entry while one
    /// exists — so every repeat is an all-hit pass that re-touches the
    /// sets in the identical order, leaving both the MRU ordering and
    /// every counter exactly where the raw stream would. Only the word
    /// counters move. Spans wider than the cache fall back to the full
    /// re-walk per repeat. (`span == 1` is the historical single-block
    /// case: repeats are swallowed by the last-block short-circuit.)
    fn record_runs(&mut self, runs: &[RefRun]) {
        for run in runs {
            self.access(run.r);
            if run.count > 1 {
                let span = run.r.block_span(u64::from(self.config.block));
                if span <= u64::from(self.config.lines()) {
                    self.fastpath_refs += u64::from(run.count - 1);
                    self.count_words(run.r, u64::from(run.count - 1));
                } else {
                    for _ in 1..run.count {
                        self.access(run.r);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_mem::{Address, MemRef};

    fn dm(size: u32) -> Cache {
        Cache::new(CacheConfig::direct_mapped(size, 32))
    }

    #[test]
    fn blockset_tracks_membership_across_leaves() {
        let mut s = BlockSet::new();
        // Blocks straddling leaf boundaries and far-apart ranges.
        for &b in &[0u64, 63, 64, 4095, 4096, 1 << 20, (1 << 20) + 1] {
            assert!(!s.contains(b));
            assert!(s.insert(b), "first insert of {b}");
            assert!(!s.insert(b), "second insert of {b}");
            assert!(s.contains(b));
        }
        assert_eq!(s.len(), 7);
        assert!(!s.contains(1), "neighbours stay clear");
        assert!(!s.contains(1 << 30), "unallocated leaves read as absent");
    }

    #[test]
    fn blockset_matches_hashset_on_random_stream() {
        use std::collections::HashSet;
        let mut bitmap = BlockSet::new();
        let mut reference = HashSet::new();
        let mut x = 42u64;
        for _ in 0..20_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let block = x % 100_000;
            assert_eq!(bitmap.insert(block), reference.insert(block));
        }
        assert_eq!(bitmap.len(), reference.len() as u64);
        for b in 0..100_000 {
            assert_eq!(bitmap.contains(b), reference.contains(&b));
        }
    }

    #[test]
    fn same_block_hits_after_cold_miss() {
        let mut c = dm(1024);
        assert_eq!(c.access(MemRef::app_read(Address::new(100), 4)), 1);
        assert_eq!(c.access(MemRef::app_read(Address::new(96), 4)), 0);
        assert_eq!(c.stats().miss_rate(), 0.5);
        assert_eq!(c.stats().cold_misses, 1);
    }

    #[test]
    fn spatial_prefetch_within_block() {
        // A 32-byte object written at once: one miss, then word reads hit.
        let mut c = dm(1024);
        c.access(MemRef::app_write(Address::new(64), 32));
        for off in (64..96).step_by(4) {
            assert_eq!(c.access(MemRef::app_read(Address::new(off), 4)), 0);
        }
    }

    #[test]
    fn conflicting_blocks_evict_in_direct_mapped() {
        let mut c = dm(1024); // 32 lines
        let a = Address::new(0);
        let b = Address::new(1024); // same line, different tag
        c.access(MemRef::app_read(a, 4));
        c.access(MemRef::app_read(b, 4));
        assert_eq!(c.access(MemRef::app_read(a, 4)), 1, "a was evicted by b");
        assert_eq!(c.stats().cold_misses, 2);
        assert_eq!(c.stats().replacement_misses(), 1);
    }

    #[test]
    fn two_way_set_assoc_tolerates_the_conflict() {
        let mut c = Cache::new(CacheConfig::set_associative(1024, 32, 2));
        let a = Address::new(0);
        let b = Address::new(1024);
        c.access(MemRef::app_read(a, 4));
        c.access(MemRef::app_read(b, 4));
        assert_eq!(c.access(MemRef::app_read(a, 4)), 0, "2-way keeps both");
    }

    #[test]
    fn lru_replacement_in_sets() {
        let mut c = Cache::new(CacheConfig::set_associative(1024, 32, 2));
        // Three blocks mapping to the same set (16 sets).
        let a = Address::new(0);
        let b = Address::new(512);
        let d = Address::new(1024);
        c.access(MemRef::app_read(a, 4));
        c.access(MemRef::app_read(b, 4));
        c.access(MemRef::app_read(a, 4)); // a is MRU
        c.access(MemRef::app_read(d, 4)); // evicts b (LRU)
        assert_eq!(c.access(MemRef::app_read(a, 4)), 0);
        assert_eq!(c.access(MemRef::app_read(b, 4)), 1);
    }

    #[test]
    fn multi_block_refs_count_words_and_block_misses() {
        let mut c = dm(4096);
        // 128-byte write = 4 block misses, 32 word accesses.
        assert_eq!(c.access(MemRef::app_write(Address::new(0), 128)), 4);
        assert_eq!(c.stats().app_accesses, 32);
        assert_eq!(c.stats().misses(), 4);
    }

    #[test]
    fn class_split_is_tracked() {
        let mut c = dm(1024);
        c.access(MemRef::app_read(Address::new(0), 4));
        c.access(MemRef::meta_write(Address::new(4096), 4));
        c.access(MemRef::meta_read(Address::new(4096), 4));
        let s = c.stats();
        assert_eq!(s.app_accesses, 1);
        assert_eq!(s.app_misses, 1);
        assert_eq!(s.meta_accesses, 2);
        assert_eq!(s.meta_misses, 1);
    }

    #[test]
    fn bigger_cache_never_misses_more_on_sequential_scan() {
        // Sequential scan with reuse: larger direct-mapped cache wins.
        let mut small = dm(1024);
        let mut large = dm(8192);
        for round in 0..4 {
            for i in 0..64 {
                let r = MemRef::app_read(Address::new(i * 32), 4);
                small.access(r);
                large.access(r);
                let _ = round;
            }
        }
        assert!(large.stats().misses() <= small.stats().misses());
        assert_eq!(large.stats().misses(), 64, "all fit: only cold misses");
    }
}
