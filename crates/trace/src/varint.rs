//! LEB128 variable-length integers and zig-zag signed encoding.

use std::io::{self, Read, Write};

/// Writes an unsigned LEB128 integer.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_u64<W: Write>(w: &mut W, mut v: u64) -> io::Result<()> {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

/// Reads an unsigned LEB128 integer.
///
/// # Errors
///
/// Returns `UnexpectedEof` on truncation and `InvalidData` if the
/// encoding exceeds 64 bits.
pub fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8];
        r.read_exact(&mut byte)?;
        let b = byte[0];
        if shift >= 64 || (shift == 63 && b > 1) {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "varint overflows u64"));
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Zig-zag encodes a signed integer so small magnitudes stay small.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Writes a zig-zag LEB128 signed integer.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_i64<W: Write>(w: &mut W, v: i64) -> io::Result<()> {
    write_u64(w, zigzag(v))
}

/// Reads a zig-zag LEB128 signed integer.
///
/// # Errors
///
/// See [`read_u64`].
pub fn read_i64<R: Read>(r: &mut R) -> io::Result<i64> {
    read_u64(r).map(unzigzag)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsigned_round_trips() {
        for v in [0u64, 1, 127, 128, 300, 1 << 20, u64::MAX] {
            let mut buf = Vec::new();
            write_u64(&mut buf, v).unwrap();
            assert_eq!(read_u64(&mut &buf[..]).unwrap(), v, "value {v}");
        }
    }

    #[test]
    fn signed_round_trips() {
        for v in [0i64, 1, -1, 63, -64, 1 << 40, -(1 << 40), i64::MAX, i64::MIN] {
            let mut buf = Vec::new();
            write_i64(&mut buf, v).unwrap();
            assert_eq!(read_i64(&mut &buf[..]).unwrap(), v, "value {v}");
        }
    }

    #[test]
    fn zigzag_keeps_small_magnitudes_small() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
        assert_eq!(unzigzag(zigzag(-123456)), -123456);
    }

    #[test]
    fn truncation_is_an_error() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 1 << 30).unwrap();
        buf.pop();
        assert!(read_u64(&mut &buf[..]).is_err());
    }

    #[test]
    fn small_values_take_one_byte() {
        for v in 0..128u64 {
            let mut buf = Vec::new();
            write_u64(&mut buf, v).unwrap();
            assert_eq!(buf.len(), 1);
        }
    }
}
