//! LEB128 variable-length integers and zig-zag signed encoding.
//!
//! The implementation lives in [`sim_mem::varint`] so that the stream
//! cache (`sim_mem::stream`) and this crate's ALTR trace format share
//! one encoder; this module re-exports it under the historical path.

pub use sim_mem::varint::{
    read_i64, read_u64, take_i64, take_u64, unzigzag, write_i64, write_u64, zigzag,
};
