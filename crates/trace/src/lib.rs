//! Compact binary record/replay of simulated memory-reference traces.
//!
//! The paper's pipeline was *execution-driven* — the instrumented
//! programs fed the TYCHO simulator directly, because at hundreds of
//! millions of references, "storing large trace files" was impractical
//! in 1993. The in-process engine of this reproduction works the same
//! way. This crate adds the complementary workflow: capture a reference
//! stream once, then replay it against any number of simulator
//! configurations — useful for archiving a workload, for diffing
//! allocator versions on a frozen stream, and for driving the
//! simulators from external traces.
//!
//! The format is deliberately tiny: a 16-byte header, then one record
//! per reference holding a flag byte (kind, class, and two compactness
//! hints), a zig-zag LEB128 address delta from the previous reference,
//! and, when the size differs from one word, a LEB128 size. Typical
//! simulated traces encode in ~3 bytes per reference.
//!
//! # Example
//!
//! ```
//! use sim_mem::{AccessSink, Address, MemRef};
//! use trace::{TraceReader, TraceWriter};
//!
//! # fn main() -> std::io::Result<()> {
//! let mut buf = Vec::new();
//! let mut w = TraceWriter::new(&mut buf);
//! w.record(MemRef::app_write(Address::new(0x1000), 64));
//! w.record(MemRef::meta_read(Address::new(0x1040), 4));
//! w.finish()?;
//!
//! let refs: Vec<MemRef> = TraceReader::new(&buf[..])?.collect::<Result<_, _>>()?;
//! assert_eq!(refs.len(), 2);
//! assert_eq!(refs[0].size, 64);
//! # Ok(())
//! # }
//! ```

pub mod format;
pub mod varint;

pub use format::{TraceHeader, TraceReader, TraceWriter, MAGIC, VERSION};

use sim_mem::AccessSink;
use std::io;

/// Replays a recorded trace into any [`AccessSink`] (a cache bank, a
/// pager, a statistics collector). Returns the number of references
/// replayed.
///
/// # Errors
///
/// Returns an error if the stream is truncated or corrupt.
pub fn replay<R: io::Read, S: AccessSink>(reader: R, sink: &mut S) -> io::Result<u64> {
    let mut n = 0;
    for r in TraceReader::new(reader)? {
        sink.record(r?);
        n += 1;
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::{Cache, CacheConfig};
    use sim_mem::{Address, CountingSink, MemRef};

    fn sample_trace() -> Vec<MemRef> {
        let mut refs = Vec::new();
        let mut x = 42u64;
        for i in 0..1000u32 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let addr = Address::new(0x1000_0000 + x % 100_000);
            refs.push(match i % 4 {
                0 => MemRef::app_read(addr, 4),
                1 => MemRef::app_write(addr, 4 + (i % 64) * 4),
                2 => MemRef::meta_read(addr, 4),
                _ => MemRef::meta_write(addr, 4),
            });
        }
        refs
    }

    #[test]
    fn replay_reproduces_simulation_exactly() {
        let refs = sample_trace();
        // Direct simulation.
        let mut direct = Cache::new(CacheConfig::direct_mapped(16 * 1024, 32));
        for &r in &refs {
            direct.access(r);
        }
        // Record, then replay.
        let mut buf = Vec::new();
        let mut w = TraceWriter::new(&mut buf);
        for &r in &refs {
            use sim_mem::AccessSink;
            w.record(r);
        }
        w.finish().unwrap();
        let mut replayed = Cache::new(CacheConfig::direct_mapped(16 * 1024, 32));
        let n = replay(&buf[..], &mut replayed).unwrap();
        assert_eq!(n, refs.len() as u64);
        assert_eq!(replayed.stats(), direct.stats());
    }

    #[test]
    fn encoding_is_compact() {
        let refs = sample_trace();
        let mut buf = Vec::new();
        let mut w = TraceWriter::new(&mut buf);
        for &r in &refs {
            use sim_mem::AccessSink;
            w.record(r);
        }
        w.finish().unwrap();
        let per_ref = buf.len() as f64 / refs.len() as f64;
        assert!(per_ref < 6.0, "{per_ref} bytes per reference is too fat");
    }

    #[test]
    fn counting_survives_roundtrip() {
        let refs = sample_trace();
        let mut direct = CountingSink::new();
        let mut buf = Vec::new();
        let mut w = TraceWriter::new(&mut buf);
        for &r in &refs {
            use sim_mem::AccessSink;
            direct.record(r);
            w.record(r);
        }
        w.finish().unwrap();
        let mut replayed = CountingSink::new();
        replay(&buf[..], &mut replayed).unwrap();
        assert_eq!(direct.stats(), replayed.stats());
    }
}
