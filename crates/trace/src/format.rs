//! The trace container format.
//!
//! ```text
//! header:  magic "ALTR" | u8 version | u8 reserved×3 | u64 LE record count
//! record:  flags u8 | zigzag-LEB128 addr delta | [LEB128 size]
//!   flags bit 0: kind   (0 = read, 1 = write)
//!   flags bit 1: class  (0 = app, 1 = allocator metadata)
//!   flags bit 2: size field present (absent = one word, 4 bytes)
//! ```
//!
//! Addresses are delta-encoded against the previous record, so the hot
//! loops of a simulation (nearby metadata and object touches) cost one
//! or two bytes each.

use std::io::{self, Read, Write};

use sim_mem::{AccessClass, AccessKind, AccessSink, Address, MemRef};

use crate::varint;

/// File magic: "ALTR" (ALlocator TRace).
pub const MAGIC: [u8; 4] = *b"ALTR";

/// Current format version.
pub const VERSION: u8 = 1;

const F_WRITE: u8 = 0b001;
const F_META: u8 = 0b010;
const F_SIZED: u8 = 0b100;

/// Parsed header of a trace stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceHeader {
    /// Format version.
    pub version: u8,
    /// Number of records, if the writer finished cleanly (`u64::MAX`
    /// means "unknown": the stream was not finalized).
    pub records: u64,
}

/// Streams references into a compact binary trace.
///
/// Implements [`AccessSink`], so it can be attached anywhere a simulator
/// can — including teeing alongside live simulation via
/// [`sim_mem::FanoutSink`]. Call [`TraceWriter::finish`] to patch the
/// record count into the header (requires buffering; this implementation
/// writes the count at the *end* of the stream instead, keeping the
/// writer single-pass).
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    out: W,
    last_addr: u64,
    records: u64,
    header_written: bool,
}

impl<W: Write> TraceWriter<W> {
    /// Creates a writer over any byte sink.
    pub fn new(out: W) -> Self {
        TraceWriter { out, last_addr: 0, records: 0, header_written: false }
    }

    fn ensure_header(&mut self) -> io::Result<()> {
        if !self.header_written {
            self.out.write_all(&MAGIC)?;
            self.out.write_all(&[VERSION, 0, 0, 0])?;
            self.header_written = true;
        }
        Ok(())
    }

    /// Records one reference.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn write_ref(&mut self, r: MemRef) -> io::Result<()> {
        self.ensure_header()?;
        let mut flags = 0u8;
        if r.kind == AccessKind::Write {
            flags |= F_WRITE;
        }
        if r.class == AccessClass::AllocatorMeta {
            flags |= F_META;
        }
        if r.size != 4 {
            flags |= F_SIZED;
        }
        self.out.write_all(&[flags])?;
        let delta = r.addr.raw() as i64 - self.last_addr as i64;
        varint::write_i64(&mut self.out, delta)?;
        if flags & F_SIZED != 0 {
            varint::write_u64(&mut self.out, u64::from(r.size))?;
        }
        self.last_addr = r.addr.raw();
        self.records += 1;
        Ok(())
    }

    /// Number of references recorded so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Finalizes the stream: writes the end-of-trace sentinel and the
    /// record count, and flushes.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.ensure_header()?;
        // Sentinel: an impossible flag byte.
        self.out.write_all(&[0xff])?;
        self.out.write_all(&self.records.to_le_bytes())?;
        self.out.flush()?;
        Ok(self.out)
    }
}

impl<W: Write> AccessSink for TraceWriter<W> {
    /// # Panics
    ///
    /// Panics on I/O errors, since [`AccessSink`] is infallible; use
    /// [`TraceWriter::write_ref`] directly for error handling.
    fn record(&mut self, r: MemRef) {
        self.write_ref(r).expect("trace write failed");
    }
}

/// Iterates the references of a recorded trace.
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    input: R,
    header: TraceHeader,
    last_addr: u64,
    done: bool,
}

impl<R: Read> TraceReader<R> {
    /// Opens a trace stream, validating the header.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on a bad magic or unsupported version.
    pub fn new(mut input: R) -> io::Result<Self> {
        let mut magic = [0u8; 4];
        input.read_exact(&mut magic)?;
        if magic != MAGIC {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "not an ALTR trace"));
        }
        let mut ver = [0u8; 4];
        input.read_exact(&mut ver)?;
        if ver[0] != VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported trace version {}", ver[0]),
            ));
        }
        Ok(TraceReader {
            input,
            header: TraceHeader { version: ver[0], records: u64::MAX },
            last_addr: 0,
            done: false,
        })
    }

    /// The parsed header. The record count becomes exact once the
    /// end-of-trace sentinel has been consumed.
    pub fn header(&self) -> TraceHeader {
        self.header
    }

    fn read_record(&mut self) -> io::Result<Option<MemRef>> {
        let mut flags = [0u8];
        match self.input.read_exact(&mut flags) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                // Unfinalized stream: accept a clean end.
                self.done = true;
                return Ok(None);
            }
            Err(e) => return Err(e),
        }
        if flags[0] == 0xff {
            // Sentinel: the trailer carries the record count.
            let mut count = [0u8; 8];
            self.input.read_exact(&mut count)?;
            self.header.records = u64::from_le_bytes(count);
            self.done = true;
            return Ok(None);
        }
        if flags[0] & !0b111 != 0 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "corrupt flag byte"));
        }
        let delta = varint::read_i64(&mut self.input)?;
        let addr = self
            .last_addr
            .checked_add_signed(delta)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "address underflow"))?;
        self.last_addr = addr;
        let size = if flags[0] & F_SIZED != 0 {
            u32::try_from(varint::read_u64(&mut self.input)?)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "oversized record"))?
        } else {
            4
        };
        let kind = if flags[0] & F_WRITE != 0 { AccessKind::Write } else { AccessKind::Read };
        let class =
            if flags[0] & F_META != 0 { AccessClass::AllocatorMeta } else { AccessClass::AppData };
        Ok(Some(MemRef { addr: Address::new(addr), size, kind, class }))
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = io::Result<MemRef>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        self.read_record().transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(refs: &[MemRef]) -> Vec<MemRef> {
        let mut buf = Vec::new();
        let mut w = TraceWriter::new(&mut buf);
        for &r in refs {
            w.write_ref(r).unwrap();
        }
        w.finish().unwrap();
        TraceReader::new(&buf[..]).unwrap().collect::<Result<_, _>>().unwrap()
    }

    #[test]
    fn empty_trace_round_trips() {
        assert_eq!(roundtrip(&[]), Vec::new());
    }

    #[test]
    fn all_flag_combinations_round_trip() {
        let a = Address::new(0x1000_0000);
        let refs = vec![
            MemRef::app_read(a, 4),
            MemRef::app_write(a + 8, 4),
            MemRef::meta_read(a + 4, 4),
            MemRef::meta_write(a, 4),
            MemRef::app_write(a + 100, 65536),
            MemRef::app_read(a, 1),
        ];
        assert_eq!(roundtrip(&refs), refs);
    }

    #[test]
    fn backward_deltas_work() {
        let refs = vec![
            MemRef::app_read(Address::new(1_000_000), 4),
            MemRef::app_read(Address::new(4), 4),
            MemRef::app_read(Address::new(999_996), 4),
        ];
        assert_eq!(roundtrip(&refs), refs);
    }

    #[test]
    fn record_count_in_trailer() {
        let mut buf = Vec::new();
        let mut w = TraceWriter::new(&mut buf);
        for i in 0..10u64 {
            w.write_ref(MemRef::app_read(Address::new(i * 4), 4)).unwrap();
        }
        assert_eq!(w.records(), 10);
        w.finish().unwrap();
        let mut r = TraceReader::new(&buf[..]).unwrap();
        assert_eq!(r.header().records, u64::MAX, "unknown before the trailer");
        let n = r.by_ref().count();
        assert_eq!(n, 10);
        assert_eq!(r.header().records, 10);
    }

    #[test]
    fn unfinalized_stream_reads_cleanly() {
        let mut buf = Vec::new();
        let mut w = TraceWriter::new(&mut buf);
        w.write_ref(MemRef::app_read(Address::new(0), 4)).unwrap();
        let _ = w; // dropped without finish()
        let refs: Vec<MemRef> =
            TraceReader::new(&buf[..]).unwrap().collect::<Result<_, _>>().unwrap();
        assert_eq!(refs.len(), 1);
    }

    #[test]
    fn corrupt_magic_rejected() {
        let buf = b"NOPE\x01\x00\x00\x00";
        assert!(TraceReader::new(&buf[..]).is_err());
    }

    #[test]
    fn corrupt_flags_rejected() {
        let mut buf = Vec::new();
        let w = TraceWriter::new(&mut buf);
        w.finish().unwrap();
        // Replace the sentinel with a garbage flag byte.
        let pos = buf.len() - 9;
        buf[pos] = 0b0101_0000;
        let result: Result<Vec<MemRef>, _> = TraceReader::new(&buf[..]).unwrap().collect();
        assert!(result.is_err());
    }
}
