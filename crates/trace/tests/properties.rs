//! Property tests: arbitrary reference streams must survive the binary
//! round trip exactly.

use proptest::prelude::*;
use sim_mem::{Address, MemRef};
use trace::{TraceReader, TraceWriter};

fn ref_strategy() -> impl Strategy<Value = MemRef> {
    (0u64..1 << 40, 1u32..1 << 20, any::<bool>(), any::<bool>()).prop_map(
        |(addr, size, write, meta)| {
            let a = Address::new(addr);
            match (write, meta) {
                (false, false) => MemRef::app_read(a, size),
                (true, false) => MemRef::app_write(a, size),
                (false, true) => MemRef::meta_read(a, size),
                (true, true) => MemRef::meta_write(a, size),
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn arbitrary_streams_round_trip(refs in proptest::collection::vec(ref_strategy(), 0..300)) {
        let mut buf = Vec::new();
        let mut w = TraceWriter::new(&mut buf);
        for &r in &refs {
            w.write_ref(r).unwrap();
        }
        w.finish().unwrap();
        let mut reader = TraceReader::new(&buf[..]).unwrap();
        let decoded: Vec<MemRef> = reader.by_ref().collect::<Result<_, _>>().unwrap();
        prop_assert_eq!(decoded, refs.clone());
        prop_assert_eq!(reader.header().records, refs.len() as u64);
    }

    #[test]
    fn truncated_streams_never_panic(
        refs in proptest::collection::vec(ref_strategy(), 1..50),
        cut in any::<proptest::sample::Index>(),
    ) {
        let mut buf = Vec::new();
        let mut w = TraceWriter::new(&mut buf);
        for &r in &refs {
            w.write_ref(r).unwrap();
        }
        w.finish().unwrap();
        let cut_at = 8 + cut.index(buf.len() - 8);
        let truncated = &buf[..cut_at];
        // Must yield Ok prefix records and possibly one Err; never panic.
        let mut reader = match TraceReader::new(truncated) {
            Ok(r) => r,
            Err(_) => return Ok(()),
        };
        let mut ok = 0usize;
        for item in reader.by_ref() {
            match item {
                Ok(r) => {
                    prop_assert_eq!(r, refs[ok]);
                    ok += 1;
                }
                Err(_) => break,
            }
        }
        prop_assert!(ok <= refs.len());
    }

    #[test]
    fn dense_word_streams_encode_tightly(
        start in 0u64..1 << 30,
        n in 1usize..500,
    ) {
        // The common case: word refs marching through nearby addresses.
        let mut buf = Vec::new();
        let mut w = TraceWriter::new(&mut buf);
        for i in 0..n as u64 {
            w.write_ref(MemRef::meta_read(Address::new(start + i * 4), 4)).unwrap();
        }
        w.finish().unwrap();
        let body = buf.len() - 8 - 9; // header + trailer
        // The first record pays the full address varint; the rest are
        // small deltas.
        prop_assert!(body <= n * 3 + 8, "{} bytes for {} refs", body, n);
    }
}
