//! The application event vocabulary.

use serde::{Deserialize, Serialize};

/// One step of a synthetic application, consumed by the experiment
/// engine. Object identity is a generator-assigned id; the engine maps
/// ids to heap addresses once the allocator under test has placed them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AppEvent {
    /// Request `size` bytes; the object is known as `id` from here on.
    Malloc {
        /// Generator-assigned object identity.
        id: u64,
        /// Requested bytes.
        size: u32,
        /// Synthetic allocation call site (the index of the size-mixture
        /// entry that produced the request). Real programs expose this as
        /// the return address of the `malloc` call; Barrett & Zorn's
        /// lifetime predictors — the paper's §5.1 future work — key on it.
        site: u32,
    },
    /// Release object `id`.
    Free {
        /// The object to release.
        id: u64,
    },
    /// Touch `len` bytes at `offset` within object `id`.
    Access {
        /// The object touched.
        id: u64,
        /// Byte offset within the object.
        offset: u32,
        /// Bytes touched.
        len: u32,
        /// Store (`true`) or load (`false`).
        write: bool,
    },
    /// Run `instrs` application instructions that touch no data
    /// (register arithmetic, control flow).
    Compute {
        /// Instructions executed.
        instrs: u64,
    },
    /// Touch `words` words of stack/static data. The paper's traces
    /// include every data reference, and in real programs the majority
    /// go to the (small, hot) stack and static segments; modelling them
    /// keeps the miss-rate denominator — and therefore the absolute
    /// miss rates — comparable to the paper's.
    Stack {
        /// Words of stack traffic.
        words: u64,
    },
}

impl AppEvent {
    /// Word-granular data references this event represents, for the
    /// paper's "Data Refs" accounting (Table 2).
    pub fn word_refs(&self) -> u64 {
        match self {
            AppEvent::Access { len, .. } => u64::from(len.div_ceil(4).max(1)),
            AppEvent::Stack { words } => *words,
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_refs_counts_access_words() {
        assert_eq!(AppEvent::Access { id: 0, offset: 0, len: 4, write: false }.word_refs(), 1);
        assert_eq!(AppEvent::Access { id: 0, offset: 0, len: 64, write: true }.word_refs(), 16);
        assert_eq!(AppEvent::Access { id: 0, offset: 0, len: 1, write: true }.word_refs(), 1);
        assert_eq!(AppEvent::Malloc { id: 0, size: 8, site: 0 }.word_refs(), 0);
        assert_eq!(AppEvent::Compute { instrs: 10 }.word_refs(), 0);
        assert_eq!(AppEvent::Stack { words: 9 }.word_refs(), 9);
    }
}
