//! The deterministic event-stream generator.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{AppEvent, Scale, SizePick, WorkloadSpec};

/// Iterator producing the application's event stream.
///
/// The process, per allocation step:
///
/// 1. free every object whose (exponentially distributed) lifetime
///    expired at this step, unless it was drawn permanent;
/// 2. emit one [`AppEvent::Compute`] covering the step's non-heap
///    instructions, then `refs_per_alloc` (jittered) heap accesses drawn
///    with recency bias over the live set;
/// 3. allocate one object from the size mixture and write it fully
///    (initialization), pushing it into the recency window.
///
/// The generator never frees an object twice and never accesses a dead
/// object; the experiment engine can therefore treat the stream as a
/// well-formed program.
#[derive(Debug)]
pub struct EventStream {
    spec: WorkloadSpec,
    rng: StdRng,
    /// Cumulative weights for the size mixture.
    cum_weights: Vec<u32>,
    weight_total: u32,
    /// Allocations remaining.
    remaining: u64,
    /// Allocation step counter (drives lifetimes).
    step: u64,
    next_id: u64,
    /// Live object ids and sizes, index-addressable for uniform picks.
    live: Vec<(u64, u32)>,
    /// Position of each live id in `live` (id -> index), for O(1) removal.
    live_pos: std::collections::HashMap<u64, usize>,
    /// (death step, id) min-heap.
    deaths: BinaryHeap<Reverse<(u64, u64)>>,
    /// Objects dying at the next phase boundary.
    cohort: Vec<u64>,
    /// Recently allocated/touched objects.
    recent: VecDeque<u64>,
    /// Events ready to be yielded.
    queue: VecDeque<AppEvent>,
}

impl EventStream {
    /// Creates the stream for a spec at a given scale.
    pub fn new(spec: WorkloadSpec, scale: Scale) -> Self {
        assert!(scale.0 > 0.0, "scale must be positive");
        let mut cum = Vec::with_capacity(spec.size_mix.len());
        let mut total = 0u32;
        for &(_, w) in &spec.size_mix {
            total += w;
            cum.push(total);
        }
        assert!(total > 0, "size mixture must have weight");
        let remaining = ((spec.total_allocs as f64 * scale.0) as u64).max(1);
        let rng = StdRng::seed_from_u64(spec.seed);
        EventStream {
            spec,
            rng,
            cum_weights: cum,
            weight_total: total,
            remaining,
            step: 0,
            next_id: 0,
            live: Vec::new(),
            live_pos: std::collections::HashMap::new(),
            deaths: BinaryHeap::new(),
            cohort: Vec::new(),
            recent: VecDeque::new(),
            queue: VecDeque::new(),
        }
    }

    /// Total allocations this stream will produce.
    pub fn planned_allocs(&self) -> u64 {
        self.remaining + self.step
    }

    /// Draws a request: (size, mixture index = synthetic call site).
    fn draw_size(&mut self) -> (u32, u32) {
        let roll = self.rng.random_range(0..self.weight_total);
        let idx = self.cum_weights.partition_point(|&c| c <= roll);
        let size = match self.spec.size_mix[idx].0 {
            SizePick::Exact(s) => s,
            SizePick::Range(lo, hi) => self.rng.random_range(lo..=hi),
        };
        (size, idx as u32)
    }

    fn draw_lifetime(&mut self) -> u64 {
        let u: f64 = self.rng.random();
        let l = -(1.0 - u).ln() * self.spec.mean_lifetime;
        (l.ceil() as u64).max(1)
    }

    fn remove_live(&mut self, id: u64) -> Option<u32> {
        let pos = self.live_pos.remove(&id)?;
        let (_, size) = self.live.swap_remove(pos);
        if let Some(&(moved, _)) = self.live.get(pos) {
            self.live_pos.insert(moved, pos);
        }
        Some(size)
    }

    fn pick_victim(&mut self) -> Option<(u64, u32)> {
        if self.live.is_empty() {
            return None;
        }
        if !self.recent.is_empty() && self.rng.random_bool(self.spec.recency_bias) {
            // Recency-weighted touch; fall back if the entry died.
            let k = self.rng.random_range(0..self.recent.len());
            let id = self.recent[k];
            if let Some(&pos) = self.live_pos.get(&id) {
                return Some(self.live[pos]);
            }
        }
        let k = self.rng.random_range(0..self.live.len());
        Some(self.live[k])
    }

    fn touch_recent(&mut self, id: u64) {
        self.recent.push_back(id);
        while self.recent.len() > self.spec.recency_window {
            self.recent.pop_front();
        }
    }

    /// Produces one allocation step's worth of events into the queue.
    fn advance(&mut self) {
        if self.remaining == 0 {
            return;
        }
        self.remaining -= 1;
        self.step += 1;

        // 1. Due deaths.
        while let Some(&Reverse((due, id))) = self.deaths.peek() {
            if due > self.step {
                break;
            }
            self.deaths.pop();
            if self.remove_live(id).is_some() {
                self.queue.push_back(AppEvent::Free { id });
            }
        }
        // 1b. Phase boundary: the cohort dies together.
        if let Some(phase) = self.spec.phases {
            if self.step.is_multiple_of(phase.period.max(1)) {
                for id in std::mem::take(&mut self.cohort) {
                    if self.remove_live(id).is_some() {
                        self.queue.push_back(AppEvent::Free { id });
                    }
                }
            }
        }

        // 2. Compute + data references. refs_per_alloc covers all data
        // references; only heap_ref_fraction of them touch heap objects,
        // the rest are stack/static traffic. Load/store instructions are
        // charged by the engine per word touched, so the Compute event
        // carries only the non-memory instructions.
        let jitter = self.rng.random_range(0.8..1.2);
        let nrefs = (self.spec.refs_per_alloc * jitter).round() as u64;
        let instrs = (nrefs as f64 * (self.spec.instrs_per_ref - 1.0).max(0.0)).round() as u64;
        if instrs > 0 {
            self.queue.push_back(AppEvent::Compute { instrs });
        }
        let heap_refs = (nrefs as f64 * self.spec.heap_ref_fraction).round() as u64;
        let stack_words = nrefs - heap_refs.min(nrefs);
        if stack_words > 0 {
            self.queue.push_back(AppEvent::Stack { words: stack_words });
        }
        let mut emitted = 0u64;
        while emitted < heap_refs {
            let Some((id, size)) = self.pick_victim() else { break };
            // Touch a run of consecutive words: spatially local, as real
            // code walking a struct or buffer is.
            let words = u64::from(size.div_ceil(4));
            let run_words = self.rng.random_range(1..=words.clamp(1, 8)) as u32;
            let max_off_words = (words as u32).saturating_sub(run_words);
            let offset =
                if max_off_words == 0 { 0 } else { self.rng.random_range(0..=max_off_words) * 4 };
            // Clamp the run to the object's (word-rounded) end.
            let len = (run_words * 4).min(size.max(4) - offset);
            let write = self.rng.random_bool(self.spec.write_fraction);
            self.queue.push_back(AppEvent::Access { id, offset, len, write });
            self.touch_recent(id);
            emitted += u64::from(run_words);
        }

        // 3. The allocation itself.
        let id = self.next_id;
        self.next_id += 1;
        let (size, site) = self.draw_size();
        self.queue.push_back(AppEvent::Malloc { id, size, site });
        // Initialization write over the whole object.
        self.queue.push_back(AppEvent::Access { id, offset: 0, len: size.max(1), write: true });
        self.live.push((id, size));
        self.live_pos.insert(id, self.live.len() - 1);
        self.touch_recent(id);
        if self.spec.permanent_fraction < 1.0 && !self.rng.random_bool(self.spec.permanent_fraction)
        {
            let in_cohort =
                self.spec.phases.is_some_and(|p| self.rng.random_bool(p.cohort_fraction));
            if in_cohort {
                self.cohort.push(id);
            } else {
                let due = self.step + self.draw_lifetime();
                self.deaths.push(Reverse((due, id)));
            }
        }
    }
}

impl Iterator for EventStream {
    type Item = AppEvent;

    fn next(&mut self) -> Option<AppEvent> {
        while self.queue.is_empty() {
            if self.remaining == 0 {
                return None;
            }
            self.advance();
        }
        self.queue.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Program;
    use std::collections::HashSet;

    fn collect(p: Program, scale: f64) -> Vec<AppEvent> {
        p.spec().events(Scale(scale)).collect()
    }

    #[test]
    fn stream_is_deterministic() {
        let a = collect(Program::Espresso, 0.001);
        let b = collect(Program::Espresso, 0.001);
        assert_eq!(a, b);
    }

    #[test]
    fn different_programs_differ() {
        let a = collect(Program::Espresso, 0.001);
        let b = collect(Program::Gawk, 0.001);
        assert_ne!(a, b);
    }

    #[test]
    fn stream_is_well_formed() {
        // Every Free and Access names a currently live object; ids are
        // unique; accesses stay in bounds.
        let events = collect(Program::GsLarge, 0.002);
        let mut live: std::collections::HashMap<u64, u32> = Default::default();
        let mut seen = HashSet::new();
        for e in &events {
            match *e {
                AppEvent::Malloc { id, size, .. } => {
                    assert!(seen.insert(id), "id {id} reused");
                    live.insert(id, size);
                }
                AppEvent::Free { id } => {
                    assert!(live.remove(&id).is_some(), "free of dead id {id}");
                }
                AppEvent::Access { id, offset, len, .. } => {
                    let size = *live.get(&id).expect("access to dead object");
                    assert!(len >= 1);
                    assert!(offset + len <= size.max(4), "oob access {offset}+{len} of {size}");
                }
                AppEvent::Compute { instrs } => assert!(instrs > 0),
                AppEvent::Stack { words } => assert!(words > 0),
            }
        }
    }

    #[test]
    fn ptc_emits_no_frees() {
        let events = collect(Program::Ptc, 0.01);
        assert!(events.iter().all(|e| !matches!(e, AppEvent::Free { .. })));
    }

    #[test]
    fn high_turnover_programs_free_almost_everything() {
        let events = collect(Program::Gawk, 0.01);
        let mallocs = events.iter().filter(|e| matches!(e, AppEvent::Malloc { .. })).count();
        let frees = events.iter().filter(|e| matches!(e, AppEvent::Free { .. })).count();
        // At this scale the steady-state live set (~2000 objects) is the
        // only unfreed residue: ≈ 88% freed, rising toward the paper's
        // 99.9% as the scale grows.
        assert!(
            frees as f64 > mallocs as f64 * 0.85,
            "gawk should recycle: {frees} frees / {mallocs} mallocs"
        );
    }

    #[test]
    fn steady_state_live_set_matches_calibration() {
        let spec = Program::Gawk.spec();
        let target = spec.mean_lifetime;
        let mut live = 0i64;
        let mut max_live = 0i64;
        for e in spec.events(Scale(0.01)) {
            match e {
                AppEvent::Malloc { .. } => {
                    live += 1;
                    max_live = max_live.max(live);
                }
                AppEvent::Free { .. } => live -= 1,
                _ => {}
            }
        }
        // 0.01 × 1.704M = ~17k allocations: far past the 2k lifetime, so
        // the live set should hover near the calibrated mean.
        let ratio = max_live as f64 / target;
        assert!((0.5..2.0).contains(&ratio), "live {max_live} vs target {target}");
    }

    #[test]
    fn reference_intensity_matches_spec() {
        let spec = Program::Espresso.spec();
        let target = spec.refs_per_alloc;
        let mut refs = 0u64;
        let mut allocs = 0u64;
        for e in spec.events(Scale(0.002)) {
            match e {
                AppEvent::Malloc { .. } => allocs += 1,
                AppEvent::Access { .. } | AppEvent::Stack { .. } => refs += e.word_refs(),
                _ => {}
            }
        }
        let measured = refs as f64 / allocs as f64;
        // Init writes add the object size on top of refs_per_alloc.
        assert!(
            measured > target * 0.9 && measured < target * 1.5,
            "measured {measured:.0} refs/alloc vs target {target:.0}"
        );
    }

    #[test]
    fn scale_controls_alloc_count() {
        let spec = Program::Make.spec();
        let n1 = spec.events(Scale(0.01)).filter(|e| matches!(e, AppEvent::Malloc { .. })).count();
        let n2 = spec.events(Scale(0.05)).filter(|e| matches!(e, AppEvent::Malloc { .. })).count();
        assert_eq!(n1, 240);
        assert_eq!(n2, 1200);
    }

    #[test]
    fn planned_allocs_reports_scaled_total() {
        let spec = Program::Make.spec();
        assert_eq!(spec.events(Scale(0.5)).planned_allocs(), 12000);
    }
}
