//! Importing external allocation traces.
//!
//! The synthetic models substitute for the paper's five C programs, but
//! the laboratory is just as happy to replay a *real* program's
//! allocation behaviour. This module parses a simple line-oriented text
//! format that instrumented programs (or converters from formats like
//! those of Zorn & Grunwald's trace archives) can emit:
//!
//! ```text
//! # comment / blank lines ignored
//! a <id> <size> [site]    allocate <size> bytes as object <id>
//! f <id>                  free object <id>
//! t <id> <offset> <len> <r|w>   touch bytes of a live object
//! c <instrs>              non-memory compute instructions
//! s <words>               stack/static data references
//! ```
//!
//! The parser validates the same well-formedness invariants the
//! synthetic generator guarantees (unique ids, frees and touches name
//! live objects, touches stay in bounds), so the engine can run imported
//! traces without further checking.
//!
//! # Example
//!
//! ```
//! use workloads::import::parse_trace;
//!
//! let text = "a 0 24\n t 0 0 24 w\n f 0\n";
//! let events = parse_trace(text.as_bytes())?;
//! assert_eq!(events.len(), 3);
//! # Ok::<(), workloads::import::ImportError>(())
//! ```

use std::error::Error;
use std::fmt;
use std::io::{BufRead, BufReader, Read};

use std::collections::HashMap;

use crate::AppEvent;

/// A parse or validation failure, with its line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImportError {
    /// 1-based line of the offending record.
    pub line: u64,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ImportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl Error for ImportError {}

impl From<std::io::Error> for ImportError {
    fn from(e: std::io::Error) -> Self {
        ImportError { line: 0, message: format!("I/O error: {e}") }
    }
}

fn err(line: u64, message: impl Into<String>) -> ImportError {
    ImportError { line, message: message.into() }
}

/// Parses and validates a text allocation trace into engine events.
///
/// # Errors
///
/// Returns [`ImportError`] on the first malformed or inconsistent record
/// (unknown verb, duplicate id, free/touch of a dead object,
/// out-of-bounds touch).
pub fn parse_trace<R: Read>(input: R) -> Result<Vec<AppEvent>, ImportError> {
    let mut events = Vec::new();
    let mut live: HashMap<u64, u32> = HashMap::new();
    let mut seen_ids = std::collections::HashSet::new();
    for (idx, line) in BufReader::new(input).lines().enumerate() {
        let lineno = idx as u64 + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_ascii_whitespace();
        let verb = parts.next().expect("non-empty line has a verb");
        let mut field =
            |name: &str| parts.next().ok_or_else(|| err(lineno, format!("missing field <{name}>")));
        match verb {
            "a" => {
                let id: u64 =
                    field("id")?.parse().map_err(|e| err(lineno, format!("bad id: {e}")))?;
                let size: u32 =
                    field("size")?.parse().map_err(|e| err(lineno, format!("bad size: {e}")))?;
                let site: u32 = match parts.next() {
                    Some(s) => s.parse().map_err(|e| err(lineno, format!("bad site: {e}")))?,
                    None => 0,
                };
                if !seen_ids.insert(id) {
                    return Err(err(lineno, format!("object id {id} reused")));
                }
                live.insert(id, size);
                events.push(AppEvent::Malloc { id, size, site });
            }
            "f" => {
                let id: u64 =
                    field("id")?.parse().map_err(|e| err(lineno, format!("bad id: {e}")))?;
                if live.remove(&id).is_none() {
                    return Err(err(lineno, format!("free of dead object {id}")));
                }
                events.push(AppEvent::Free { id });
            }
            "t" => {
                let id: u64 =
                    field("id")?.parse().map_err(|e| err(lineno, format!("bad id: {e}")))?;
                let offset: u32 = field("offset")?
                    .parse()
                    .map_err(|e| err(lineno, format!("bad offset: {e}")))?;
                let len: u32 =
                    field("len")?.parse().map_err(|e| err(lineno, format!("bad len: {e}")))?;
                let write = match field("r|w")? {
                    "r" => false,
                    "w" => true,
                    other => return Err(err(lineno, format!("bad access kind {other:?}"))),
                };
                let Some(&size) = live.get(&id) else {
                    return Err(err(lineno, format!("touch of dead object {id}")));
                };
                if len == 0 {
                    return Err(err(lineno, "zero-length touch"));
                }
                if u64::from(offset) + u64::from(len) > u64::from(size.max(4)) {
                    return Err(err(
                        lineno,
                        format!("touch {offset}+{len} outside {size}-byte object {id}"),
                    ));
                }
                events.push(AppEvent::Access { id, offset, len, write });
            }
            "c" => {
                let instrs: u64 = field("instrs")?
                    .parse()
                    .map_err(|e| err(lineno, format!("bad instruction count: {e}")))?;
                events.push(AppEvent::Compute { instrs });
            }
            "s" => {
                let words: u64 = field("words")?
                    .parse()
                    .map_err(|e| err(lineno, format!("bad word count: {e}")))?;
                events.push(AppEvent::Stack { words });
            }
            other => return Err(err(lineno, format!("unknown verb {other:?}"))),
        }
        if let Some(extra) = parts.next() {
            return Err(err(lineno, format!("trailing field {extra:?}")));
        }
    }
    Ok(events)
}

/// Writes events back out in the text format (the inverse of
/// [`parse_trace`]); useful for exporting a synthetic workload so it can
/// be edited or shared.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_trace<W: std::io::Write>(events: &[AppEvent], mut out: W) -> std::io::Result<()> {
    for e in events {
        match *e {
            AppEvent::Malloc { id, size, site } => writeln!(out, "a {id} {size} {site}")?,
            AppEvent::Free { id } => writeln!(out, "f {id}")?,
            AppEvent::Access { id, offset, len, write } => {
                writeln!(out, "t {id} {offset} {len} {}", if write { "w" } else { "r" })?
            }
            AppEvent::Compute { instrs } => writeln!(out, "c {instrs}")?,
            AppEvent::Stack { words } => writeln!(out, "s {words}")?,
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Program, Scale};

    #[test]
    fn well_formed_trace_parses() {
        let text = "# demo\n\na 0 24 3\nt 0 0 24 w\na 1 100\nt 1 96 4 r\nf 0\nc 500\ns 32\nf 1\n";
        let events = parse_trace(text.as_bytes()).unwrap();
        assert_eq!(events.len(), 8);
        assert_eq!(events[0], AppEvent::Malloc { id: 0, size: 24, site: 3 });
        assert_eq!(events[2], AppEvent::Malloc { id: 1, size: 100, site: 0 });
        assert_eq!(events[6], AppEvent::Stack { words: 32 });
    }

    #[test]
    fn errors_carry_line_numbers() {
        let cases = [
            ("x 1 2\n", "unknown verb"),
            ("a 0\n", "missing field"),
            ("a 0 8\na 0 8\n", "reused"),
            ("f 7\n", "dead object"),
            ("a 0 8\nt 0 4 8 w\n", "outside"),
            ("a 0 8\nt 0 0 4 q\n", "bad access kind"),
            ("a 0 8 1 junk\n", "trailing"),
            ("a 0 8\nt 0 0 0 r\n", "zero-length"),
        ];
        for (text, needle) in cases {
            let e = parse_trace(text.as_bytes()).unwrap_err();
            assert!(e.message.contains(needle), "{text:?} -> {e}");
            assert!(e.line > 0);
        }
    }

    #[test]
    fn round_trips_through_text() {
        let original: Vec<AppEvent> = Program::Make.spec().events(Scale(0.02)).collect();
        let mut buf = Vec::new();
        write_trace(&original, &mut buf).unwrap();
        let back = parse_trace(&buf[..]).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn synthetic_streams_are_valid_imports() {
        // The generator's invariants are exactly the importer's checks.
        for p in [Program::Gawk, Program::Ptc] {
            let events: Vec<AppEvent> = p.spec().events(Scale(0.002)).collect();
            let mut buf = Vec::new();
            write_trace(&events, &mut buf).unwrap();
            parse_trace(&buf[..]).unwrap_or_else(|e| panic!("{p}: {e}"));
        }
    }
}
