//! Workload specifications: the five paper programs and their published
//! statistics.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::EventStream;

/// Scale factor applied to a workload's allocation count.
///
/// Scaling shortens the run without changing its steady state: object
/// lifetimes, the size mixture, and the reference intensity stay fixed,
/// so the live set (and therefore the working set the caches and pager
/// see) matches the full-size program once warm. `Scale(1.0)` reproduces
/// the paper's full allocation counts (hundreds of millions of simulated
/// references); the repro harness defaults to a documented fraction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Scale(pub f64);

impl Default for Scale {
    fn default() -> Self {
        Scale(1.0)
    }
}

/// How a size-mixture entry draws a request size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SizePick {
    /// Always this many bytes (the dominant pattern: "most allocation
    /// requests were for one of a few different object sizes").
    Exact(u32),
    /// Uniformly within `[lo, hi]` (buffers, strings).
    Range(u32, u32),
}

impl SizePick {
    /// Mean of the distribution, for calibration arithmetic.
    pub fn mean(&self) -> f64 {
        match *self {
            SizePick::Exact(s) => f64::from(s),
            SizePick::Range(lo, hi) => (f64::from(lo) + f64::from(hi)) / 2.0,
        }
    }
}

/// Optional phase structure: real programs frequently allocate a
/// cohort of objects, work on it, and release it wholesale (espresso's
/// per-iteration cube sets, a compiler's per-function data). Phase
/// deaths are what coalescing exploits best, so the phase knob is the
/// natural ablation axis for the paper's coalescing discussion.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseBehavior {
    /// Allocations per phase.
    pub period: u64,
    /// Probability that a non-permanent object dies at its phase's end
    /// rather than by its exponential lifetime.
    pub cohort_fraction: f64,
}

/// Everything the generator needs to synthesize one program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Display name ("espresso", "gs-large", ...).
    pub name: String,
    /// Deterministic seed.
    pub seed: u64,
    /// Allocations at `Scale(1.0)`.
    pub total_allocs: u64,
    /// Weighted request-size mixture.
    pub size_mix: Vec<(SizePick, u32)>,
    /// Fraction of objects that live until program exit.
    pub permanent_fraction: f64,
    /// Mean object lifetime in allocation events (exponential); also the
    /// steady-state live-object count.
    pub mean_lifetime: f64,
    /// Word-sized data references issued between consecutive
    /// allocations (heap + stack together).
    pub refs_per_alloc: f64,
    /// Fraction of those references that go to the heap; the rest are
    /// stack/static traffic (real allocation-intensive C programs send
    /// well under half of their data references at the heap).
    pub heap_ref_fraction: f64,
    /// Non-heap instructions per heap reference (sets the instruction /
    /// data-reference ratio of Table 2).
    pub instrs_per_ref: f64,
    /// Probability an access goes to the recency window rather than a
    /// uniformly random live object.
    pub recency_bias: f64,
    /// Recency window length (objects).
    pub recency_window: usize,
    /// Fraction of accesses that are stores.
    pub write_fraction: f64,
    /// Optional phase structure (cohort deaths at phase boundaries).
    pub phases: Option<PhaseBehavior>,
}

impl WorkloadSpec {
    /// Instantiates the deterministic event stream at the given scale.
    pub fn events(&self, scale: Scale) -> EventStream {
        EventStream::new(self.clone(), scale)
    }

    /// Mean request size implied by the mixture.
    pub fn mean_request(&self) -> f64 {
        let total: u64 = self.size_mix.iter().map(|&(_, w)| u64::from(w)).sum();
        self.size_mix.iter().map(|&(pick, w)| pick.mean() * f64::from(w)).sum::<f64>()
            / total as f64
    }

    /// Expected steady-state live bytes (mean lifetime × mean size),
    /// the knob calibrated against the paper's "Max. Heap Size".
    pub fn expected_live_bytes(&self) -> f64 {
        self.mean_lifetime * self.mean_request()
            + self.permanent_fraction * self.total_allocs as f64 * self.mean_request()
    }
}

/// Published statistics (Tables 1–3 of the paper) for one program under
/// the FIRSTFIT baseline, used for calibration and for printing the
/// paper-vs-measured comparison.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PaperStats {
    /// Execution time on the DECstation 5000/120, seconds.
    pub exec_seconds: f64,
    /// Total instructions, millions.
    pub instr_millions: f64,
    /// Data references, millions.
    pub refs_millions: f64,
    /// Maximum heap size, kilobytes.
    pub heap_kbytes: u64,
    /// Objects allocated, thousands.
    pub allocated_thousands: f64,
    /// Objects freed, thousands.
    pub freed_thousands: f64,
}

/// The paper's test programs (Table 1), with GhostScript's three input
/// sets (Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Program {
    /// Espresso 2.3, PLA logic optimizer.
    Espresso,
    /// GhostScript 2.1 on the small input set.
    GsSmall,
    /// GhostScript 2.1 on the medium input set.
    GsMedium,
    /// GhostScript 2.1 on the large input set (the 126-page manual);
    /// this is the "GS" column of Tables 2, 4 and 5.
    GsLarge,
    /// Pascal-to-C translator: allocates and never frees.
    Ptc,
    /// GNU awk interpreter: a tiny heap recycled at very high rate.
    Gawk,
    /// GNU make dependency analysis.
    Make,
}

impl Program {
    /// The five programs of the paper's main tables (GS = large input).
    pub const FIVE: [Program; 5] =
        [Program::Espresso, Program::GsLarge, Program::Ptc, Program::Gawk, Program::Make];

    /// The three GhostScript input sets of Figures 6–8 / Table 3.
    pub const GS_INPUTS: [Program; 3] = [Program::GsSmall, Program::GsMedium, Program::GsLarge];

    /// Display name as the paper prints it.
    pub fn label(self) -> &'static str {
        match self {
            Program::Espresso => "espresso",
            Program::GsSmall => "GS-Small",
            Program::GsMedium => "GS-Medium",
            Program::GsLarge => "GS",
            Program::Ptc => "ptc",
            Program::Gawk => "gawk",
            Program::Make => "make",
        }
    }

    /// One-line description (Table 1).
    pub fn description(self) -> &'static str {
        match self {
            Program::Espresso => "PLA logic optimization, release example input",
            Program::GsSmall => "PostScript interpreter, small input files",
            Program::GsMedium => "PostScript interpreter, medium input files",
            Program::GsLarge => "PostScript interpreter, 126-page user manual (NODISPLAY)",
            Program::Ptc => "Pascal-to-C translator",
            Program::Gawk => "GNU awk interpreter",
            Program::Make => "GNU make dependency analyzer",
        }
    }

    /// The paper's measured statistics for this program (Tables 2 and 3,
    /// FIRSTFIT baseline).
    pub fn paper_stats(self) -> PaperStats {
        match self {
            Program::Espresso => PaperStats {
                exec_seconds: 155.1,
                instr_millions: 2506.0,
                refs_millions: 595.0,
                heap_kbytes: 396,
                allocated_thousands: 1673.0,
                freed_thousands: 1666.0,
            },
            Program::GsSmall => PaperStats {
                exec_seconds: 17.0,
                instr_millions: 195.0,
                refs_millions: 66.0,
                heap_kbytes: 1092,
                allocated_thousands: 109.0,
                freed_thousands: 102.0,
            },
            Program::GsMedium => PaperStats {
                exec_seconds: 51.3,
                instr_millions: 539.0,
                refs_millions: 172.0,
                heap_kbytes: 2721,
                allocated_thousands: 567.0,
                freed_thousands: 551.0,
            },
            Program::GsLarge => PaperStats {
                exec_seconds: 131.3,
                instr_millions: 1344.0,
                refs_millions: 421.0,
                heap_kbytes: 4129,
                allocated_thousands: 924.0,
                freed_thousands: 898.0,
            },
            Program::Ptc => PaperStats {
                exec_seconds: 25.1,
                instr_millions: 367.0,
                refs_millions: 125.0,
                heap_kbytes: 3146,
                allocated_thousands: 103.0,
                freed_thousands: 0.0,
            },
            Program::Gawk => PaperStats {
                exec_seconds: 76.7,
                instr_millions: 1215.0,
                refs_millions: 374.0,
                heap_kbytes: 60,
                allocated_thousands: 1704.0,
                freed_thousands: 1702.0,
            },
            Program::Make => PaperStats {
                exec_seconds: 4.0,
                instr_millions: 56.0,
                refs_millions: 17.0,
                heap_kbytes: 380,
                allocated_thousands: 24.0,
                freed_thousands: 13.0,
            },
        }
    }

    /// The calibrated workload model. The parameters are derived from
    /// [`Self::paper_stats`]: `refs_per_alloc` = refs / allocations,
    /// `instrs_per_ref` = instructions / refs, `mean_lifetime` ≈ live
    /// objects = heap bytes / mean request size, and the size mixtures
    /// encode each program's qualitative behaviour (tiny cells for
    /// espresso and gawk, large buffers for GhostScript, ~32-byte
    /// permanent nodes for ptc).
    pub fn spec(self) -> WorkloadSpec {
        use SizePick::{Exact, Range};
        let stats = self.paper_stats();
        let refs_per_alloc = stats.refs_millions * 1e6 / (stats.allocated_thousands * 1e3);
        let instrs_per_ref = stats.instr_millions / stats.refs_millions;
        let base = WorkloadSpec {
            name: self.label().to_lowercase(),
            seed: 0x9e37_79b9 ^ (self as u64) << 8,
            total_allocs: (stats.allocated_thousands * 1e3) as u64,
            size_mix: Vec::new(),
            permanent_fraction: 0.0,
            mean_lifetime: 1000.0,
            refs_per_alloc,
            instrs_per_ref,
            heap_ref_fraction: 0.4,
            recency_bias: 0.85,
            recency_window: 12,
            write_fraction: 0.35,
            phases: None,
        };
        match self {
            Program::Espresso => WorkloadSpec {
                size_mix: vec![
                    (Exact(8), 100),
                    (Exact(16), 250),
                    (Exact(24), 300),
                    (Exact(40), 150),
                    (Exact(64), 100),
                    (Range(128, 512), 40),
                    (Range(1024, 4096), 5),
                ],
                mean_lifetime: 7500.0,
                ..base
            },
            Program::GsSmall | Program::GsMedium | Program::GsLarge => {
                let mean_lifetime = match self {
                    Program::GsSmall => 2400.0,
                    Program::GsMedium => 5900.0,
                    _ => 9000.0,
                };
                WorkloadSpec {
                    // Most *requests* are small (interpreter cells and
                    // tokens; Zorn & Grunwald find a few small sizes
                    // dominate), while most *bytes* sit in the raster and
                    // path buffers of the long tail.
                    size_mix: vec![
                        (Exact(16), 250),
                        (Exact(24), 200),
                        (Exact(32), 250),
                        (Exact(48), 150),
                        (Exact(96), 80),
                        (Range(128, 1024), 120),
                        (Range(4096, 16384), 25),
                        (Range(32768, 65536), 3),
                    ],
                    permanent_fraction: 0.02,
                    mean_lifetime,
                    heap_ref_fraction: 0.4,
                    recency_bias: 0.9,
                    recency_window: 10,
                    ..base
                }
            }
            Program::Ptc => WorkloadSpec {
                size_mix: vec![
                    (Exact(16), 300),
                    (Exact(24), 350),
                    (Exact(32), 200),
                    (Exact(48), 100),
                    (Range(64, 256), 50),
                ],
                // ptc frees nothing: the AST lives until exit.
                permanent_fraction: 1.0,
                mean_lifetime: 1.0,
                heap_ref_fraction: 0.5,
                recency_bias: 0.7,
                recency_window: 24,
                ..base
            },
            Program::Gawk => WorkloadSpec {
                size_mix: vec![
                    (Exact(8), 200),
                    (Exact(16), 400),
                    (Exact(24), 250),
                    (Exact(32), 100),
                    (Range(48, 128), 50),
                ],
                mean_lifetime: 2000.0,
                heap_ref_fraction: 0.35,
                recency_bias: 0.9,
                recency_window: 8,
                ..base
            },
            Program::Make => WorkloadSpec {
                size_mix: vec![
                    (Exact(16), 350),
                    (Exact(24), 300),
                    (Exact(32), 200),
                    (Exact(80), 100),
                    (Range(128, 512), 30),
                ],
                permanent_fraction: 0.35,
                mean_lifetime: 3000.0,
                recency_bias: 0.75,
                recency_window: 16,
                ..base
            },
        }
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_programs_and_labels() {
        assert_eq!(Program::FIVE.len(), 5);
        assert_eq!(Program::GsLarge.to_string(), "GS");
        assert_eq!(Program::Espresso.label(), "espresso");
    }

    #[test]
    fn refs_and_instr_ratios_derive_from_paper() {
        let s = Program::Espresso.spec();
        // 595M refs / 1.673M allocs ≈ 356.
        assert!((s.refs_per_alloc - 355.6).abs() < 1.0);
        // 2506M instr / 595M refs ≈ 4.2.
        assert!((s.instrs_per_ref - 4.21).abs() < 0.05);
    }

    #[test]
    fn ptc_never_frees() {
        let s = Program::Ptc.spec();
        assert_eq!(s.permanent_fraction, 1.0);
    }

    #[test]
    fn live_set_calibration_is_in_the_right_ballpark() {
        // Expected steady-state live bytes should be within 2x of the
        // paper's max heap for the transient-free programs.
        for p in [Program::Espresso, Program::Gawk, Program::GsLarge] {
            let spec = p.spec();
            let expected = spec.mean_lifetime * spec.mean_request();
            let paper = p.paper_stats().heap_kbytes as f64 * 1024.0;
            let ratio = expected / paper;
            assert!(
                (0.4..2.5).contains(&ratio),
                "{p}: expected {expected:.0} vs paper {paper:.0} (ratio {ratio:.2})"
            );
        }
        // ptc: all-permanent heap should land near the paper's total.
        let spec = Program::Ptc.spec();
        let expected = spec.total_allocs as f64 * spec.mean_request();
        let paper = Program::Ptc.paper_stats().heap_kbytes as f64 * 1024.0;
        assert!((0.5..2.0).contains(&(expected / paper)));
    }

    #[test]
    fn gs_inputs_scale_up() {
        let a = Program::GsSmall.spec();
        let b = Program::GsMedium.spec();
        let c = Program::GsLarge.spec();
        assert!(a.total_allocs < b.total_allocs && b.total_allocs < c.total_allocs);
        assert!(a.mean_lifetime < b.mean_lifetime && b.mean_lifetime < c.mean_lifetime);
    }

    #[test]
    fn seeds_are_distinct() {
        let seeds: Vec<u64> = Program::FIVE.iter().map(|p| p.spec().seed).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(seeds.len(), dedup.len());
    }
}
