//! Synthetic allocation-intensive application models.
//!
//! The paper measured five real C programs (espresso, GhostScript, ptc,
//! gawk, make) instrumented with PIXIE. Those binaries, inputs, and
//! traces are not reproducible here, so this crate substitutes *workload
//! models*: deterministic generators that reproduce each program's
//! published heap statistics (Tables 1–3) — object counts, request-size
//! mixture, steady-state live set, free ratio, references and
//! instructions per allocation — plus the allocation-behaviour facts from
//! Zorn & Grunwald's companion studies (a few distinct sizes dominate;
//! ~24-byte requests are very common; objects are re-used rapidly; ptc
//! never frees).
//!
//! The locality phenomena the paper studies are driven by the allocation
//! request stream and the application's touch pattern over heap objects,
//! not by program semantics, so exercising the allocators with a
//! statistically matched stream preserves the behaviour under study (see
//! DESIGN.md §2 for the substitution argument).
//!
//! # Example
//!
//! ```
//! use workloads::{Program, Scale};
//!
//! let spec = Program::Espresso.spec();
//! let events: Vec<_> = spec.events(Scale(0.001)).collect();
//! assert!(events.len() > 100);
//! ```

pub mod events;
pub mod generator;
pub mod import;
pub mod spec;

pub use events::AppEvent;
pub use generator::EventStream;
pub use spec::{PaperStats, PhaseBehavior, Program, Scale, SizePick, WorkloadSpec};
