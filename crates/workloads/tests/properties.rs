//! Property tests for the workload generators: any program at any scale
//! must produce a well-formed, deterministic event stream.

use std::collections::HashMap;

use proptest::prelude::*;
use workloads::{AppEvent, Program, Scale};

fn program_strategy() -> impl Strategy<Value = Program> {
    prop_oneof![
        Just(Program::Espresso),
        Just(Program::GsSmall),
        Just(Program::GsMedium),
        Just(Program::GsLarge),
        Just(Program::Ptc),
        Just(Program::Gawk),
        Just(Program::Make),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Streams are well-formed: ids unique, frees and accesses only name
    /// live objects, accesses stay inside the (word-rounded) object.
    #[test]
    fn streams_are_well_formed(
        program in program_strategy(),
        scale in 0.0002f64..0.002,
    ) {
        let mut live: HashMap<u64, u32> = HashMap::new();
        let mut next_expected_id = 0u64;
        let mut mallocs = 0u64;
        let mut frees = 0u64;
        for e in program.spec().events(Scale(scale)) {
            match e {
                AppEvent::Malloc { id, size, .. } => {
                    prop_assert_eq!(id, next_expected_id, "ids are sequential");
                    next_expected_id += 1;
                    prop_assert!(size >= 1);
                    live.insert(id, size);
                    mallocs += 1;
                }
                AppEvent::Free { id } => {
                    prop_assert!(live.remove(&id).is_some(), "free of dead object");
                    frees += 1;
                }
                AppEvent::Access { id, offset, len, .. } => {
                    let size = *live.get(&id).expect("access to live object");
                    prop_assert!(len >= 1);
                    prop_assert!(u64::from(offset) + u64::from(len) <= u64::from(size.max(4)));
                }
                AppEvent::Compute { instrs } => prop_assert!(instrs > 0),
                AppEvent::Stack { words } => prop_assert!(words > 0),
            }
        }
        prop_assert!(frees <= mallocs);
        if program == Program::Ptc {
            prop_assert_eq!(frees, 0, "ptc never frees");
        }
    }

    /// Determinism: the same (program, scale) yields the same stream.
    #[test]
    fn streams_are_deterministic(
        program in program_strategy(),
        scale in 0.0002f64..0.001,
    ) {
        let a: Vec<AppEvent> = program.spec().events(Scale(scale)).collect();
        let b: Vec<AppEvent> = program.spec().events(Scale(scale)).collect();
        prop_assert_eq!(a, b);
    }

    /// Scale controls the allocation count exactly: the stream produces
    /// `max(1, floor(total_allocs * scale))` allocations.
    #[test]
    fn scale_is_exact(program in program_strategy(), scale in 0.0005f64..0.002) {
        let spec = program.spec();
        let n = spec
            .events(Scale(scale))
            .filter(|e| matches!(e, AppEvent::Malloc { .. }))
            .count() as u64;
        let expected = ((spec.total_allocs as f64 * scale) as u64).max(1);
        prop_assert_eq!(n, expected);
    }

    /// The size mixture respects each program's declared picks: every
    /// generated size is producible by the spec.
    #[test]
    fn sizes_come_from_the_mixture(program in program_strategy()) {
        use workloads::SizePick;
        let spec = program.spec();
        for e in spec.events(Scale(0.0005)) {
            if let AppEvent::Malloc { size, .. } = e {
                let ok = spec.size_mix.iter().any(|&(pick, _)| match pick {
                    SizePick::Exact(s) => s == size,
                    SizePick::Range(lo, hi) => (lo..=hi).contains(&size),
                });
                prop_assert!(ok, "size {} not in {}'s mixture", size, spec.name);
            }
        }
    }
}
