//! Hierarchical span tracing behind the [`Recorder`] contract.
//!
//! A [`Tracer`] is a recorder that, in addition to the flat metrics any
//! [`MemoryRecorder`] gathers, turns balanced
//! [`Recorder::span_enter`]/[`Recorder::span_exit`] calls into a
//! timestamped span *tree*: every span knows its parent, its start and
//! end offsets from the tracer's epoch, and the counter deltas recorded
//! while it was the innermost open span. The finished tree serializes
//! as the versioned `alloc-locality.trace` artifact ([`TraceReport`]),
//! a sibling of — never a change to — the `alloc-locality.run-report`
//! schema, and exports to Chrome trace-event JSON
//! ([`chrome_trace_json`]) for `chrome://tracing`/Perfetto timelines.
//!
//! The zero-overhead story is unchanged: `span_enter`/`span_exit` are
//! default-implemented no-ops on the trait, so [`NullRecorder`] and
//! [`MemoryRecorder`] compile to exactly what they did before the
//! tracer existed. Only an attached `Tracer` reads the clock. And
//! because the flat metrics a tracer gathers pass through an embedded
//! `MemoryRecorder` receiving the identical call sequence, a traced
//! run's [`MetricsSnapshot`] is byte-identical to a plainly
//! instrumented one — span structure never leaks into flat metrics.
//!
//! [`NullRecorder`]: crate::NullRecorder

use std::collections::BTreeMap;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::{MemoryRecorder, MetricsSnapshot, Recorder};

/// Schema tag of the trace artifact.
pub const TRACE_SCHEMA: &str = "alloc-locality.trace";

/// Current trace artifact version.
pub const TRACE_VERSION: u32 = 1;

/// Hard bound on spans one tracer stores. Per-flush spans scale with
/// the workload, so an unbounded tree could hold a long-lived daemon's
/// memory hostage; past the cap, spans are counted
/// ([`TraceReport::dropped_spans`]) but not stored, and enter/exit
/// bookkeeping stays balanced.
pub const MAX_TRACE_SPANS: usize = 65_536;

/// Sentinel id marking an open span that was dropped by the cap.
const DROPPED: u32 = u32::MAX;

/// One node of a span tree: a named interval with parent linkage and
/// the counters attributed to it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceSpan {
    /// Dense id, assigned in enter order (so ids ascend with
    /// `start_ns`, and every parent's id precedes its children's).
    pub id: u32,
    /// Id of the enclosing span; `None` for roots.
    #[serde(default)]
    pub parent: Option<u32>,
    /// Span name (a dotted phase path, e.g. `engine.drive`).
    pub name: String,
    /// Nanoseconds from the tracer's epoch to span entry.
    pub start_ns: u64,
    /// Nanoseconds from the tracer's epoch to span exit.
    pub end_ns: u64,
    /// Counter deltas recorded while this span was innermost, attached
    /// at exit.
    #[serde(default)]
    pub counters: BTreeMap<String, u64>,
}

impl TraceSpan {
    /// Wall time the span covered, in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// Bookkeeping for a span that has been entered but not yet exited.
#[derive(Debug)]
struct OpenSpan {
    /// Index into the span list, or [`DROPPED`].
    id: u32,
    /// Counter deltas seen while this span is innermost; converted to
    /// owned names only at exit, so the hot path never allocates
    /// strings.
    counters: BTreeMap<&'static str, u64>,
}

/// The span-recording recorder.
///
/// Flat metrics (`add`/`observe`/`span_ns`) tee into an embedded
/// [`MemoryRecorder`]; `span_enter`/`span_exit` build the tree. See the
/// module docs for the overhead and bit-identity contracts.
#[derive(Debug)]
pub struct Tracer {
    epoch: Instant,
    flat: MemoryRecorder,
    spans: Vec<TraceSpan>,
    open: Vec<OpenSpan>,
    dropped: u64,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

impl Tracer {
    /// A tracer whose epoch is now.
    pub fn new() -> Self {
        Tracer {
            epoch: Instant::now(),
            flat: MemoryRecorder::new(),
            spans: Vec::new(),
            open: Vec::new(),
            dropped: 0,
        }
    }

    fn elapsed_ns(&self) -> u64 {
        let d = self.epoch.elapsed();
        d.as_secs().saturating_mul(1_000_000_000).saturating_add(u64::from(d.subsec_nanos()))
    }

    /// Snapshot of the flat metrics gathered so far — identical to what
    /// a plain [`MemoryRecorder`] would have seen on the same run.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.flat.snapshot()
    }

    /// Spans closed so far (open spans are not listed until they exit
    /// or [`Tracer::finish`] closes them).
    pub fn spans(&self) -> &[TraceSpan] {
        &self.spans
    }

    /// How many spans the [`MAX_TRACE_SPANS`] cap discarded.
    pub fn dropped_spans(&self) -> u64 {
        self.dropped
    }

    /// Closes any spans still open (at the current clock) and freezes
    /// the tracer into its two products: the flat metrics snapshot and
    /// the span tree as a validated-shape [`TraceReport`] labeled
    /// `trace_id`.
    pub fn finish(mut self, trace_id: impl Into<String>) -> (MetricsSnapshot, TraceReport) {
        while !self.open.is_empty() {
            self.span_exit();
        }
        let metrics = self.flat.snapshot();
        let report = TraceReport {
            schema: TRACE_SCHEMA.to_string(),
            version: TRACE_VERSION,
            trace_id: trace_id.into(),
            dropped_spans: self.dropped,
            spans: self.spans,
        };
        (metrics, report)
    }
}

impl Recorder for Tracer {
    fn enabled(&self) -> bool {
        true
    }

    fn add(&mut self, name: &'static str, delta: u64) {
        self.flat.add(name, delta);
        if let Some(top) = self.open.last_mut() {
            *top.counters.entry(name).or_insert(0) += delta;
        }
    }

    fn observe(&mut self, name: &'static str, value: u64) {
        self.flat.observe(name, value);
    }

    fn span_ns(&mut self, name: &'static str, nanos: u64) {
        self.flat.span_ns(name, nanos);
    }

    fn span_enter(&mut self, name: &'static str) {
        let now = self.elapsed_ns();
        let id = if self.spans.len() >= MAX_TRACE_SPANS {
            self.dropped += 1;
            DROPPED
        } else {
            let id = self.spans.len() as u32;
            let parent = self.open.iter().rev().find(|o| o.id != DROPPED).map(|o| o.id);
            self.spans.push(TraceSpan {
                id,
                parent,
                name: name.to_string(),
                start_ns: now,
                end_ns: now,
                counters: BTreeMap::new(),
            });
            id
        };
        self.open.push(OpenSpan { id, counters: BTreeMap::new() });
    }

    fn span_exit(&mut self) {
        let Some(top) = self.open.pop() else { return };
        if top.id == DROPPED {
            return;
        }
        let now = self.elapsed_ns();
        let span = &mut self.spans[top.id as usize];
        span.end_ns = now;
        span.counters = top.counters.into_iter().map(|(k, v)| (k.to_string(), v)).collect();
    }
}

/// The versioned trace artifact: one span tree per traced run, emitted
/// as a single JSONL line by `repro --trace` and served by
/// `GET /jobs/{id}/trace`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceReport {
    /// Always [`TRACE_SCHEMA`].
    pub schema: String,
    /// Always [`TRACE_VERSION`] for freshly produced traces.
    pub version: u32,
    /// What was traced: `program/allocator` for engine sweeps, the job
    /// id for served jobs.
    pub trace_id: String,
    /// Spans the [`MAX_TRACE_SPANS`] cap discarded (0 in healthy runs).
    #[serde(default)]
    pub dropped_spans: u64,
    /// The tree, in enter order (see [`TraceSpan::id`]).
    pub spans: Vec<TraceSpan>,
}

impl TraceReport {
    /// Assembles a report around already-closed spans.
    pub fn new(trace_id: impl Into<String>, spans: Vec<TraceSpan>) -> Self {
        TraceReport {
            schema: TRACE_SCHEMA.to_string(),
            version: TRACE_VERSION,
            trace_id: trace_id.into(),
            dropped_spans: 0,
            spans,
        }
    }

    /// Structural validation of the v1 invariants, all of which hold by
    /// construction for [`Tracer`]-produced trees:
    ///
    /// - schema/version fields route to this decoder;
    /// - ids are dense and in enter order, so `start_ns` is monotone
    ///   non-decreasing across the list;
    /// - every span's parent exists and precedes it, and the child's
    ///   interval nests inside the parent's;
    /// - root spans balance: their intervals are disjoint and ordered
    ///   (a new root can only open after the previous one closed).
    ///
    /// # Errors
    ///
    /// Returns a message naming the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema != TRACE_SCHEMA {
            return Err(format!("schema {:?} is not {TRACE_SCHEMA:?}", self.schema));
        }
        if self.version != TRACE_VERSION {
            return Err(format!("version {} is not {TRACE_VERSION}", self.version));
        }
        if self.spans.is_empty() {
            return Err("trace holds no spans".into());
        }
        let mut last_start = 0u64;
        let mut last_root_end = 0u64;
        for (i, span) in self.spans.iter().enumerate() {
            let at = format!("span {} ({:?})", span.id, span.name);
            if span.id != i as u32 {
                return Err(format!("{at}: id out of order at index {i}"));
            }
            if span.end_ns < span.start_ns {
                return Err(format!("{at}: ends before it starts"));
            }
            if span.start_ns < last_start {
                return Err(format!("{at}: start_ns not monotone in id order"));
            }
            last_start = span.start_ns;
            match span.parent {
                Some(p) => {
                    if p >= span.id {
                        return Err(format!("{at}: parent {p} does not precede it"));
                    }
                    let parent = &self.spans[p as usize];
                    if span.start_ns < parent.start_ns || span.end_ns > parent.end_ns {
                        return Err(format!(
                            "{at}: interval escapes parent {} ({:?})",
                            parent.id, parent.name
                        ));
                    }
                }
                None => {
                    if span.start_ns < last_root_end {
                        return Err(format!("{at}: root overlaps the previous root"));
                    }
                    last_root_end = span.end_ns;
                }
            }
        }
        Ok(())
    }

    /// Serializes to one JSON line (the trace artifact's wire form).
    pub fn to_json_line(&self) -> String {
        serde_json::to_string(self).expect("trace report serializes")
    }

    /// Parses a JSON line produced by [`TraceReport::to_json_line`].
    ///
    /// # Errors
    ///
    /// Returns the JSON decoder's message for malformed input.
    pub fn parse(line: &str) -> Result<Self, String> {
        serde_json::from_str(line).map_err(|e| e.to_string())
    }

    /// Root spans (no parent), in time order.
    pub fn roots(&self) -> impl Iterator<Item = &TraceSpan> {
        self.spans.iter().filter(|s| s.parent.is_none())
    }

    /// First span with `name`, if any.
    pub fn span(&self, name: &str) -> Option<&TraceSpan> {
        self.spans.iter().find(|s| s.name == name)
    }
}

/// Minimal JSON string escaping for the Chrome export (span names and
/// trace ids are plain identifiers; this covers the general case
/// anyway).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Converts trace reports to Chrome trace-event JSON (the
/// `chrome://tracing` / Perfetto import format): one process per
/// report, named by its trace id, with every span a complete (`"X"`)
/// event whose `ts`/`dur` are microseconds from the report's epoch and
/// whose args carry the span's counters.
pub fn chrome_trace_json(reports: &[TraceReport]) -> String {
    let mut events = Vec::new();
    for (i, report) in reports.iter().enumerate() {
        let pid = i + 1;
        events.push(format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":1,\"name\":\"process_name\",\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape(&report.trace_id)
        ));
        for span in &report.spans {
            let mut args = String::new();
            for (name, value) in &span.counters {
                if !args.is_empty() {
                    args.push(',');
                }
                args.push_str(&format!("\"{}\":{value}", escape(name)));
            }
            events.push(format!(
                "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":1,\"cat\":\"span\",\"name\":\"{}\",\
                 \"ts\":{:.3},\"dur\":{:.3},\"args\":{{{args}}}}}",
                escape(&span.name),
                span.start_ns as f64 / 1_000.0,
                span.duration_ns() as f64 / 1_000.0,
            ));
        }
    }
    format!("{{\"traceEvents\":[{}]}}", events.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tracer exercised through the trait, as instrumented code sees
    /// it.
    fn sample_tracer() -> Tracer {
        let mut t = Tracer::new();
        t.span_enter("engine.drive");
        t.add("alloc.tag_reads", 3);
        t.span_enter("engine.alloc_build");
        t.add("alloc.tag_writes", 2);
        t.span_exit();
        t.span_enter("engine.events");
        t.observe("alloc.search_len", 4);
        t.span_exit();
        t.span_exit();
        t.span_enter("engine.finalize");
        t.span_exit();
        t
    }

    #[test]
    fn tracer_builds_a_valid_nested_tree() {
        let (metrics, report) = sample_tracer().finish("espresso/FirstFit");
        report.validate().expect("tracer trees validate by construction");
        assert_eq!(report.trace_id, "espresso/FirstFit");
        assert_eq!(report.spans.len(), 4);
        assert_eq!(report.roots().count(), 2);

        let drive = report.span("engine.drive").unwrap();
        assert_eq!(drive.parent, None);
        let build = report.span("engine.alloc_build").unwrap();
        assert_eq!(build.parent, Some(drive.id));
        let events = report.span("engine.events").unwrap();
        assert_eq!(events.parent, Some(drive.id));
        assert!(build.end_ns <= events.start_ns, "siblings are ordered");

        // Counters attach to the innermost open span at the add.
        assert_eq!(drive.counters.get("alloc.tag_reads"), Some(&3));
        assert_eq!(build.counters.get("alloc.tag_writes"), Some(&2));
        assert!(!drive.counters.contains_key("alloc.tag_writes"));

        // Flat metrics are what a plain MemoryRecorder would hold.
        assert_eq!(metrics.counter("alloc.tag_reads"), 3);
        assert_eq!(metrics.counter("alloc.tag_writes"), 2);
        assert_eq!(metrics.histogram("alloc.search_len").unwrap().count, 1);
        assert!(metrics.counters.keys().all(|k| !k.starts_with("trace.")));
    }

    #[test]
    fn tracer_flat_metrics_match_a_memory_recorder() {
        let drive = |rec: &mut dyn Recorder| {
            rec.span_enter("a");
            rec.add("c", 1);
            rec.observe("h", 7);
            rec.span_ns("s", 10);
            rec.span_exit();
        };
        let mut mem = MemoryRecorder::new();
        drive(&mut mem);
        let mut tracer = Tracer::new();
        drive(&mut tracer);
        assert_eq!(tracer.metrics_snapshot(), mem.snapshot());
    }

    #[test]
    fn finish_closes_dangling_spans() {
        let mut t = Tracer::new();
        t.span_enter("outer");
        t.span_enter("inner");
        let (_, report) = t.finish("t");
        report.validate().expect("dangling spans are closed, tree stays valid");
        assert_eq!(report.spans.len(), 2);
        let outer = report.span("outer").unwrap();
        let inner = report.span("inner").unwrap();
        assert!(inner.end_ns <= outer.end_ns);
    }

    #[test]
    fn unbalanced_exit_is_harmless() {
        let mut t = Tracer::new();
        t.span_exit();
        t.span_enter("only");
        t.span_exit();
        t.span_exit();
        let (_, report) = t.finish("t");
        assert_eq!(report.spans.len(), 1);
        report.validate().unwrap();
    }

    #[test]
    fn span_cap_drops_but_stays_balanced() {
        let mut t = Tracer::new();
        t.span_enter("root");
        for _ in 0..MAX_TRACE_SPANS + 10 {
            t.span_enter("leaf");
            t.add("c", 1);
            t.span_exit();
        }
        t.span_exit();
        assert_eq!(t.dropped_spans(), 11, "everything past the cap is counted");
        let (metrics, report) = t.finish("t");
        assert_eq!(report.spans.len(), MAX_TRACE_SPANS);
        assert_eq!(report.dropped_spans, 11);
        report.validate().unwrap();
        // Dropped spans still recorded their flat counters.
        assert_eq!(metrics.counter("c"), (MAX_TRACE_SPANS + 10) as u64);
    }

    #[test]
    fn validation_rejects_broken_trees() {
        let (_, good) = sample_tracer().finish("t");

        let mut wrong_schema = good.clone();
        wrong_schema.schema = "other".into();
        assert!(wrong_schema.validate().is_err());

        let mut wrong_version = good.clone();
        wrong_version.version = TRACE_VERSION + 1;
        assert!(wrong_version.validate().is_err());

        let mut empty = good.clone();
        empty.spans.clear();
        assert!(empty.validate().is_err());

        let mut bad_parent = good.clone();
        bad_parent.spans[1].parent = Some(9);
        assert!(bad_parent.validate().unwrap_err().contains("parent"));

        let mut self_parent = good.clone();
        self_parent.spans[1].parent = Some(1);
        assert!(self_parent.validate().is_err());

        let mut backwards = good.clone();
        backwards.spans[2].start_ns = 0;
        backwards.spans[2].end_ns = 0;
        assert!(backwards.validate().is_err());

        let mut inverted = good.clone();
        inverted.spans[0].end_ns = 0;
        assert!(inverted.validate().is_err());

        let mut escaping = good.clone();
        escaping.spans[1].end_ns = u64::MAX;
        assert!(escaping.validate().unwrap_err().contains("parent"));
    }

    #[test]
    fn trace_report_round_trips_through_json() {
        let (_, report) = sample_tracer().finish("round/trip");
        let line = report.to_json_line();
        assert!(!line.contains('\n'));
        let back = TraceReport::parse(&line).expect("parse emitted line");
        assert_eq!(back, report);
        back.validate().unwrap();
    }

    #[test]
    fn chrome_export_shapes_complete_events() {
        let (_, report) = sample_tracer().finish("espresso/FirstFit");
        let json = chrome_trace_json(std::slice::from_ref(&report));
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"M\""), "process metadata event present");
        assert!(json.contains("\"name\":\"espresso/FirstFit\""));
        assert!(json.contains("\"ph\":\"X\""), "spans are complete events");
        assert!(json.contains("\"name\":\"engine.drive\""));
        assert!(json.contains("\"alloc.tag_writes\":2"), "counters ride in args");
        // The export is itself valid JSON.
        let value: std::collections::BTreeMap<String, serde::Value> =
            serde_json::from_str(&json).expect("export parses as JSON");
        assert!(value.contains_key("traceEvents"));
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("tab\there"), "tab\\u0009here");
    }
}
