//! Observability primitives for the simulation stack.
//!
//! The design goal is *zero overhead when disabled*: every instrumented
//! component holds an `Option<&mut dyn Recorder>` (or an owned
//! [`NullRecorder`]), so the disabled hot path is a single
//! predictable branch — no allocation, no hashing, no atomic traffic —
//! and the simulated results are bit-identical either way (metrics are
//! recorded *about* the run, never folded *into* it).
//!
//! Three instrument kinds cover everything the engine needs:
//!
//! - **counters** ([`Recorder::add`]) — monotonically increasing event
//!   tallies (batch flushes, channel send stalls, quicklist hits);
//! - **histograms** ([`Recorder::observe`]) — per-event value
//!   distributions in log2 buckets (freelist search length per malloc,
//!   coalesce merges per free);
//! - **phase spans** ([`Recorder::span_ns`]) — accumulated wall-clock
//!   nanoseconds per named phase (allocator drive, cache sweep, shard
//!   finalization, per-worker busy time).
//!
//! Metric names are `&'static str` dotted paths (`"alloc.search_len"`,
//! `"pipeline.send_stalls"`) so the hot path never formats strings; the
//! in-memory recorder interns them into `BTreeMap`s only when a metric
//! first appears, which keeps snapshots deterministically ordered for
//! the stable JSONL report schema.

use std::collections::BTreeMap;
use std::time::Instant;

use serde::{Deserialize, Serialize};

pub mod prom;
pub mod tracer;

pub use tracer::{
    chrome_trace_json, TraceReport, TraceSpan, Tracer, MAX_TRACE_SPANS, TRACE_SCHEMA, TRACE_VERSION,
};

/// Canonical metric names emitted by the simulation stack.
///
/// The dotted-path strings are part of the run-report schema (consumers
/// key on them in JSONL metrics), so they are defined once here and
/// referenced by the emitting crates — renaming one is a schema change,
/// not a refactor.
pub mod names {
    /// Freelist nodes visited per `malloc` (histogram).
    pub const SEARCH_LEN: &str = "alloc.search_len";
    /// Boundary-tag merges per `free` (histogram).
    pub const COALESCE_PER_FREE: &str = "alloc.coalesce_per_free";
    /// Boundary-tag words read (counter).
    pub const TAG_READS: &str = "alloc.tag_reads";
    /// Boundary-tag words written (counter).
    pub const TAG_WRITES: &str = "alloc.tag_writes";
    /// Occupancy-bitmap probes on the rebuilt search fast paths
    /// (counter): each find-first-set consultation of a size-class or
    /// bin bitmap before a walk.
    pub const BITMAP_PROBE: &str = "alloc.bitmap_probe";
    /// Array-indexed quicklist fast-path hits on the rebuilt QuickFit
    /// (counter).
    pub const QUICK_HIT: &str = "alloc.quick_hit";
    /// Coalesce merges resolved from mirrored boundary tags on the
    /// rebuilt allocators (counter).
    pub const BOUNDARY_COALESCE: &str = "alloc.boundary_coalesce";
}

/// Sink for metrics emitted while a simulation runs.
///
/// Implementations must be cheap: `add`/`observe` sit on the per-malloc
/// path of the allocators and the per-flush path of the reference
/// pipeline. The trait is object-safe on purpose — instrumented code
/// holds `&mut dyn Recorder` so enabling metrics never changes the
/// monomorphized simulation code (and thus cannot perturb results).
pub trait Recorder {
    /// Whether this recorder keeps anything. Instrumented code may use
    /// this to skip *computing* an expensive value, never to change
    /// simulated behavior.
    fn enabled(&self) -> bool;

    /// Adds `delta` to the counter `name`.
    fn add(&mut self, name: &'static str, delta: u64);

    /// Records one observation of `value` in the histogram `name`.
    fn observe(&mut self, name: &'static str, value: u64);

    /// Accumulates `nanos` of wall time under the phase span `name`.
    fn span_ns(&mut self, name: &'static str, nanos: u64);

    /// Opens a *hierarchical* span named `name`, nested under the
    /// innermost span still open on this recorder.
    ///
    /// Default-implemented as a no-op: flat recorders
    /// ([`NullRecorder`], [`MemoryRecorder`]) ignore span structure
    /// entirely, so instrumenting a call site with enter/exit costs
    /// nothing — not even a clock read — unless a [`tracer::Tracer`] is
    /// attached. Calls must balance: one [`Recorder::span_exit`] per
    /// enter, well nested.
    fn span_enter(&mut self, _name: &'static str) {}

    /// Closes the innermost span opened by [`Recorder::span_enter`].
    /// Default no-op, mirroring `span_enter`.
    fn span_exit(&mut self) {}
}

/// The disabled recorder: every method is an inline empty body, so the
/// compiler reduces an instrumented call site to nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn add(&mut self, _name: &'static str, _delta: u64) {}

    #[inline(always)]
    fn observe(&mut self, _name: &'static str, _value: u64) {}

    #[inline(always)]
    fn span_ns(&mut self, _name: &'static str, _nanos: u64) {}

    #[inline(always)]
    fn span_enter(&mut self, _name: &'static str) {}

    #[inline(always)]
    fn span_exit(&mut self) {}
}

/// Forwarding impl so `&mut R` is itself a recorder (mirrors
/// `sim_mem::AccessSink` idiom; lets callers lend a recorder without
/// giving it up).
impl<R: Recorder + ?Sized> Recorder for &mut R {
    #[inline]
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    #[inline]
    fn add(&mut self, name: &'static str, delta: u64) {
        (**self).add(name, delta);
    }

    #[inline]
    fn observe(&mut self, name: &'static str, value: u64) {
        (**self).observe(name, value);
    }

    #[inline]
    fn span_ns(&mut self, name: &'static str, nanos: u64) {
        (**self).span_ns(name, nanos);
    }

    #[inline]
    fn span_enter(&mut self, name: &'static str) {
        (**self).span_enter(name);
    }

    #[inline]
    fn span_exit(&mut self) {
        (**self).span_exit();
    }
}

/// Number of log2 buckets: bucket `i` holds values whose bit length is
/// `i`, i.e. bucket 0 = {0}, bucket 1 = {1}, bucket 2 = {2,3},
/// bucket 3 = {4..7}, ... bucket 64 = {2^63..}.
pub const HIST_BUCKETS: usize = 65;

/// A log2-bucketed histogram with exact count/sum/min/max.
///
/// Buckets are a fixed inline array: recording is an increment at a
/// computed index, never an allocation, so histograms are safe on the
/// per-malloc path.
#[derive(Debug, Clone)]
pub struct Hist {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; HIST_BUCKETS],
}

impl Default for Hist {
    fn default() -> Self {
        Hist { count: 0, sum: 0, min: u64::MAX, max: 0, buckets: [0; HIST_BUCKETS] }
    }
}

impl Hist {
    /// Index of the bucket holding `value` (its bit length).
    #[inline]
    pub fn bucket_index(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// Inclusive lower bound of bucket `i` (0, 1, 2, 4, 8, ...).
    pub fn bucket_floor(i: usize) -> u64 {
        match i {
            0 => 0,
            _ => 1u64 << (i - 1),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[Self::bucket_index(value)] += 1;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `p`-th percentile (`p` in `0.0..=1.0`), resolved to the
    /// inclusive lower bound of the log2 bucket holding the rank —
    /// exact bucket arithmetic, no interpolation, so p50/p90/p99 are
    /// reproducible from any serialized snapshot. Returns 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        percentile_of(
            self.count,
            self.max,
            p,
            self.buckets.iter().enumerate().map(|(i, &n)| (Self::bucket_floor(i), n)),
        )
    }

    /// Converts to the serializable snapshot form, dropping empty
    /// buckets.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0 } else { self.min },
            max: self.max,
            mean: self.mean(),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter(|&(_, &n)| n != 0)
                .map(|(i, &n)| (Self::bucket_floor(i), n))
                .collect(),
        }
    }
}

/// Serializable form of a [`Hist`]: summary stats plus the non-empty
/// log2 buckets as `(inclusive_lower_bound, count)` pairs.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct HistSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
    /// Arithmetic mean (0.0 when empty).
    pub mean: f64,
    /// Non-empty log2 buckets, ascending by lower bound.
    pub buckets: Vec<(u64, u64)>,
}

impl HistSnapshot {
    /// [`Hist::percentile`] over the serialized bucket form, so
    /// consumers of a JSON report resolve the same bucket floors the
    /// live histogram would.
    pub fn percentile(&self, p: f64) -> u64 {
        percentile_of(self.count, self.max, p, self.buckets.iter().copied())
    }
}

/// Shared percentile walk: the rank of `p` (1-based, ceiling) located
/// in a cumulative scan of `(bucket_floor, count)` pairs in ascending
/// floor order.
fn percentile_of(count: u64, max: u64, p: f64, buckets: impl Iterator<Item = (u64, u64)>) -> u64 {
    if count == 0 {
        return 0;
    }
    let rank = ((p.clamp(0.0, 1.0) * count as f64).ceil() as u64).clamp(1, count);
    let mut seen = 0u64;
    for (floor, n) in buckets {
        seen += n;
        if seen >= rank {
            return floor;
        }
    }
    max
}

/// Serializable form of an accumulated phase span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SpanSnapshot {
    /// How many times the phase was entered.
    pub count: u64,
    /// Total wall time across entries, in nanoseconds.
    pub total_ns: u64,
}

/// Everything a recorder gathered, in deterministic (sorted-name)
/// order — the `metrics` payload of a run report.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counter name -> total.
    pub counters: BTreeMap<String, u64>,
    /// Histogram name -> snapshot.
    pub histograms: BTreeMap<String, HistSnapshot>,
    /// Span name -> accumulated wall time.
    pub spans: BTreeMap<String, SpanSnapshot>,
}

impl MetricsSnapshot {
    /// Counter value, 0 when never touched.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistSnapshot> {
        self.histograms.get(name)
    }

    /// Span by name.
    pub fn span(&self, name: &str) -> Option<SpanSnapshot> {
        self.spans.get(name).copied()
    }

    /// Merges another snapshot into this one (counters and spans add,
    /// histogram summaries and buckets combine). Used to fold
    /// per-worker recorders into one run-level snapshot.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, h) in &other.histograms {
            let into = self.histograms.entry(name.clone()).or_default();
            if into.count == 0 {
                *into = h.clone();
                continue;
            }
            if h.count == 0 {
                continue;
            }
            into.min = into.min.min(h.min);
            into.max = into.max.max(h.max);
            into.count += h.count;
            into.sum += h.sum;
            into.mean = into.sum as f64 / into.count as f64;
            let mut merged: BTreeMap<u64, u64> = into.buckets.iter().copied().collect();
            for &(floor, n) in &h.buckets {
                *merged.entry(floor).or_insert(0) += n;
            }
            into.buckets = merged.into_iter().collect();
        }
        for (name, s) in &other.spans {
            let into = self.spans.entry(name.clone()).or_default();
            into.count += s.count;
            into.total_ns += s.total_ns;
        }
    }
}

/// The enabled recorder: accumulates everything in memory, keyed by
/// metric name in `BTreeMap`s so snapshots serialize in a stable order.
#[derive(Debug, Clone, Default)]
pub struct MemoryRecorder {
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Hist>,
    spans: BTreeMap<&'static str, SpanSnapshot>,
}

impl MemoryRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        MemoryRecorder::default()
    }

    /// Counter value, 0 when never touched.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&Hist> {
        self.histograms.get(name)
    }

    /// Freezes the current state into a serializable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.iter().map(|(&k, &v)| (k.to_string(), v)).collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(&k, h)| (k.to_string(), h.snapshot()))
                .collect(),
            spans: self.spans.iter().map(|(&k, &s)| (k.to_string(), s)).collect(),
        }
    }
}

impl Recorder for MemoryRecorder {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    #[inline]
    fn add(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    #[inline]
    fn observe(&mut self, name: &'static str, value: u64) {
        self.histograms.entry(name).or_default().record(value);
    }

    #[inline]
    fn span_ns(&mut self, name: &'static str, nanos: u64) {
        let s = self.spans.entry(name).or_default();
        s.count += 1;
        s.total_ns += nanos;
    }
}

/// Minimal wall-clock stopwatch for phase spans.
///
/// Callers time a phase with `let t = Stopwatch::start(); ...;
/// rec.span_ns("phase", t.elapsed_ns());` — explicit rather than a
/// drop-guard so the recorder borrow is only taken at the recording
/// point.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        Stopwatch { started: Instant::now() }
    }

    /// Nanoseconds since [`Stopwatch::start`], saturated to `u64`.
    pub fn elapsed_ns(&self) -> u64 {
        let d = self.started.elapsed();
        d.as_secs().saturating_mul(1_000_000_000).saturating_add(u64::from(d.subsec_nanos()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_recorder_is_disabled_and_inert() {
        let mut r = NullRecorder;
        assert!(!r.enabled());
        r.add("x", 3);
        r.observe("y", 9);
        r.span_ns("z", 100);
    }

    #[test]
    fn bucket_index_is_bit_length() {
        assert_eq!(Hist::bucket_index(0), 0);
        assert_eq!(Hist::bucket_index(1), 1);
        assert_eq!(Hist::bucket_index(2), 2);
        assert_eq!(Hist::bucket_index(3), 2);
        assert_eq!(Hist::bucket_index(4), 3);
        assert_eq!(Hist::bucket_index(7), 3);
        assert_eq!(Hist::bucket_index(8), 4);
        assert_eq!(Hist::bucket_index(u64::MAX), 64);
        for i in 0..HIST_BUCKETS {
            assert_eq!(Hist::bucket_index(Hist::bucket_floor(i)), i, "floor of bucket {i}");
        }
    }

    #[test]
    fn hist_summary_and_buckets() {
        let mut h = Hist::default();
        for v in [0, 1, 1, 5, 16] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 23);
        assert!((h.mean() - 4.6).abs() < 1e-12);
        let s = h.snapshot();
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 16);
        assert_eq!(s.buckets, vec![(0, 1), (1, 2), (4, 1), (16, 1)]);
    }

    #[test]
    fn empty_hist_snapshot_is_zeroed() {
        let s = Hist::default().snapshot();
        assert_eq!(s, HistSnapshot::default());
    }

    #[test]
    fn percentile_resolves_bucket_floors() {
        let mut h = Hist::default();
        // 90 cheap observations in bucket [8..16), 10 slow in [1024..2048).
        for _ in 0..90 {
            h.record(9);
        }
        for _ in 0..10 {
            h.record(1500);
        }
        assert_eq!(h.percentile(0.50), 8);
        assert_eq!(h.percentile(0.90), 8, "rank 90 is the last cheap observation");
        assert_eq!(h.percentile(0.91), 1024);
        assert_eq!(h.percentile(0.99), 1024);
        assert_eq!(h.percentile(1.0), 1024);
        assert_eq!(h.percentile(0.0), 8, "p0 clamps to the first rank");
        // The snapshot resolves identically.
        let s = h.snapshot();
        for p in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(s.percentile(p), h.percentile(p), "p{p}");
        }
    }

    #[test]
    fn percentile_edge_cases() {
        assert_eq!(Hist::default().percentile(0.99), 0, "empty histogram");
        let mut one = Hist::default();
        one.record(42);
        for p in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(one.percentile(p), 32, "single value resolves to its bucket floor");
        }
        let mut zeros = Hist::default();
        zeros.record(0);
        zeros.record(0);
        assert_eq!(zeros.percentile(0.99), 0);
    }

    #[test]
    fn flat_recorders_ignore_hierarchical_spans() {
        // The default span_enter/span_exit bodies keep NullRecorder and
        // MemoryRecorder byte-for-byte indifferent to span structure.
        let mut null = NullRecorder;
        null.span_enter("phase");
        null.span_exit();
        let mut mem = MemoryRecorder::new();
        mem.span_enter("phase");
        mem.add("c", 1);
        mem.span_exit();
        let mut plain = MemoryRecorder::new();
        plain.add("c", 1);
        assert_eq!(mem.snapshot(), plain.snapshot());
    }

    #[test]
    fn memory_recorder_accumulates_and_snapshots_sorted() {
        let mut r = MemoryRecorder::new();
        r.add("b.count", 2);
        r.add("a.count", 1);
        r.add("b.count", 3);
        r.observe("h", 4);
        r.span_ns("phase", 10);
        r.span_ns("phase", 5);
        assert!(r.enabled());
        assert_eq!(r.counter("b.count"), 5);
        let s = r.snapshot();
        let names: Vec<&str> = s.counters.keys().map(String::as_str).collect();
        assert_eq!(names, ["a.count", "b.count"]);
        assert_eq!(s.counter("a.count"), 1);
        assert_eq!(s.histogram("h").unwrap().count, 1);
        assert_eq!(s.span("phase").unwrap(), SpanSnapshot { count: 2, total_ns: 15 });
    }

    #[test]
    fn snapshot_merge_folds_counters_hists_spans() {
        let mut a = MemoryRecorder::new();
        a.add("c", 1);
        a.observe("h", 2);
        a.span_ns("s", 7);
        let mut b = MemoryRecorder::new();
        b.add("c", 4);
        b.add("only_b", 9);
        b.observe("h", 40);
        b.observe("h2", 1);
        b.span_ns("s", 3);

        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.counter("c"), 5);
        assert_eq!(m.counter("only_b"), 9);
        let h = m.histogram("h").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 42);
        assert_eq!(h.min, 2);
        assert_eq!(h.max, 40);
        assert_eq!(h.buckets, vec![(2, 1), (32, 1)]);
        assert_eq!(m.histogram("h2").unwrap().count, 1);
        assert_eq!(m.span("s").unwrap(), SpanSnapshot { count: 2, total_ns: 10 });
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let mut r = MemoryRecorder::new();
        r.add("alloc.quicklist_hits", 12);
        r.observe("alloc.search_len", 0);
        r.observe("alloc.search_len", 33);
        r.span_ns("engine.drive", 1234);
        let s = r.snapshot();
        let text = serde_json::to_string(&s).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&text).unwrap();
        assert_eq!(back, s);
    }
}
