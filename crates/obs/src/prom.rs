//! Prometheus text exposition (format 0.0.4) for the metrics types.
//!
//! Renders counters, gauges, and log2 [`Hist`] buckets into the plain
//! `# TYPE`-annotated sample lines Prometheus scrapes, and lints that
//! format back ([`lint`]) so CI can verify a live daemon's exposition
//! without a real Prometheus binary. Dotted metric names sanitize to
//! underscore form (`ctx.flush.batches` → `ctx_flush_batches`); log2
//! buckets become cumulative `le` buckets whose upper bounds are the
//! buckets' inclusive maxima, closed by the mandatory `+Inf` bucket and
//! `_sum`/`_count` samples.
//!
//! [`Hist`]: crate::Hist

use crate::{HistSnapshot, MetricsSnapshot};

/// Sanitizes a dotted metric name into the Prometheus charset
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`), mapping every invalid byte to `_`.
pub fn sanitize(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' || c == ':' { c } else { '_' })
        .collect();
    if out.is_empty() || out.as_bytes()[0].is_ascii_digit() {
        out.insert(0, '_');
    }
    out
}

fn push_type(out: &mut String, name: &str, kind: &str) {
    out.push_str("# TYPE ");
    out.push_str(name);
    out.push(' ');
    out.push_str(kind);
    out.push('\n');
}

/// Appends one counter with its `# TYPE` line. `name` must already be
/// sanitized (counters conventionally end in `_total`).
pub fn push_counter(out: &mut String, name: &str, value: u64) {
    push_type(out, name, "counter");
    out.push_str(&format!("{name} {value}\n"));
}

/// Appends one gauge with its `# TYPE` line.
pub fn push_gauge(out: &mut String, name: &str, value: u64) {
    push_type(out, name, "gauge");
    out.push_str(&format!("{name} {value}\n"));
}

fn label_block(labels: &[(&str, &str)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Appends one histogram family: a `# TYPE` line, then for every
/// `(labels, snapshot)` series its cumulative `_bucket` samples (one
/// per non-empty log2 bucket, upper-bounded by the bucket's inclusive
/// maximum), the `+Inf` bucket, and `_sum`/`_count`.
pub fn push_histogram(out: &mut String, name: &str, series: &[(&[(&str, &str)], HistSnapshot)]) {
    push_type(out, name, "histogram");
    for (labels, h) in series {
        let mut cumulative = 0u64;
        for &(floor, n) in &h.buckets {
            cumulative += n;
            // Bucket holding `floor` covers [floor, 2*floor - 1]; the
            // zero bucket holds only 0.
            let le = if floor == 0 { 0 } else { 2 * floor - 1 };
            let block = label_block(labels, Some(("le", &le.to_string())));
            out.push_str(&format!("{name}_bucket{block} {cumulative}\n"));
        }
        let block = label_block(labels, Some(("le", "+Inf")));
        out.push_str(&format!("{name}_bucket{block} {}\n", h.count));
        let plain = label_block(labels, None);
        out.push_str(&format!("{name}_sum{plain} {}\n", h.sum));
        out.push_str(&format!("{name}_count{plain} {}\n", h.count));
    }
}

/// Renders a whole [`MetricsSnapshot`] under `prefix`: counters as
/// `<prefix>_<name>_total`, histograms as `<prefix>_<name>` families,
/// and phase spans as `_ns_total`/`_entries_total` counter pairs.
pub fn push_snapshot(out: &mut String, prefix: &str, snap: &MetricsSnapshot) {
    for (name, &value) in &snap.counters {
        push_counter(out, &format!("{prefix}_{}_total", sanitize(name)), value);
    }
    for (name, hist) in &snap.histograms {
        push_histogram(out, &format!("{prefix}_{}", sanitize(name)), &[(&[], hist.clone())]);
    }
    for (name, span) in &snap.spans {
        let base = format!("{prefix}_{}", sanitize(name));
        push_counter(out, &format!("{base}_ns_total"), span.total_ns);
        push_counter(out, &format!("{base}_entries_total"), span.count);
    }
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Splits a sample line into (metric name, label block or "", value).
fn split_sample(line: &str) -> Result<(&str, &str, &str), String> {
    let (name_and_labels, value) =
        line.rsplit_once(' ').ok_or_else(|| format!("no value in sample {line:?}"))?;
    match name_and_labels.split_once('{') {
        Some((name, rest)) => {
            let labels =
                rest.strip_suffix('}').ok_or_else(|| format!("unclosed labels in {line:?}"))?;
            Ok((name, labels, value))
        }
        None => Ok((name_and_labels, "", value)),
    }
}

/// Lints Prometheus text exposition: every line must be a `# TYPE` /
/// `# HELP` comment or a well-formed sample; sample names must be
/// declared by a preceding `# TYPE` (histogram samples via their
/// `_bucket`/`_sum`/`_count` suffixes); no name is declared twice;
/// every value parses; histogram bucket counts are cumulative and end
/// with an `le="+Inf"` bucket equal to `_count`. Returns the sample
/// count on success.
///
/// # Errors
///
/// Returns `line N: <violation>` for the first offending line.
pub fn lint(text: &str) -> Result<usize, String> {
    use std::collections::BTreeMap;
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    // Histogram series state keyed by (name, labels-minus-le):
    // (last cumulative, saw +Inf, +Inf value).
    let mut hist_state: BTreeMap<(String, String), (u64, bool, u64)> = BTreeMap::new();
    let mut samples = 0usize;
    for (i, line) in text.lines().enumerate() {
        let fail = |msg: String| Err(format!("line {}: {msg}", i + 1));
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let words: Vec<&str> = comment.split_whitespace().collect();
            match words.first() {
                Some(&"TYPE") => {
                    let [_, name, kind] = words[..] else {
                        return fail(format!("malformed TYPE comment {line:?}"));
                    };
                    if !valid_name(name) {
                        return fail(format!("invalid metric name {name:?}"));
                    }
                    if !["counter", "gauge", "histogram", "summary", "untyped"].contains(&kind) {
                        return fail(format!("unknown metric type {kind:?}"));
                    }
                    if types.insert(name.to_string(), kind.to_string()).is_some() {
                        return fail(format!("duplicate TYPE for {name}"));
                    }
                }
                Some(&"HELP") => {}
                _ => return fail(format!("comment is neither TYPE nor HELP: {line:?}")),
            }
            continue;
        }
        let (name, labels, value) = match split_sample(line) {
            Ok(parts) => parts,
            Err(msg) => return fail(msg),
        };
        if !valid_name(name) {
            return fail(format!("invalid metric name {name:?}"));
        }
        if value != "+Inf" && value.parse::<f64>().is_err() {
            return fail(format!("unparseable value {value:?}"));
        }
        let base = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suffix| {
                let stripped = name.strip_suffix(suffix)?;
                (types.get(stripped).map(String::as_str) == Some("histogram")).then_some(stripped)
            })
            .unwrap_or(name);
        let Some(kind) = types.get(base) else {
            return fail(format!("sample {name} has no preceding TYPE"));
        };
        samples += 1;
        if kind == "histogram" && name.ends_with("_bucket") {
            let mut le = None;
            let others: Vec<&str> = labels
                .split(',')
                .filter(|part| match part.strip_prefix("le=") {
                    Some(bound) => {
                        le = Some(bound.trim_matches('"').to_string());
                        false
                    }
                    None => !part.is_empty(),
                })
                .collect();
            let Some(le) = le else {
                return fail(format!("bucket sample {name} lacks an le label"));
            };
            let count: u64 = match value.parse() {
                Ok(v) => v,
                Err(_) => return fail(format!("bucket count {value:?} is not an integer")),
            };
            let key = (base.to_string(), others.join(","));
            let entry = hist_state.entry(key).or_insert((0, false, 0));
            if entry.1 {
                return fail(format!("{name}: bucket after le=\"+Inf\""));
            }
            if count < entry.0 {
                return fail(format!("{name}: bucket counts not cumulative"));
            }
            entry.0 = count;
            if le == "+Inf" {
                entry.1 = true;
                entry.2 = count;
            }
        }
        if kind == "histogram" && name.ends_with("_count") {
            let key = (base.to_string(), labels.to_string());
            if let Some(&(_, saw_inf, inf_count)) = hist_state.get(&key) {
                if !saw_inf {
                    return fail(format!("{name}: histogram series has no le=\"+Inf\" bucket"));
                }
                if value.parse::<u64>().ok() != Some(inf_count) {
                    return fail(format!("{name}: _count {value} != +Inf bucket {inf_count}"));
                }
            }
        }
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Hist, Recorder};

    #[test]
    fn sanitize_maps_to_prometheus_charset() {
        assert_eq!(sanitize("ctx.flush.batches"), "ctx_flush_batches");
        assert_eq!(sanitize("a-b c"), "a_b_c");
        assert_eq!(sanitize("9lives"), "_9lives");
        assert_eq!(sanitize(""), "_");
    }

    #[test]
    fn rendered_exposition_passes_the_linter() {
        let mut h = Hist::default();
        for v in [0, 3, 3, 90, 4000] {
            h.record(v);
        }
        let mut out = String::new();
        push_counter(&mut out, "jobs_done_total", 7);
        push_gauge(&mut out, "queue_depth", 2);
        push_histogram(
            &mut out,
            "request_duration_us",
            &[
                (&[("endpoint", "POST /jobs")], h.snapshot()),
                (&[("endpoint", "GET /healthz")], Hist::default().snapshot()),
            ],
        );
        let mut sim = crate::MemoryRecorder::new();
        sim.add("ctx.flush.batches", 3);
        sim.observe("alloc.search_len", 5);
        sim.span_ns("engine.drive", 1234);
        push_snapshot(&mut out, "alloc_sim", &sim.snapshot());

        let samples = lint(&out).expect("rendered exposition lints clean");
        assert!(samples >= 10, "got {samples} samples:\n{out}");
        assert!(out.contains("# TYPE jobs_done_total counter"));
        assert!(out.contains("jobs_done_total 7"));
        assert!(out.contains("request_duration_us_bucket{endpoint=\"POST /jobs\",le=\"+Inf\"} 5"));
        assert!(out.contains("request_duration_us_sum{endpoint=\"POST /jobs\"} 4096"));
        assert!(out.contains("alloc_sim_ctx_flush_batches_total 3"));
        assert!(out.contains("# TYPE alloc_sim_alloc_search_len histogram"));
        assert!(out.contains("alloc_sim_engine_drive_ns_total 1234"));
    }

    #[test]
    fn bucket_bounds_are_cumulative_inclusive_maxima() {
        let mut h = Hist::default();
        for v in [0, 1, 2, 3, 4] {
            h.record(v);
        }
        let mut out = String::new();
        push_histogram(&mut out, "m", &[(&[], h.snapshot())]);
        // Buckets {0}, {1}, {2,3}, {4..7} → le 0, 1, 3, 7 cumulative.
        assert!(out.contains("m_bucket{le=\"0\"} 1\n"));
        assert!(out.contains("m_bucket{le=\"1\"} 2\n"));
        assert!(out.contains("m_bucket{le=\"3\"} 4\n"));
        assert!(out.contains("m_bucket{le=\"7\"} 5\n"));
        assert!(out.contains("m_bucket{le=\"+Inf\"} 5\n"));
        assert!(out.contains("m_count 5\n"));
        lint(&out).unwrap();
    }

    #[test]
    fn lint_catches_violations() {
        assert!(lint("no_type_declared 3\n").unwrap_err().contains("no preceding TYPE"));
        assert!(lint("# TYPE x counter\nx notanumber\n").unwrap_err().contains("unparseable"));
        assert!(lint("# TYPE x counter\n# TYPE x counter\nx 1\n")
            .unwrap_err()
            .contains("duplicate"));
        assert!(lint("# WEIRD comment\n").unwrap_err().contains("neither TYPE nor HELP"));
        assert!(lint("# TYPE 9bad counter\n").unwrap_err().contains("invalid metric name"));
        let shrinking = "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"3\"} 2\n";
        assert!(lint(shrinking).unwrap_err().contains("cumulative"));
        let mismatched = "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_count 4\n";
        assert!(lint(mismatched).unwrap_err().contains("!= +Inf"));
        assert_eq!(lint("# TYPE ok counter\n# HELP ok fine\nok 1\n"), Ok(1));
    }
}
