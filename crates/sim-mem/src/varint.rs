//! LEB128 variable-length integers and zig-zag signed encoding.
//!
//! Shared by the ALTR trace format (`trace` crate, which re-exports
//! this module) and the ALSC stream-cache format ([`crate::stream`]).
//! Alongside the `io`-based readers there are slice-based decoders
//! ([`take_u64`], [`take_i64`]) for hot decode loops that already hold
//! the whole file in memory and cannot afford a `Read` round-trip per
//! byte.

use std::io::{self, Read, Write};

/// Writes an unsigned LEB128 integer.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_u64<W: Write>(w: &mut W, mut v: u64) -> io::Result<()> {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

/// Reads an unsigned LEB128 integer.
///
/// # Errors
///
/// Returns `UnexpectedEof` on truncation and `InvalidData` if the
/// encoding exceeds 64 bits.
pub fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8];
        r.read_exact(&mut byte)?;
        let b = byte[0];
        if shift >= 64 || (shift == 63 && b > 1) {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "varint overflows u64"));
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Decodes an unsigned LEB128 integer from `buf` starting at `*pos`,
/// advancing `*pos` past it. Returns `None` on truncation or a value
/// exceeding 64 bits.
pub fn take_u64(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *buf.get(*pos)?;
        *pos += 1;
        if shift >= 64 || (shift == 63 && b > 1) {
            return None;
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

/// Slice-based counterpart of [`read_i64`]; see [`take_u64`].
pub fn take_i64(buf: &[u8], pos: &mut usize) -> Option<i64> {
    take_u64(buf, pos).map(unzigzag)
}

/// Zig-zag encodes a signed integer so small magnitudes stay small.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Writes a zig-zag LEB128 signed integer.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_i64<W: Write>(w: &mut W, v: i64) -> io::Result<()> {
    write_u64(w, zigzag(v))
}

/// Reads a zig-zag LEB128 signed integer.
///
/// # Errors
///
/// See [`read_u64`].
pub fn read_i64<R: Read>(r: &mut R) -> io::Result<i64> {
    read_u64(r).map(unzigzag)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsigned_round_trips() {
        for v in [0u64, 1, 127, 128, 300, 1 << 20, u64::MAX] {
            let mut buf = Vec::new();
            write_u64(&mut buf, v).unwrap();
            assert_eq!(read_u64(&mut &buf[..]).unwrap(), v, "value {v}");
            let mut pos = 0;
            assert_eq!(take_u64(&buf, &mut pos), Some(v), "slice value {v}");
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn signed_round_trips() {
        for v in [0i64, 1, -1, 63, -64, 1 << 40, -(1 << 40), i64::MAX, i64::MIN] {
            let mut buf = Vec::new();
            write_i64(&mut buf, v).unwrap();
            assert_eq!(read_i64(&mut &buf[..]).unwrap(), v, "value {v}");
            let mut pos = 0;
            assert_eq!(take_i64(&buf, &mut pos), Some(v), "slice value {v}");
        }
    }

    #[test]
    fn zigzag_keeps_small_magnitudes_small() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
        assert_eq!(unzigzag(zigzag(-123456)), -123456);
    }

    #[test]
    fn truncation_is_an_error() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 1 << 30).unwrap();
        buf.pop();
        assert!(read_u64(&mut &buf[..]).is_err());
        let mut pos = 0;
        assert_eq!(take_u64(&buf, &mut pos), None);
    }

    #[test]
    fn small_values_take_one_byte() {
        for v in 0..128u64 {
            let mut buf = Vec::new();
            write_u64(&mut buf, v).unwrap();
            assert_eq!(buf.len(), 1);
        }
    }

    #[test]
    fn overlong_encoding_is_rejected_by_the_slice_decoder() {
        // Eleven continuation bytes would shift past bit 63.
        let buf = [0x80u8; 10];
        let mut with_tail = buf.to_vec();
        with_tail.push(0x02);
        let mut pos = 0;
        assert_eq!(take_u64(&with_tail, &mut pos), None);
    }
}
