//! Simulated heap address space, memory-reference tracing, and
//! instruction-cost accounting.
//!
//! This crate is the substrate on which the PLDI 1993 reproduction is built.
//! The paper ("Improving the Cache Locality of Memory Allocation", Grunwald,
//! Zorn & Henderson) instrumented real C programs with PIXIE and fed every
//! data reference to a cache simulator. Here the same structure is recreated
//! in-process:
//!
//! * [`HeapImage`] models the program's heap segment: a flat, byte-addressed
//!   region grown with [`HeapImage::sbrk`], with real backing storage so
//!   allocators can keep their metadata (freelist links, boundary tags,
//!   chunk headers) *inside* the simulated heap at the same addresses a C
//!   implementation would use.
//! * [`MemRef`] is one observed data reference; [`AccessSink`] is the
//!   consumer interface implemented by the cache and paging simulators.
//! * [`MemCtx`] is the accessor handed to allocator code. Every metadata
//!   load/store performed through it emits an address-faithful [`MemRef`]
//!   and charges instructions to the current [`Phase`], so the reference
//!   trace and the instruction counts can never drift apart from the
//!   allocator logic.
//!
//! # Example
//!
//! ```
//! use sim_mem::{Address, HeapImage, MemCtx, NullSink, InstrCounter, Phase};
//!
//! # fn main() -> Result<(), sim_mem::OomError> {
//! let mut heap = HeapImage::new();
//! let mut sink = NullSink;
//! let mut instrs = InstrCounter::new();
//! let mut ctx = MemCtx::new(&mut heap, &mut sink, &mut instrs);
//! ctx.set_phase(Phase::Malloc);
//! let block = ctx.sbrk(64)?;
//! ctx.store(block, 0xdead_beef);
//! assert_eq!(ctx.load(block), 0xdead_beef);
//! # Ok(())
//! # }
//! ```

pub mod access;
pub mod addr;
pub mod cost;
pub mod ctx;
pub mod heap;
pub mod stream;
pub mod varint;

pub use access::{
    AccessClass, AccessKind, CountingSink, FanoutSink, MemRef, NullSink, RefRun, TraceStats,
    VecSink,
};
pub use addr::{Address, WORD};
pub use cost::{InstrCounter, Phase};
pub use ctx::{MemCtx, BATCH_CAPACITY};
pub use heap::{HeapImage, OomError};
pub use stream::{
    decode_sidecar, decode_stream, encode_stream, CacheLookup, CacheStats, DecodedStream, Fnv64,
    SidecarLookup, StreamCache, StreamError, STREAM_FORMAT_VERSION, STREAM_MAGIC,
};

/// The trait implemented by every consumer of the simulated reference
/// stream (cache simulators, paging simulators, statistics collectors).
///
/// Implementations must be prepared for references of arbitrary byte size;
/// a single [`MemRef`] may span several cache blocks or pages.
pub trait AccessSink {
    /// Observe one data reference.
    fn record(&mut self, r: MemRef);

    /// Observe a batch of references, in program order.
    ///
    /// The default forwards to [`AccessSink::record`] one reference at a
    /// time, so batching is purely an amortization of the virtual
    /// dispatch: any sink must produce *identical* state whether a stream
    /// arrives reference-by-reference or chopped into batches at
    /// arbitrary boundaries. Implementations may override this to hoist
    /// per-call work out of the loop (see `cache_sim::CacheBank`), but
    /// must preserve that equivalence.
    fn record_batch(&mut self, batch: &[MemRef]) {
        for &r in batch {
            self.record(r);
        }
    }

    /// Observe a run-length compressed batch: each [`RefRun`] stands for
    /// `count` consecutive occurrences of the identical reference.
    ///
    /// Runs are a *lossless* re-encoding of the stream — expanding every
    /// run in order reproduces the raw reference sequence exactly — so
    /// the default implementation does precisely that and delegates to
    /// [`AccessSink::record_batch`], preserving any batch override.
    /// Sinks for which a repeated reference is a guaranteed hit (a
    /// direct-mapped cache, the LRU pager) override this to turn the
    /// `count - 1` repeats into O(1) counter bumps; such overrides must
    /// keep the sink state bit-identical to the expanded stream, for
    /// any placement of run and batch boundaries.
    fn record_runs(&mut self, runs: &[RefRun]) {
        let total: usize = runs.iter().map(|run| run.count as usize).sum();
        let mut buf = Vec::with_capacity(total);
        for run in runs {
            buf.resize(buf.len() + run.count as usize, run.r);
        }
        self.record_batch(&buf);
    }
}
