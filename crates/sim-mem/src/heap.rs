//! The simulated heap segment.

use std::error::Error;
use std::fmt;

use crate::{Address, WORD};

/// Base address of the simulated heap segment.
///
/// Chosen nonzero so that [`Address::NULL`] never aliases a real block, and
/// page-aligned so chunk-granular allocators see aligned pages.
pub const HEAP_BASE: u64 = 0x1000_0000;

/// Default ceiling on heap growth (256 MiB), far above anything the
/// workloads request; a guard against runaway allocator bugs.
pub const DEFAULT_LIMIT: u64 = 256 << 20;

/// Error returned when [`HeapImage::sbrk`] would exceed the heap limit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OomError {
    /// Bytes requested by the failing `sbrk`.
    pub requested: u64,
    /// Bytes in use (break minus base) at the time of the failure.
    pub in_use: u64,
    /// The configured limit.
    pub limit: u64,
}

impl fmt::Display for OomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "simulated heap exhausted: sbrk of {} bytes with {} of {} in use",
            self.requested, self.in_use, self.limit
        )
    }
}

impl Error for OomError {}

/// A flat, byte-addressed model of the program's heap segment.
///
/// The image has real backing storage: allocators store their metadata
/// (freelist links, boundary tags, chunk descriptors) in it at exactly the
/// offsets a C implementation would use, which is what makes the emitted
/// reference traces address-faithful.
///
/// Reads and writes here do **not** emit trace events or count
/// instructions; allocator code goes through [`crate::MemCtx`], which does
/// both. `HeapImage`'s raw accessors exist for tests and for consistency
/// checks that must not perturb the trace.
///
/// # Example
///
/// ```
/// use sim_mem::HeapImage;
/// # fn main() -> Result<(), sim_mem::OomError> {
/// let mut heap = HeapImage::new();
/// let p = heap.sbrk(4096)?;
/// heap.write_u32(p, 7);
/// assert_eq!(heap.read_u32(p), 7);
/// assert_eq!(heap.in_use(), 4096);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct HeapImage {
    bytes: Vec<u8>,
    base: u64,
    brk: u64,
    limit: u64,
    high_water: u64,
    sbrk_calls: u64,
}

impl Default for HeapImage {
    fn default() -> Self {
        Self::new()
    }
}

impl HeapImage {
    /// Creates an empty heap with the default base and limit.
    pub fn new() -> Self {
        Self::with_limit(DEFAULT_LIMIT)
    }

    /// Creates an empty heap with an explicit growth limit in bytes.
    pub fn with_limit(limit: u64) -> Self {
        HeapImage {
            bytes: Vec::new(),
            base: HEAP_BASE,
            brk: HEAP_BASE,
            limit,
            high_water: 0,
            sbrk_calls: 0,
        }
    }

    /// The lowest address of the heap segment.
    pub fn base(&self) -> Address {
        Address::new(self.base)
    }

    /// The current break (one past the last valid heap byte).
    pub fn brk(&self) -> Address {
        Address::new(self.brk)
    }

    /// Bytes currently obtained from the (simulated) operating system.
    pub fn in_use(&self) -> u64 {
        self.brk - self.base
    }

    /// The largest value [`Self::in_use`] has ever reached.
    ///
    /// This is the paper's "maximum heap size" metric (Table 2).
    pub fn high_water(&self) -> u64 {
        self.high_water
    }

    /// Number of `sbrk` calls made so far.
    pub fn sbrk_calls(&self) -> u64 {
        self.sbrk_calls
    }

    /// Extends the heap by `amount` bytes, rounded up to a word multiple,
    /// and returns the address of the new region.
    ///
    /// # Errors
    ///
    /// Returns [`OomError`] if growth would exceed the configured limit.
    pub fn sbrk(&mut self, amount: u64) -> Result<Address, OomError> {
        let amount = round_up_word(amount);
        if self.in_use() + amount > self.limit {
            return Err(OomError { requested: amount, in_use: self.in_use(), limit: self.limit });
        }
        let start = self.brk;
        self.brk += amount;
        self.sbrk_calls += 1;
        self.high_water = self.high_water.max(self.in_use());
        let new_len = (self.brk - self.base) as usize;
        if new_len > self.bytes.len() {
            self.bytes.resize(new_len, 0);
        }
        Ok(Address::new(start))
    }

    /// Returns `true` if `[addr, addr + len)` lies entirely inside the
    /// currently allocated heap segment.
    pub fn contains(&self, addr: Address, len: u64) -> bool {
        let a = addr.raw();
        a >= self.base && a + len <= self.brk
    }

    fn offset(&self, addr: Address, len: u64) -> usize {
        assert!(
            self.contains(addr, len),
            "heap access out of bounds: {} (+{len}) not in [{:#x}, {:#x})",
            addr,
            self.base,
            self.brk
        );
        (addr.raw() - self.base) as usize
    }

    /// Reads a 32-bit little-endian word.
    ///
    /// # Panics
    ///
    /// Panics if the word is not inside the heap segment.
    pub fn read_u32(&self, addr: Address) -> u32 {
        let off = self.offset(addr, WORD);
        u32::from_le_bytes(self.bytes[off..off + 4].try_into().expect("4-byte slice"))
    }

    /// Writes a 32-bit little-endian word.
    ///
    /// # Panics
    ///
    /// Panics if the word is not inside the heap segment.
    pub fn write_u32(&mut self, addr: Address, value: u32) {
        let off = self.offset(addr, WORD);
        self.bytes[off..off + 4].copy_from_slice(&value.to_le_bytes());
    }
}

/// Rounds `n` up to the next multiple of the machine word.
pub fn round_up_word(n: u64) -> u64 {
    n.div_ceil(WORD) * WORD
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_heap_is_empty() {
        let h = HeapImage::new();
        assert_eq!(h.in_use(), 0);
        assert_eq!(h.high_water(), 0);
        assert_eq!(h.base(), h.brk());
        assert_eq!(h.sbrk_calls(), 0);
    }

    #[test]
    fn sbrk_returns_contiguous_regions() {
        let mut h = HeapImage::new();
        let a = h.sbrk(98).unwrap();
        let b = h.sbrk(8).unwrap();
        assert_eq!(a, h.base());
        // 98 rounds up to 100.
        assert_eq!(b - a, 100);
        assert_eq!(h.in_use(), 108);
        assert_eq!(h.sbrk_calls(), 2);
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut h = HeapImage::new();
        h.sbrk(4096).unwrap();
        assert_eq!(h.high_water(), 4096);
        h.sbrk(4096).unwrap();
        assert_eq!(h.high_water(), 8192);
    }

    #[test]
    fn words_round_trip() {
        let mut h = HeapImage::new();
        let p = h.sbrk(64).unwrap();
        h.write_u32(p, 0xdead_beef);
        h.write_u32(p + 4, 1);
        assert_eq!(h.read_u32(p), 0xdead_beef);
        assert_eq!(h.read_u32(p + 4), 1);
    }

    #[test]
    fn oom_is_reported_not_panicked() {
        let mut h = HeapImage::with_limit(100);
        let err = h.sbrk(200).unwrap_err();
        assert_eq!(err.requested, 200);
        assert_eq!(err.limit, 100);
        assert!(err.to_string().contains("heap exhausted"));
        // Heap unchanged after a failed sbrk.
        assert_eq!(h.in_use(), 0);
    }

    #[test]
    fn contains_checks_bounds() {
        let mut h = HeapImage::new();
        let p = h.sbrk(32).unwrap();
        assert!(h.contains(p, 32));
        assert!(!h.contains(p, 33));
        assert!(!h.contains(p - 1, 1));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_read_panics() {
        let h = HeapImage::new();
        h.read_u32(Address::new(HEAP_BASE));
    }

    #[test]
    fn round_up_word_cases() {
        assert_eq!(round_up_word(0), 0);
        assert_eq!(round_up_word(1), 4);
        assert_eq!(round_up_word(4), 4);
        assert_eq!(round_up_word(5), 8);
    }
}
