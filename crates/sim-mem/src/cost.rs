//! Instruction-cost accounting.
//!
//! The paper measured execution time in machine instructions (via the QP
//! tool) and attributed them to `malloc`, `free`, and the rest of the
//! application. [`InstrCounter`] reproduces that attribution: allocator
//! code charges instructions to the current [`Phase`] as it executes, and
//! the workload models charge the application's own compute instructions.

use serde::{Deserialize, Serialize};

/// Which routine the currently executing instructions belong to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// Application code outside the allocator.
    App,
    /// Inside `malloc` (and its helpers).
    Malloc,
    /// Inside `free` (and its helpers).
    Free,
}

impl Phase {
    const COUNT: usize = 3;

    fn index(self) -> usize {
        match self {
            Phase::App => 0,
            Phase::Malloc => 1,
            Phase::Free => 2,
        }
    }
}

/// Per-phase instruction counters.
///
/// # Example
///
/// ```
/// use sim_mem::{InstrCounter, Phase};
/// let mut c = InstrCounter::new();
/// c.set_phase(Phase::Malloc);
/// c.add(10);
/// c.set_phase(Phase::App);
/// c.add(90);
/// assert_eq!(c.phase_total(Phase::Malloc), 10);
/// assert_eq!(c.total(), 100);
/// assert!((c.alloc_fraction() - 0.1).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstrCounter {
    counts: [u64; Phase::COUNT],
    phase: Phase,
}

impl Default for InstrCounter {
    fn default() -> Self {
        Self::new()
    }
}

impl InstrCounter {
    /// Creates a counter with all phases zeroed, starting in
    /// [`Phase::App`].
    pub fn new() -> Self {
        InstrCounter { counts: [0; Phase::COUNT], phase: Phase::App }
    }

    /// Switches the phase instructions are charged to.
    pub fn set_phase(&mut self, phase: Phase) {
        self.phase = phase;
    }

    /// The phase currently being charged.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Charges `n` instructions to the current phase.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.counts[self.phase.index()] += n;
    }

    /// Total instructions charged to one phase.
    pub fn phase_total(&self, phase: Phase) -> u64 {
        self.counts[phase.index()]
    }

    /// Total instructions across all phases.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Instructions spent inside the allocator (`malloc` + `free`).
    pub fn allocator_total(&self) -> u64 {
        self.phase_total(Phase::Malloc) + self.phase_total(Phase::Free)
    }

    /// Fraction of all instructions spent inside the allocator; the
    /// quantity plotted in the paper's Figure 1. Zero for an empty counter.
    pub fn alloc_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.allocator_total() as f64 / total as f64
        }
    }

    /// Adds another counter's totals into this one.
    pub fn merge(&mut self, other: &InstrCounter) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_zeroed_in_app_phase() {
        let c = InstrCounter::new();
        assert_eq!(c.total(), 0);
        assert_eq!(c.phase(), Phase::App);
        assert_eq!(c.alloc_fraction(), 0.0);
    }

    #[test]
    fn charges_follow_phase_switches() {
        let mut c = InstrCounter::new();
        c.add(5);
        c.set_phase(Phase::Malloc);
        c.add(7);
        c.set_phase(Phase::Free);
        c.add(3);
        assert_eq!(c.phase_total(Phase::App), 5);
        assert_eq!(c.phase_total(Phase::Malloc), 7);
        assert_eq!(c.phase_total(Phase::Free), 3);
        assert_eq!(c.allocator_total(), 10);
        assert_eq!(c.total(), 15);
    }

    #[test]
    fn merge_adds_per_phase() {
        let mut a = InstrCounter::new();
        a.set_phase(Phase::Malloc);
        a.add(10);
        let mut b = InstrCounter::new();
        b.set_phase(Phase::Malloc);
        b.add(1);
        b.set_phase(Phase::App);
        b.add(2);
        a.merge(&b);
        assert_eq!(a.phase_total(Phase::Malloc), 11);
        assert_eq!(a.phase_total(Phase::App), 2);
    }
}
