//! ALSC: persistent, content-addressed storage for run-compressed
//! reference streams.
//!
//! The experiment engine's trace-driven methodology replays one
//! (program, allocator) reference stream against many measurement
//! configurations, yet regenerating that stream — workload model plus
//! allocator simulation — dominates a run's wall-clock cost. This
//! module serializes a captured [`RefRun`] stream to a compact binary
//! file so a later run with the same *driver identity* pays only
//! decode + sink cost — or, when the stored sidecar already answers the
//! run (see [`decode_sidecar`]), only the read + checksum.
//!
//! # File layout (`ALSC` version 2)
//!
//! ```text
//! magic       4 bytes   "ALSC"
//! version     u8        STREAM_FORMAT_VERSION
//! reserved    3 bytes   zero
//! content key u64 LE    caller-computed FNV-1a over the driver identity
//! -- checksummed region starts here --
//! run count   varint
//! ref count   varint    sum of run counts (expanded references)
//! sidecar     varint length + opaque bytes (the engine stores driver-
//!                       side results and metrics here as JSON)
//! runs        run records, see below
//! -- checksummed region ends here --
//! checksum    u64 LE    FNV-1a over the checksummed region
//! ```
//!
//! One run record is:
//!
//! ```text
//! flags  u8      bit 0 = write, bit 1 = allocator metadata,
//!                bit 2 = sized (size != 4), bit 3 = repeated (count > 1)
//! delta  varint  zig-zag of (addr - previous record's addr)
//! size   varint  present iff sized
//! count  varint  count - 1, present iff repeated
//! ```
//!
//! Word-sized reads of application data at small forward deltas — the
//! overwhelming majority of real streams — cost two bytes.
//!
//! Adjacent records carrying the identical reference are merged at
//! encode time (run boundaries are not semantic: [`crate::AccessSink`]
//! implementations are bit-identical for any boundary placement, and
//! the expanded reference sequence is unchanged).
//!
//! # Invalidation
//!
//! Decoding is total: any malformed input — wrong magic, unknown
//! version, mismatched content key, truncation, checksum failure, or a
//! corrupt record — yields a [`StreamError`], never a panic, so a
//! damaged cache file demotes a warm run to a cold one. The version
//! byte must be bumped whenever the record layout, the flag meanings,
//! or the sidecar contract change; old files then read as
//! [`StreamError::BadVersion`] and are regenerated.

use std::io::Write as _;
use std::path::{Path, PathBuf};

use crate::varint;
use crate::{AccessClass, AccessKind, Address, MemRef, RefRun};

/// File magic of a serialized stream.
pub const STREAM_MAGIC: [u8; 4] = *b"ALSC";

/// Current stream format version. Bump on any layout or semantic
/// change; readers reject other versions. Version 2 extended the
/// sidecar contract: the engine now stores the populating run's
/// finalized result alongside its metrics, so the layout is unchanged
/// but version-1 sidecars no longer satisfy readers.
pub const STREAM_FORMAT_VERSION: u8 = 2;

/// Offset where the checksummed region (everything after the fixed
/// header) begins.
const HEADER_LEN: usize = 16;

/// FNV-1a offset basis (the same constants as the job-id hash).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a hasher, used for both content keys and the file
/// checksum.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64(FNV_OFFSET)
    }
}

impl Fnv64 {
    /// A hasher at the offset basis.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds `bytes` into the hash.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Folds a little-endian `u64` into the hash.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// One-shot FNV-1a of a byte string.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

/// Why a stream file failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamError {
    /// The file does not start with [`STREAM_MAGIC`].
    BadMagic,
    /// The file's version byte is not [`STREAM_FORMAT_VERSION`].
    BadVersion(u8),
    /// The file's content key disagrees with the expected key (a hash
    /// collision in the file name, or a file copied between keys).
    KeyMismatch {
        /// Key the caller derived from the run's identity.
        expected: u64,
        /// Key stored in the file.
        found: u64,
    },
    /// The file ends before the declared content does.
    Truncated,
    /// The checksum failed or a record is malformed.
    Corrupt(&'static str),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::BadMagic => write!(f, "not an ALSC stream (bad magic)"),
            StreamError::BadVersion(v) => {
                write!(f, "unsupported stream version {v} (expected {STREAM_FORMAT_VERSION})")
            }
            StreamError::KeyMismatch { expected, found } => {
                write!(f, "content key {found:016x} does not match expected {expected:016x}")
            }
            StreamError::Truncated => write!(f, "stream file is truncated"),
            StreamError::Corrupt(what) => write!(f, "stream file is corrupt: {what}"),
        }
    }
}

impl std::error::Error for StreamError {}

/// A successfully decoded stream file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedStream {
    /// The opaque sidecar blob stored alongside the stream.
    pub sidecar: Vec<u8>,
    /// The run-compressed reference stream. Adjacent identical runs may
    /// have been merged relative to the stream that was encoded; the
    /// expanded reference sequence is identical.
    pub runs: Vec<RefRun>,
}

const FLAG_WRITE: u8 = 1 << 0;
const FLAG_META: u8 = 1 << 1;
const FLAG_SIZED: u8 = 1 << 2;
const FLAG_REPEATED: u8 = 1 << 3;
const FLAG_KNOWN: u8 = FLAG_WRITE | FLAG_META | FLAG_SIZED | FLAG_REPEATED;

/// Serializes a stream to the ALSC byte format.
///
/// `content_key` identifies what generated the stream (the caller
/// hashes the driver identity); `sidecar` is stored verbatim and handed
/// back on decode. Adjacent identical runs are merged.
pub fn encode_stream(content_key: u64, sidecar: &[u8], runs: &[RefRun]) -> Vec<u8> {
    // Pre-size: header + counts + sidecar + ~3 bytes per run + trailer.
    let mut out = Vec::with_capacity(HEADER_LEN + 24 + sidecar.len() + runs.len() * 3 + 8);
    out.extend_from_slice(&STREAM_MAGIC);
    out.push(STREAM_FORMAT_VERSION);
    out.extend_from_slice(&[0u8; 3]);
    out.extend_from_slice(&content_key.to_le_bytes());

    let (merged_runs, ref_count) = merged_counts(runs);
    varint::write_u64(&mut out, merged_runs).expect("vec write");
    varint::write_u64(&mut out, ref_count).expect("vec write");
    varint::write_u64(&mut out, sidecar.len() as u64).expect("vec write");
    out.extend_from_slice(sidecar);

    let mut prev_addr = 0u64;
    let mut pending: Option<(MemRef, u64)> = None;
    for run in runs {
        debug_assert!(run.count >= 1);
        match &mut pending {
            Some((r, count)) if *r == run.r => *count += u64::from(run.count),
            _ => {
                if let Some((r, count)) = pending.take() {
                    write_run(&mut out, r, count, &mut prev_addr);
                }
                pending = Some((run.r, u64::from(run.count)));
            }
        }
    }
    if let Some((r, count)) = pending {
        write_run(&mut out, r, count, &mut prev_addr);
    }

    let mut check = Fnv64::new();
    check.write(&out[HEADER_LEN..]);
    out.extend_from_slice(&check.finish().to_le_bytes());
    out
}

/// Counts the records and expanded references `encode_stream` will
/// write after merging adjacent identical runs (merged counts above
/// `u32::MAX` split into saturated records).
fn merged_counts(runs: &[RefRun]) -> (u64, u64) {
    let mut records = 0u64;
    let mut refs = 0u64;
    let mut pending: Option<(MemRef, u64)> = None;
    for run in runs {
        refs += u64::from(run.count);
        match &mut pending {
            Some((r, count)) if *r == run.r => *count += u64::from(run.count),
            _ => {
                if let Some((_, count)) = pending.take() {
                    records += count.div_ceil(u64::from(u32::MAX));
                }
                pending = Some((run.r, u64::from(run.count)));
            }
        }
    }
    if let Some((_, count)) = pending {
        records += count.div_ceil(u64::from(u32::MAX));
    }
    (records, refs)
}

/// Writes one merged run, splitting counts that exceed `u32::MAX`.
fn write_run(out: &mut Vec<u8>, r: MemRef, mut count: u64, prev_addr: &mut u64) {
    while count > 0 {
        let chunk = count.min(u64::from(u32::MAX)) as u32;
        count -= u64::from(chunk);
        let mut flags = 0u8;
        if r.kind == AccessKind::Write {
            flags |= FLAG_WRITE;
        }
        if r.class == AccessClass::AllocatorMeta {
            flags |= FLAG_META;
        }
        if r.size != 4 {
            flags |= FLAG_SIZED;
        }
        if chunk > 1 {
            flags |= FLAG_REPEATED;
        }
        out.push(flags);
        let delta = r.addr.raw().wrapping_sub(*prev_addr) as i64;
        varint::write_i64(out, delta).expect("vec write");
        *prev_addr = r.addr.raw();
        if flags & FLAG_SIZED != 0 {
            varint::write_u64(out, u64::from(r.size)).expect("vec write");
        }
        if flags & FLAG_REPEATED != 0 {
            varint::write_u64(out, u64::from(chunk - 1)).expect("vec write");
        }
    }
}

/// Verifies an ALSC byte string's magic, version, content key, and
/// checksum, returning the checksummed body.
fn validated_body(bytes: &[u8], expected_key: u64) -> Result<&[u8], StreamError> {
    if bytes.len() < HEADER_LEN + 8 {
        return Err(if bytes.len() >= 4 && bytes[..4] != STREAM_MAGIC {
            StreamError::BadMagic
        } else {
            StreamError::Truncated
        });
    }
    if bytes[..4] != STREAM_MAGIC {
        return Err(StreamError::BadMagic);
    }
    if bytes[4] != STREAM_FORMAT_VERSION {
        return Err(StreamError::BadVersion(bytes[4]));
    }
    if bytes[5..8] != [0, 0, 0] {
        return Err(StreamError::Corrupt("nonzero reserved header bytes"));
    }
    let found = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    if found != expected_key {
        return Err(StreamError::KeyMismatch { expected: expected_key, found });
    }
    let body = &bytes[HEADER_LEN..bytes.len() - 8];
    let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().expect("8 bytes"));
    let mut check = Fnv64::new();
    check.write(body);
    if check.finish() != stored {
        return Err(StreamError::Corrupt("checksum mismatch"));
    }
    Ok(body)
}

/// Decodes only a stream's sidecar blob, verifying the magic, version,
/// content key, and checksum but never materializing the run records —
/// the whole file is still read and checksummed (integrity is not
/// negotiable), yet the varint decode and the runs allocation, which
/// dominate [`decode_stream`] on real streams, are skipped entirely.
///
/// # Errors
///
/// The same [`StreamError`]s as [`decode_stream`], except damage
/// confined to the run records, which only a full decode can see.
pub fn decode_sidecar(bytes: &[u8], expected_key: u64) -> Result<Vec<u8>, StreamError> {
    let body = validated_body(bytes, expected_key)?;
    let mut pos = 0usize;
    let _run_count = varint::take_u64(body, &mut pos).ok_or(StreamError::Truncated)?;
    let _ref_count = varint::take_u64(body, &mut pos).ok_or(StreamError::Truncated)?;
    let sidecar_len = varint::take_u64(body, &mut pos).ok_or(StreamError::Truncated)? as usize;
    if body.len() - pos < sidecar_len {
        return Err(StreamError::Truncated);
    }
    Ok(body[pos..pos + sidecar_len].to_vec())
}

/// Decodes an ALSC byte string, verifying the magic, version, content
/// key, and checksum.
///
/// # Errors
///
/// Returns the first [`StreamError`] encountered; any byte-level damage
/// to the file surfaces here rather than as a panic or a wrong stream.
pub fn decode_stream(bytes: &[u8], expected_key: u64) -> Result<DecodedStream, StreamError> {
    let body = validated_body(bytes, expected_key)?;

    let mut pos = 0usize;
    let run_count = varint::take_u64(body, &mut pos).ok_or(StreamError::Truncated)?;
    let ref_count = varint::take_u64(body, &mut pos).ok_or(StreamError::Truncated)?;
    let sidecar_len = varint::take_u64(body, &mut pos).ok_or(StreamError::Truncated)? as usize;
    if body.len() - pos < sidecar_len {
        return Err(StreamError::Truncated);
    }
    let sidecar = body[pos..pos + sidecar_len].to_vec();
    pos += sidecar_len;

    let run_count = usize::try_from(run_count).map_err(|_| StreamError::Corrupt("run count"))?;
    // A record is at least two bytes; a declared count beyond that bound
    // is damage, caught before the allocation rather than after.
    if run_count > (body.len() - pos) / 2 {
        return Err(StreamError::Corrupt("run count exceeds payload"));
    }
    let mut runs = Vec::with_capacity(run_count);
    let mut prev_addr = 0u64;
    let mut refs = 0u64;
    for _ in 0..run_count {
        let flags = *body.get(pos).ok_or(StreamError::Truncated)?;
        pos += 1;
        if flags & !FLAG_KNOWN != 0 {
            return Err(StreamError::Corrupt("unknown record flags"));
        }
        // Fast path: a single word-sized reference whose address delta
        // fits one varint byte — the overwhelmingly common record — is
        // exactly two bytes, decoded without the general varint loop.
        if flags & (FLAG_SIZED | FLAG_REPEATED) == 0 {
            if let Some(&b) = body.get(pos) {
                if b < 0x80 {
                    pos += 1;
                    let addr = prev_addr.wrapping_add(varint::unzigzag(u64::from(b)) as u64);
                    prev_addr = addr;
                    refs += 1;
                    let kind =
                        if flags & FLAG_WRITE != 0 { AccessKind::Write } else { AccessKind::Read };
                    let class = if flags & FLAG_META != 0 {
                        AccessClass::AllocatorMeta
                    } else {
                        AccessClass::AppData
                    };
                    runs.push(RefRun {
                        r: MemRef { addr: Address::new(addr), size: 4, kind, class },
                        count: 1,
                    });
                    continue;
                }
            }
        }
        let delta = varint::take_i64(body, &mut pos).ok_or(StreamError::Truncated)?;
        let addr = prev_addr.wrapping_add(delta as u64);
        prev_addr = addr;
        let size = if flags & FLAG_SIZED != 0 {
            let raw = varint::take_u64(body, &mut pos).ok_or(StreamError::Truncated)?;
            u32::try_from(raw).map_err(|_| StreamError::Corrupt("reference size"))?
        } else {
            4
        };
        if size == 0 {
            return Err(StreamError::Corrupt("zero-sized reference"));
        }
        let count = if flags & FLAG_REPEATED != 0 {
            let raw = varint::take_u64(body, &mut pos).ok_or(StreamError::Truncated)?;
            u32::try_from(raw)
                .ok()
                .and_then(|c| c.checked_add(1))
                .ok_or(StreamError::Corrupt("run length"))?
        } else {
            1
        };
        refs += u64::from(count);
        let kind = if flags & FLAG_WRITE != 0 { AccessKind::Write } else { AccessKind::Read };
        let class =
            if flags & FLAG_META != 0 { AccessClass::AllocatorMeta } else { AccessClass::AppData };
        runs.push(RefRun { r: MemRef { addr: Address::new(addr), size, kind, class }, count });
    }
    if pos != body.len() {
        return Err(StreamError::Corrupt("trailing bytes after last record"));
    }
    if refs != ref_count {
        return Err(StreamError::Corrupt("reference count mismatch"));
    }
    Ok(DecodedStream { sidecar, runs })
}

/// Outcome of a [`StreamCache::load`].
#[derive(Debug)]
pub enum CacheLookup {
    /// The file existed, decoded, and matched the key.
    Hit {
        /// The decoded stream, shared so a process-wide memo can hand
        /// the same decode to consecutive lookups.
        stream: std::sync::Arc<DecodedStream>,
        /// True when the decode was skipped entirely: the process-wide
        /// memo held this key and the file on disk is unchanged.
        memoized: bool,
    },
    /// No file for this key.
    Miss,
    /// A file existed but failed to decode (corruption, truncation, a
    /// format from another version) — callers fall back to cold
    /// generation and may overwrite it.
    Invalid(StreamError),
}

/// Outcome of a [`StreamCache::load_sidecar`].
#[derive(Debug)]
pub enum SidecarLookup {
    /// The file existed, its checksum held, and the key matched.
    Hit(Vec<u8>),
    /// No file for this key.
    Miss,
    /// A file existed but failed sidecar-level validation; callers fall
    /// back to a full load or a cold run.
    Invalid(StreamError),
}

/// The most recently decoded stream, shared process-wide. Replaying the
/// same cell repeatedly (a warm benchmark pass, a duplicate service job)
/// would otherwise pay the read + checksum + varint decode each time for
/// bytes that cannot have changed; the memo skips all three when the
/// file's identity (key, mtime, length) matches. One entry bounds the
/// footprint — a decoded stream can run to hundreds of megabytes.
struct DecodeMemo {
    key: u64,
    mtime: std::time::SystemTime,
    len: u64,
    stream: std::sync::Arc<DecodedStream>,
}

fn decode_memo() -> &'static std::sync::Mutex<Option<DecodeMemo>> {
    static MEMO: std::sync::OnceLock<std::sync::Mutex<Option<DecodeMemo>>> =
        std::sync::OnceLock::new();
    MEMO.get_or_init(|| std::sync::Mutex::new(None))
}

/// What a [`StreamCache`] directory holds right now: its `.alsc` file
/// count and their total size (see [`StreamCache::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Number of stream files.
    pub entries: u64,
    /// Total size of the stream files, in bytes.
    pub bytes: u64,
}

/// A directory of ALSC stream files, one per content key.
///
/// Files are named `<key as 16 hex digits>.alsc`. Stores write to a
/// temporary sibling and rename into place, so concurrent readers see
/// either the old file or the complete new one, never a torn write.
/// The temporary name embeds the process id *and* a process-wide
/// counter, so concurrent writers — across processes or threads — never
/// share a scratch file even when racing on the same key.
#[derive(Debug, Clone)]
pub struct StreamCache {
    dir: PathBuf,
    /// Size bound for the directory's stream files; `None` = unbounded.
    max_bytes: Option<u64>,
}

impl StreamCache {
    /// A cache rooted at `dir` (created lazily on first store), with no
    /// size bound.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        StreamCache { dir: dir.into(), max_bytes: None }
    }

    /// Bounds the total size of the cache's stream files. After each
    /// store, the oldest-written entries are evicted (best-effort) until
    /// the directory's `.alsc` files fit in `max_bytes` — the same
    /// write-time-ordered eviction the on-disk report cache uses. The
    /// just-written entry is never evicted, so a single oversized stream
    /// still caches; `None` restores unbounded growth.
    pub fn with_max_bytes(mut self, max_bytes: Option<u64>) -> Self {
        self.max_bytes = max_bytes;
        self
    }

    /// The directory this cache stores into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file path a content key maps to.
    pub fn path_for(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.alsc"))
    }

    /// Whether a stream file exists for `key` — a metadata-only probe,
    /// no read or decode. A `true` answer is a prediction, not a
    /// promise: a corrupt entry still probes `true` and only
    /// [`StreamCache::load`] discovers the damage, so callers counting
    /// hits from this probe report best-effort telemetry, never
    /// correctness.
    pub fn contains(&self, key: u64) -> bool {
        self.path_for(key).is_file()
    }

    /// Counts the cache's stream files and their total size — the
    /// telemetry the sweep executor surfaces after a warm run. Unreadable
    /// directories count as empty (the cache is created lazily, so a
    /// missing directory just means nothing was stored yet).
    pub fn stats(&self) -> CacheStats {
        let mut stats = CacheStats { entries: 0, bytes: 0 };
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return stats;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().is_some_and(|e| e == "alsc") {
                if let Ok(meta) = entry.metadata() {
                    stats.entries += 1;
                    stats.bytes += meta.len();
                }
            }
        }
        stats
    }

    /// Looks a key up, decoding and verifying the file if present.
    ///
    /// The most recent decode is memoized process-wide: when the file's
    /// identity (mtime and length) is unchanged since the memoized
    /// decode, the stored [`DecodedStream`] is returned without reading
    /// the file again. Any on-disk change — including the bit-flips the
    /// corruption tests inject — alters the identity and forces a real
    /// read and decode.
    pub fn load(&self, key: u64) -> CacheLookup {
        let path = self.path_for(key);
        let (mtime, len) = match std::fs::metadata(&path) {
            Ok(meta) => (meta.modified().unwrap_or(std::time::SystemTime::UNIX_EPOCH), meta.len()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return CacheLookup::Miss,
            Err(_) => return CacheLookup::Invalid(StreamError::Truncated),
        };
        if let Ok(memo) = decode_memo().lock() {
            if let Some(entry) = memo.as_ref() {
                if entry.key == key && entry.mtime == mtime && entry.len == len {
                    return CacheLookup::Hit { stream: entry.stream.clone(), memoized: true };
                }
            }
        }
        let bytes = match std::fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return CacheLookup::Miss,
            Err(_) => return CacheLookup::Invalid(StreamError::Truncated),
        };
        match decode_stream(&bytes, key) {
            Ok(decoded) => {
                let stream = std::sync::Arc::new(decoded);
                if let Ok(mut memo) = decode_memo().lock() {
                    *memo = Some(DecodeMemo { key, mtime, len, stream: stream.clone() });
                }
                CacheLookup::Hit { stream, memoized: false }
            }
            Err(e) => CacheLookup::Invalid(e),
        }
    }

    /// Looks a key up but decodes only the sidecar blob: the file is
    /// read and checksummed in full, while the run records — the
    /// expensive part of [`StreamCache::load`], both to varint-decode
    /// and to hold in memory — are never materialized. This is the probe
    /// behind the engine's stored-result fast path, where a matching
    /// sidecar alone answers the whole run. A process-wide memoized
    /// decode of the same unchanged file short-circuits the read.
    pub fn load_sidecar(&self, key: u64) -> SidecarLookup {
        let path = self.path_for(key);
        let (mtime, len) = match std::fs::metadata(&path) {
            Ok(meta) => (meta.modified().unwrap_or(std::time::SystemTime::UNIX_EPOCH), meta.len()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return SidecarLookup::Miss,
            Err(_) => return SidecarLookup::Invalid(StreamError::Truncated),
        };
        if let Ok(memo) = decode_memo().lock() {
            if let Some(entry) = memo.as_ref() {
                if entry.key == key && entry.mtime == mtime && entry.len == len {
                    return SidecarLookup::Hit(entry.stream.sidecar.clone());
                }
            }
        }
        let bytes = match std::fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return SidecarLookup::Miss,
            Err(_) => return SidecarLookup::Invalid(StreamError::Truncated),
        };
        match decode_sidecar(&bytes, key) {
            Ok(sidecar) => SidecarLookup::Hit(sidecar),
            Err(e) => SidecarLookup::Invalid(e),
        }
    }

    /// [`StreamCache::load`] with the read + decode wrapped in a
    /// hierarchical `stream_cache.decode` span on `recorder`. The span
    /// is *tree-only* (no flat `span_ns` aggregate): flat recorders see
    /// nothing, so an instrumented run's frozen metrics stay
    /// byte-identical whether or not the probe was traced — the decode
    /// duration lives in the trace span's own timestamps. Behaviour is
    /// identical to `load`; a `None` or disabled recorder costs one
    /// branch.
    pub fn load_recorded(&self, key: u64, recorder: Option<&mut dyn obs::Recorder>) -> CacheLookup {
        match recorder {
            Some(rec) if rec.enabled() => {
                rec.span_enter("stream_cache.decode");
                let lookup = self.load(key);
                rec.span_exit();
                lookup
            }
            _ => self.load(key),
        }
    }

    /// Encodes and atomically stores a stream under `key`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error; callers treat a failed store as
    /// a missed optimization, not a failed run.
    pub fn store(&self, key: u64, sidecar: &[u8], runs: &[RefRun]) -> std::io::Result<()> {
        // Distinct scratch file per writer: two threads of one process
        // racing on the same key must not interleave writes into a
        // shared tmp (the pid alone cannot distinguish them).
        static TMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        std::fs::create_dir_all(&self.dir)?;
        let bytes = encode_stream(key, sidecar, runs);
        let seq = TMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let tmp = self.dir.join(format!("{key:016x}.alsc.tmp.{}.{seq}", std::process::id()));
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(&bytes)?;
        file.sync_all()?;
        drop(file);
        let result = std::fs::rename(&tmp, self.path_for(key));
        if result.is_err() {
            let _ = std::fs::remove_file(&tmp);
        } else {
            if let Ok(mut memo) = decode_memo().lock() {
                // The file just changed; a memo entry for this key is
                // stale.
                if memo.as_ref().is_some_and(|entry| entry.key == key) {
                    *memo = None;
                }
            }
            if let Some(max_bytes) = self.max_bytes {
                self.evict_to_bound(&self.path_for(key), max_bytes);
            }
        }
        result
    }

    /// Deletes the oldest-written `.alsc` files until the directory fits
    /// in `max_bytes`, sparing `keep` (the entry just stored).
    /// Best-effort throughout: eviction races and I/O errors cost bytes,
    /// never correctness.
    fn evict_to_bound(&self, keep: &Path, max_bytes: u64) {
        let Ok(entries) = std::fs::read_dir(&self.dir) else { return };
        let mut files: Vec<(std::time::SystemTime, u64, PathBuf)> = entries
            .flatten()
            .filter(|e| e.path().extension().is_some_and(|ext| ext == "alsc"))
            .filter_map(|e| {
                let meta = e.metadata().ok()?;
                Some((meta.modified().ok()?, meta.len(), e.path()))
            })
            .collect();
        let mut total: u64 = files.iter().map(|(_, size, _)| size).sum();
        files.sort_by_key(|entry| entry.0);
        for (_, size, candidate) in files {
            if total <= max_bytes {
                break;
            }
            if candidate == keep {
                continue;
            }
            if std::fs::remove_file(&candidate).is_ok() {
                total = total.saturating_sub(size);
            }
        }
    }
}

/// Expands a run-compressed stream into its raw reference sequence
/// (test helper for equivalence assertions).
pub fn expand_runs(runs: &[RefRun]) -> Vec<MemRef> {
    let total: usize = runs.iter().map(|run| run.count as usize).sum();
    let mut out = Vec::with_capacity(total);
    for run in runs {
        out.resize(out.len() + run.count as usize, run.r);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_runs() -> Vec<RefRun> {
        vec![
            RefRun { r: MemRef::app_read(Address::new(0x1000), 4), count: 1 },
            RefRun { r: MemRef::app_write(Address::new(0x1004), 16), count: 3 },
            RefRun { r: MemRef::meta_read(Address::new(0x0ff8), 4), count: 1 },
            RefRun { r: MemRef::meta_write(Address::new(0x0ff8), 8), count: 2 },
            RefRun { r: MemRef::app_read(Address::new(0xffff_ffff_0000), 4), count: 1 },
        ]
    }

    #[test]
    fn encode_decode_round_trips() {
        let runs = sample_runs();
        let bytes = encode_stream(42, b"sidecar", &runs);
        let decoded = decode_stream(&bytes, 42).expect("decode");
        assert_eq!(decoded.sidecar, b"sidecar");
        assert_eq!(decoded.runs, runs);
    }

    #[test]
    fn adjacent_identical_runs_merge_losslessly() {
        let r = MemRef::app_read(Address::new(64), 4);
        let split = vec![
            RefRun { r, count: 2 },
            RefRun { r, count: 5 },
            RefRun { r: MemRef::app_write(Address::new(64), 4), count: 1 },
            RefRun { r, count: 1 },
        ];
        let bytes = encode_stream(7, b"", &split);
        let decoded = decode_stream(&bytes, 7).expect("decode");
        assert_eq!(decoded.runs.len(), 3, "adjacent identical runs merged");
        assert_eq!(expand_runs(&decoded.runs), expand_runs(&split));
    }

    #[test]
    fn common_records_are_two_bytes() {
        // A word read at delta 4 from the previous address: flags + delta.
        let runs = vec![
            RefRun { r: MemRef::app_read(Address::new(0), 4), count: 1 },
            RefRun { r: MemRef::app_read(Address::new(4), 4), count: 1 },
        ];
        let bytes = encode_stream(0, b"", &runs);
        // header 16 + counts 3 (2 runs, 2 refs, 0 sidecar) + 2*2 records + 8 checksum
        assert_eq!(bytes.len(), 16 + 3 + 4 + 8);
    }

    #[test]
    fn wrong_magic_version_and_key_are_rejected() {
        let bytes = encode_stream(9, b"", &sample_runs());

        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(decode_stream(&bad, 9), Err(StreamError::BadMagic));

        let mut bad = bytes.clone();
        bad[4] = STREAM_FORMAT_VERSION + 1;
        assert_eq!(decode_stream(&bad, 9), Err(StreamError::BadVersion(STREAM_FORMAT_VERSION + 1)));

        assert_eq!(
            decode_stream(&bytes, 10),
            Err(StreamError::KeyMismatch { expected: 10, found: 9 })
        );
    }

    #[test]
    fn truncation_and_bit_flips_are_caught_everywhere() {
        let runs = sample_runs();
        let bytes = encode_stream(3, b"driver state", &runs);
        for len in 0..bytes.len() {
            assert!(decode_stream(&bytes[..len], 3).is_err(), "truncation at {len} accepted");
        }
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut bad = bytes.clone();
                bad[byte] ^= 1 << bit;
                let verdict = decode_stream(&bad, 3);
                assert!(
                    verdict
                        != Ok(DecodedStream {
                            sidecar: b"driver state".to_vec(),
                            runs: runs.clone()
                        })
                        || bad == bytes,
                    "bit flip at {byte}.{bit} went unnoticed"
                );
            }
        }
    }

    #[test]
    fn cache_store_load_round_trips_and_misses() {
        let dir = std::env::temp_dir().join(format!("alsc-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = StreamCache::new(&dir);
        assert!(matches!(cache.load(1), CacheLookup::Miss));
        let runs = sample_runs();
        cache.store(1, b"meta", &runs).expect("store");
        match cache.load(1) {
            CacheLookup::Hit { stream, memoized } => {
                assert_eq!(stream.sidecar, b"meta");
                assert_eq!(stream.runs, runs);
                assert!(!memoized, "first load after a store must decode the file");
            }
            other => panic!("expected hit, got {other:?}"),
        }
        // A second load of the unchanged file is served from the memo.
        match cache.load(1) {
            CacheLookup::Hit { stream, memoized } => {
                assert_eq!(stream.runs, runs);
                assert!(memoized, "repeat load of an unchanged file skips the decode");
            }
            other => panic!("expected memoized hit, got {other:?}"),
        }
        // Re-storing invalidates the memo: the next load decodes afresh.
        cache.store(1, b"meta2", &runs).expect("re-store");
        match cache.load(1) {
            CacheLookup::Hit { stream, memoized } => {
                assert_eq!(stream.sidecar, b"meta2");
                assert!(!memoized, "store must invalidate the decode memo");
            }
            other => panic!("expected hit, got {other:?}"),
        }
        // Damage the file on disk: load degrades to Invalid, not a panic.
        // Point the single-entry memo at another key first so the check
        // does not depend on the filesystem's mtime granularity.
        cache.store(2, b"other", &runs).expect("store other");
        assert!(matches!(cache.load(2), CacheLookup::Hit { .. }));
        let path = cache.path_for(1);
        let mut bytes = std::fs::read(&path).expect("read back");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).expect("rewrite");
        assert!(matches!(cache.load(1), CacheLookup::Invalid(_)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn size_bound_evicts_oldest_written_first() {
        let dir = std::env::temp_dir().join(format!("alsc-evict-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let runs = sample_runs();
        let unbounded = StreamCache::new(&dir);
        for key in [10u64, 11, 12] {
            unbounded.store(key, b"", &runs).expect("store");
        }
        let entry_size = std::fs::metadata(unbounded.path_for(10)).expect("meta").len();
        // Age the entries deterministically: 10 oldest, 12 newest.
        for (i, key) in [10u64, 11, 12].iter().enumerate() {
            let age = std::time::Duration::from_secs(3000 - 1000 * i as u64);
            std::fs::File::options()
                .write(true)
                .open(unbounded.path_for(*key))
                .expect("open")
                .set_modified(std::time::SystemTime::now() - age)
                .expect("set mtime");
        }

        // Room for three entries: storing a fourth evicts exactly the
        // oldest-written one.
        let bounded = StreamCache::new(&dir).with_max_bytes(Some(3 * entry_size));
        bounded.store(13, b"", &runs).expect("store");
        assert!(!bounded.path_for(10).exists(), "oldest entry must be evicted");
        for key in [11u64, 12, 13] {
            assert!(bounded.path_for(key).exists(), "entry {key} wrongly evicted");
        }

        // A bound smaller than any single entry still keeps the entry
        // just written — eviction never undoes the store it follows.
        let tiny = StreamCache::new(&dir).with_max_bytes(Some(1));
        tiny.store(14, b"", &runs).expect("store");
        assert!(tiny.path_for(14).exists(), "just-written entry must survive");
        for key in [11u64, 12, 13] {
            assert!(!tiny.path_for(key).exists(), "entry {key} should be evicted");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_stores_on_one_key_never_corrupt_or_partially_expose() {
        let dir = std::env::temp_dir().join(format!("alsc-race-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = StreamCache::new(&dir);
        let runs_a = sample_runs();
        let mut runs_b = sample_runs();
        runs_b.reverse();
        let key = 0xdead_beef;
        cache.store(key, b"A", &runs_a).expect("seed store");

        std::thread::scope(|scope| {
            let writer_a = scope.spawn(|| {
                for _ in 0..40 {
                    cache.store(key, b"A", &runs_a).expect("store A");
                }
            });
            let writer_b = scope.spawn(|| {
                for _ in 0..40 {
                    cache.store(key, b"B", &runs_b).expect("store B");
                }
            });
            // Every observation during the race must be one writer's
            // complete entry: the matching sidecar/runs pair, never a
            // torn mixture, a decode failure, or a vanished file.
            let reader = scope.spawn(|| {
                for _ in 0..200 {
                    match cache.load(key) {
                        CacheLookup::Hit { stream, .. } => match stream.sidecar.as_slice() {
                            b"A" => assert_eq!(stream.runs, runs_a, "torn entry for A"),
                            b"B" => assert_eq!(stream.runs, runs_b, "torn entry for B"),
                            other => panic!("unknown sidecar {other:?}"),
                        },
                        CacheLookup::Miss => panic!("entry vanished mid-race"),
                        CacheLookup::Invalid(e) => panic!("corrupt entry exposed: {e:?}"),
                    }
                }
            });
            writer_a.join().expect("writer A");
            writer_b.join().expect("writer B");
            reader.join().expect("reader");
        });

        // Both final states are valid, and no scratch files leaked.
        assert!(matches!(cache.load(key), CacheLookup::Hit { .. }));
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .expect("read dir")
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "scratch files leaked: {leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn maximal_run_lengths_round_trip() {
        let r = MemRef::app_read(Address::new(128), 4);
        let runs = vec![
            RefRun { r, count: u32::MAX },
            RefRun { r: MemRef::app_write(Address::new(128), 4), count: u32::MAX - 1 },
        ];
        let bytes = encode_stream(5, b"", &runs);
        let decoded = decode_stream(&bytes, 5).expect("decode");
        assert_eq!(decoded.runs, runs);
    }

    #[test]
    fn merged_counts_past_u32_max_split_into_saturated_records() {
        let r = MemRef::app_read(Address::new(8), 4);
        let runs = vec![RefRun { r, count: u32::MAX }, RefRun { r, count: 3 }];
        let bytes = encode_stream(6, b"", &runs);
        let decoded = decode_stream(&bytes, 6).expect("decode");
        let total: u64 = decoded.runs.iter().map(|run| u64::from(run.count)).sum();
        assert_eq!(total, u64::from(u32::MAX) + 3);
        for run in &decoded.runs {
            assert_eq!(run.r, r);
        }
    }
}
