//! Simulated addresses.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// The machine word size in bytes.
///
/// The paper's test vehicle was a DECstation 5000/120 (32-bit MIPS), so a
/// word is four bytes and allocator metadata (boundary tags, freelist
/// links) is word-sized.
pub const WORD: u64 = 4;

/// A byte address in the simulated address space.
///
/// Addresses are plain 64-bit offsets; the heap segment conventionally
/// starts at [`crate::heap::HEAP_BASE`]. `Address` is a newtype so that
/// simulated addresses cannot be confused with sizes or counts.
///
/// # Example
///
/// ```
/// use sim_mem::{Address, WORD};
/// let a = Address::new(0x1000);
/// assert_eq!(a + WORD, Address::new(0x1004));
/// assert_eq!((a + WORD) - a, WORD);
/// assert!(a.is_word_aligned());
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Address(u64);

impl Address {
    /// The null address. Allocators use it as the "no block" sentinel in
    /// freelist links, mirroring C's `NULL`.
    pub const NULL: Address = Address(0);

    /// Creates an address from a raw byte offset.
    pub const fn new(raw: u64) -> Self {
        Address(raw)
    }

    /// Returns the raw byte offset.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns `true` if this is the null sentinel.
    pub const fn is_null(self) -> bool {
        self.0 == 0
    }

    /// Returns `true` if the address is aligned to the machine word.
    pub const fn is_word_aligned(self) -> bool {
        self.0.is_multiple_of(WORD)
    }

    /// Returns the page number for a given page size (which must be a
    /// power of two).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `page_size` is not a power of two.
    pub const fn page(self, page_size: u64) -> u64 {
        debug_assert!(page_size.is_power_of_two());
        self.0 / page_size
    }

    /// Returns the cache-block number for a given block size (power of two).
    pub const fn block(self, block_size: u64) -> u64 {
        debug_assert!(block_size.is_power_of_two());
        self.0 / block_size
    }

    /// Returns the address rounded down to a multiple of `align`.
    pub const fn align_down(self, align: u64) -> Address {
        Address(self.0 - self.0 % align)
    }

    /// Checked addition; `None` on overflow.
    pub const fn checked_add(self, rhs: u64) -> Option<Address> {
        match self.0.checked_add(rhs) {
            Some(v) => Some(Address(v)),
            None => None,
        }
    }
}

impl Add<u64> for Address {
    type Output = Address;

    fn add(self, rhs: u64) -> Address {
        Address(self.0 + rhs)
    }
}

impl AddAssign<u64> for Address {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<u64> for Address {
    type Output = Address;

    fn sub(self, rhs: u64) -> Address {
        Address(self.0 - rhs)
    }
}

/// Distance in bytes between two addresses.
impl Sub<Address> for Address {
    type Output = u64;

    fn sub(self, rhs: Address) -> u64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#010x}", self.0)
    }
}

impl fmt::LowerHex for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Address {
    fn from(raw: u64) -> Self {
        Address(raw)
    }
}

impl From<Address> for u64 {
    fn from(a: Address) -> u64 {
        a.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_is_zero_and_detected() {
        assert!(Address::NULL.is_null());
        assert!(!Address::new(1).is_null());
        assert_eq!(Address::default(), Address::NULL);
    }

    #[test]
    fn arithmetic_round_trips() {
        let a = Address::new(100);
        assert_eq!(a + 28, Address::new(128));
        assert_eq!((a + 28) - 28, a);
        assert_eq!(Address::new(128) - a, 28);
        let mut b = a;
        b += 4;
        assert_eq!(b, Address::new(104));
    }

    #[test]
    fn page_and_block_numbers() {
        let a = Address::new(4096 * 3 + 17);
        assert_eq!(a.page(4096), 3);
        assert_eq!(a.block(32), (4096 * 3 + 17) / 32);
    }

    #[test]
    fn alignment() {
        assert!(Address::new(8).is_word_aligned());
        assert!(!Address::new(6).is_word_aligned());
        assert_eq!(Address::new(37).align_down(32), Address::new(32));
        assert_eq!(Address::new(32).align_down(32), Address::new(32));
    }

    #[test]
    fn checked_add_saturates_at_overflow() {
        assert_eq!(Address::new(u64::MAX).checked_add(1), None);
        assert_eq!(Address::new(10).checked_add(1), Some(Address::new(11)));
    }

    #[test]
    fn display_formats_as_hex() {
        assert_eq!(Address::new(0x1000).to_string(), "0x00001000");
        assert_eq!(format!("{:x}", Address::new(255)), "ff");
    }

    #[test]
    fn conversions() {
        let a: Address = 42u64.into();
        let raw: u64 = a.into();
        assert_eq!(raw, 42);
    }
}
