//! Memory references and reference-stream consumers.

use serde::{Deserialize, Serialize};

use crate::{AccessSink, Address};

/// Whether a reference reads or writes memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

/// Who issued the reference.
///
/// The paper distinguishes the *direct* effect of an allocator (its own
/// references to freelists, boundary tags and chunk headers) from the
/// *indirect* effect (how object placement changes the locality of the
/// application's references). Tagging each reference with its origin lets
/// the simulators report both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessClass {
    /// The application touching its own heap data.
    AppData,
    /// The allocator touching its metadata (links, tags, headers).
    AllocatorMeta,
}

/// One observed data reference: `size` bytes starting at `addr`.
///
/// A reference may span multiple cache blocks or pages; consumers must
/// decompose it. Large application references (e.g. initializing a freshly
/// allocated object) are deliberately carried as a single `MemRef` so the
/// trace stream stays compact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemRef {
    /// First byte touched.
    pub addr: Address,
    /// Number of bytes touched (at least 1).
    pub size: u32,
    /// Load or store.
    pub kind: AccessKind,
    /// Application data or allocator metadata.
    pub class: AccessClass,
}

impl MemRef {
    /// A word-sized metadata load, as issued by allocator internals.
    pub fn meta_read(addr: Address, size: u32) -> Self {
        MemRef { addr, size, kind: AccessKind::Read, class: AccessClass::AllocatorMeta }
    }

    /// A word-sized metadata store.
    pub fn meta_write(addr: Address, size: u32) -> Self {
        MemRef { addr, size, kind: AccessKind::Write, class: AccessClass::AllocatorMeta }
    }

    /// An application-data load.
    pub fn app_read(addr: Address, size: u32) -> Self {
        MemRef { addr, size, kind: AccessKind::Read, class: AccessClass::AppData }
    }

    /// An application-data store.
    pub fn app_write(addr: Address, size: u32) -> Self {
        MemRef { addr, size, kind: AccessKind::Write, class: AccessClass::AppData }
    }

    /// Iterates over the block numbers this reference touches for a given
    /// power-of-two block size.
    ///
    /// # Example
    ///
    /// ```
    /// use sim_mem::{Address, MemRef};
    /// let r = MemRef::app_write(Address::new(30), 8); // spans blocks 0 and 1
    /// let blocks: Vec<u64> = r.blocks(32).collect();
    /// assert_eq!(blocks, vec![0, 1]);
    /// ```
    pub fn blocks(&self, block_size: u64) -> impl Iterator<Item = u64> {
        debug_assert!(block_size.is_power_of_two());
        debug_assert!(self.size >= 1);
        let first = self.addr.raw() / block_size;
        let last = (self.addr.raw() + u64::from(self.size) - 1) / block_size;
        first..=last
    }

    /// Whether every byte of this reference lies in a single
    /// `block_size`-byte aligned block.
    ///
    /// This is the gate for run fast paths: once a single-block
    /// reference has been observed, an immediate repeat can touch no
    /// block other than the one just touched, so a sink may account for
    /// the repeat without re-walking its lookup structures.
    #[inline]
    pub fn single_block(&self, block_size: u64) -> bool {
        debug_assert!(block_size.is_power_of_two());
        let first = self.addr.raw() / block_size;
        let last = (self.addr.raw() + u64::from(self.size.max(1)) - 1) / block_size;
        first == last
    }

    /// The first and last `block_size`-aligned block this reference
    /// touches, as block numbers.
    #[inline]
    pub fn block_range(&self, block_size: u64) -> (u64, u64) {
        debug_assert!(block_size.is_power_of_two());
        let first = self.addr.raw() / block_size;
        let last = (self.addr.raw() + u64::from(self.size.max(1)) - 1) / block_size;
        (first, last)
    }

    /// How many consecutive `block_size`-aligned blocks this reference
    /// spans (at least 1).
    ///
    /// This is the gate for run-aware multi-block fast paths: the span
    /// of a run's reference is decomposed once, and when the spanned
    /// blocks all stay resident in a sink's tracking structure after the
    /// first occurrence (e.g. the span is no wider than a cache's line
    /// count, or fits the exact top of an LRU stack), every repeat is a
    /// predictable all-hit pass the sink may account for in O(1).
    #[inline]
    pub fn block_span(&self, block_size: u64) -> u64 {
        let (first, last) = self.block_range(block_size);
        last - first + 1
    }

    /// Word-granular size of this reference (one per data word touched,
    /// rounded up; at least one) — the unit access counters advance by.
    #[inline]
    pub fn words(&self) -> u64 {
        u64::from(self.size.div_ceil(4).max(1))
    }
}

/// `count` consecutive occurrences of the identical reference `r`.
///
/// The run-length compressed form of a reference stream: a batching
/// [`crate::MemCtx`] collapses immediate repeats of one [`MemRef`] into a
/// single run before fan-out, and [`crate::AccessSink::record_runs`]
/// consumers turn the repeats into O(1) work. Expanding every run in
/// order reproduces the raw stream exactly (the encoding is lossless),
/// which is what keeps every consumer bit-identical to the uncompressed
/// path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RefRun {
    /// The repeated reference.
    pub r: MemRef,
    /// How many times it occurred consecutively (at least 1).
    pub count: u32,
}

impl RefRun {
    /// A run of one occurrence.
    pub fn once(r: MemRef) -> Self {
        RefRun { r, count: 1 }
    }
}

/// Discards every reference. Useful for running an allocator purely for
/// its heap-layout or instruction-count side effects.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl AccessSink for NullSink {
    fn record(&mut self, _r: MemRef) {}
}

/// Collects references into a vector; intended for tests and small traces.
#[derive(Debug, Clone, Default)]
pub struct VecSink {
    /// The recorded references, in program order.
    pub refs: Vec<MemRef>,
}

impl VecSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }
}

impl AccessSink for VecSink {
    fn record(&mut self, r: MemRef) {
        self.refs.push(r);
    }
}

/// Aggregate statistics over a reference stream, split by class and kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Number of application-data loads.
    pub app_reads: u64,
    /// Number of application-data stores.
    pub app_writes: u64,
    /// Number of allocator-metadata loads.
    pub meta_reads: u64,
    /// Number of allocator-metadata stores.
    pub meta_writes: u64,
    /// Total bytes touched by application references.
    pub app_bytes: u64,
    /// Total bytes touched by metadata references.
    pub meta_bytes: u64,
    /// Word-granular application data references (one per word touched,
    /// rounded up per reference — the paper's unit for `D`).
    pub app_words: u64,
    /// Word-granular metadata references.
    pub meta_words: u64,
}

impl TraceStats {
    /// Total number of references of any class.
    pub fn total_refs(&self) -> u64 {
        self.app_reads + self.app_writes + self.meta_reads + self.meta_writes
    }

    /// Number of application references.
    pub fn app_refs(&self) -> u64 {
        self.app_reads + self.app_writes
    }

    /// Number of allocator-metadata references.
    pub fn meta_refs(&self) -> u64 {
        self.meta_reads + self.meta_writes
    }

    /// Total word-granular data references (the paper's `D`).
    pub fn total_words(&self) -> u64 {
        self.app_words + self.meta_words
    }
}

/// Counts references without storing them.
#[derive(Debug, Clone, Copy, Default)]
pub struct CountingSink {
    stats: TraceStats,
}

impl CountingSink {
    /// Creates a sink with zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the accumulated statistics.
    pub fn stats(&self) -> TraceStats {
        self.stats
    }

    /// Counts `n` occurrences of `r` at once. Every counter is a plain
    /// sum over the stream, so a multiplied single update is exactly `n`
    /// repeated updates.
    fn tally(&mut self, r: MemRef, n: u64) {
        let bytes = u64::from(r.size) * n;
        let words = r.words() * n;
        match (r.class, r.kind) {
            (AccessClass::AppData, AccessKind::Read) => {
                self.stats.app_reads += n;
                self.stats.app_bytes += bytes;
                self.stats.app_words += words;
            }
            (AccessClass::AppData, AccessKind::Write) => {
                self.stats.app_writes += n;
                self.stats.app_bytes += bytes;
                self.stats.app_words += words;
            }
            (AccessClass::AllocatorMeta, AccessKind::Read) => {
                self.stats.meta_reads += n;
                self.stats.meta_bytes += bytes;
                self.stats.meta_words += words;
            }
            (AccessClass::AllocatorMeta, AccessKind::Write) => {
                self.stats.meta_writes += n;
                self.stats.meta_bytes += bytes;
                self.stats.meta_words += words;
            }
        }
    }
}

impl AccessSink for CountingSink {
    fn record(&mut self, r: MemRef) {
        self.tally(r, 1);
    }

    fn record_runs(&mut self, runs: &[RefRun]) {
        for run in runs {
            self.tally(run.r, u64::from(run.count));
        }
    }
}

/// Forwards every reference to a pair of sinks.
///
/// Larger fan-outs are built by nesting: `FanoutSink(a, FanoutSink(b, c))`.
#[derive(Debug, Default)]
pub struct FanoutSink<A, B> {
    /// First downstream sink.
    pub first: A,
    /// Second downstream sink.
    pub second: B,
}

impl<A: AccessSink, B: AccessSink> FanoutSink<A, B> {
    /// Creates a fan-out over two sinks.
    pub fn new(first: A, second: B) -> Self {
        FanoutSink { first, second }
    }
}

impl<A: AccessSink, B: AccessSink> AccessSink for FanoutSink<A, B> {
    fn record(&mut self, r: MemRef) {
        self.first.record(r);
        self.second.record(r);
    }

    fn record_batch(&mut self, batch: &[MemRef]) {
        self.first.record_batch(batch);
        self.second.record_batch(batch);
    }

    fn record_runs(&mut self, runs: &[RefRun]) {
        self.first.record_runs(runs);
        self.second.record_runs(runs);
    }
}

impl<S: AccessSink + ?Sized> AccessSink for &mut S {
    fn record(&mut self, r: MemRef) {
        (**self).record(r);
    }

    fn record_batch(&mut self, batch: &[MemRef]) {
        (**self).record_batch(batch);
    }

    fn record_runs(&mut self, runs: &[RefRun]) {
        (**self).record_runs(runs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_decomposition_single_block() {
        let r = MemRef::app_read(Address::new(0), 4);
        assert_eq!(r.blocks(32).collect::<Vec<_>>(), vec![0]);
        let r = MemRef::app_read(Address::new(31), 1);
        assert_eq!(r.blocks(32).collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn block_decomposition_straddles_boundary() {
        let r = MemRef::app_read(Address::new(31), 2);
        assert_eq!(r.blocks(32).collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn block_decomposition_large_ref() {
        let r = MemRef::app_write(Address::new(64), 128);
        assert_eq!(r.blocks(32).collect::<Vec<_>>(), vec![2, 3, 4, 5]);
    }

    #[test]
    fn counting_sink_tallies_by_class_and_kind() {
        let mut s = CountingSink::new();
        s.record(MemRef::app_read(Address::new(0), 4));
        s.record(MemRef::app_write(Address::new(0), 16));
        s.record(MemRef::meta_read(Address::new(0), 4));
        s.record(MemRef::meta_read(Address::new(8), 4));
        s.record(MemRef::meta_write(Address::new(8), 4));
        let t = s.stats();
        assert_eq!(t.app_reads, 1);
        assert_eq!(t.app_writes, 1);
        assert_eq!(t.meta_reads, 2);
        assert_eq!(t.meta_writes, 1);
        assert_eq!(t.app_bytes, 20);
        assert_eq!(t.meta_bytes, 12);
        assert_eq!(t.app_words, 5);
        assert_eq!(t.meta_words, 3);
        assert_eq!(t.total_words(), 8);
        assert_eq!(t.total_refs(), 5);
        assert_eq!(t.app_refs(), 2);
        assert_eq!(t.meta_refs(), 3);
    }

    #[test]
    fn fanout_reaches_both_sinks() {
        let mut f = FanoutSink::new(CountingSink::new(), VecSink::new());
        f.record(MemRef::meta_write(Address::new(4), 4));
        assert_eq!(f.first.stats().meta_writes, 1);
        assert_eq!(f.second.refs.len(), 1);
    }

    #[test]
    fn mut_ref_sink_forwards() {
        let mut v = VecSink::new();
        {
            let r: &mut VecSink = &mut v;
            r.record(MemRef::app_read(Address::new(0), 1));
        }
        assert_eq!(v.refs.len(), 1);
    }
}
