//! The memory context handed to allocator code.

use obs::Recorder;

use crate::{AccessSink, Address, HeapImage, InstrCounter, MemRef, OomError, Phase, RefRun, WORD};

/// Cost, in instructions, attributed to an `sbrk` call.
///
/// Growing the heap traps into the operating system; the paper's QP counts
/// include that user-visible overhead. The value is a small constant so
/// allocators that `sbrk` in large chunks (BSD, GNU Local) are rewarded,
/// matching the behaviour the paper describes.
pub const SBRK_COST: u64 = 40;

/// References accumulated by a batched [`MemCtx`] before one
/// [`AccessSink::record_runs`] call flushes them.
///
/// Large enough to amortize the virtual dispatch (and, in the engine's
/// sharded pipeline, the channel send) across thousands of references;
/// small enough that a batch stays well inside an L2 cache. The count is
/// of *references*, not runs: a batch holds at most this many references
/// however well they compress, so sink-visible flush boundaries are
/// unchanged by compression.
pub const BATCH_CAPACITY: usize = 4096;

/// The accessor through which allocator code touches the simulated heap.
///
/// `MemCtx` bundles the heap image, the reference sink, and the
/// instruction counter so that a metadata access is always three things at
/// once: a real read/write of the heap image, an emitted [`MemRef`], and a
/// charged instruction. Allocator implementations *cannot* touch memory
/// without leaving a trace, which is the property that makes the
/// simulation address- and cost-faithful.
///
/// # Example
///
/// ```
/// use sim_mem::{HeapImage, MemCtx, CountingSink, InstrCounter, Phase};
/// # fn main() -> Result<(), sim_mem::OomError> {
/// let mut heap = HeapImage::new();
/// let mut sink = CountingSink::new();
/// let mut instrs = InstrCounter::new();
/// let mut ctx = MemCtx::new(&mut heap, &mut sink, &mut instrs);
/// ctx.set_phase(Phase::Malloc);
/// let p = ctx.sbrk(16)?;
/// ctx.store(p, 42);
/// let v = ctx.load(p);
/// assert_eq!(v, 42);
/// assert_eq!(sink.stats().meta_reads, 1);
/// assert_eq!(sink.stats().meta_writes, 1);
/// # Ok(())
/// # }
/// ```
pub struct MemCtx<'a> {
    heap: &'a mut HeapImage,
    sink: &'a mut dyn AccessSink,
    instrs: &'a mut InstrCounter,
    /// Run-length compressed batch buffer; empty and never filled for
    /// unbatched contexts. Consecutive identical references collapse
    /// into one run on the way in, so a word-by-word revisit of one
    /// address costs the sinks O(1) instead of O(n).
    buf: Vec<RefRun>,
    /// References (not runs) currently buffered; flush at
    /// [`BATCH_CAPACITY`].
    buffered: usize,
    batched: bool,
    /// Metrics sink; `None` is the uninstrumented fast path (one
    /// predictable branch per instrumentation site). Recording never
    /// reads or writes simulated state, so results are bit-identical
    /// with or without it.
    recorder: Option<&'a mut dyn Recorder>,
}

impl std::fmt::Debug for MemCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemCtx")
            .field("heap", &self.heap)
            .field("instrs", &self.instrs)
            .finish_non_exhaustive()
    }
}

impl<'a> MemCtx<'a> {
    /// Creates a context over a heap, a sink, and an instruction counter.
    ///
    /// Every reference is delivered to the sink immediately, so sink
    /// state can be inspected at any point. For high-throughput paths
    /// use [`MemCtx::batched`].
    pub fn new(
        heap: &'a mut HeapImage,
        sink: &'a mut dyn AccessSink,
        instrs: &'a mut InstrCounter,
    ) -> Self {
        MemCtx { heap, sink, instrs, buf: Vec::new(), buffered: 0, batched: false, recorder: None }
    }

    /// Creates a *batching* context: references accumulate — run-length
    /// compressed — in a buffer of up to [`BATCH_CAPACITY`] references
    /// and reach the sink in program order through
    /// [`AccessSink::record_runs`], amortizing the per-reference virtual
    /// call (and, for channel-backed sinks, the send).
    ///
    /// The caller **must** call [`MemCtx::flush`] before reading sink
    /// state or dropping the context, or trailing references are lost.
    /// (There is deliberately no `Drop` impl: the buffer only matters on
    /// paths that already need an explicit synchronization point, and a
    /// `Drop` would extend borrows past the last use everywhere else.)
    pub fn batched(
        heap: &'a mut HeapImage,
        sink: &'a mut dyn AccessSink,
        instrs: &'a mut InstrCounter,
    ) -> Self {
        MemCtx {
            heap,
            sink,
            instrs,
            buf: Vec::with_capacity(BATCH_CAPACITY),
            buffered: 0,
            batched: true,
            recorder: None,
        }
    }

    /// Attaches a metrics recorder, consuming and returning the context
    /// (builder style, so the uninstrumented constructors keep their
    /// signatures). The recorder observes flush behaviour and whatever
    /// the allocator reports through [`MemCtx::obs_add`] /
    /// [`MemCtx::obs_observe`]; it never alters the reference stream.
    pub fn with_recorder(mut self, recorder: &'a mut dyn Recorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Whether an enabled recorder is attached. Instrumented code may
    /// use this to skip *computing* an expensive metric value, never to
    /// change simulated behaviour.
    #[inline]
    pub fn obs_enabled(&self) -> bool {
        self.recorder.as_ref().is_some_and(|r| r.enabled())
    }

    /// Adds `delta` to the counter `name` on the attached recorder, if
    /// any. One branch when none is attached.
    #[inline]
    pub fn obs_add(&mut self, name: &'static str, delta: u64) {
        if let Some(rec) = self.recorder.as_deref_mut() {
            rec.add(name, delta);
        }
    }

    /// Records `value` in the histogram `name` on the attached
    /// recorder, if any. One branch when none is attached.
    #[inline]
    pub fn obs_observe(&mut self, name: &'static str, value: u64) {
        if let Some(rec) = self.recorder.as_deref_mut() {
            rec.observe(name, value);
        }
    }

    /// Opens a hierarchical span `name` on the attached recorder, if
    /// any. Flat recorders ignore this; a [`obs::Tracer`] starts a
    /// child span. Must be balanced by [`MemCtx::obs_span_exit`].
    #[inline]
    pub fn obs_span_enter(&mut self, name: &'static str) {
        if let Some(rec) = self.recorder.as_deref_mut() {
            rec.span_enter(name);
        }
    }

    /// Closes the innermost span opened by [`MemCtx::obs_span_enter`].
    #[inline]
    pub fn obs_span_exit(&mut self) {
        if let Some(rec) = self.recorder.as_deref_mut() {
            rec.span_exit();
        }
    }

    /// Delivers any buffered references to the sink. A no-op for
    /// unbatched contexts.
    pub fn flush(&mut self) {
        if !self.buf.is_empty() {
            self.obs_span_enter("ctx.flush");
            if let Some(rec) = self.recorder.as_deref_mut() {
                // Batch flushes and the RLE compression ratio: `refs`
                // over `runs` is how much the run compression saved the
                // sinks (and the sharded pipeline's channels).
                rec.add("ctx.flush.batches", 1);
                rec.add("ctx.flush.runs", self.buf.len() as u64);
                rec.add("ctx.flush.refs", self.buffered as u64);
            }
            self.sink.record_runs(&self.buf);
            self.buf.clear();
            self.buffered = 0;
            self.obs_span_exit();
        }
    }

    /// Routes one reference: straight through for unbatched contexts,
    /// into the run-compressed batch buffer (flushing once
    /// [`BATCH_CAPACITY`] references are held) otherwise.
    #[inline]
    fn emit(&mut self, r: MemRef) {
        if self.batched {
            match self.buf.last_mut() {
                Some(last) if last.r == r && last.count < u32::MAX => last.count += 1,
                _ => self.buf.push(RefRun::once(r)),
            }
            self.buffered += 1;
            if self.buffered >= BATCH_CAPACITY {
                self.flush();
            }
        } else {
            self.sink.record(r);
        }
    }

    /// Switches the phase instructions are charged to.
    pub fn set_phase(&mut self, phase: Phase) {
        self.instrs.set_phase(phase);
    }

    /// Loads a metadata word: reads the heap image, emits a word-sized
    /// metadata read, charges one instruction.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside the heap segment (an allocator bug).
    pub fn load(&mut self, addr: Address) -> u32 {
        self.instrs.add(1);
        self.emit(MemRef::meta_read(addr, WORD as u32));
        self.heap.read_u32(addr)
    }

    /// Emits the trace and charges the cost of a metadata load whose
    /// value the caller already holds in host-side *shadow* state: one
    /// instruction and a word-sized metadata read, exactly like
    /// [`MemCtx::load`], but without reading the heap image.
    ///
    /// This is the fast path of the rebuilt allocators: the traced cost
    /// model and the emitted reference stream are bit-identical to a
    /// real load, while the host avoids pointer-chasing through the
    /// multi-megabyte heap image for a value its compact shadow
    /// structures (slab freelists, class bitmaps, word mirrors) already
    /// know. The heap image stays truthful because every such word was
    /// put there by a write-through [`MemCtx::store`]; debug builds
    /// assert the coherence on every call, so the property suite
    /// (`cargo test`) checks shadow state against the image at every
    /// single load while release benchmarks skip the image entirely.
    #[inline]
    pub fn shadow_load(&mut self, addr: Address, shadow: u32) -> u32 {
        debug_assert_eq!(
            shadow,
            self.heap.read_u32(addr),
            "shadow state incoherent with heap image at {addr}"
        );
        self.instrs.add(1);
        self.emit(MemRef::meta_read(addr, WORD as u32));
        shadow
    }

    /// Emits a *burst* of shadow metadata loads: the exact sequence of
    /// word-sized reads in `reads`, each paired with its shadow value
    /// (checked against the heap image in debug builds, exactly like
    /// [`MemCtx::shadow_load`]), charging one instruction per read in a
    /// single bulk add.
    ///
    /// Emits a *burst* of shadow metadata loads: the exact sequence of
    /// word-sized reads in `reads` — each a `(raw address, value)` pair
    /// whose value is checked against the heap image in debug builds,
    /// exactly like [`MemCtx::shadow_load`] — charging one instruction
    /// per read in a single bulk add.
    ///
    /// Consecutive reads in the burst must be *distinct* (debug-asserted):
    /// this is what lets the batch path append runs without a per-read
    /// merge comparison. A freelist walk satisfies it structurally —
    /// headers and links of non-overlapping blocks never repeat
    /// back-to-back. Only the burst's **first** read can run-length
    /// merge, into whatever run the batch was holding, and it gets the
    /// full scalar treatment.
    ///
    /// Under that contract the emitted stream is bit-identical to
    /// calling [`MemCtx::shadow_load`] once per element — same runs,
    /// same [`BATCH_CAPACITY`] flush cut-points. What the burst removes
    /// is per-reference overhead: one phase-indexed instruction add per
    /// burst, one capacity check per chunk, and a straight
    /// exact-size-reserved extend for everything past the first read.
    /// Long freelist walks, whose references dominate the trace, become
    /// cheaper to *produce* than they are to replay.
    pub fn shadow_load_burst(&mut self, reads: &[(u32, u32)]) {
        if reads.is_empty() {
            return;
        }
        self.instrs.add(reads.len() as u64);
        #[cfg(debug_assertions)]
        for (i, &(addr, shadow)) in reads.iter().enumerate() {
            let addr = Address::new(u64::from(addr));
            assert_eq!(
                shadow,
                self.heap.read_u32(addr),
                "shadow state incoherent with heap image at {addr}"
            );
            assert!(
                i == 0 || reads[i - 1].0 != reads[i].0,
                "burst reads must not repeat back-to-back at {addr}"
            );
        }
        if !self.batched {
            for &(addr, _) in reads {
                self.sink.record(MemRef::meta_read(Address::new(u64::from(addr)), WORD as u32));
            }
            return;
        }
        // The first read may merge into the pending run; the scalar path
        // handles that (and a flush landing exactly on it).
        self.emit(MemRef::meta_read(Address::new(u64::from(reads[0].0)), WORD as u32));
        let mut rest = &reads[1..];
        while !rest.is_empty() {
            let room = BATCH_CAPACITY - self.buffered;
            let (chunk, tail) = rest.split_at(rest.len().min(room));
            self.buf.extend(chunk.iter().map(|&(addr, _)| {
                RefRun::once(MemRef::meta_read(Address::new(u64::from(addr)), WORD as u32))
            }));
            self.buffered += chunk.len();
            if self.buffered >= BATCH_CAPACITY {
                self.flush();
            }
            rest = tail;
        }
    }

    /// Stores a metadata word: writes the heap image, emits a word-sized
    /// metadata write, charges one instruction.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside the heap segment (an allocator bug).
    pub fn store(&mut self, addr: Address, value: u32) {
        self.instrs.add(1);
        self.emit(MemRef::meta_write(addr, WORD as u32));
        self.heap.write_u32(addr, value);
    }

    /// Charges `n` register-only instructions (arithmetic, compares,
    /// branches) to the current phase without touching memory.
    pub fn ops(&mut self, n: u64) {
        self.instrs.add(n);
    }

    /// Emits a metadata reference without reading the image or charging an
    /// instruction. Used for *emulated* overheads — e.g. the boundary-tag
    /// cache-pollution experiment of Table 6, where extra words are touched
    /// but carry no live data.
    pub fn touch_meta(&mut self, r: MemRef) {
        self.emit(r);
    }

    /// Emits an application-data reference of `len` bytes at `addr`,
    /// charging one load/store instruction per word touched (the paper
    /// assumes "all instructions, including loads and stores, complete in
    /// a single machine cycle").
    pub fn app_touch(&mut self, addr: Address, len: u32, write: bool) {
        let len = len.max(1);
        self.instrs.add(u64::from(len.div_ceil(WORD as u32)));
        let r = if write { MemRef::app_write(addr, len) } else { MemRef::app_read(addr, len) };
        self.emit(r);
    }

    /// Grows the heap, charging [`SBRK_COST`] instructions.
    ///
    /// # Errors
    ///
    /// Returns [`OomError`] if the heap limit would be exceeded.
    pub fn sbrk(&mut self, amount: u64) -> Result<Address, OomError> {
        self.instrs.add(SBRK_COST);
        self.heap.sbrk(amount)
    }

    /// Read-only view of the heap image (no trace emitted); for
    /// consistency checks and assertions only.
    pub fn heap(&self) -> &HeapImage {
        self.heap
    }

    /// Peeks at a word without tracing or charging instructions.
    ///
    /// Only for debug assertions and invariant checkers; production
    /// allocator paths must use [`Self::load`].
    pub fn peek(&self, addr: Address) -> u32 {
        self.heap.read_u32(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CountingSink, VecSink};

    fn fixture() -> (HeapImage, CountingSink, InstrCounter) {
        (HeapImage::new(), CountingSink::new(), InstrCounter::new())
    }

    #[test]
    fn load_store_trace_and_charge() {
        let (mut heap, mut sink, mut instrs) = fixture();
        let mut ctx = MemCtx::new(&mut heap, &mut sink, &mut instrs);
        ctx.set_phase(Phase::Malloc);
        let p = ctx.sbrk(8).unwrap();
        ctx.store(p, 9);
        assert_eq!(ctx.load(p), 9);
        assert_eq!(instrs.phase_total(Phase::Malloc), SBRK_COST + 2);
        assert_eq!(sink.stats().meta_writes, 1);
        assert_eq!(sink.stats().meta_reads, 1);
    }

    #[test]
    fn ops_charge_without_refs() {
        let (mut heap, mut sink, mut instrs) = fixture();
        let mut ctx = MemCtx::new(&mut heap, &mut sink, &mut instrs);
        ctx.ops(17);
        assert_eq!(instrs.total(), 17);
        assert_eq!(sink.stats().total_refs(), 0);
    }

    #[test]
    fn touch_meta_traces_without_instructions() {
        let mut heap = HeapImage::new();
        let mut sink = VecSink::new();
        let mut instrs = InstrCounter::new();
        let mut ctx = MemCtx::new(&mut heap, &mut sink, &mut instrs);
        ctx.touch_meta(MemRef::meta_write(Address::new(0x2000_0000), 8));
        assert_eq!(instrs.total(), 0);
        assert_eq!(sink.refs.len(), 1);
        assert_eq!(sink.refs[0].size, 8);
    }

    #[test]
    fn batched_ctx_delivers_on_flush() {
        let (mut heap, mut sink, mut instrs) = fixture();
        let mut ctx = MemCtx::batched(&mut heap, &mut sink, &mut instrs);
        let p = ctx.sbrk(64).unwrap();
        ctx.store(p, 1);
        assert_eq!(ctx.load(p), 1, "heap state is live even while refs are buffered");
        ctx.app_touch(p, 16, true);
        ctx.flush();
        assert_eq!(sink.stats().meta_writes, 1);
        assert_eq!(sink.stats().meta_reads, 1);
        assert_eq!(sink.stats().app_writes, 1);
    }

    #[test]
    fn batched_ctx_flushes_at_capacity() {
        let (mut heap, mut sink, mut instrs) = fixture();
        let p = {
            let mut ctx = MemCtx::batched(&mut heap, &mut sink, &mut instrs);
            let p = ctx.sbrk(8).unwrap();
            for _ in 0..BATCH_CAPACITY {
                ctx.store(p, 7);
            }
            // No explicit flush: the capacity'th store triggered one.
            p
        };
        assert_eq!(sink.stats().meta_writes, BATCH_CAPACITY as u64);
        {
            // A buffered store left unflushed never reaches the sink.
            let mut ctx = MemCtx::batched(&mut heap, &mut sink, &mut instrs);
            ctx.store(p, 8);
        }
        assert_eq!(sink.stats().meta_writes, BATCH_CAPACITY as u64);
        {
            let mut ctx = MemCtx::batched(&mut heap, &mut sink, &mut instrs);
            ctx.store(p, 9);
            ctx.flush();
        }
        assert_eq!(sink.stats().meta_writes, BATCH_CAPACITY as u64 + 1);
    }

    #[test]
    fn recorder_sees_flush_counters_and_custom_metrics() {
        let (mut heap, mut sink, mut instrs) = fixture();
        let mut rec = obs::MemoryRecorder::new();
        {
            let mut ctx =
                MemCtx::batched(&mut heap, &mut sink, &mut instrs).with_recorder(&mut rec);
            assert!(ctx.obs_enabled());
            let p = ctx.sbrk(8).unwrap();
            for _ in 0..10 {
                ctx.store(p, 7);
            }
            ctx.obs_add("alloc.splits", 2);
            ctx.obs_observe("alloc.search_len", 5);
            ctx.flush();
        }
        // Ten identical stores compress into one run in one batch.
        assert_eq!(rec.counter("ctx.flush.batches"), 1);
        assert_eq!(rec.counter("ctx.flush.refs"), 10);
        assert_eq!(rec.counter("ctx.flush.runs"), 1);
        assert_eq!(rec.counter("alloc.splits"), 2);
        let h = rec.histogram("alloc.search_len").unwrap();
        assert_eq!((h.count(), h.sum()), (1, 5));
        // Sink behaviour is untouched by the recorder.
        assert_eq!(sink.stats().meta_writes, 10);
    }

    #[test]
    fn unrecorded_ctx_reports_obs_disabled() {
        let (mut heap, mut sink, mut instrs) = fixture();
        let mut ctx = MemCtx::batched(&mut heap, &mut sink, &mut instrs);
        assert!(!ctx.obs_enabled());
        ctx.obs_add("ignored", 1);
        ctx.obs_observe("ignored_h", 1);
    }

    #[test]
    fn peek_is_invisible() {
        let (mut heap, mut sink, mut instrs) = fixture();
        let mut ctx = MemCtx::new(&mut heap, &mut sink, &mut instrs);
        let p = ctx.sbrk(8).unwrap();
        ctx.store(p, 3);
        let before_refs = sink.stats().total_refs();
        // Re-borrow to peek.
        let ctx = MemCtx::new(&mut heap, &mut sink, &mut instrs);
        assert_eq!(ctx.peek(p), 3);
        assert_eq!(ctx.heap().in_use(), 8);
        let _ = ctx;
        assert_eq!(sink.stats().total_refs(), before_refs);
    }
}
