//! Property tests for the memory substrate.

use proptest::prelude::*;

use sim_mem::heap::round_up_word;
use sim_mem::{
    AccessSink, Address, CountingSink, HeapImage, InstrCounter, MemCtx, MemRef, Phase, RefRun,
    VecSink,
};

/// Collects run-compressed batches exactly as delivered, counting flush
/// boundaries.
#[derive(Default)]
struct RunSink {
    runs: Vec<RefRun>,
    flushes: usize,
}

impl AccessSink for RunSink {
    fn record(&mut self, r: MemRef) {
        self.runs.push(RefRun::once(r));
    }

    fn record_batch(&mut self, batch: &[MemRef]) {
        self.runs.extend(batch.iter().map(|&r| RefRun::once(r)));
    }

    fn record_runs(&mut self, runs: &[RefRun]) {
        self.runs.extend_from_slice(runs);
        self.flushes += 1;
    }
}

/// Expands a run-compressed stream back into raw references.
fn expand(runs: &[RefRun]) -> Vec<MemRef> {
    let mut refs = Vec::new();
    for run in runs {
        for _ in 0..run.count {
            refs.push(run.r);
        }
    }
    refs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Word rounding: result is a multiple of 4, at least the input, and
    /// less than input + 4.
    #[test]
    fn round_up_word_properties(n in 0u64..1 << 40) {
        let r = round_up_word(n);
        prop_assert_eq!(r % 4, 0);
        prop_assert!(r >= n);
        prop_assert!(r < n + 4);
    }

    /// sbrk hands out disjoint, contiguous, monotonically increasing
    /// regions, and high-water tracking equals the sum of grants.
    #[test]
    fn sbrk_regions_tile(sizes in proptest::collection::vec(1u64..10_000, 1..50)) {
        let mut heap = HeapImage::new();
        let mut expected_start = heap.base();
        let mut total = 0;
        for &s in &sizes {
            let p = heap.sbrk(s).expect("below limit");
            prop_assert_eq!(p, expected_start);
            expected_start = p + round_up_word(s);
            total += round_up_word(s);
        }
        prop_assert_eq!(heap.in_use(), total);
        prop_assert_eq!(heap.high_water(), total);
    }

    /// Stored words read back exactly, independent of write order.
    #[test]
    fn words_round_trip(
        writes in proptest::collection::vec((0u64..1000, any::<u32>()), 1..100),
    ) {
        let mut heap = HeapImage::new();
        let base = heap.sbrk(4000).expect("small");
        let mut model = std::collections::HashMap::new();
        for &(slot, value) in &writes {
            heap.write_u32(base + slot * 4, value);
            model.insert(slot, value);
        }
        for (&slot, &value) in &model {
            prop_assert_eq!(heap.read_u32(base + slot * 4), value);
        }
    }

    /// MemCtx bookkeeping: instruction counts and reference counts both
    /// equal the number of operations issued, attributed to the right
    /// phase.
    #[test]
    fn ctx_accounting_balances(
        loads in 0u64..200,
        stores in 0u64..200,
        ops in 0u64..1000,
    ) {
        let mut heap = HeapImage::new();
        let mut sink = CountingSink::new();
        let mut instrs = InstrCounter::new();
        let mut ctx = MemCtx::new(&mut heap, &mut sink, &mut instrs);
        let p = ctx.sbrk(4096).expect("small");
        ctx.set_phase(Phase::Malloc);
        for i in 0..stores {
            ctx.store(p + (i % 1024) * 4, i as u32);
        }
        for i in 0..loads {
            ctx.load(p + (i % 1024) * 4);
        }
        ctx.ops(ops);
        prop_assert_eq!(sink.stats().meta_reads, loads);
        prop_assert_eq!(sink.stats().meta_writes, stores);
        prop_assert_eq!(
            instrs.phase_total(Phase::Malloc),
            loads + stores + ops
        );
        prop_assert_eq!(instrs.phase_total(Phase::App), sim_mem::ctx::SBRK_COST);
    }

    /// A batching context, once flushed, delivers exactly the reference
    /// stream an unbatched context does — same records, same order —
    /// and charges identical instruction counts.
    #[test]
    fn batched_ctx_is_equivalent_to_unbatched(
        ops in proptest::collection::vec(
            (0u64..1024, any::<u32>(), 0u8..4),
            1..600,
        ),
    ) {
        let run = |batched: bool| {
            let mut heap = HeapImage::new();
            let mut sink = VecSink::new();
            let mut instrs = InstrCounter::new();
            let mut ctx = if batched {
                MemCtx::batched(&mut heap, &mut sink, &mut instrs)
            } else {
                MemCtx::new(&mut heap, &mut sink, &mut instrs)
            };
            let p = ctx.sbrk(4096).expect("small");
            ctx.set_phase(Phase::Malloc);
            for &(slot, value, op) in &ops {
                match op {
                    0 => ctx.store(p + (slot % 1024) * 4, value),
                    1 => {
                        ctx.load(p + (slot % 1024) * 4);
                    }
                    2 => ctx.app_touch(Address::new(slot * 4), value % 4096 + 1, value % 2 == 0),
                    _ => ctx.ops(u64::from(value % 16)),
                }
            }
            ctx.flush();
            (sink.refs, instrs.total())
        };
        let (plain_refs, plain_instrs) = run(false);
        let (batch_refs, batch_instrs) = run(true);
        prop_assert_eq!(plain_refs, batch_refs);
        prop_assert_eq!(plain_instrs, batch_instrs);
    }

    /// app_touch charges one instruction per word and records one
    /// application reference of the right size.
    #[test]
    fn app_touch_charges_per_word(len in 1u32..100_000, write: bool) {
        let mut heap = HeapImage::new();
        let mut sink = CountingSink::new();
        let mut instrs = InstrCounter::new();
        let mut ctx = MemCtx::new(&mut heap, &mut sink, &mut instrs);
        ctx.app_touch(Address::new(0x100), len, write);
        prop_assert_eq!(instrs.total(), u64::from(len.div_ceil(4)));
        prop_assert_eq!(sink.stats().app_refs(), 1);
        prop_assert_eq!(sink.stats().app_bytes, u64::from(len));
        if write {
            prop_assert_eq!(sink.stats().app_writes, 1);
        } else {
            prop_assert_eq!(sink.stats().app_reads, 1);
        }
    }

    /// Run-length compression is lossless: the run-compressed batches a
    /// batching context flushes expand to exactly the reference stream
    /// an unbatched context records — same records, same order — and
    /// identical counting statistics. A fixed hot tail longer than
    /// [`sim_mem::BATCH_CAPACITY`] guarantees every case includes a run
    /// straddling a flush boundary.
    #[test]
    fn run_compression_is_lossless_across_batches(
        ops in proptest::collection::vec(
            (0u64..512, any::<u32>(), 0u8..3, 1u32..24),
            1..150,
        ),
    ) {
        let hot_tail = sim_mem::BATCH_CAPACITY as u32 + 100;
        let drive = |ctx: &mut MemCtx<'_>| {
            let p = ctx.sbrk(4096).expect("small");
            ctx.set_phase(Phase::Malloc);
            for &(slot, value, op, reps) in &ops {
                for _ in 0..reps {
                    match op {
                        0 => ctx.store(p + (slot % 1024) * 4, value),
                        1 => {
                            ctx.load(p + (slot % 1024) * 4);
                        }
                        _ => ctx.app_touch(
                            Address::new(slot * 4),
                            value % 4096 + 1,
                            value % 2 == 0,
                        ),
                    }
                }
            }
            // Repeats of one identical reference across > one full batch.
            for _ in 0..hot_tail {
                ctx.store(p, 7);
            }
            ctx.flush();
        };

        let mut heap = HeapImage::new();
        let mut raw = VecSink::new();
        let mut instrs = InstrCounter::new();
        drive(&mut MemCtx::new(&mut heap, &mut raw, &mut instrs));

        let mut heap = HeapImage::new();
        let mut compressed = RunSink::default();
        let mut instrs_batched = InstrCounter::new();
        drive(&mut MemCtx::batched(&mut heap, &mut compressed, &mut instrs_batched));

        prop_assert!(compressed.flushes >= 2, "hot tail must straddle a flush");
        prop_assert!(compressed.runs.len() < raw.refs.len(), "the tail must compress");
        prop_assert_eq!(expand(&compressed.runs), raw.refs);
        prop_assert_eq!(instrs_batched.total(), instrs.total());
    }

    /// Run delivery into a counting sink multiplies instead of
    /// expanding, with identical statistics.
    #[test]
    fn counting_sink_run_delivery_multiplies(
        runs in proptest::collection::vec(
            (0u64..1 << 20, 1u32..300, 1u32..40, any::<bool>(), any::<bool>()),
            1..100,
        ),
    ) {
        let runs: Vec<RefRun> = runs
            .iter()
            .map(|&(addr, len, count, meta, write)| {
                let a = Address::new(addr);
                let r = match (meta, write) {
                    (false, false) => MemRef::app_read(a, len),
                    (false, true) => MemRef::app_write(a, len),
                    (true, false) => MemRef::meta_read(a, len),
                    (true, true) => MemRef::meta_write(a, len),
                };
                RefRun { r, count }
            })
            .collect();

        let mut direct = CountingSink::new();
        direct.record_runs(&runs);
        let mut expanded = CountingSink::new();
        for r in expand(&runs) {
            expanded.record(r);
        }
        prop_assert_eq!(direct.stats(), expanded.stats());
    }

    /// ALSC encode/decode round-trips any reference stream losslessly:
    /// the decoded runs expand to exactly the encoded stream (the codec
    /// may merge adjacent identical runs), and the sidecar comes back
    /// verbatim.
    #[test]
    fn stream_codec_round_trips(
        raw_runs in proptest::collection::vec(
            (0u64..1 << 44, 1u32..10_000, 1u32..1 << 16, any::<bool>(), any::<bool>()),
            0..200,
        ),
        sidecar in proptest::collection::vec(any::<u8>(), 0..256),
        key: u64,
    ) {
        let runs: Vec<RefRun> = raw_runs
            .iter()
            .map(|&(addr, len, count, meta, write)| {
                let a = Address::new(addr);
                let r = match (meta, write) {
                    (false, false) => MemRef::app_read(a, len),
                    (false, true) => MemRef::app_write(a, len),
                    (true, false) => MemRef::meta_read(a, len),
                    (true, true) => MemRef::meta_write(a, len),
                };
                RefRun { r, count }
            })
            .collect();
        let bytes = sim_mem::encode_stream(key, &sidecar, &runs);
        let decoded = sim_mem::decode_stream(&bytes, key).expect("round trip");
        prop_assert_eq!(decoded.sidecar, sidecar);
        prop_assert_eq!(expand(&decoded.runs), expand(&runs));
    }

    /// Maximal-length runs survive the codec, including merges whose
    /// combined count exceeds `u32::MAX` and must split into saturated
    /// records.
    #[test]
    fn stream_codec_handles_maximal_runs(
        counts in proptest::collection::vec(
            prop_oneof![Just(u32::MAX), Just(u32::MAX - 1), 1u32..1 << 20],
            1..12,
        ),
    ) {
        let r = MemRef::app_read(Address::new(0x4000), 4);
        let runs: Vec<RefRun> = counts.iter().map(|&count| RefRun { r, count }).collect();
        let bytes = sim_mem::encode_stream(1, b"", &runs);
        let decoded = sim_mem::decode_stream(&bytes, 1).expect("round trip");
        let want: u64 = counts.iter().map(|&c| u64::from(c)).sum();
        let got: u64 = decoded.runs.iter().map(|run| u64::from(run.count)).sum();
        prop_assert_eq!(got, want);
        for run in &decoded.runs {
            prop_assert_eq!(run.r, r);
        }
    }

    /// A batched MemCtx stream — whose runs straddle flush boundaries at
    /// [`sim_mem::BATCH_CAPACITY`] — round-trips through the codec to
    /// exactly the raw reference sequence an unbatched context records.
    #[test]
    fn stream_codec_round_trips_batched_capture(
        ops in proptest::collection::vec(
            (0u64..512, any::<u32>(), 0u8..3),
            1..80,
        ),
    ) {
        let hot_tail = sim_mem::BATCH_CAPACITY as u32 + 50;
        let drive = |ctx: &mut MemCtx<'_>| {
            let p = ctx.sbrk(4096).expect("small");
            ctx.set_phase(Phase::Malloc);
            for &(slot, value, op) in &ops {
                match op {
                    0 => ctx.store(p + (slot % 1024) * 4, value),
                    1 => {
                        ctx.load(p + (slot % 1024) * 4);
                    }
                    _ => ctx.app_touch(Address::new(slot * 4), value % 4096 + 1, value % 2 == 0),
                }
            }
            for _ in 0..hot_tail {
                ctx.store(p, 7);
            }
            ctx.flush();
        };

        let mut heap = HeapImage::new();
        let mut raw = VecSink::new();
        let mut instrs = InstrCounter::new();
        drive(&mut MemCtx::new(&mut heap, &mut raw, &mut instrs));

        let mut heap = HeapImage::new();
        let mut captured = RunSink::default();
        let mut instrs_batched = InstrCounter::new();
        drive(&mut MemCtx::batched(&mut heap, &mut captured, &mut instrs_batched));
        prop_assert!(captured.flushes >= 2, "hot tail must straddle a flush");

        let bytes = sim_mem::encode_stream(99, b"{}", &captured.runs);
        let decoded = sim_mem::decode_stream(&bytes, 99).expect("round trip");
        prop_assert!(
            decoded.runs.len() <= captured.runs.len(),
            "codec never expands the run stream"
        );
        prop_assert_eq!(expand(&decoded.runs), raw.refs);
    }

    /// Block decomposition covers the byte range exactly once.
    #[test]
    fn block_decomposition_covers(addr in 0u64..1 << 30, size in 1u32..10_000) {
        let r = MemRef::app_read(Address::new(addr), size);
        let blocks: Vec<u64> = r.blocks(32).collect();
        // Contiguous ascending blocks.
        for w in blocks.windows(2) {
            prop_assert_eq!(w[1], w[0] + 1);
        }
        prop_assert_eq!(blocks.first().copied().expect("nonempty"), addr / 32);
        prop_assert_eq!(
            blocks.last().copied().expect("nonempty"),
            (addr + u64::from(size) - 1) / 32
        );
    }
}
