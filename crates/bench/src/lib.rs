//! Support library for the `repro` binary and the Criterion benches.
//!
//! The heavy lifting lives in [`alloc_locality`]; this crate adds the
//! matrix-caching layer the harness uses so that one simulation sweep
//! can serve several tables and figures.

use alloc_locality::{
    default_threads, run_parallel_progress, run_parallel_with, AllocChoice, EngineError,
    Experiment, Matrix, SimOptions,
};
use cache_sim::CacheConfig;
use workloads::{Program, Scale};

/// The matrices the paper's evaluation needs, computed lazily so a
/// single `repro` invocation never runs a sweep it does not print.
#[derive(Debug, Default)]
pub struct MatrixCache {
    main: Option<Matrix>,
    gs: Option<Matrix>,
    tags: Option<Matrix>,
    ext: Option<Matrix>,
    scale: f64,
    threads: usize,
    verbose: bool,
    stream_cache: Option<std::path::PathBuf>,
    stream_cache_bytes: Option<u64>,
    channel_depth: Option<usize>,
}

impl MatrixCache {
    /// Creates an empty cache that will run sweeps at `scale` on the
    /// default worker pool (one worker per hardware thread).
    pub fn new(scale: f64) -> Self {
        Self::with_threads(scale, default_threads())
    }

    /// Creates an empty cache with an explicit worker-pool size.
    pub fn with_threads(scale: f64, threads: usize) -> Self {
        MatrixCache { scale, threads: threads.max(1), ..Default::default() }
    }

    /// Prints a progress line to stderr as each sweep cell completes
    /// (`repro --verbose`).
    pub fn verbose(mut self, on: bool) -> Self {
        self.verbose = on;
        self
    }

    /// Points every sweep at a persistent stream cache: cells whose
    /// reference stream was captured by an earlier invocation replay it
    /// instead of regenerating the workload (`repro --stream-cache`).
    pub fn stream_cache(mut self, dir: Option<std::path::PathBuf>) -> Self {
        self.stream_cache = dir;
        self
    }

    /// Bounds the stream-cache directory's size; oldest-written streams
    /// are evicted after each store (`repro --stream-cache-bytes`).
    pub fn stream_cache_bytes(mut self, max_bytes: Option<u64>) -> Self {
        self.stream_cache_bytes = max_bytes;
        self
    }

    /// Overrides the sharded pipeline's per-worker channel depth
    /// (`repro --channel-depth`; `None` keeps the engine default).
    pub fn channel_depth(mut self, depth: Option<usize>) -> Self {
        self.channel_depth = depth;
        self
    }

    fn opts(&self) -> SimOptions {
        let defaults = SimOptions::default();
        SimOptions {
            scale: Scale(self.scale),
            stream_cache: self.stream_cache.clone(),
            stream_cache_bytes: self.stream_cache_bytes,
            channel_depth: self.channel_depth.unwrap_or(defaults.channel_depth),
            ..defaults
        }
    }

    /// Runs `jobs` on this cache's worker pool, narrating completions
    /// when verbose.
    fn run_jobs(&self, jobs: Vec<Experiment>) -> Result<Matrix, EngineError> {
        if !self.verbose {
            return run_parallel_with(jobs, self.threads);
        }
        let total = jobs.len();
        let start = std::time::Instant::now();
        run_parallel_progress(jobs, self.threads, move |done, r| {
            eprintln!(
                "[{done}/{total}] {}/{} done ({:.1}s elapsed)",
                r.program,
                r.allocator,
                start.elapsed().as_secs_f64()
            );
        })
    }

    /// The programs × choices cross product as a job list.
    fn jobs(programs: &[Program], choices: &[AllocChoice], opts: &SimOptions) -> Vec<Experiment> {
        programs
            .iter()
            .flat_map(|&p| {
                choices.iter().map(move |c| Experiment::new(p, c.clone()).options(opts.clone()))
            })
            .collect()
    }

    /// The 5 programs × 5 allocators sweep with the full cache bank and
    /// paging (serves Figures 1–5 and Tables 2, 4, 5).
    ///
    /// # Errors
    ///
    /// Propagates the first failing run.
    pub fn main(&mut self) -> Result<&Matrix, EngineError> {
        if self.main.is_none() {
            self.main = Some(self.run_jobs(Self::jobs(
                &Program::FIVE,
                &AllocChoice::paper_five(),
                &self.opts(),
            ))?);
        }
        Ok(self.main.as_ref().expect("just set"))
    }

    /// The GhostScript input-set sweep (GS-Small, GS-Medium; GS-Large is
    /// in the main matrix) for Figures 6–8 and Table 3.
    ///
    /// # Errors
    ///
    /// Propagates the first failing run.
    pub fn gs(&mut self) -> Result<&Matrix, EngineError> {
        if self.gs.is_none() {
            let opts = SimOptions { paging: false, ..self.opts() };
            self.gs = Some(self.run_jobs(Self::jobs(
                &[Program::GsSmall, Program::GsMedium],
                &AllocChoice::paper_five(),
                &opts,
            ))?);
        }
        Ok(self.gs.as_ref().expect("just set"))
    }

    /// GNU LOCAL with emulated boundary tags across the five programs
    /// (Table 6), 64K cache only.
    ///
    /// # Errors
    ///
    /// Propagates the first failing run.
    pub fn tags(&mut self) -> Result<&Matrix, EngineError> {
        if self.tags.is_none() {
            let opts = SimOptions {
                cache_configs: vec![CacheConfig::direct_mapped(64 * 1024, 32)],
                paging: false,
                ..self.opts()
            };
            self.tags = Some(self.run_jobs(Self::jobs(
                &Program::FIVE,
                &[AllocChoice::GnuLocalTagged],
                &opts,
            ))?);
        }
        Ok(self.tags.as_ref().expect("just set"))
    }

    /// A merged view of the main and tags matrices (what `table6` needs).
    ///
    /// # Errors
    ///
    /// Propagates the first failing run.
    pub fn main_with_tags(&mut self) -> Result<Matrix, EngineError> {
        let mut merged = Matrix { runs: self.main()?.runs.clone() };
        merged.extend(Matrix { runs: self.tags()?.runs.clone() });
        Ok(merged)
    }

    /// The extension sweep: espresso and GS under the paper's five plus
    /// BestFit, Custom and Predictive, with the three-C analyzer, an
    /// 8-entry victim cache, and the two-level hierarchy attached
    /// (serves the `ext-*` targets).
    ///
    /// # Errors
    ///
    /// Propagates the first failing run.
    pub fn ext(&mut self) -> Result<&Matrix, EngineError> {
        if self.ext.is_none() {
            let opts = SimOptions {
                cache_configs: vec![CacheConfig::direct_mapped(16 * 1024, 32)],
                paging: false,
                victim_entries: Some(8),
                three_c: true,
                two_level: true,
                ..self.opts()
            };
            let mut choices = AllocChoice::paper_five();
            choices.push(AllocChoice::BestFit);
            choices.push(AllocChoice::Buddy);
            choices.push(AllocChoice::Custom);
            choices.push(AllocChoice::Predictive);
            let jobs = Self::jobs(&[Program::Espresso, Program::GsLarge], &choices, &opts);
            self.ext = Some(self.run_jobs(jobs)?);
        }
        Ok(self.ext.as_ref().expect("just set"))
    }

    /// A combined GhostScript matrix (all three input sets) for the
    /// miss-rate curves.
    ///
    /// # Errors
    ///
    /// Propagates the first failing run.
    pub fn gs_all(&mut self) -> Result<Matrix, EngineError> {
        let mut merged = Matrix { runs: self.gs()?.runs.clone() };
        merged.extend(Matrix { runs: self.main()?.runs.clone() });
        Ok(merged)
    }
}
