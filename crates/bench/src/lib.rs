//! Support library for the `repro` binary and the Criterion benches.
//!
//! The heavy lifting lives in [`alloc_locality`]; this crate adds the
//! matrix-caching layer the harness uses so that one simulation sweep
//! can serve several tables and figures.

use std::time::Instant;

use alloc_locality::{
    default_threads, run_parallel_progress, run_parallel_with, AllocChoice, EngineError,
    Experiment, Matrix, SimOptions,
};
use cache_sim::CacheConfig;
use serde::Serialize;
use workloads::{Program, Scale};

/// One timed mode, lane side, or lone sink of a perf harness.
#[derive(Debug, Clone, Serialize)]
pub struct Timing {
    /// What ran: a mode ("inline", "sharded"), a lane side ("current",
    /// "reference"), or a sink label.
    pub label: String,
    /// Best wall-clock seconds over the repeats.
    pub secs: f64,
    /// Word-granular data references per second at that timing.
    pub refs_per_sec: f64,
}

/// Builds a [`Timing`] from a best time and the reference count it
/// processed.
pub fn timing(label: &str, secs: f64, refs: u64) -> Timing {
    Timing { label: label.to_string(), secs, refs_per_sec: refs as f64 / secs.max(1e-9) }
}

/// Best-of-`repeat` timing of any fallible body; returns the last value
/// and the fastest time.
///
/// # Errors
///
/// Propagates the first failing iteration.
pub fn time_closure<R>(
    repeat: u32,
    mut body: impl FnMut() -> Result<R, String>,
) -> Result<(R, f64), String> {
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..repeat {
        let start = Instant::now();
        let r = body()?;
        best = best.min(start.elapsed().as_secs_f64());
        result = Some(r);
    }
    Ok((result.expect("repeat >= 1"), best))
}

/// Best-of-`repeat` measurement of a current-vs-reference pair, with
/// the repeats interleaved — current, reference, current, reference —
/// so slow drift in the machine's load lands on both sides of the
/// speedup instead of whichever happened to be measured second.
///
/// Each body performs and times one iteration itself (so it can exclude
/// setup it does not want measured) and returns `(value, secs)`; the
/// last values and the fastest time per side come back.
///
/// # Errors
///
/// Propagates the first failing iteration of either body.
#[allow(clippy::type_complexity)]
pub fn interleaved_best_of<R, Q>(
    repeat: u32,
    mut current: impl FnMut() -> Result<(R, f64), String>,
    mut reference: impl FnMut() -> Result<(Q, f64), String>,
) -> Result<((R, f64), (Q, f64)), String> {
    let (mut cur_secs, mut ref_secs) = (f64::INFINITY, f64::INFINITY);
    let (mut cur_result, mut ref_result) = (None, None);
    for _ in 0..repeat {
        let (r, secs) = current()?;
        cur_secs = cur_secs.min(secs);
        cur_result = Some(r);
        let (r, secs) = reference()?;
        ref_secs = ref_secs.min(secs);
        ref_result = Some(r);
    }
    Ok(((cur_result.expect("repeat >= 1"), cur_secs), (ref_result.expect("repeat >= 1"), ref_secs)))
}

/// One attempt's verdict under [`run_gated`].
#[derive(Debug)]
pub enum GateOutcome {
    /// The gate cleared; the harness exits successfully.
    Pass,
    /// Results diverged. A divergence is a bug, not noise: it fails
    /// immediately and is **never** retried, no matter how many retries
    /// the gate allows.
    Diverged(String),
    /// A wall-clock gate tripped. Short timings are noisy on shared
    /// runners, so this is retryable: `note` is logged before the next
    /// attempt, `fail` is the error once attempts run out.
    Slow {
        /// Logged before re-measuring ("overhead 3.1% over the 2.0% gate").
        note: String,
        /// The final error when no retries remain.
        fail: String,
    },
}

/// Runs `attempt` (passed the 1-based attempt number) up to
/// `gate_retries + 1` times, re-measuring only on [`GateOutcome::Slow`].
///
/// This is the shared gate discipline of every perf mode: a timing gate
/// may be noise and is re-measured; a result divergence is a bug and
/// fails on the spot.
///
/// # Errors
///
/// Returns the attempt's error, the divergence message, or the final
/// `Slow` failure once retries are exhausted.
pub fn run_gated(
    gate_retries: u32,
    mut attempt: impl FnMut(u32) -> Result<GateOutcome, String>,
) -> Result<(), String> {
    for n in 1..=gate_retries + 1 {
        match attempt(n)? {
            GateOutcome::Pass => return Ok(()),
            GateOutcome::Diverged(msg) => return Err(msg),
            GateOutcome::Slow { note, fail } => {
                if n > gate_retries {
                    return Err(fail);
                }
                eprintln!("{note}; re-measuring (attempt {} of {})", n + 1, gate_retries + 1);
            }
        }
    }
    unreachable!("the attempt loop always returns")
}

/// The matrices the paper's evaluation needs, computed lazily so a
/// single `repro` invocation never runs a sweep it does not print.
#[derive(Debug, Default)]
pub struct MatrixCache {
    main: Option<Matrix>,
    gs: Option<Matrix>,
    tags: Option<Matrix>,
    ext: Option<Matrix>,
    scale: f64,
    threads: usize,
    verbose: bool,
    stream_cache: Option<std::path::PathBuf>,
    stream_cache_bytes: Option<u64>,
    channel_depth: Option<usize>,
}

impl MatrixCache {
    /// Creates an empty cache that will run sweeps at `scale` on the
    /// default worker pool (one worker per hardware thread).
    pub fn new(scale: f64) -> Self {
        Self::with_threads(scale, default_threads())
    }

    /// Creates an empty cache with an explicit worker-pool size.
    pub fn with_threads(scale: f64, threads: usize) -> Self {
        MatrixCache { scale, threads: threads.max(1), ..Default::default() }
    }

    /// Prints a progress line to stderr as each sweep cell completes
    /// (`repro --verbose`).
    pub fn verbose(mut self, on: bool) -> Self {
        self.verbose = on;
        self
    }

    /// Points every sweep at a persistent stream cache: cells whose
    /// reference stream was captured by an earlier invocation replay it
    /// instead of regenerating the workload (`repro --stream-cache`).
    pub fn stream_cache(mut self, dir: Option<std::path::PathBuf>) -> Self {
        self.stream_cache = dir;
        self
    }

    /// Bounds the stream-cache directory's size; oldest-written streams
    /// are evicted after each store (`repro --stream-cache-bytes`).
    pub fn stream_cache_bytes(mut self, max_bytes: Option<u64>) -> Self {
        self.stream_cache_bytes = max_bytes;
        self
    }

    /// Overrides the sharded pipeline's per-worker channel depth
    /// (`repro --channel-depth`; `None` keeps the engine default).
    pub fn channel_depth(mut self, depth: Option<usize>) -> Self {
        self.channel_depth = depth;
        self
    }

    fn opts(&self) -> SimOptions {
        let defaults = SimOptions::default();
        SimOptions {
            scale: Scale(self.scale),
            stream_cache: self.stream_cache.clone(),
            stream_cache_bytes: self.stream_cache_bytes,
            channel_depth: self.channel_depth.unwrap_or(defaults.channel_depth),
            ..defaults
        }
    }

    /// Runs `jobs` on this cache's worker pool, narrating completions
    /// when verbose.
    fn run_jobs(&self, jobs: Vec<Experiment>) -> Result<Matrix, EngineError> {
        if !self.verbose {
            return run_parallel_with(jobs, self.threads);
        }
        let total = jobs.len();
        let start = std::time::Instant::now();
        run_parallel_progress(jobs, self.threads, move |done, r| {
            eprintln!(
                "[{done}/{total}] {}/{} done ({:.1}s elapsed)",
                r.program,
                r.allocator,
                start.elapsed().as_secs_f64()
            );
        })
    }

    /// The programs × choices cross product as a job list.
    fn jobs(programs: &[Program], choices: &[AllocChoice], opts: &SimOptions) -> Vec<Experiment> {
        programs
            .iter()
            .flat_map(|&p| {
                choices.iter().map(move |c| Experiment::new(p, c.clone()).options(opts.clone()))
            })
            .collect()
    }

    /// The 5 programs × 5 allocators sweep with the full cache bank and
    /// paging (serves Figures 1–5 and Tables 2, 4, 5).
    ///
    /// # Errors
    ///
    /// Propagates the first failing run.
    pub fn main(&mut self) -> Result<&Matrix, EngineError> {
        if self.main.is_none() {
            self.main = Some(self.run_jobs(Self::jobs(
                &Program::FIVE,
                &AllocChoice::paper_five(),
                &self.opts(),
            ))?);
        }
        Ok(self.main.as_ref().expect("just set"))
    }

    /// The GhostScript input-set sweep (GS-Small, GS-Medium; GS-Large is
    /// in the main matrix) for Figures 6–8 and Table 3.
    ///
    /// # Errors
    ///
    /// Propagates the first failing run.
    pub fn gs(&mut self) -> Result<&Matrix, EngineError> {
        if self.gs.is_none() {
            let opts = SimOptions { paging: false, ..self.opts() };
            self.gs = Some(self.run_jobs(Self::jobs(
                &[Program::GsSmall, Program::GsMedium],
                &AllocChoice::paper_five(),
                &opts,
            ))?);
        }
        Ok(self.gs.as_ref().expect("just set"))
    }

    /// GNU LOCAL with emulated boundary tags across the five programs
    /// (Table 6), 64K cache only.
    ///
    /// # Errors
    ///
    /// Propagates the first failing run.
    pub fn tags(&mut self) -> Result<&Matrix, EngineError> {
        if self.tags.is_none() {
            let opts = SimOptions {
                cache_configs: vec![CacheConfig::direct_mapped(64 * 1024, 32)],
                paging: false,
                ..self.opts()
            };
            self.tags = Some(self.run_jobs(Self::jobs(
                &Program::FIVE,
                &[AllocChoice::GnuLocalTagged],
                &opts,
            ))?);
        }
        Ok(self.tags.as_ref().expect("just set"))
    }

    /// A merged view of the main and tags matrices (what `table6` needs).
    ///
    /// # Errors
    ///
    /// Propagates the first failing run.
    pub fn main_with_tags(&mut self) -> Result<Matrix, EngineError> {
        let mut merged = Matrix { runs: self.main()?.runs.clone() };
        merged.extend(Matrix { runs: self.tags()?.runs.clone() });
        Ok(merged)
    }

    /// The extension sweep: espresso and GS under the paper's five plus
    /// BestFit, Custom and Predictive, with the three-C analyzer, an
    /// 8-entry victim cache, and the two-level hierarchy attached
    /// (serves the `ext-*` targets).
    ///
    /// # Errors
    ///
    /// Propagates the first failing run.
    pub fn ext(&mut self) -> Result<&Matrix, EngineError> {
        if self.ext.is_none() {
            let opts = SimOptions {
                cache_configs: vec![CacheConfig::direct_mapped(16 * 1024, 32)],
                paging: false,
                victim_entries: Some(8),
                three_c: true,
                two_level: true,
                ..self.opts()
            };
            let mut choices = AllocChoice::paper_five();
            choices.push(AllocChoice::BestFit);
            choices.push(AllocChoice::Buddy);
            choices.push(AllocChoice::Custom);
            choices.push(AllocChoice::Predictive);
            let jobs = Self::jobs(&[Program::Espresso, Program::GsLarge], &choices, &opts);
            self.ext = Some(self.run_jobs(jobs)?);
        }
        Ok(self.ext.as_ref().expect("just set"))
    }

    /// A combined GhostScript matrix (all three input sets) for the
    /// miss-rate curves.
    ///
    /// # Errors
    ///
    /// Propagates the first failing run.
    pub fn gs_all(&mut self) -> Result<Matrix, EngineError> {
        let mut merged = Matrix { runs: self.gs()?.runs.clone() };
        merged.extend(Matrix { runs: self.main()?.runs.clone() });
        Ok(merged)
    }
}
