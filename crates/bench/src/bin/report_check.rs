//! `report_check`: validates a JSONL metrics file from `repro --metrics`.
//!
//! ```text
//! report_check FILE [--expect N]
//! ```
//!
//! Every line must parse as an [`alloc_locality::RunReport`] and pass
//! its schema validation; `--expect N` additionally requires exactly
//! `N` reports. On success the tool prints a one-line summary per
//! report; any failure names the offending line and exits non-zero,
//! which is what CI's observability job keys on.

use std::process::ExitCode;

use alloc_locality::RunReport;

struct Args {
    path: std::path::PathBuf,
    expect: Option<usize>,
}

fn parse_args() -> Result<Args, String> {
    let mut path = None;
    let mut expect = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--expect" => {
                let v = args.next().ok_or("--expect needs a count")?;
                expect = Some(v.parse().map_err(|e| format!("bad count {v}: {e}"))?);
            }
            "--help" | "-h" => {
                return Err("usage: report_check FILE [--expect N]".into());
            }
            other if path.is_none() => path = Some(std::path::PathBuf::from(other)),
            other => return Err(format!("unexpected argument {other:?}; try --help")),
        }
    }
    Ok(Args { path: path.ok_or("usage: report_check FILE [--expect N]")?, expect })
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let text = std::fs::read_to_string(&args.path)
        .map_err(|e| format!("read {}: {e}", args.path.display()))?;
    let mut count = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let report = RunReport::parse(line)
            .map_err(|e| format!("{}:{}: parse: {e}", args.path.display(), lineno + 1))?;
        report
            .validate()
            .map_err(|e| format!("{}:{}: invalid: {e}", args.path.display(), lineno + 1))?;
        let search = report.metrics.histogram("alloc.search_len").expect("validated");
        // Absent for free-less programs (ptc): validation only demands
        // it when the run actually freed.
        let coalesce = report.metrics.histogram("alloc.coalesce_per_free").map_or(0.0, |h| h.mean);
        println!(
            "{:<10} {:<10} mallocs {:<8} mean search {:<6.2} mean coalesce {:.3}",
            report.program, report.allocator, search.count, search.mean, coalesce
        );
        count += 1;
    }
    if let Some(expect) = args.expect {
        if count != expect {
            return Err(format!("expected {expect} reports, found {count}"));
        }
    }
    if count == 0 {
        return Err(format!("{}: no reports found", args.path.display()));
    }
    eprintln!("{count} report(s) valid");
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
