//! `report_check`: validates a JSONL metrics file from `repro --metrics`.
//!
//! ```text
//! report_check [FILE] [--expect N]
//!              [--expect-trace TRACE]
//!              [--expect-sweep N]
//!              [--write-missrates OUT]
//!              [--expect-missrates EXPECTED [--tolerance T]]
//! ```
//!
//! Every line must parse as an [`alloc_locality::RunReport`] and pass
//! its schema validation; `--expect N` additionally requires exactly
//! `N` reports. On success the tool prints a one-line summary per
//! report; any failure names the offending line and exits non-zero,
//! which is what CI's observability job keys on.
//!
//! `--expect-trace TRACE` validates an `alloc-locality.trace` v1 JSONL
//! file (from `repro --trace` or `GET /jobs/{id}/trace`): schema and
//! version fields, monotone timestamps, every span's parent preceding
//! and containing it, root spans disjoint and ordered. It works with or
//! without a report FILE; given alone, `--expect N` counts traces.
//!
//! `--expect-sweep N` reinterprets FILE as an
//! `alloc-locality.sweep-report` artifact — v1 or v2 (from `explore` or
//! `GET /sweeps/{id}/report`): the header, every point row, and the
//! Pareto-front row must pass [`explore::SweepReport::validate`] —
//! which recomputes each point's objectives and the front itself, and
//! cross-checks the v2 additions (workload axes, stream-cache tallies,
//! exploration mode and adaptive metadata) — and the sweep must hold
//! exactly `N` points. Every embedded point report is also
//! schema-validated, so the flag subsumes the per-line check.
//!
//! The miss-rate modes are the fidelity soak: `--write-missrates`
//! snapshots every cell's per-configuration data-cache miss rate into a
//! JSON expectations file, and `--expect-missrates` re-checks a later
//! run against that committed snapshot with an absolute tolerance
//! (default 0.005). The simulation is deterministic, so the tolerance
//! only absorbs *intentional* small placement shifts; anything that
//! bends the paper's figures — a changed allocator decision, a broken
//! coalesce — moves whole-cell miss rates past it and fails CI.

use std::collections::BTreeMap;
use std::process::ExitCode;

use alloc_locality::RunReport;
use serde::{Deserialize, Serialize};

/// Default absolute miss-rate tolerance for `--expect-missrates`.
const DEFAULT_TOLERANCE: f64 = 0.005;

/// One cell of the committed fidelity snapshot: the data-cache miss
/// rate of a (program, allocator) run at one simulated configuration.
#[derive(Debug, Serialize, Deserialize)]
struct ExpectedCell {
    program: String,
    allocator: String,
    /// The configuration's display form, e.g. `16K direct-mapped, 32B
    /// blocks` — stable across runs because configs are value types.
    cache: String,
    miss_rate: f64,
}

/// The committed expectations file: a scale (miss rates are only
/// comparable at the same workload scale) plus one entry per cell.
#[derive(Debug, Serialize, Deserialize)]
struct Expectations {
    scale: f64,
    cells: Vec<ExpectedCell>,
}

struct Args {
    path: Option<std::path::PathBuf>,
    expect: Option<usize>,
    expect_trace: Option<std::path::PathBuf>,
    expect_sweep: Option<usize>,
    write_missrates: Option<std::path::PathBuf>,
    expect_missrates: Option<std::path::PathBuf>,
    tolerance: f64,
}

const USAGE: &str = "usage: report_check [FILE] [--expect N] [--expect-trace TRACE] \
                     [--expect-sweep N] [--write-missrates OUT] \
                     [--expect-missrates EXPECTED [--tolerance T]]";

fn parse_args() -> Result<Args, String> {
    let mut path = None;
    let mut expect = None;
    let mut expect_trace = None;
    let mut expect_sweep = None;
    let mut write_missrates = None;
    let mut expect_missrates = None;
    let mut tolerance = DEFAULT_TOLERANCE;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--expect" => {
                let v = args.next().ok_or("--expect needs a count")?;
                expect = Some(v.parse().map_err(|e| format!("bad count {v}: {e}"))?);
            }
            "--expect-trace" => {
                let v = args.next().ok_or("--expect-trace needs a path")?;
                expect_trace = Some(std::path::PathBuf::from(v));
            }
            "--expect-sweep" => {
                let v = args.next().ok_or("--expect-sweep needs a point count")?;
                expect_sweep = Some(v.parse().map_err(|e| format!("bad count {v}: {e}"))?);
            }
            "--write-missrates" => {
                let v = args.next().ok_or("--write-missrates needs a path")?;
                write_missrates = Some(std::path::PathBuf::from(v));
            }
            "--expect-missrates" => {
                let v = args.next().ok_or("--expect-missrates needs a path")?;
                expect_missrates = Some(std::path::PathBuf::from(v));
            }
            "--tolerance" => {
                let v = args.next().ok_or("--tolerance needs a value")?;
                tolerance = v.parse().map_err(|e| format!("bad tolerance {v}: {e}"))?;
                if tolerance.is_nan() || tolerance < 0.0 {
                    return Err("tolerance must be non-negative".into());
                }
            }
            "--help" | "-h" => return Err(USAGE.into()),
            other if path.is_none() => path = Some(std::path::PathBuf::from(other)),
            other => return Err(format!("unexpected argument {other:?}; try --help")),
        }
    }
    if path.is_none() && expect_trace.is_none() {
        return Err(USAGE.into());
    }
    if expect_sweep.is_some() && path.is_none() {
        return Err("--expect-sweep needs the sweep-report FILE".into());
    }
    Ok(Args {
        path,
        expect,
        expect_trace,
        expect_sweep,
        write_missrates,
        expect_missrates,
        tolerance,
    })
}

/// Validates an `alloc-locality.sweep-report` file (v1 or v2): parse
/// structure (single header, points, single front row), full semantic
/// validation (ids, recomputed objectives and Pareto front, every
/// embedded run report, v2 axis/telemetry consistency), and the
/// expected point count. v2-only header fields are summarized when
/// present and silently absent for v1 artifacts.
fn check_sweep(path: &std::path::Path, expect_points: usize) -> Result<(), String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let report = explore::SweepReport::parse(&text)
        .map_err(|e| format!("{}: parse: {e}", path.display()))?;
    report.validate().map_err(|e| format!("{}: invalid sweep: {e}", path.display()))?;
    if report.points.len() != expect_points {
        return Err(format!(
            "{}: expected {expect_points} sweep points, found {}",
            path.display(),
            report.points.len()
        ));
    }
    for row in &report.points {
        println!(
            "point {:<40} miss {:<8.4} instrs {:<12} peak {:<10} {}",
            row.allocator,
            row.objectives.miss_rate,
            row.objectives.instructions,
            row.objectives.peak_granted,
            if row.pareto { "front" } else { "" }
        );
    }
    eprintln!(
        "sweep {} valid (v{}): {} points over {:?}, {} on the Pareto front",
        report.header.sweep_id,
        report.header.version,
        report.points.len(),
        report.header.families,
        report.front.front.len()
    );
    let h = &report.header;
    if !h.programs.is_empty() || !h.scales.is_empty() {
        eprintln!("  workload axes: programs {:?}, scales {:?}", h.programs, h.scales);
    }
    if h.stream_hits + h.stream_misses > 0 {
        eprintln!("  stream cache: {} hits, {} misses", h.stream_hits, h.stream_misses);
    }
    if h.mode == "adaptive" {
        eprintln!(
            "  adaptive: {} of {} exhaustive points evaluated in {} iterations (budget {})",
            h.adaptive_evaluated, h.adaptive_exhaustive, h.adaptive_iterations, h.adaptive_budget
        );
    } else if !h.mode.is_empty() {
        eprintln!("  mode: {}", h.mode);
    }
    Ok(())
}

/// Validates an `alloc-locality.trace` v1 JSONL file: every non-empty
/// line must parse and pass [`obs::TraceReport::validate`] (schema and
/// version fields, monotone timestamps, parents preceding and
/// containing their children, disjoint ordered roots).
fn check_traces(path: &std::path::Path) -> Result<usize, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let mut count = 0;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let trace = obs::TraceReport::parse(line)
            .map_err(|e| format!("{}:{}: parse: {e}", path.display(), lineno + 1))?;
        trace
            .validate()
            .map_err(|e| format!("{}:{}: invalid trace: {e}", path.display(), lineno + 1))?;
        println!(
            "trace {:<40} spans {:<6} roots {:<3} dropped {}",
            trace.trace_id,
            trace.spans.len(),
            trace.roots().count(),
            trace.dropped_spans
        );
        count += 1;
    }
    if count == 0 {
        return Err(format!("{}: no traces found", path.display()));
    }
    Ok(count)
}

/// Flattens one report into `(program, allocator, config) → miss rate`
/// entries, in the result's own configuration order.
fn cells_of(report: &RunReport) -> impl Iterator<Item = (ExpectedCell, f64)> + '_ {
    report.result.cache.iter().map(|(cfg, stats)| {
        let rate = stats.miss_rate();
        (
            ExpectedCell {
                program: report.program.clone(),
                allocator: report.allocator.clone(),
                cache: cfg.to_string(),
                miss_rate: rate,
            },
            rate,
        )
    })
}

fn write_missrates(path: &std::path::Path, reports: &[RunReport]) -> Result<(), String> {
    let scale = reports.first().map(|r| r.scale).unwrap_or(0.0);
    if let Some(r) = reports.iter().find(|r| r.scale != scale) {
        return Err(format!(
            "mixed scales in input ({scale} vs {} for {}/{}); refusing to snapshot",
            r.scale, r.program, r.allocator
        ));
    }
    let cells = reports.iter().flat_map(|r| cells_of(r).map(|(c, _)| c)).collect();
    let exp = Expectations { scale, cells };
    let json = serde_json::to_string_pretty(&exp).expect("serialize expectations");
    std::fs::write(path, json + "\n").map_err(|e| format!("write {}: {e}", path.display()))?;
    eprintln!("[wrote {} ({} cells)]", path.display(), exp.cells.len());
    Ok(())
}

fn check_missrates(
    path: &std::path::Path,
    tolerance: f64,
    reports: &[RunReport],
) -> Result<(), String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let exp: Expectations =
        serde_json::from_str(&text).map_err(|e| format!("{}: parse: {e}", path.display()))?;
    let mut actual = BTreeMap::new();
    for r in reports {
        if r.scale != exp.scale {
            return Err(format!(
                "{}/{} ran at scale {}, expectations are for scale {}",
                r.program, r.allocator, r.scale, exp.scale
            ));
        }
        for (cell, rate) in cells_of(r) {
            actual.insert((cell.program, cell.allocator, cell.cache), rate);
        }
    }
    let mut failures = Vec::new();
    for cell in &exp.cells {
        let key = (cell.program.clone(), cell.allocator.clone(), cell.cache.clone());
        match actual.get(&key) {
            None => failures.push(format!(
                "{}/{} [{}]: expected cell missing from the run",
                cell.program, cell.allocator, cell.cache
            )),
            Some(&rate) if (rate - cell.miss_rate).abs() > tolerance => failures.push(format!(
                "{}/{} [{}]: miss rate {:.6} deviates from expected {:.6} by {:+.6} (> ±{tolerance})",
                cell.program, cell.allocator, cell.cache, rate, cell.miss_rate,
                rate - cell.miss_rate
            )),
            Some(_) => {}
        }
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("{f}");
        }
        return Err(format!(
            "{} of {} expected miss-rate cells out of tolerance",
            failures.len(),
            exp.cells.len()
        ));
    }
    eprintln!("{} miss-rate cells within ±{tolerance} of {}", exp.cells.len(), path.display());
    Ok(())
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    if let Some(expect_points) = args.expect_sweep {
        // FILE is the sweep artifact itself; the other modes don't mix.
        return check_sweep(args.path.as_deref().expect("checked in parse_args"), expect_points);
    }
    let mut reports = Vec::new();
    if let Some(path) = &args.path {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let report = RunReport::parse(line)
                .map_err(|e| format!("{}:{}: parse: {e}", path.display(), lineno + 1))?;
            report
                .validate()
                .map_err(|e| format!("{}:{}: invalid: {e}", path.display(), lineno + 1))?;
            let search = report.metrics.histogram("alloc.search_len").expect("validated");
            // Absent for free-less programs (ptc): validation only demands
            // it when the run actually freed.
            let coalesce =
                report.metrics.histogram("alloc.coalesce_per_free").map_or(0.0, |h| h.mean);
            println!(
                "{:<10} {:<10} mallocs {:<8} mean search {:<6.2} mean coalesce {:.3}",
                report.program, report.allocator, search.count, search.mean, coalesce
            );
            reports.push(report);
        }
        if let Some(expect) = args.expect {
            if reports.len() != expect {
                return Err(format!("expected {expect} reports, found {}", reports.len()));
            }
        }
        if reports.is_empty() {
            return Err(format!("{}: no reports found", path.display()));
        }
    }
    if let Some(out) = &args.write_missrates {
        write_missrates(out, &reports)?;
    }
    if let Some(expected) = &args.expect_missrates {
        check_missrates(expected, args.tolerance, &reports)?;
    }
    if let Some(trace_path) = &args.expect_trace {
        let count = check_traces(trace_path)?;
        // With no report file, `--expect` counts traces instead.
        if args.path.is_none() {
            if let Some(expect) = args.expect {
                if count != expect {
                    return Err(format!("expected {expect} traces, found {count}"));
                }
            }
        }
        eprintln!("{count} trace(s) valid");
    }
    if args.path.is_some() {
        eprintln!("{} report(s) valid", reports.len());
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
