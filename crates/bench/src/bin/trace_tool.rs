//! `trace-tool`: record, inspect, and replay reference traces.
//!
//! ```text
//! trace-tool record <program> <allocator> <out.trace> [--scale F]
//! trace-tool info <trace>
//! trace-tool replay <trace> [--cache-kb N]... [--paging] [--three-c] [--victim N]
//! trace-tool export <program> <out.txt> [--scale F]
//! trace-tool run-app <events.txt> <allocator>
//! trace-tool chrome <trace.jsonl> <out.json>
//! trace-tool promlint <exposition.txt>
//! ```
//!
//! Three trace kinds exist: binary **reference** traces (`record`/
//! `info`/`replay`, ALTR format — what the simulators consume), text
//! **application** traces (`export`/`run-app`, the `workloads::import`
//! format — what the allocators consume), and hierarchical **span**
//! traces (`chrome`, `alloc-locality.trace` v1 JSONL from
//! `repro --trace` or `GET /jobs/{id}/trace` — what `chrome://tracing`
//! and Perfetto open after conversion). `promlint` checks a Prometheus
//! text exposition (e.g. a scraped `GET /metrics?format=prometheus`
//! body) for format violations.
//!
//! `record` captures the full reference stream of one experiment (the
//! PIXIE-trace-file workflow the paper's execution-driven setup
//! replaced); `replay` drives any simulator configuration from the
//! frozen stream, so allocator runs can be archived and re-analyzed
//! without re-simulating the allocator.

use std::fs::File;
use std::io::BufReader;
use std::process::ExitCode;

use alloc_locality::{AllocChoice, Experiment, SimOptions};
use allocators::AllocatorKind;
use cache_sim::{CacheBank, CacheConfig, ThreeCAnalyzer, VictimCache};
use sim_mem::{AccessSink, CountingSink, MemRef};
use vm_sim::StackSim;
use workloads::{Program, Scale};

fn parse_program(name: &str) -> Option<Program> {
    match name {
        "espresso" => Some(Program::Espresso),
        "gs-small" => Some(Program::GsSmall),
        "gs-medium" => Some(Program::GsMedium),
        "gs" => Some(Program::GsLarge),
        "ptc" => Some(Program::Ptc),
        "gawk" => Some(Program::Gawk),
        "make" => Some(Program::Make),
        _ => None,
    }
}

fn parse_allocator(name: &str) -> Option<AllocChoice> {
    match name {
        "firstfit" => Some(AllocChoice::Paper(AllocatorKind::FirstFit)),
        "bestfit" => Some(AllocChoice::BestFit),
        "gnu-g++" | "gxx" => Some(AllocChoice::Paper(AllocatorKind::GnuGxx)),
        "bsd" => Some(AllocChoice::Paper(AllocatorKind::Bsd)),
        "gnu-local" => Some(AllocChoice::Paper(AllocatorKind::GnuLocal)),
        "quickfit" => Some(AllocChoice::Paper(AllocatorKind::QuickFit)),
        "custom" => Some(AllocChoice::Custom),
        _ => None,
    }
}

fn record(args: &[String]) -> Result<(), String> {
    let [program, allocator, out, rest @ ..] = args else {
        return Err("usage: trace-tool record <program> <allocator> <out.trace> [--scale F]".into());
    };
    let mut scale = 0.005;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                scale = it
                    .next()
                    .ok_or("--scale needs a value")?
                    .parse()
                    .map_err(|e| format!("bad scale: {e}"))?;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    let program = parse_program(program).ok_or(format!("unknown program {program}"))?;
    let choice = parse_allocator(allocator).ok_or(format!("unknown allocator {allocator}"))?;
    let result = Experiment::new(program, choice)
        .options(SimOptions {
            cache_configs: vec![],
            paging: false,
            scale: Scale(scale),
            record_trace: Some(out.into()),
            ..SimOptions::default()
        })
        .run()
        .map_err(|e| e.to_string())?;
    eprintln!(
        "recorded {} references ({} app, {} metadata) to {out}",
        result.trace.total_refs(),
        result.trace.app_refs(),
        result.trace.meta_refs(),
    );
    Ok(())
}

fn open_trace(path: &str) -> Result<trace::TraceReader<BufReader<File>>, String> {
    let file = File::open(path).map_err(|e| format!("{path}: {e}"))?;
    trace::TraceReader::new(BufReader::new(file)).map_err(|e| format!("{path}: {e}"))
}

fn info(args: &[String]) -> Result<(), String> {
    let [path] = args else { return Err("usage: trace-tool info <trace>".into()) };
    let mut counting = CountingSink::new();
    let mut reader = open_trace(path)?;
    let mut n = 0u64;
    for r in reader.by_ref() {
        counting.record(r.map_err(|e| e.to_string())?);
        n += 1;
    }
    let bytes = std::fs::metadata(path).map_err(|e| e.to_string())?.len();
    let s = counting.stats();
    println!(
        "trace {path}: {n} references, {bytes} bytes ({:.2} B/ref)",
        bytes as f64 / n.max(1) as f64
    );
    println!(
        "  app:  {} refs ({} reads, {} writes), {} words",
        s.app_refs(),
        s.app_reads,
        s.app_writes,
        s.app_words
    );
    println!(
        "  meta: {} refs ({} reads, {} writes), {} words",
        s.meta_refs(),
        s.meta_reads,
        s.meta_writes,
        s.meta_words
    );
    Ok(())
}

fn replay(args: &[String]) -> Result<(), String> {
    let [path, rest @ ..] = args else {
        return Err("usage: trace-tool replay <trace> [--cache-kb N]... [--paging] [--three-c] [--victim N]".into());
    };
    let mut cache_kbs: Vec<u32> = Vec::new();
    let mut paging = false;
    let mut three_c = false;
    let mut victim: Option<usize> = None;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--cache-kb" => cache_kbs.push(
                it.next().ok_or("--cache-kb needs a value")?.parse().map_err(|e| format!("{e}"))?,
            ),
            "--paging" => paging = true,
            "--three-c" => three_c = true,
            "--victim" => {
                victim = Some(
                    it.next()
                        .ok_or("--victim needs a value")?
                        .parse()
                        .map_err(|e| format!("{e}"))?,
                )
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if cache_kbs.is_empty() {
        cache_kbs = vec![16, 64];
    }
    let configs: Vec<CacheConfig> =
        cache_kbs.iter().map(|&kb| CacheConfig::direct_mapped(kb * 1024, 32)).collect();
    let mut bank = CacheBank::new(configs.iter().copied());
    let mut pager = paging.then(StackSim::paper);
    let mut analyzer = three_c.then(|| ThreeCAnalyzer::new(configs[0]));
    let mut vcache = victim.map(|n| VictimCache::new(configs[0], n));

    let mut reader = open_trace(path)?;
    let mut n = 0u64;
    for r in reader.by_ref() {
        let r: MemRef = r.map_err(|e| e.to_string())?;
        bank.record(r);
        if let Some(p) = &mut pager {
            p.record(r);
        }
        if let Some(a) = &mut analyzer {
            a.access(r);
        }
        if let Some(v) = &mut vcache {
            v.access(r);
        }
        n += 1;
    }
    println!("replayed {n} references from {path}");
    for (cfg, stats) in bank.results() {
        println!(
            "  {cfg}: {:.3}% miss rate ({} misses, {} cold)",
            stats.miss_rate() * 100.0,
            stats.misses(),
            stats.cold_misses
        );
    }
    if let Some(p) = pager {
        let curve = p.curve();
        println!(
            "  paging: {} distinct pages; working set {} KB",
            p.distinct_pages(),
            curve.working_set_frames() * 4
        );
    }
    if let Some(a) = analyzer {
        let c = a.classify();
        println!(
            "  3C @ {}: compulsory {} / capacity {} / conflict {} ({:.0}% of replacement misses are conflicts)",
            configs[0],
            c.compulsory,
            c.capacity,
            c.conflict,
            c.conflict_fraction() * 100.0
        );
    }
    if let Some(v) = vcache {
        println!(
            "  victim({}) @ {}: effective miss rate {:.3}%, rescue rate {:.0}%",
            victim.unwrap_or(0),
            configs[0],
            v.stats().miss_rate() * 100.0,
            v.stats().rescue_rate() * 100.0
        );
    }
    Ok(())
}

fn export(args: &[String]) -> Result<(), String> {
    let [program, out, rest @ ..] = args else {
        return Err("usage: trace-tool export <program> <out.txt> [--scale F]".into());
    };
    let mut scale = 0.005;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                scale = it
                    .next()
                    .ok_or("--scale needs a value")?
                    .parse()
                    .map_err(|e| format!("bad scale: {e}"))?;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    let program = parse_program(program).ok_or(format!("unknown program {program}"))?;
    let events: Vec<workloads::AppEvent> = program.spec().events(Scale(scale)).collect();
    let file = File::create(out).map_err(|e| format!("{out}: {e}"))?;
    workloads::import::write_trace(&events, std::io::BufWriter::new(file))
        .map_err(|e| e.to_string())?;
    eprintln!("exported {} events to {out}", events.len());
    Ok(())
}

fn run_app(args: &[String]) -> Result<(), String> {
    let [path, allocator] = args else {
        return Err("usage: trace-tool run-app <events.txt> <allocator>".into());
    };
    let file = File::open(path).map_err(|e| format!("{path}: {e}"))?;
    let events = workloads::import::parse_trace(BufReader::new(file)).map_err(|e| e.to_string())?;
    let choice = parse_allocator(allocator).ok_or(format!("unknown allocator {allocator}"))?;
    let r =
        Experiment::with_events(path.clone(), events, choice).run().map_err(|e| e.to_string())?;
    println!(
        "{}: {} allocs / {} frees, peak heap {} KB, {:.2}% of instructions in malloc/free",
        r.allocator,
        r.alloc_stats.mallocs,
        r.alloc_stats.frees,
        r.heap_high_water / 1024,
        r.alloc_fraction() * 100.0
    );
    for (cfg, stats) in &r.cache {
        println!("  {cfg}: {:.3}% miss rate", stats.miss_rate() * 100.0);
    }
    if let Some(curve) = &r.fault_curve {
        println!("  working set {} KB", curve.working_set_frames() * 4);
    }
    Ok(())
}

/// Converts `alloc-locality.trace` v1 JSONL into one Chrome trace-event
/// JSON file that `chrome://tracing` and Perfetto open directly. Every
/// input line is validated first; each trace becomes its own named
/// process in the timeline.
fn chrome(args: &[String]) -> Result<(), String> {
    let [path, out] = args else {
        return Err("usage: trace-tool chrome <trace.jsonl> <out.json>".into());
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut reports = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let report =
            obs::TraceReport::parse(line).map_err(|e| format!("{path} line {}: {e}", i + 1))?;
        report.validate().map_err(|e| format!("{path} line {}: {e}", i + 1))?;
        reports.push(report);
    }
    if reports.is_empty() {
        return Err(format!("{path}: no trace lines"));
    }
    let spans: usize = reports.iter().map(|r| r.spans.len()).sum();
    let json = obs::chrome_trace_json(&reports);
    std::fs::write(out, json).map_err(|e| format!("{out}: {e}"))?;
    eprintln!("converted {} trace(s), {spans} span(s) to {out}", reports.len());
    Ok(())
}

/// Lints a Prometheus text exposition (as scraped from
/// `GET /metrics?format=prometheus`).
fn promlint(args: &[String]) -> Result<(), String> {
    let [path] = args else { return Err("usage: trace-tool promlint <exposition.txt>".into()) };
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let samples = obs::prom::lint(&text).map_err(|e| format!("{path}: {e}"))?;
    println!("{path}: ok ({samples} samples)");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    const SUBCOMMANDS: &str =
        "subcommands: record, info, replay, export, run-app, chrome, promlint";
    let result = match args.split_first() {
        Some((cmd, rest)) => match cmd.as_str() {
            "record" => record(rest),
            "info" => info(rest),
            "replay" => replay(rest),
            "export" => export(rest),
            "run-app" => run_app(rest),
            "chrome" => chrome(rest),
            "promlint" => promlint(rest),
            "--help" | "-h" => Err(SUBCOMMANDS.into()),
            other => Err(format!("unknown subcommand {other}; try --help")),
        },
        None => Err(SUBCOMMANDS.into()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
