//! `repro`: regenerates every table and figure of *Improving the Cache
//! Locality of Memory Allocation* (PLDI 1993).
//!
//! ```text
//! repro [--scale F] [--threads N] [--json DIR] [--metrics FILE]
//!       [--stream-cache DIR] [--stream-cache-bytes N]
//!       [--channel-depth N] [--verbose] [TARGET ...]
//!
//! TARGETS: fig1 fig2 fig3 fig4 fig5 fig6 fig7 fig8
//!          table1 table2 table3 table4 table5 table6 all
//! ```
//!
//! With no target, `all` is assumed. `--json DIR` additionally writes
//! each result as machine-readable JSON for re-plotting and diffing.
//! `--threads N` sizes the sweep's worker pool; `--threads 0` (and the
//! default when the flag is omitted) auto-detects one worker per
//! hardware thread via `std::thread::available_parallelism`.
//!
//! `--metrics FILE` runs the paper's 5×5 matrix with the observability
//! recorder attached and writes one schema-versioned
//! [`alloc_locality::RunReport`] per cell as a line of `FILE` (JSONL);
//! when no explicit target accompanies it, only the instrumented sweep
//! runs. `--trace FILE` does the same with a hierarchical tracer and
//! writes one `alloc-locality.trace` v1 line per cell; given together,
//! one traced sweep produces both files (results and metrics are
//! bit-identical either way). `--verbose` narrates every sweep to
//! stderr, one line per completed cell with elapsed wall time.

use std::path::PathBuf;
use std::process::ExitCode;

use alloc_locality::experiments::{
    conflict_analysis, exec_time_figure, fig1, future_work_table, miss_curves, paging_figure,
    table1, table2, table6, time_table, two_level_study, victim_study,
};
use alloc_locality::{
    run_parallel_instrumented, run_parallel_traced, AllocChoice, Experiment, RunReport, SimOptions,
};
use bench::MatrixCache;
use cache_sim::CacheConfig;
use serde::Serialize;
use workloads::{Program, Scale};

const ALL_TARGETS: [&str; 18] = [
    "table1",
    "table2",
    "table3",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "table4",
    "table5",
    "table6",
    "ext-3c",
    "ext-victim",
    "ext-l2",
    "ext-future",
];

struct Args {
    scale: f64,
    threads: usize,
    stream_cache: Option<PathBuf>,
    stream_cache_bytes: Option<u64>,
    channel_depth: Option<usize>,
    json_dir: Option<PathBuf>,
    metrics: Option<PathBuf>,
    trace: Option<PathBuf>,
    verbose: bool,
    targets: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut scale = 0.02;
    let mut threads = alloc_locality::default_threads();
    let mut json_dir = None;
    let mut metrics = None;
    let mut trace = None;
    let mut stream_cache = None;
    let mut stream_cache_bytes = None;
    let mut channel_depth = None;
    let mut verbose = false;
    let mut targets = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                let v = args.next().ok_or("--scale needs a value")?;
                scale = v.parse().map_err(|e| format!("bad scale {v}: {e}"))?;
                if scale <= 0.0 {
                    return Err("scale must be positive".into());
                }
            }
            "--threads" => {
                let v = args.next().ok_or("--threads needs a value")?;
                threads = v.parse().map_err(|e| format!("bad thread count {v}: {e}"))?;
                if threads == 0 {
                    // 0 = auto-detect, same as omitting the flag.
                    threads = alloc_locality::default_threads();
                }
            }
            "--json" => {
                json_dir = Some(PathBuf::from(args.next().ok_or("--json needs a directory")?));
            }
            "--metrics" => {
                metrics = Some(PathBuf::from(args.next().ok_or("--metrics needs a file path")?));
            }
            "--trace" => {
                trace = Some(PathBuf::from(args.next().ok_or("--trace needs a file path")?));
            }
            "--stream-cache" => {
                stream_cache =
                    Some(PathBuf::from(args.next().ok_or("--stream-cache needs a directory")?));
            }
            "--stream-cache-bytes" => {
                let v = args.next().ok_or("--stream-cache-bytes needs a byte count")?;
                let bytes: u64 =
                    v.parse().map_err(|e| format!("bad stream cache bound {v}: {e}"))?;
                stream_cache_bytes = Some(bytes);
            }
            "--channel-depth" => {
                let v = args.next().ok_or("--channel-depth needs a value")?;
                let depth: usize = v.parse().map_err(|e| format!("bad channel depth {v}: {e}"))?;
                if depth == 0 {
                    return Err("channel depth must be at least 1".into());
                }
                channel_depth = Some(depth);
            }
            "--verbose" | "-v" => verbose = true,
            "--help" | "-h" => {
                return Err(format!(
                    "usage: repro [--scale F] [--threads N] [--json DIR] [--metrics FILE] \
                     [--verbose] [TARGET ...]\n\
                     --threads 0 (or omitted) auto-detects from available_parallelism\n\
                     --metrics FILE writes one instrumented RunReport per 5x5 cell as JSONL\n\
                     --trace FILE writes one alloc-locality.trace v1 line per 5x5 cell\n\
                     --stream-cache DIR replays captured reference streams across invocations\n\
                     --stream-cache-bytes N bounds the stream cache, evicting oldest-written\n\
                     --channel-depth N sets the sharded pipeline's per-worker queue (default 8)\n\
                     --verbose narrates sweep progress per completed cell\n\
                     targets: {} all",
                    ALL_TARGETS.join(" ")
                ));
            }
            "all" => targets.extend(ALL_TARGETS.iter().map(|s| s.to_string())),
            t if ALL_TARGETS.contains(&t) => targets.push(t.to_string()),
            t => return Err(format!("unknown target {t:?}; try --help")),
        }
    }
    // `repro --metrics out.jsonl` (or `--trace out.jsonl`) alone means
    // "just the instrumented sweep"; naming a target alongside it still
    // runs that target.
    if targets.is_empty() && metrics.is_none() && trace.is_none() {
        targets.extend(ALL_TARGETS.iter().map(|s| s.to_string()));
    }
    targets.dedup();
    Ok(Args {
        scale,
        threads,
        stream_cache,
        stream_cache_bytes,
        channel_depth,
        json_dir,
        metrics,
        trace,
        verbose,
        targets,
    })
}

/// The paper's 5×5 job list under the invocation's shared options.
fn sweep_jobs(args: &Args) -> Vec<Experiment> {
    let defaults = SimOptions::default();
    let opts = SimOptions {
        scale: Scale(args.scale),
        stream_cache: args.stream_cache.clone(),
        stream_cache_bytes: args.stream_cache_bytes,
        channel_depth: args.channel_depth.unwrap_or(defaults.channel_depth),
        ..defaults
    };
    Program::FIVE
        .iter()
        .flat_map(|&p| {
            let opts = &opts;
            AllocChoice::paper_five()
                .into_iter()
                .map(move |c| Experiment::new(p, c).options(opts.clone()))
        })
        .collect()
}

/// Validates and writes one JSONL line per report into `path`.
fn write_reports(
    path: &std::path::Path,
    reports: impl Iterator<Item = RunReport>,
) -> Result<usize, String> {
    let mut lines = String::new();
    let mut count = 0;
    for report in reports {
        report
            .validate()
            .map_err(|e| format!("{}/{}: invalid report: {e}", report.program, report.allocator))?;
        lines.push_str(&report.to_jsonl_line());
        lines.push('\n');
        count += 1;
    }
    std::fs::write(path, lines).map_err(|e| format!("write {}: {e}", path.display()))?;
    Ok(count)
}

/// Runs the paper's 5×5 matrix instrumented — with a hierarchical
/// tracer when `--trace` was given, a flat recorder otherwise — and
/// writes the requested JSONL artifacts: validated [`RunReport`] lines
/// to `--metrics`, validated `alloc-locality.trace` v1 lines to
/// `--trace`. One sweep serves both flags; results and metrics are
/// bit-identical between the two recorder shapes.
fn emit_instrumented(args: &Args) -> Result<(), String> {
    let jobs = sweep_jobs(args);
    let total = jobs.len();
    let start = std::time::Instant::now();
    let verbose = args.verbose;
    let progress = move |done: usize, r: &alloc_locality::RunResult| {
        if verbose {
            eprintln!(
                "[{done}/{total}] {}/{} done ({:.1}s elapsed)",
                r.program,
                r.allocator,
                start.elapsed().as_secs_f64()
            );
        }
    };
    if let Some(trace_path) = &args.trace {
        eprintln!("# traced {total}-cell sweep at scale {}", args.scale);
        let triples = run_parallel_traced(jobs, args.threads, progress)
            .map_err(|e| format!("traced sweep: {e}"))?;
        let mut trace_lines = String::new();
        for (_, _, trace) in &triples {
            trace.validate().map_err(|e| format!("{}: invalid trace: {e}", trace.trace_id))?;
            trace_lines.push_str(&trace.to_json_line());
            trace_lines.push('\n');
        }
        std::fs::write(trace_path, trace_lines)
            .map_err(|e| format!("write {}: {e}", trace_path.display()))?;
        eprintln!("[wrote {} ({total} traces)]", trace_path.display());
        if let Some(metrics_path) = &args.metrics {
            let count = write_reports(
                metrics_path,
                triples.into_iter().map(|(result, metrics, _)| RunReport::new(result, metrics)),
            )?;
            eprintln!("[wrote {} ({count} reports)]", metrics_path.display());
        }
        return Ok(());
    }
    let path = args.metrics.as_ref().expect("emit_instrumented needs --metrics or --trace");
    eprintln!("# instrumented {total}-cell sweep at scale {}", args.scale);
    let pairs = run_parallel_instrumented(jobs, args.threads, progress)
        .map_err(|e| format!("instrumented sweep: {e}"))?;
    let count = write_reports(
        path,
        pairs.into_iter().map(|(result, metrics)| RunReport::new(result, metrics)),
    )?;
    eprintln!("[wrote {} ({count} reports)]", path.display());
    Ok(())
}

fn emit<T: Serialize>(args: &Args, name: &str, text: &str, value: &T) {
    println!("{text}");
    if let Some(dir) = &args.json_dir {
        std::fs::create_dir_all(dir).expect("create json dir");
        let path = dir.join(format!("{name}.json"));
        let json = serde_json::to_string_pretty(value).expect("serialize result");
        std::fs::write(&path, json).expect("write json");
        eprintln!("[wrote {}]", path.display());
    }
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    if args.metrics.is_some() || args.trace.is_some() {
        emit_instrumented(&args)?;
        if args.targets.is_empty() {
            return Ok(());
        }
    }
    let mut cache = MatrixCache::with_threads(args.scale, args.threads)
        .verbose(args.verbose)
        .stream_cache(args.stream_cache.clone())
        .stream_cache_bytes(args.stream_cache_bytes)
        .channel_depth(args.channel_depth);
    let k16 = CacheConfig::direct_mapped(16 * 1024, 32);
    let k64 = CacheConfig::direct_mapped(64 * 1024, 32);
    eprintln!(
        "# reproducing Grunwald, Zorn & Henderson (PLDI 1993) at scale {} \
         ({}% of the paper's allocation counts), {} sweep worker(s)\n",
        args.scale,
        args.scale * 100.0,
        args.threads
    );
    for target in args.targets.clone() {
        let err = |e: alloc_locality::EngineError| format!("{target}: {e}");
        match target.as_str() {
            "table1" => {
                let t = table1();
                emit(&args, "table1", &t.to_text(), &t);
            }
            "table2" => {
                let t = table2(cache.main().map_err(err)?, &Program::FIVE);
                emit(&args, "table2", &t.to_text(), &t);
            }
            "table3" => {
                let m = cache.gs_all().map_err(err)?;
                let t = table2(&m, &Program::GS_INPUTS);
                emit(&args, "table3", &t.to_text(), &t);
            }
            "fig1" => {
                let f = fig1(cache.main().map_err(err)?);
                emit(&args, "fig1", &f.to_text(), &f);
            }
            "fig2" => {
                let f = paging_figure(cache.main().map_err(err)?, "GS");
                emit(&args, "fig2", &format!("{}\n{}", f.to_chart(), f.to_text()), &f);
            }
            "fig3" => {
                let f = paging_figure(cache.main().map_err(err)?, "ptc");
                emit(&args, "fig3", &format!("{}\n{}", f.to_chart(), f.to_text()), &f);
            }
            "fig4" => {
                let f = exec_time_figure(cache.main().map_err(err)?, k16);
                emit(&args, "fig4", &f.to_text(), &f);
            }
            "fig5" => {
                let f = exec_time_figure(cache.main().map_err(err)?, k64);
                emit(&args, "fig5", &f.to_text(), &f);
            }
            "fig6" => {
                let m = cache.gs_all().map_err(err)?;
                let f = miss_curves(&m, "GS-Small");
                emit(&args, "fig6", &format!("{}\n{}", f.to_chart(), f.to_text()), &f);
            }
            "fig7" => {
                let m = cache.gs_all().map_err(err)?;
                let f = miss_curves(&m, "GS-Medium");
                emit(&args, "fig7", &format!("{}\n{}", f.to_chart(), f.to_text()), &f);
            }
            "fig8" => {
                let f = miss_curves(cache.main().map_err(err)?, "GS");
                emit(&args, "fig8", &format!("{}\n{}", f.to_chart(), f.to_text()), &f);
            }
            "table4" => {
                let t = time_table(cache.main().map_err(err)?, k16);
                emit(&args, "table4", &t.to_text(), &t);
            }
            "table5" => {
                let t = time_table(cache.main().map_err(err)?, k64);
                emit(&args, "table5", &t.to_text(), &t);
            }
            "table6" => {
                let m = cache.main_with_tags().map_err(err)?;
                let t = table6(&m, k64);
                emit(&args, "table6", &t.to_text(), &t);
            }
            "ext-3c" => {
                let t = conflict_analysis(cache.ext().map_err(err)?, k16);
                emit(&args, "ext-3c", &t.to_text(), &t);
            }
            "ext-victim" => {
                let t = victim_study(cache.ext().map_err(err)?, k16, 8);
                emit(&args, "ext-victim", &t.to_text(), &t);
            }
            "ext-l2" => {
                let t = two_level_study(cache.ext().map_err(err)?, k16);
                emit(&args, "ext-l2", &t.to_text(), &t);
            }
            "ext-future" => {
                let t = future_work_table(cache.ext().map_err(err)?, k16);
                emit(&args, "ext-future", &t.to_text(), &t);
            }
            other => return Err(format!("unhandled target {other}")),
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
