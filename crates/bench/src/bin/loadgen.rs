//! `loadgen`: a concurrent load harness for the `serve` daemon.
//!
//! Drives a program × allocator matrix through the server twice — once
//! fresh (every spec is a new job the workers must execute) and once as
//! duplicates (every spec is already in the content-addressed cache) —
//! from N concurrent clients, then reports throughput, latency
//! percentiles, and the cache's latency reduction. The fetched report
//! lines can be written out as JSONL for `report_check`, so a CI job can
//! assert that server-produced reports are exactly the stable schema.
//!
//! ```text
//! loadgen --addr HOST:PORT [--programs a,b] [--allocators x,y]
//!         [--scale F] [--cache-kb 16,64] [--no-paging] [--clients N]
//!         [--dup-rounds N] [--wait-secs N] [--fetch reports.jsonl]
//!         [--out BENCH_serve.json] [--min-hit-reduction F]
//!         [--slo-p99-ms MS] [--sweep N] [--shutdown]
//! ```
//!
//! Exits non-zero when the duplicate phase fails to undercut fresh mean
//! latency by at least `--min-hit-reduction` (default 0.90), or — with
//! `--slo-p99-ms` — when the fresh phase's p99 latency exceeds the
//! bound. The SLO check prints the server-measured queue-wait versus
//! execute split (from each job's span telemetry), so a breach is
//! immediately attributable to queueing or to the simulation itself.
//!
//! `--sweep N` switches the harness from duplicate-heavy traffic to one
//! `POST /sweeps` submission of ~N *unique* points spread over five
//! allocator families — every point is fresh work the queue must
//! execute. The mode polls the sweep to completion, validates the
//! assembled report, then submits the *identical* sweep a second time:
//! every point is already in the result table, so the duplicate answers
//! "done" from the submit itself and the report is the memoized bytes.
//! The warm pass must return a byte-identical report and its wall time
//! is reported as the warm-vs-fresh latency reduction. Fresh-phase
//! p50/p90/p99 are recovered from each point's server-measured
//! queue-wait and execute telemetry. `--fetch` writes the sweep-report
//! JSONL (for `report_check --expect-sweep`), `--out` the benchmark
//! JSON, and `--slo-p99-ms` bounds per-point execute p99.
//!
//! Latency percentiles are resolved through [`obs::Hist`]'s log2-bucket
//! [`percentile`](obs::Hist::percentile) — the same arithmetic the
//! daemon's own endpoint histograms use — while means stay exact
//! (computed from the raw durations), since the cache-hit reduction
//! gate keys on them.

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use alloc_locality::JobSpec;
use serde::Serialize;
use serve::client::Client;

struct Args {
    addr: String,
    programs: Vec<String>,
    allocators: Vec<String>,
    scale: f64,
    cache_kb: Vec<u32>,
    paging: bool,
    clients: usize,
    dup_rounds: usize,
    wait_secs: u64,
    fetch: Option<String>,
    out: String,
    min_hit_reduction: f64,
    slo_p99_ms: Option<f64>,
    sweep: Option<usize>,
    shutdown: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            addr: "127.0.0.1:7077".into(),
            programs: vec!["espresso".into(), "make".into()],
            allocators: vec!["BSD".into()],
            scale: 0.002,
            cache_kb: vec![16],
            paging: false,
            clients: 4,
            dup_rounds: 4,
            wait_secs: 120,
            fetch: None,
            out: "BENCH_serve.json".into(),
            min_hit_reduction: 0.90,
            slo_p99_ms: None,
            sweep: None,
            shutdown: false,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: loadgen [--addr HOST:PORT] [--programs a,b] [--allocators x,y] [--scale F]\n\
         \x20              [--cache-kb 16,64] [--no-paging] [--clients N] [--dup-rounds N]\n\
         \x20              [--wait-secs N] [--fetch PATH] [--out PATH] [--min-hit-reduction F]\n\
         \x20              [--slo-p99-ms MS] [--sweep N] [--shutdown]"
    );
    std::process::exit(2);
}

fn flag_value(args: &mut std::env::Args, flag: &str) -> String {
    args.next().unwrap_or_else(|| {
        eprintln!("{flag} needs a value");
        usage();
    })
}

fn parse<T: std::str::FromStr>(raw: &str, flag: &str) -> T {
    raw.parse().unwrap_or_else(|_| {
        eprintln!("{flag}: cannot parse {raw:?}");
        usage();
    })
}

fn csv(raw: &str) -> Vec<String> {
    raw.split(',').map(str::trim).filter(|s| !s.is_empty()).map(str::to_string).collect()
}

fn parse_args() -> Args {
    let mut out = Args::default();
    let mut args = std::env::args();
    let _ = args.next();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => out.addr = flag_value(&mut args, "--addr"),
            "--programs" => out.programs = csv(&flag_value(&mut args, "--programs")),
            "--allocators" => out.allocators = csv(&flag_value(&mut args, "--allocators")),
            "--scale" => out.scale = parse(&flag_value(&mut args, "--scale"), "--scale"),
            "--cache-kb" => {
                out.cache_kb = csv(&flag_value(&mut args, "--cache-kb"))
                    .iter()
                    .map(|s| parse(s, "--cache-kb"))
                    .collect();
            }
            "--no-paging" => out.paging = false,
            "--paging" => out.paging = true,
            "--clients" => out.clients = parse(&flag_value(&mut args, "--clients"), "--clients"),
            "--dup-rounds" => {
                out.dup_rounds = parse(&flag_value(&mut args, "--dup-rounds"), "--dup-rounds");
            }
            "--wait-secs" => {
                out.wait_secs = parse(&flag_value(&mut args, "--wait-secs"), "--wait-secs");
            }
            "--fetch" => out.fetch = Some(flag_value(&mut args, "--fetch")),
            "--out" => out.out = flag_value(&mut args, "--out"),
            "--min-hit-reduction" => {
                out.min_hit_reduction =
                    parse(&flag_value(&mut args, "--min-hit-reduction"), "--min-hit-reduction");
            }
            "--slo-p99-ms" => {
                out.slo_p99_ms =
                    Some(parse(&flag_value(&mut args, "--slo-p99-ms"), "--slo-p99-ms"));
            }
            "--sweep" => out.sweep = Some(parse(&flag_value(&mut args, "--sweep"), "--sweep")),
            "--shutdown" => out.shutdown = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage();
            }
        }
    }
    if out.clients == 0 || out.programs.is_empty() || out.allocators.is_empty() {
        eprintln!("need at least one client, program and allocator");
        usage();
    }
    out
}

/// Latency distribution of one phase, milliseconds.
#[derive(Debug, Clone, Serialize)]
struct PhaseStats {
    requests: u64,
    mean_ms: f64,
    p50_ms: f64,
    p90_ms: f64,
    p99_ms: f64,
    max_ms: f64,
}

fn phase_stats(latencies: &[Duration]) -> PhaseStats {
    // Percentiles resolve through the shared log2-bucket histogram (in
    // microseconds) — identical arithmetic to the daemon's endpoint
    // histograms, so client-side and server-side p99 are comparable.
    // The mean stays exact over the raw durations: the cache-hit
    // latency-reduction gate divides two means, and bucketing them
    // would slacken that check.
    let mut hist = obs::Hist::default();
    let mut sum_ms = 0.0;
    let mut max_ms = 0.0f64;
    for d in latencies {
        let ms = d.as_secs_f64() * 1e3;
        hist.record(d.as_micros() as u64);
        sum_ms += ms;
        max_ms = max_ms.max(ms);
    }
    let pct = |p: f64| hist.percentile(p) as f64 / 1e3;
    PhaseStats {
        requests: latencies.len() as u64,
        mean_ms: if latencies.is_empty() { 0.0 } else { sum_ms / latencies.len() as f64 },
        p50_ms: pct(0.50),
        p90_ms: pct(0.90),
        p99_ms: pct(0.99),
        max_ms,
    }
}

/// The `--sweep` mode's benchmark artifact: one many-point sweep
/// through the daemon, with fresh-phase latency recovered from the
/// server's per-point span telemetry.
#[derive(Debug, Serialize)]
struct SweepLoadReport {
    addr: String,
    program: String,
    scale: f64,
    cache_kb: Vec<u32>,
    paging: bool,
    sweep_id: String,
    /// Expanded, deduplicated points the sweep fanned into the queue.
    points: u64,
    /// Points on the Pareto front of the assembled report.
    front: u64,
    /// Client-observed wall time from submission to the last point.
    wall_secs: f64,
    points_per_sec: f64,
    /// Wall time of the duplicate (warm) pass: the identical sweep
    /// resubmitted once every point was done, report fetched again.
    warm_secs: f64,
    /// `1 - warm_secs / wall_secs`: how much of the fresh latency the
    /// duplicate-sweep path eliminates.
    warm_reduction: f64,
    /// Per-point engine execution time (fresh work, no cache hits).
    execute: PhaseStats,
    /// Per-point time spent queued before a worker picked it up.
    queue_wait: PhaseStats,
}

/// Spreads ~`points` unique configurations across the five tunable
/// allocator families, one knob axis each, values stepped away from the
/// paper defaults. Deterministic, so repeated runs hit the daemon's
/// cache — use a fresh server (or vary `--scale`) for fresh-work runs.
fn sweep_of(points: usize, args: &Args) -> explore::SweepSpec {
    let n = points.max(1);
    let share = n.div_ceil(5);
    // BSD's shift axis is bounded (3..=12); its shortfall spills onto
    // the FirstFit axis, which is effectively unbounded.
    let bsd = share.min(10);
    let first_fit = share + (share - bsd);
    let grids = vec![
        explore::GridSpec {
            split_threshold: (0..first_fit as u32).map(|i| 8 + 8 * i).collect(),
            ..explore::GridSpec::baseline("FirstFit")
        },
        explore::GridSpec {
            split_threshold: (0..share as u32).map(|i| 8 + 8 * i).collect(),
            ..explore::GridSpec::baseline("GNU G++")
        },
        explore::GridSpec {
            fast_max: (0..share as u32).map(|i| 4 + 4 * i).collect(),
            ..explore::GridSpec::baseline("QuickFit")
        },
        explore::GridSpec {
            min_shift: (0..bsd as u32).map(|i| 3 + i).collect(),
            ..explore::GridSpec::baseline("BSD")
        },
        explore::GridSpec {
            short_age: (0..share as u32).map(|i| 1_000 * (i + 1)).collect(),
            ..explore::GridSpec::baseline("Predictive")
        },
    ];
    explore::SweepSpec {
        cache_kb: args.cache_kb.clone(),
        paging: Some(args.paging),
        ..explore::SweepSpec::over(&args.programs[0], args.scale, grids)
    }
}

/// The `--sweep` mode: one batch submission of unique points, polled to
/// completion; validates the assembled report and reports fresh-phase
/// percentiles from the server's span telemetry.
fn run_sweep_mode(args: &Args, client: &Client, points: usize) {
    let fail = |msg: String| -> ! {
        eprintln!("loadgen: {msg}");
        std::process::exit(1);
    };
    let spec = sweep_of(points, args);
    if let Err(e) = spec.validate() {
        fail(format!("bad sweep: {e}"));
    }
    let expanded = spec.points().len();
    let wait = Duration::from_secs(args.wait_secs);
    eprintln!("loadgen: submitting a {expanded}-point sweep over {:?}", spec.families());

    let start = Instant::now();
    let submitted = client.submit_sweep(&spec).unwrap_or_else(|e| fail(format!("submit: {e}")));
    if submitted.fresh != submitted.points {
        eprintln!(
            "loadgen: note: only {} of {} points were fresh (server cache was warm)",
            submitted.fresh, submitted.points
        );
    }
    let status = client
        .wait_sweep_done(&submitted.id, wait)
        .unwrap_or_else(|e| fail(format!("sweep never finished: {e}")));
    let wall_secs = start.elapsed().as_secs_f64();

    let body = client
        .fetch_sweep_report(&submitted.id)
        .unwrap_or_else(|e| fail(format!("fetch report: {e}")));
    let report = explore::SweepReport::parse(&body)
        .unwrap_or_else(|e| fail(format!("served sweep does not parse: {e}")));
    report.validate().unwrap_or_else(|e| fail(format!("served sweep is invalid: {e}")));
    if report.points.len() != expanded {
        fail(format!("expected {expanded} points, server returned {}", report.points.len()));
    }

    // Warm pass: the identical sweep again. Every point is already in
    // the result table, so the submit itself answers "done" and the
    // report fetch hands back the memoized bytes — this measures the
    // duplicate-sweep path, not the simulation.
    let warm_start = Instant::now();
    let warm = client.submit_sweep(&spec).unwrap_or_else(|e| fail(format!("warm submit: {e}")));
    if warm.id != submitted.id {
        fail(format!("warm sweep id {} differs from the fresh id {}", warm.id, submitted.id));
    }
    if warm.fresh != 0 {
        fail(format!("warm resubmission enqueued {} points; expected 0", warm.fresh));
    }
    if warm.status != "done" {
        client
            .wait_sweep_done(&warm.id, wait)
            .unwrap_or_else(|e| fail(format!("warm sweep never finished: {e}")));
    }
    let warm_body = client
        .fetch_sweep_report(&warm.id)
        .unwrap_or_else(|e| fail(format!("warm fetch report: {e}")));
    let warm_secs = warm_start.elapsed().as_secs_f64();
    if warm_body != body {
        fail("warm sweep report is not byte-identical to the fresh report".into());
    }
    let warm_reduction = if wall_secs > 0.0 { 1.0 - warm_secs / wall_secs } else { 0.0 };

    // Fresh-phase latency, from the server's own per-point span split.
    let mut queue_waits = Vec::new();
    let mut executes = Vec::new();
    for row in &report.points {
        let job = client
            .request("GET", &format!("/jobs/{}", row.point_id), None)
            .unwrap_or_else(|e| fail(format!("point status: {e}")));
        let parsed: serve::StatusResponse =
            job.json().unwrap_or_else(|e| fail(format!("point status body: {e}")));
        if let Some(ns) = parsed.queue_wait_ns {
            queue_waits.push(Duration::from_nanos(ns));
        }
        if let Some(ns) = parsed.execute_ns {
            executes.push(Duration::from_nanos(ns));
        }
    }
    let out = SweepLoadReport {
        addr: args.addr.clone(),
        program: args.programs[0].clone(),
        scale: args.scale,
        cache_kb: args.cache_kb.clone(),
        paging: args.paging,
        sweep_id: submitted.id.clone(),
        points: status.total,
        front: report.front.front.len() as u64,
        wall_secs,
        points_per_sec: status.total as f64 / wall_secs.max(1e-9),
        warm_secs,
        warm_reduction,
        execute: phase_stats(&executes),
        queue_wait: phase_stats(&queue_waits),
    };

    if let Some(path) = &args.fetch {
        if let Err(e) = std::fs::write(path, &body) {
            fail(format!("cannot write {path}: {e}"));
        }
        eprintln!("loadgen: wrote the sweep report ({} lines) to {path}", expanded + 2);
    }
    let json = serde_json::to_string_pretty(&out).expect("serialize sweep load report");
    if let Err(e) = std::fs::write(&args.out, format!("{json}\n")) {
        fail(format!("cannot write {}: {e}", args.out));
    }
    println!("{json}");
    eprintln!(
        "loadgen: sweep {} finished: {} points in {:.1}s ({:.1}/s), execute p50 {:.1} ms \
         p90 {:.1} ms p99 {:.1} ms, front {}",
        out.sweep_id,
        out.points,
        out.wall_secs,
        out.points_per_sec,
        out.execute.p50_ms,
        out.execute.p90_ms,
        out.execute.p99_ms,
        out.front
    );
    eprintln!(
        "loadgen: warm resubmission answered in {:.3}s, byte-identical report \
         ({:.1}% latency reduction)",
        out.warm_secs,
        100.0 * out.warm_reduction
    );

    if args.shutdown {
        if let Err(e) = client.shutdown() {
            fail(format!("shutdown request failed: {e}"));
        }
        eprintln!("loadgen: shutdown requested");
    }
    if let Some(slo) = args.slo_p99_ms {
        if out.execute.p99_ms > slo {
            fail(format!(
                "FAIL per-point execute p99 {:.1} ms exceeds the --slo-p99-ms {slo:.1} bound",
                out.execute.p99_ms
            ));
        }
        eprintln!("loadgen: execute p99 {:.1} ms within the {slo:.1} ms SLO", out.execute.p99_ms);
    }
}

/// The committed benchmark artifact (`BENCH_serve.json`).
#[derive(Debug, Serialize)]
struct LoadgenReport {
    addr: String,
    programs: Vec<String>,
    allocators: Vec<String>,
    scale: f64,
    cache_kb: Vec<u32>,
    paging: bool,
    clients: u64,
    dup_rounds: u64,
    unique_specs: u64,
    fresh: PhaseStats,
    duplicate: PhaseStats,
    jobs_completed: u64,
    cache_hits: u64,
    cache_hit_rate: f64,
    hit_latency_reduction: f64,
}

/// One completed job as the client observed it, plus the server's
/// span-derived telemetry for the job (absent on cache hits and for
/// servers that predate the tracing schema).
struct JobRun {
    spec_idx: usize,
    latency: Duration,
    line: String,
    cached: bool,
    queue_wait_ns: Option<u64>,
    execute_ns: Option<u64>,
}

/// One unit of work: submit the spec, wait until done, fetch the line.
fn run_job(client: &Client, spec: &JobSpec, wait: Duration) -> Result<JobRun, String> {
    let start = Instant::now();
    let submitted = client.submit(spec).map_err(|e| e.to_string())?;
    // A cache hit on a finished job answers "done" in the submit itself;
    // polling again would only measure round trips.
    let (mut queue_wait_ns, mut execute_ns) = (None, None);
    if submitted.status != "done" {
        let status = client.wait_done(&submitted.id, wait).map_err(|e| e.to_string())?;
        queue_wait_ns = status.queue_wait_ns;
        execute_ns = status.execute_ns;
    }
    let line = client.fetch_report(&submitted.id).map_err(|e| e.to_string())?;
    Ok(JobRun {
        spec_idx: 0,
        latency: start.elapsed(),
        line,
        cached: submitted.cached,
        queue_wait_ns,
        execute_ns,
    })
}

/// Fans `work` (indices into `specs`) out over `clients` threads.
fn run_phase(
    addr: SocketAddr,
    specs: &[JobSpec],
    work: &[usize],
    clients: usize,
    wait: Duration,
) -> Result<Vec<JobRun>, String> {
    let results = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let client = Client::new(addr);
                scope.spawn(move || {
                    let mut out = Vec::new();
                    for (i, &spec_idx) in work.iter().enumerate() {
                        if i % clients != c {
                            continue;
                        }
                        let run = run_job(&client, &specs[spec_idx], wait)?;
                        out.push(JobRun { spec_idx, ..run });
                    }
                    Ok::<_, String>(out)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect::<Result<Vec<_>, _>>()
    })?;
    Ok(results.into_iter().flatten().collect())
}

fn main() {
    let args = parse_args();
    let addr: SocketAddr = args.addr.parse().unwrap_or_else(|_| {
        eprintln!("--addr: cannot parse {:?}", args.addr);
        usage();
    });
    let client = Client::new(addr);

    // The daemon may still be binding (CI starts it in the background):
    // poll /healthz before generating load.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match client.healthz() {
            Ok(h) => {
                eprintln!("loadgen: server healthy ({} workers)", h.workers);
                break;
            }
            Err(_) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(100));
            }
            Err(e) => {
                eprintln!("loadgen: server at {addr} never became healthy: {e}");
                std::process::exit(1);
            }
        }
    }

    if let Some(points) = args.sweep {
        run_sweep_mode(&args, &client, points);
        return;
    }

    let specs: Vec<JobSpec> = args
        .programs
        .iter()
        .flat_map(|p| args.allocators.iter().map(move |a| (p, a)))
        .map(|(p, a)| JobSpec {
            cache_kb: args.cache_kb.clone(),
            paging: Some(args.paging),
            ..JobSpec::cell(p, a, args.scale)
        })
        .collect();
    for spec in &specs {
        if let Err(e) = spec.validate() {
            eprintln!("loadgen: bad spec: {e}");
            std::process::exit(1);
        }
    }
    let wait = Duration::from_secs(args.wait_secs);

    // Fresh phase: every spec is new; latency includes queueing and the
    // full simulation run.
    let fresh_work: Vec<usize> = (0..specs.len()).collect();
    let fresh = run_phase(addr, &specs, &fresh_work, args.clients, wait).unwrap_or_else(|e| {
        eprintln!("loadgen: fresh phase failed: {e}");
        std::process::exit(1);
    });

    // Duplicate phase: the same specs again, several rounds from every
    // client; each must be answered from the cache.
    let dup_work: Vec<usize> = (0..args.dup_rounds).flat_map(|_| 0..specs.len()).collect();
    let dup = run_phase(addr, &specs, &dup_work, args.clients, wait).unwrap_or_else(|e| {
        eprintln!("loadgen: duplicate phase failed: {e}");
        std::process::exit(1);
    });
    let uncached = dup.iter().filter(|r| !r.cached).count();
    if uncached > 0 {
        eprintln!("loadgen: {uncached} duplicate submissions missed the cache");
        std::process::exit(1);
    }

    // Duplicate fetches must serve bit-identical bytes.
    for run in &dup {
        let original = fresh.iter().find(|r| r.spec_idx == run.spec_idx).map(|r| &r.line);
        if original != Some(&run.line) {
            eprintln!("loadgen: cached report for spec {} differs from the original", run.spec_idx);
            std::process::exit(1);
        }
    }

    let metrics = client.metrics().unwrap_or_else(|e| {
        eprintln!("loadgen: /metrics failed: {e}");
        std::process::exit(1);
    });
    let hits_expected = dup.len() as u64;
    let fresh_stats = phase_stats(&fresh.iter().map(|r| r.latency).collect::<Vec<_>>());
    let dup_stats = phase_stats(&dup.iter().map(|r| r.latency).collect::<Vec<_>>());
    let reduction =
        if fresh_stats.mean_ms > 0.0 { 1.0 - dup_stats.mean_ms / fresh_stats.mean_ms } else { 0.0 };
    let report = LoadgenReport {
        addr: args.addr.clone(),
        programs: args.programs.clone(),
        allocators: args.allocators.clone(),
        scale: args.scale,
        cache_kb: args.cache_kb.clone(),
        paging: args.paging,
        clients: args.clients as u64,
        dup_rounds: args.dup_rounds as u64,
        unique_specs: specs.len() as u64,
        fresh: fresh_stats,
        duplicate: dup_stats,
        jobs_completed: metrics.jobs_completed,
        cache_hits: metrics.cache_hits,
        cache_hit_rate: metrics.cache_hits as f64
            / (metrics.jobs_submitted + metrics.cache_hits).max(1) as f64,
        hit_latency_reduction: reduction,
    };

    if let Some(path) = &args.fetch {
        let mut lines: Vec<(usize, &str)> =
            fresh.iter().map(|r| (r.spec_idx, r.line.as_str())).collect();
        lines.sort_by_key(|(i, _)| *i);
        let body: String = lines.iter().map(|(_, l)| format!("{l}\n")).collect();
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("loadgen: cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("loadgen: wrote {} report lines to {path}", lines.len());
    }

    let json = serde_json::to_string_pretty(&report).expect("serialize loadgen report");
    if let Err(e) = std::fs::write(&args.out, format!("{json}\n")) {
        eprintln!("loadgen: cannot write {}: {e}", args.out);
        std::process::exit(1);
    }
    println!("{json}");
    eprintln!(
        "loadgen: {} fresh jobs (mean {:.1} ms), {} duplicates (mean {:.3} ms), \
         cache hit rate {:.1}%, latency reduction {:.1}%",
        report.fresh.requests,
        report.fresh.mean_ms,
        report.duplicate.requests,
        report.duplicate.mean_ms,
        100.0 * report.cache_hit_rate,
        100.0 * report.hit_latency_reduction,
    );
    assert_eq!(metrics.cache_hits, hits_expected, "server counted every duplicate as a hit");

    if args.shutdown {
        if let Err(e) = client.shutdown() {
            eprintln!("loadgen: shutdown request failed: {e}");
            std::process::exit(1);
        }
        eprintln!("loadgen: shutdown requested");
    }

    if reduction < args.min_hit_reduction {
        eprintln!(
            "loadgen: FAIL cache-hit latency reduction {:.1}% is under the {:.1}% floor",
            100.0 * reduction,
            100.0 * args.min_hit_reduction
        );
        std::process::exit(1);
    }

    if let Some(slo) = args.slo_p99_ms {
        // Attribute fresh-phase latency with the server's own span
        // telemetry: how much of each job's wall time sat in the queue
        // versus executing the simulation.
        let with_split: Vec<_> =
            fresh.iter().filter_map(|r| Some((r.queue_wait_ns?, r.execute_ns?))).collect();
        if with_split.is_empty() {
            eprintln!("loadgen: note: server reported no queue-wait/execute telemetry");
        } else {
            let n = with_split.len() as f64;
            let queue_ms = with_split.iter().map(|(q, _)| *q as f64 / 1e6).sum::<f64>() / n;
            let exec_ms = with_split.iter().map(|(_, e)| *e as f64 / 1e6).sum::<f64>() / n;
            eprintln!(
                "loadgen: fresh jobs averaged {queue_ms:.1} ms queued vs {exec_ms:.1} ms \
                 executing ({} of {} jobs reported telemetry)",
                with_split.len(),
                fresh.len()
            );
        }
        if report.fresh.p99_ms > slo {
            eprintln!(
                "loadgen: FAIL fresh-phase p99 {:.1} ms exceeds the --slo-p99-ms {slo:.1} bound",
                report.fresh.p99_ms
            );
            std::process::exit(1);
        }
        eprintln!(
            "loadgen: fresh-phase p99 {:.1} ms within the {slo:.1} ms SLO",
            report.fresh.p99_ms
        );
    }
}
