//! `loadgen`: a concurrent load harness for the `serve` daemon.
//!
//! Drives a program × allocator matrix through the server twice — once
//! fresh (every spec is a new job the workers must execute) and once as
//! duplicates (every spec is already in the content-addressed cache) —
//! from N concurrent clients, then reports throughput, latency
//! percentiles, and the cache's latency reduction. The fetched report
//! lines can be written out as JSONL for `report_check`, so a CI job can
//! assert that server-produced reports are exactly the stable schema.
//!
//! ```text
//! loadgen --addr HOST:PORT [--programs a,b] [--allocators x,y]
//!         [--scale F] [--cache-kb 16,64] [--no-paging] [--clients N]
//!         [--dup-rounds N] [--wait-secs N] [--fetch reports.jsonl]
//!         [--out BENCH_serve.json] [--min-hit-reduction F] [--shutdown]
//! ```
//!
//! Exits non-zero when the duplicate phase fails to undercut fresh mean
//! latency by at least `--min-hit-reduction` (default 0.90).

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use alloc_locality::JobSpec;
use serde::Serialize;
use serve::client::Client;

struct Args {
    addr: String,
    programs: Vec<String>,
    allocators: Vec<String>,
    scale: f64,
    cache_kb: Vec<u32>,
    paging: bool,
    clients: usize,
    dup_rounds: usize,
    wait_secs: u64,
    fetch: Option<String>,
    out: String,
    min_hit_reduction: f64,
    shutdown: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            addr: "127.0.0.1:7077".into(),
            programs: vec!["espresso".into(), "make".into()],
            allocators: vec!["BSD".into()],
            scale: 0.002,
            cache_kb: vec![16],
            paging: false,
            clients: 4,
            dup_rounds: 4,
            wait_secs: 120,
            fetch: None,
            out: "BENCH_serve.json".into(),
            min_hit_reduction: 0.90,
            shutdown: false,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: loadgen [--addr HOST:PORT] [--programs a,b] [--allocators x,y] [--scale F]\n\
         \x20              [--cache-kb 16,64] [--no-paging] [--clients N] [--dup-rounds N]\n\
         \x20              [--wait-secs N] [--fetch PATH] [--out PATH] [--min-hit-reduction F]\n\
         \x20              [--shutdown]"
    );
    std::process::exit(2);
}

fn flag_value(args: &mut std::env::Args, flag: &str) -> String {
    args.next().unwrap_or_else(|| {
        eprintln!("{flag} needs a value");
        usage();
    })
}

fn parse<T: std::str::FromStr>(raw: &str, flag: &str) -> T {
    raw.parse().unwrap_or_else(|_| {
        eprintln!("{flag}: cannot parse {raw:?}");
        usage();
    })
}

fn csv(raw: &str) -> Vec<String> {
    raw.split(',').map(str::trim).filter(|s| !s.is_empty()).map(str::to_string).collect()
}

fn parse_args() -> Args {
    let mut out = Args::default();
    let mut args = std::env::args();
    let _ = args.next();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => out.addr = flag_value(&mut args, "--addr"),
            "--programs" => out.programs = csv(&flag_value(&mut args, "--programs")),
            "--allocators" => out.allocators = csv(&flag_value(&mut args, "--allocators")),
            "--scale" => out.scale = parse(&flag_value(&mut args, "--scale"), "--scale"),
            "--cache-kb" => {
                out.cache_kb = csv(&flag_value(&mut args, "--cache-kb"))
                    .iter()
                    .map(|s| parse(s, "--cache-kb"))
                    .collect();
            }
            "--no-paging" => out.paging = false,
            "--paging" => out.paging = true,
            "--clients" => out.clients = parse(&flag_value(&mut args, "--clients"), "--clients"),
            "--dup-rounds" => {
                out.dup_rounds = parse(&flag_value(&mut args, "--dup-rounds"), "--dup-rounds");
            }
            "--wait-secs" => {
                out.wait_secs = parse(&flag_value(&mut args, "--wait-secs"), "--wait-secs");
            }
            "--fetch" => out.fetch = Some(flag_value(&mut args, "--fetch")),
            "--out" => out.out = flag_value(&mut args, "--out"),
            "--min-hit-reduction" => {
                out.min_hit_reduction =
                    parse(&flag_value(&mut args, "--min-hit-reduction"), "--min-hit-reduction");
            }
            "--shutdown" => out.shutdown = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage();
            }
        }
    }
    if out.clients == 0 || out.programs.is_empty() || out.allocators.is_empty() {
        eprintln!("need at least one client, program and allocator");
        usage();
    }
    out
}

/// Latency distribution of one phase, milliseconds.
#[derive(Debug, Clone, Serialize)]
struct PhaseStats {
    requests: u64,
    mean_ms: f64,
    p50_ms: f64,
    p90_ms: f64,
    p99_ms: f64,
    max_ms: f64,
}

fn phase_stats(latencies: &[Duration]) -> PhaseStats {
    let mut ms: Vec<f64> = latencies.iter().map(|d| d.as_secs_f64() * 1e3).collect();
    ms.sort_by(f64::total_cmp);
    let pct = |p: f64| -> f64 {
        if ms.is_empty() {
            return 0.0;
        }
        let idx = (p * (ms.len() - 1) as f64).round() as usize;
        ms[idx.min(ms.len() - 1)]
    };
    PhaseStats {
        requests: ms.len() as u64,
        mean_ms: if ms.is_empty() { 0.0 } else { ms.iter().sum::<f64>() / ms.len() as f64 },
        p50_ms: pct(0.50),
        p90_ms: pct(0.90),
        p99_ms: pct(0.99),
        max_ms: ms.last().copied().unwrap_or(0.0),
    }
}

/// The committed benchmark artifact (`BENCH_serve.json`).
#[derive(Debug, Serialize)]
struct LoadgenReport {
    addr: String,
    programs: Vec<String>,
    allocators: Vec<String>,
    scale: f64,
    cache_kb: Vec<u32>,
    paging: bool,
    clients: u64,
    dup_rounds: u64,
    unique_specs: u64,
    fresh: PhaseStats,
    duplicate: PhaseStats,
    jobs_completed: u64,
    cache_hits: u64,
    cache_hit_rate: f64,
    hit_latency_reduction: f64,
}

/// One unit of work: submit the spec, wait until done, fetch the line.
fn run_job(
    client: &Client,
    spec: &JobSpec,
    wait: Duration,
) -> Result<(Duration, String, bool), String> {
    let start = Instant::now();
    let submitted = client.submit(spec).map_err(|e| e.to_string())?;
    // A cache hit on a finished job answers "done" in the submit itself;
    // polling again would only measure round trips.
    if submitted.status != "done" {
        client.wait_done(&submitted.id, wait).map_err(|e| e.to_string())?;
    }
    let line = client.fetch_report(&submitted.id).map_err(|e| e.to_string())?;
    Ok((start.elapsed(), line, submitted.cached))
}

/// Fans `work` (indices into `specs`) out over `clients` threads.
/// Returns per-item `(spec index, latency, report line, cached)`.
fn run_phase(
    addr: SocketAddr,
    specs: &[JobSpec],
    work: &[usize],
    clients: usize,
    wait: Duration,
) -> Result<Vec<(usize, Duration, String, bool)>, String> {
    let results = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let client = Client::new(addr);
                scope.spawn(move || {
                    let mut out = Vec::new();
                    for (i, &spec_idx) in work.iter().enumerate() {
                        if i % clients != c {
                            continue;
                        }
                        let run = run_job(&client, &specs[spec_idx], wait)?;
                        out.push((spec_idx, run.0, run.1, run.2));
                    }
                    Ok::<_, String>(out)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect::<Result<Vec<_>, _>>()
    })?;
    Ok(results.into_iter().flatten().collect())
}

fn main() {
    let args = parse_args();
    let addr: SocketAddr = args.addr.parse().unwrap_or_else(|_| {
        eprintln!("--addr: cannot parse {:?}", args.addr);
        usage();
    });
    let client = Client::new(addr);

    // The daemon may still be binding (CI starts it in the background):
    // poll /healthz before generating load.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match client.healthz() {
            Ok(h) => {
                eprintln!("loadgen: server healthy ({} workers)", h.workers);
                break;
            }
            Err(_) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(100));
            }
            Err(e) => {
                eprintln!("loadgen: server at {addr} never became healthy: {e}");
                std::process::exit(1);
            }
        }
    }

    let specs: Vec<JobSpec> = args
        .programs
        .iter()
        .flat_map(|p| args.allocators.iter().map(move |a| (p, a)))
        .map(|(p, a)| JobSpec {
            cache_kb: args.cache_kb.clone(),
            paging: Some(args.paging),
            ..JobSpec::cell(p, a, args.scale)
        })
        .collect();
    for spec in &specs {
        if let Err(e) = spec.validate() {
            eprintln!("loadgen: bad spec: {e}");
            std::process::exit(1);
        }
    }
    let wait = Duration::from_secs(args.wait_secs);

    // Fresh phase: every spec is new; latency includes queueing and the
    // full simulation run.
    let fresh_work: Vec<usize> = (0..specs.len()).collect();
    let fresh = run_phase(addr, &specs, &fresh_work, args.clients, wait).unwrap_or_else(|e| {
        eprintln!("loadgen: fresh phase failed: {e}");
        std::process::exit(1);
    });

    // Duplicate phase: the same specs again, several rounds from every
    // client; each must be answered from the cache.
    let dup_work: Vec<usize> = (0..args.dup_rounds).flat_map(|_| 0..specs.len()).collect();
    let dup = run_phase(addr, &specs, &dup_work, args.clients, wait).unwrap_or_else(|e| {
        eprintln!("loadgen: duplicate phase failed: {e}");
        std::process::exit(1);
    });
    let uncached = dup.iter().filter(|(_, _, _, cached)| !cached).count();
    if uncached > 0 {
        eprintln!("loadgen: {uncached} duplicate submissions missed the cache");
        std::process::exit(1);
    }

    // Duplicate fetches must serve bit-identical bytes.
    for (spec_idx, _, line, _) in &dup {
        let original = fresh.iter().find(|(i, ..)| i == spec_idx).map(|(_, _, l, _)| l);
        if original != Some(line) {
            eprintln!("loadgen: cached report for spec {spec_idx} differs from the original");
            std::process::exit(1);
        }
    }

    let metrics = client.metrics().unwrap_or_else(|e| {
        eprintln!("loadgen: /metrics failed: {e}");
        std::process::exit(1);
    });
    let hits_expected = dup.len() as u64;
    let fresh_stats = phase_stats(&fresh.iter().map(|(_, d, ..)| *d).collect::<Vec<_>>());
    let dup_stats = phase_stats(&dup.iter().map(|(_, d, ..)| *d).collect::<Vec<_>>());
    let reduction =
        if fresh_stats.mean_ms > 0.0 { 1.0 - dup_stats.mean_ms / fresh_stats.mean_ms } else { 0.0 };
    let report = LoadgenReport {
        addr: args.addr.clone(),
        programs: args.programs.clone(),
        allocators: args.allocators.clone(),
        scale: args.scale,
        cache_kb: args.cache_kb.clone(),
        paging: args.paging,
        clients: args.clients as u64,
        dup_rounds: args.dup_rounds as u64,
        unique_specs: specs.len() as u64,
        fresh: fresh_stats,
        duplicate: dup_stats,
        jobs_completed: metrics.jobs_completed,
        cache_hits: metrics.cache_hits,
        cache_hit_rate: metrics.cache_hits as f64
            / (metrics.jobs_submitted + metrics.cache_hits).max(1) as f64,
        hit_latency_reduction: reduction,
    };

    if let Some(path) = &args.fetch {
        let mut lines: Vec<(usize, &str)> =
            fresh.iter().map(|(i, _, l, _)| (*i, l.as_str())).collect();
        lines.sort_by_key(|(i, _)| *i);
        let body: String = lines.iter().map(|(_, l)| format!("{l}\n")).collect();
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("loadgen: cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("loadgen: wrote {} report lines to {path}", lines.len());
    }

    let json = serde_json::to_string_pretty(&report).expect("serialize loadgen report");
    if let Err(e) = std::fs::write(&args.out, format!("{json}\n")) {
        eprintln!("loadgen: cannot write {}: {e}", args.out);
        std::process::exit(1);
    }
    println!("{json}");
    eprintln!(
        "loadgen: {} fresh jobs (mean {:.1} ms), {} duplicates (mean {:.3} ms), \
         cache hit rate {:.1}%, latency reduction {:.1}%",
        report.fresh.requests,
        report.fresh.mean_ms,
        report.duplicate.requests,
        report.duplicate.mean_ms,
        100.0 * report.cache_hit_rate,
        100.0 * report.hit_latency_reduction,
    );
    assert_eq!(metrics.cache_hits, hits_expected, "server counted every duplicate as a hit");

    if args.shutdown {
        if let Err(e) = client.shutdown() {
            eprintln!("loadgen: shutdown request failed: {e}");
            std::process::exit(1);
        }
        eprintln!("loadgen: shutdown requested");
    }

    if reduction < args.min_hit_reduction {
        eprintln!(
            "loadgen: FAIL cache-hit latency reduction {:.1}% is under the {:.1}% floor",
            100.0 * reduction,
            100.0 * args.min_hit_reduction
        );
        std::process::exit(1);
    }
}
