//! `perf`: wall-clock harness for the reference pipeline.
//!
//! ```text
//! perf [--scale F] [--repeat N] [--out FILE]
//! ```
//!
//! Runs a fixed heavy configuration — the full paper cache sweep plus the
//! stack-distance pager — once per [`PipelineMode`], takes the best of
//! `--repeat` timings for each, checks the two modes produced
//! bit-identical results, and writes `BENCH_pipeline.json` with
//! references/second, the sharded-over-inline speedup, and a per-sink
//! cost breakdown (each sink timed alone against the same workload).

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use alloc_locality::{
    default_threads, AllocChoice, Experiment, PipelineMode, RunResult, SimOptions,
};
use allocators::AllocatorKind;
use cache_sim::CacheConfig;
use serde::Serialize;
use workloads::{Program, Scale};

/// One timed mode (or lone sink) of the harness.
#[derive(Debug, Clone, Serialize)]
struct Timing {
    /// What ran: "inline", "sharded", or a sink label.
    label: String,
    /// Best wall-clock seconds over the repeats.
    secs: f64,
    /// Word-granular data references per second at that timing.
    refs_per_sec: f64,
}

/// The harness's JSON report (`BENCH_pipeline.json`).
#[derive(Debug, Clone, Serialize)]
struct Report {
    program: String,
    allocator: String,
    scale: f64,
    /// Word-granular data references the workload produced.
    data_refs: u64,
    /// Reference records (a multi-word access is one record).
    records: u64,
    /// Hardware threads the sharded mode had available.
    hardware_threads: usize,
    repeats: u32,
    inline: Timing,
    sharded: Timing,
    /// `inline.secs / sharded.secs`.
    speedup: f64,
    /// Whether the two modes produced bit-identical results.
    identical_results: bool,
    /// Each sink run alone against the same workload, inline.
    per_sink: Vec<Timing>,
}

struct Args {
    scale: f64,
    repeat: u32,
    out: PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let mut scale = 0.02;
    let mut repeat = 3;
    let mut out = PathBuf::from("BENCH_pipeline.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                let v = args.next().ok_or("--scale needs a value")?;
                scale = v.parse().map_err(|e| format!("bad scale {v}: {e}"))?;
                if scale <= 0.0 {
                    return Err("scale must be positive".into());
                }
            }
            "--repeat" => {
                let v = args.next().ok_or("--repeat needs a value")?;
                repeat = v.parse().map_err(|e| format!("bad repeat count {v}: {e}"))?;
                if repeat == 0 {
                    return Err("repeat count must be at least 1".into());
                }
            }
            "--out" => {
                out = PathBuf::from(args.next().ok_or("--out needs a path")?);
            }
            "--help" | "-h" => {
                return Err("usage: perf [--scale F] [--repeat N] [--out FILE]".into());
            }
            other => return Err(format!("unknown argument {other:?}; try --help")),
        }
    }
    Ok(Args { scale, repeat, out })
}

/// The fixed heavy workload: espresso under FIRSTFIT (the paper's most
/// metadata-hungry pairing) with the full cache sweep and paging on.
fn experiment(scale: f64, opts: SimOptions) -> Experiment {
    Experiment::new(Program::Espresso, AllocChoice::Paper(AllocatorKind::FirstFit))
        .options(SimOptions { scale: Scale(scale), ..opts })
}

/// Best-of-`repeat` wall-clock run; returns the last result and the
/// fastest time.
fn time_run(exp: &Experiment, repeat: u32) -> Result<(RunResult, f64), String> {
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..repeat {
        let start = Instant::now();
        let r = exp.run().map_err(|e| e.to_string())?;
        best = best.min(start.elapsed().as_secs_f64());
        result = Some(r);
    }
    Ok((result.expect("repeat >= 1"), best))
}

fn timing(label: &str, secs: f64, refs: u64) -> Timing {
    Timing { label: label.to_string(), secs, refs_per_sec: refs as f64 / secs.max(1e-9) }
}

/// Two results are interchangeable iff every measured field matches.
fn identical(a: &RunResult, b: &RunResult) -> bool {
    a.instrs == b.instrs
        && a.trace == b.trace
        && a.cache == b.cache
        && a.fault_curve == b.fault_curve
        && a.victim == b.victim
        && a.three_c == b.three_c
        && a.two_level == b.two_level
        && a.frag_curve == b.frag_curve
        && a.heap_high_water == b.heap_high_water
        && a.alloc_stats == b.alloc_stats
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let base = SimOptions {
        cache_configs: CacheConfig::paper_sweep(),
        paging: true,
        ..SimOptions::default()
    };

    eprintln!(
        "# pipeline perf: espresso/FirstFit, {} cache configs + pager, scale {}, best of {}",
        base.cache_configs.len(),
        args.scale,
        args.repeat
    );

    let inline_exp = experiment(args.scale, base.clone()).pipeline(PipelineMode::Inline);
    let (inline_result, inline_secs) = time_run(&inline_exp, args.repeat)?;
    let refs = inline_result.data_refs();
    eprintln!("inline:  {inline_secs:.3}s  ({:.1} Mrefs/s)", refs as f64 / inline_secs / 1e6);

    let sharded_exp = experiment(args.scale, base.clone()).pipeline(PipelineMode::Sharded);
    let (sharded_result, sharded_secs) = time_run(&sharded_exp, args.repeat)?;
    eprintln!("sharded: {sharded_secs:.3}s  ({:.1} Mrefs/s)", refs as f64 / sharded_secs / 1e6);

    let same = identical(&inline_result, &sharded_result);
    if !same {
        eprintln!("WARNING: sharded result differs from inline result");
    }

    // Cost of each sink alone: the workload replayed inline with exactly
    // one consumer attached.
    let mut per_sink = Vec::new();
    for cfg in &base.cache_configs {
        let opts = SimOptions { cache_configs: vec![*cfg], paging: false, ..base.clone() };
        let (_, secs) = time_run(&experiment(args.scale, opts), args.repeat)?;
        per_sink.push(timing(&format!("cache-{}K", cfg.size / 1024), secs, refs));
    }
    {
        let opts = SimOptions { cache_configs: vec![], paging: true, ..base.clone() };
        let (_, secs) = time_run(&experiment(args.scale, opts), args.repeat)?;
        per_sink.push(timing("pager", secs, refs));
    }
    {
        // The driver itself: allocator + workload replay, no sinks.
        let opts = SimOptions { cache_configs: vec![], paging: false, ..base.clone() };
        let (_, secs) = time_run(&experiment(args.scale, opts), args.repeat)?;
        per_sink.push(timing("driver-only", secs, refs));
    }
    for t in &per_sink {
        eprintln!("  {:<12} {:.3}s", t.label, t.secs);
    }

    let report = Report {
        program: inline_result.program.clone(),
        allocator: inline_result.allocator.clone(),
        scale: args.scale,
        data_refs: refs,
        records: inline_result.trace.total_refs(),
        hardware_threads: default_threads(),
        repeats: args.repeat,
        inline: timing("inline", inline_secs, refs),
        sharded: timing("sharded", sharded_secs, refs),
        speedup: inline_secs / sharded_secs.max(1e-9),
        identical_results: same,
        per_sink,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&args.out, json).map_err(|e| format!("write {}: {e}", args.out.display()))?;
    eprintln!(
        "speedup: {:.2}x (identical results: {same})\n[wrote {}]",
        report.speedup,
        args.out.display()
    );
    if !same {
        return Err("sharded pipeline diverged from inline".into());
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
