//! `perf`: wall-clock harness for the reference pipeline.
//!
//! ```text
//! perf [--scale F] [--repeat N] [--matrix] [--out FILE] [--sweep-out FILE]
//! perf --obs [--scale F] [--repeat N] [--max-overhead F] [--gate-retries N]
//!      [--obs-out FILE]
//! perf --replay [--scale F] [--repeat N] [--replay-out FILE]
//!      [--replay-cache DIR]
//! perf --sinks [--scale F] [--repeat N] [--min-speedup F]
//!      [--gate-retries N] [--sinks-out FILE]
//! perf --alloc [--scale F] [--repeat N] [--min-speedup F]
//!      [--gate-retries N] [--alloc-out FILE]
//! ```
//!
//! With `--alloc`, the harness measures the allocator hot-path engine
//! (`BENCH_alloc.json`): the espresso malloc/free script is extracted
//! once, then driven through each paper allocator — the rebuilt engine
//! (shadow mirrors, occupancy bitmaps, O(1) unlink) against its verbatim
//! pre-rework port in [`allocators::reference`]. Each lane's two sides
//! must emit bit-identical reference streams, heap images, statistics,
//! per-phase instruction totals, and `alloc.search_len` /
//! `alloc.coalesce_per_free` histograms (checked once, **never**
//! retried); the wall-clock sides are then interleaved best-of
//! `--repeat`, and the slowest lane (largest reference-side time) must
//! clear `--min-speedup`. Either failure exits non-zero.
//!
//! With `--sinks`, the harness measures the data-parallel sink engine
//! (`BENCH_sinks.json`): one run-compressed reference stream is
//! captured once, then replayed into each sink type alone — the
//! struct-of-arrays [`SweepCache`], the per-cache [`CacheBank`], a
//! single direct-mapped [`Cache`], and the stack-distance
//! [`StackSim`] pager — against its pre-restructure counterpart: the
//! verbatim [`ReferenceSweepCache`] port for the sweep lane, and an
//! [`OldRunDelivery`] wrapper (which expands every repeated
//! multi-block run back into per-reference calls, the old scalar
//! fallback) for the others. Every lane must be bit-identical across
//! the two deliveries, and the sweep lane's speedup must clear
//! `--min-speedup`; either failure exits non-zero.
//!
//! With `--replay`, the harness measures the persistent stream cache
//! (`BENCH_replay.json`): every cell of the paper's 5×5 matrix runs once
//! against an empty cache directory (cold — generating the workload,
//! simulating the allocator, and storing the captured stream) and then
//! warm, best of `--repeat`, replaying the decoded stream straight into
//! the sinks. Each cell's warm [`RunResult`] must be bit-identical to
//! its cold one; any divergence exits non-zero.
//!
//! With `--obs`, the harness instead measures the observability
//! subsystem itself (`BENCH_obs.json`): the same heavy configuration
//! run three ways — recorder absent, [`obs::NullRecorder`] attached,
//! and [`obs::MemoryRecorder`] attached — best of `--repeat` each. The
//! no-op recorder must cost at most `--max-overhead` (fraction, default
//! 0.02) over the recorder-free run, and all three runs must produce
//! bit-identical [`RunResult`]s; either failure exits non-zero. An
//! overhead-gate trip (but never a result divergence) is re-measured up
//! to `--gate-retries` extra times first, which CI uses to absorb
//! scheduler noise on shared runners.
//!
//! Otherwise, two measurements, two reports:
//!
//! 1. **Pipeline** (`BENCH_pipeline.json`): the fixed heavy
//!    configuration — full paper cache sweep plus the stack-distance
//!    pager — once per [`PipelineMode`], best of `--repeat`, with a
//!    per-sink cost breakdown.
//! 2. **Sweep** (`BENCH_sweep.json`): the single-pass
//!    [`cache_sim::SweepCache`] against the per-cache
//!    [`cache_sim::CacheBank`] on the paper's five-configuration sweep.
//!    Each cell's run-compressed reference stream is captured once with
//!    [`Experiment::capture_runs`], then replayed into each cache
//!    component directly, so the timing isolates the simulators from
//!    the (identical) workload-driver cost. By default one cell
//!    (espresso/FirstFit); with `--matrix`, all five paper programs ×
//!    (FirstFit, BSD, QuickFit), one aggregated JSON with per-cell
//!    refs/sec.
//!
//! Every comparison checks the two paths produced bit-identical
//! [`RunResult`]s; any divergence makes the process exit non-zero, which
//! is what CI's release-mode smoke job keys on.

use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use alloc_locality::{
    default_threads, AllocChoice, Experiment, PipelineMode, RunResult, SimOptions,
};
use allocators::{reference, AllocStats, Allocator, AllocatorKind};
use bench::{interleaved_best_of, run_gated, time_closure, timing, GateOutcome, Timing};
use cache_sim::reference::ReferenceSweepCache;
use cache_sim::{Cache, CacheBank, CacheConfig, SweepCache};
use obs::{MemoryRecorder, NullRecorder};
use serde::Serialize;
use sim_mem::{
    AccessSink, Address, CountingSink, HeapImage, InstrCounter, MemCtx, MemRef, NullSink, Phase,
    RefRun,
};
use vm_sim::StackSim;
use workloads::{AppEvent, Program, Scale};

/// The pipeline harness's JSON report (`BENCH_pipeline.json`).
#[derive(Debug, Clone, Serialize)]
struct PipelineReport {
    program: String,
    allocator: String,
    scale: f64,
    /// Word-granular data references the workload produced.
    data_refs: u64,
    /// Reference records (a multi-word access is one record).
    records: u64,
    /// Hardware threads the sharded mode had available.
    hardware_threads: usize,
    repeats: u32,
    inline: Timing,
    sharded: Timing,
    /// `inline.secs / sharded.secs`.
    speedup: f64,
    /// Whether the two modes produced bit-identical results.
    identical_results: bool,
    /// Each sink run alone against the same workload, inline.
    per_sink: Vec<Timing>,
}

/// One (program, allocator) cell of the bank-vs-sweep comparison.
#[derive(Debug, Clone, Serialize)]
struct SweepCell {
    program: String,
    allocator: String,
    /// Word-granular data references the cell's workload produced.
    data_refs: u64,
    /// Run-compressed entries in the captured stream.
    stream_runs: u64,
    /// The per-cache [`CacheBank`] replaying the captured stream.
    bank: Timing,
    /// The single-pass [`SweepCache`] replaying the same stream.
    sweep: Timing,
    /// `bank.secs / sweep.secs`.
    speedup: f64,
    /// Whether the two simulators produced bit-identical statistics.
    identical_results: bool,
}

/// The sweep harness's JSON report (`BENCH_sweep.json`).
#[derive(Debug, Clone, Serialize)]
struct SweepReport {
    scale: f64,
    repeats: u32,
    /// Whether the full program × allocator matrix was measured.
    matrix: bool,
    /// The cache configurations both engines simulated.
    cache_configs: Vec<String>,
    cells: Vec<SweepCell>,
    /// Total refs over total seconds, across all cells.
    aggregate_bank_refs_per_sec: f64,
    aggregate_sweep_refs_per_sec: f64,
    /// Aggregate bank seconds over aggregate sweep seconds.
    aggregate_speedup: f64,
    /// Smallest per-cell speedup (the conservative headline).
    min_cell_speedup: f64,
    /// True iff every cell was bit-identical across engines.
    identical_results: bool,
}

/// One (program, allocator) cell of the cold-vs-warm replay comparison.
#[derive(Debug, Clone, Serialize)]
struct ReplayCell {
    program: String,
    allocator: String,
    /// Word-granular data references the cell's workload produced.
    data_refs: u64,
    /// The populating run: workload generation + allocator simulation +
    /// sinks, with the captured stream stored on the way out.
    cold: Timing,
    /// The replaying run: sinks driven straight from the decoded stream.
    warm: Timing,
    /// `cold.secs / warm.secs`.
    speedup: f64,
    /// Whether the warm run reproduced the cold [`RunResult`] bit for
    /// bit.
    identical_results: bool,
}

/// The replay harness's JSON report (`BENCH_replay.json`).
#[derive(Debug, Clone, Serialize)]
struct ReplayReport {
    scale: f64,
    /// Warm repeats per cell (the cold populating run is timed once —
    /// repeating it would hit the cache it just filled).
    repeats: u32,
    /// The cache configurations every cell simulated.
    cache_configs: Vec<String>,
    cells: Vec<ReplayCell>,
    aggregate_cold_secs: f64,
    aggregate_warm_secs: f64,
    /// Aggregate cold seconds over aggregate warm seconds.
    aggregate_speedup: f64,
    /// Smallest per-cell speedup (the conservative headline).
    min_cell_speedup: f64,
    /// True iff every cell replayed bit-identically.
    identical_results: bool,
}

/// One sink type timed under the current run-aware delivery and under
/// the pre-restructure delivery.
#[derive(Debug, Clone, Serialize)]
struct SinkLane {
    /// Which sink ran: "sweep", "bank", "cache-16K", or "pager".
    sink: String,
    /// The restructured sink replaying the captured stream.
    current: Timing,
    /// The pre-restructure counterpart: [`ReferenceSweepCache`] for the
    /// sweep lane, [`OldRunDelivery`] around the same sink otherwise.
    reference: Timing,
    /// `reference.secs / current.secs`.
    speedup: f64,
    /// Whether both deliveries produced bit-identical statistics.
    identical_results: bool,
}

/// The sink harness's JSON report (`BENCH_sinks.json`).
#[derive(Debug, Clone, Serialize)]
struct SinksReport {
    program: String,
    allocator: String,
    scale: f64,
    repeats: u32,
    /// Run-compressed entries in the captured stream.
    stream_runs: u64,
    /// Word-granular data references the stream expands to.
    data_refs: u64,
    /// The cache configurations the sweep and bank lanes simulated.
    cache_configs: Vec<String>,
    lanes: Vec<SinkLane>,
    /// The sweep lane's speedup (what `--min-speedup` gates).
    sweep_speedup: f64,
    /// True iff every lane was bit-identical across deliveries.
    identical_results: bool,
}

struct Args {
    scale: f64,
    repeat: u32,
    matrix: bool,
    obs: bool,
    replay: bool,
    sinks: bool,
    alloc: bool,
    max_overhead: f64,
    gate_retries: u32,
    out: PathBuf,
    sweep_out: PathBuf,
    obs_out: PathBuf,
    replay_out: PathBuf,
    replay_cache: PathBuf,
    sinks_out: PathBuf,
    alloc_out: PathBuf,
    min_speedup: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut scale = 0.02;
    let mut repeat = 3;
    let mut matrix = false;
    let mut obs = false;
    let mut replay = false;
    let mut max_overhead = 0.02;
    let mut gate_retries = 0;
    let mut out = PathBuf::from("BENCH_pipeline.json");
    let mut sweep_out = PathBuf::from("BENCH_sweep.json");
    let mut obs_out = PathBuf::from("BENCH_obs.json");
    let mut replay_out = PathBuf::from("BENCH_replay.json");
    let mut replay_cache = PathBuf::from("artifacts/stream-cache/perf-replay");
    let mut sinks = false;
    let mut sinks_out = PathBuf::from("BENCH_sinks.json");
    let mut alloc = false;
    let mut alloc_out = PathBuf::from("BENCH_alloc.json");
    let mut min_speedup = 0.0;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                let v = args.next().ok_or("--scale needs a value")?;
                scale = v.parse().map_err(|e| format!("bad scale {v}: {e}"))?;
                if scale <= 0.0 {
                    return Err("scale must be positive".into());
                }
            }
            "--repeat" => {
                let v = args.next().ok_or("--repeat needs a value")?;
                repeat = v.parse().map_err(|e| format!("bad repeat count {v}: {e}"))?;
                if repeat == 0 {
                    return Err("repeat count must be at least 1".into());
                }
            }
            "--matrix" => matrix = true,
            "--obs" => obs = true,
            "--replay" => replay = true,
            "--replay-out" => {
                replay_out = PathBuf::from(args.next().ok_or("--replay-out needs a path")?);
            }
            "--replay-cache" => {
                replay_cache = PathBuf::from(args.next().ok_or("--replay-cache needs a path")?);
            }
            "--sinks" => sinks = true,
            "--sinks-out" => {
                sinks_out = PathBuf::from(args.next().ok_or("--sinks-out needs a path")?);
            }
            "--alloc" => alloc = true,
            "--alloc-out" => {
                alloc_out = PathBuf::from(args.next().ok_or("--alloc-out needs a path")?);
            }
            "--min-speedup" => {
                let v = args.next().ok_or("--min-speedup needs a value")?;
                min_speedup = v.parse().map_err(|e| format!("bad speedup bound {v}: {e}"))?;
                if min_speedup < 0.0 {
                    return Err("speedup bound must be non-negative".into());
                }
            }
            "--max-overhead" => {
                let v = args.next().ok_or("--max-overhead needs a value")?;
                max_overhead = v.parse().map_err(|e| format!("bad overhead bound {v}: {e}"))?;
                if max_overhead < 0.0 {
                    return Err("overhead bound must be non-negative".into());
                }
            }
            "--gate-retries" => {
                let v = args.next().ok_or("--gate-retries needs a value")?;
                gate_retries = v.parse().map_err(|e| format!("bad retry count {v}: {e}"))?;
            }
            "--out" => {
                out = PathBuf::from(args.next().ok_or("--out needs a path")?);
            }
            "--sweep-out" => {
                sweep_out = PathBuf::from(args.next().ok_or("--sweep-out needs a path")?);
            }
            "--obs-out" => {
                obs_out = PathBuf::from(args.next().ok_or("--obs-out needs a path")?);
            }
            "--help" | "-h" => {
                return Err(
                    "usage: perf [--scale F] [--repeat N] [--matrix] [--out FILE] [--sweep-out FILE]\n\
                     \x20      perf --obs [--scale F] [--repeat N] [--max-overhead F]\n\
                     \x20           [--gate-retries N] [--obs-out FILE]\n\
                     \x20      perf --replay [--scale F] [--repeat N] [--replay-out FILE]\n\
                     \x20           [--replay-cache DIR] [--min-speedup F]\n\
                     \x20      perf --sinks [--scale F] [--repeat N] [--min-speedup F]\n\
                     \x20           [--gate-retries N] [--sinks-out FILE]\n\
                     \x20      perf --alloc [--scale F] [--repeat N] [--min-speedup F]\n\
                     \x20           [--gate-retries N] [--alloc-out FILE]\n\
                     --matrix measures all five paper programs x (FirstFit, BSD, QuickFit)\n\
                     in the bank-vs-sweep comparison instead of espresso/FirstFit alone\n\
                     --obs measures recorder overhead (none vs null vs in-memory) and fails\n\
                     if the null recorder costs more than --max-overhead (default 0.02);\n\
                     --gate-retries re-measures up to N extra times before declaring a\n\
                     gate failure (absorbs scheduler noise on loaded CI machines)\n\
                     --replay times the full 5x5 matrix cold (populating a fresh stream\n\
                     cache) and then warm (replaying it), and fails if any warm cell's\n\
                     result diverges from its cold run or the aggregate speedup falls\n\
                     below --min-speedup (default 0: identity check only)\n\
                     --sinks replays one captured stream into each sink type alone\n\
                     (sweep, bank, single cache, pager) against its pre-restructure\n\
                     delivery, and fails if any lane's statistics diverge or the sweep\n\
                     lane's speedup falls below --min-speedup (re-measured up to\n\
                     --gate-retries extra times first)\n\
                     --alloc drives the espresso malloc/free script through each paper\n\
                     allocator, rebuilt engine vs its verbatim reference port, and fails\n\
                     if any lane's emitted stream, heap image, stats, instruction totals\n\
                     or histograms diverge (checked once, never retried) or the slowest\n\
                     lane's speedup falls below --min-speedup (re-measured up to\n\
                     --gate-retries extra times first)"
                        .into(),
                );
            }
            other => return Err(format!("unknown argument {other:?}; try --help")),
        }
    }
    Ok(Args {
        scale,
        repeat,
        matrix,
        obs,
        replay,
        sinks,
        alloc,
        max_overhead,
        gate_retries,
        out,
        sweep_out,
        obs_out,
        replay_out,
        replay_cache,
        sinks_out,
        alloc_out,
        min_speedup,
    })
}

/// The fixed heavy workload of the pipeline report: espresso under
/// FIRSTFIT (the paper's most metadata-hungry pairing).
fn experiment(scale: f64, opts: SimOptions) -> Experiment {
    cell_experiment(Program::Espresso, AllocatorKind::FirstFit, scale, opts)
}

fn cell_experiment(
    program: Program,
    allocator: AllocatorKind,
    scale: f64,
    opts: SimOptions,
) -> Experiment {
    Experiment::new(program, AllocChoice::Paper(allocator))
        .options(SimOptions { scale: Scale(scale), ..opts })
}

/// Best-of-`repeat` wall-clock run; returns the last result and the
/// fastest time.
fn time_run(exp: &Experiment, repeat: u32) -> Result<(RunResult, f64), String> {
    time_closure(repeat, || exp.run().map_err(|e| e.to_string()))
}

/// Two results are interchangeable iff every measured field matches.
fn identical(a: &RunResult, b: &RunResult) -> bool {
    a.instrs == b.instrs
        && a.trace == b.trace
        && a.cache == b.cache
        && a.fault_curve == b.fault_curve
        && a.victim == b.victim
        && a.three_c == b.three_c
        && a.two_level == b.two_level
        && a.frag_curve == b.frag_curve
        && a.heap_high_water == b.heap_high_water
        && a.alloc_stats == b.alloc_stats
}

/// The pipeline report: inline vs. sharded delivery of the full heavy
/// configuration (cache sweep + pager), plus each sink timed alone.
fn pipeline_report(args: &Args) -> Result<PipelineReport, String> {
    let base = SimOptions {
        cache_configs: CacheConfig::paper_sweep(),
        paging: true,
        ..SimOptions::default()
    };

    eprintln!(
        "# pipeline perf: espresso/FirstFit, {} cache configs + pager, scale {}, best of {}",
        base.cache_configs.len(),
        args.scale,
        args.repeat
    );

    let inline_exp = experiment(args.scale, base.clone()).pipeline(PipelineMode::Inline);
    let (inline_result, inline_secs) = time_run(&inline_exp, args.repeat)?;
    let refs = inline_result.data_refs();
    eprintln!("inline:  {inline_secs:.3}s  ({:.1} Mrefs/s)", refs as f64 / inline_secs / 1e6);

    let sharded_exp = experiment(args.scale, base.clone()).pipeline(PipelineMode::Sharded);
    let (sharded_result, sharded_secs) = time_run(&sharded_exp, args.repeat)?;
    eprintln!("sharded: {sharded_secs:.3}s  ({:.1} Mrefs/s)", refs as f64 / sharded_secs / 1e6);

    let same = identical(&inline_result, &sharded_result);
    if !same {
        eprintln!("WARNING: sharded result differs from inline result");
    }

    // Cost of each sink alone: the workload replayed inline with exactly
    // one consumer attached.
    let mut per_sink = Vec::new();
    for cfg in &base.cache_configs {
        let opts = SimOptions { cache_configs: vec![*cfg], paging: false, ..base.clone() };
        let (_, secs) = time_run(&experiment(args.scale, opts), args.repeat)?;
        per_sink.push(timing(&format!("cache-{}K", cfg.size / 1024), secs, refs));
    }
    {
        let opts = SimOptions { cache_configs: vec![], paging: true, ..base.clone() };
        let (_, secs) = time_run(&experiment(args.scale, opts), args.repeat)?;
        per_sink.push(timing("pager", secs, refs));
    }
    {
        // The driver itself: allocator + workload replay, no sinks.
        let opts = SimOptions { cache_configs: vec![], paging: false, ..base.clone() };
        let (_, secs) = time_run(&experiment(args.scale, opts), args.repeat)?;
        per_sink.push(timing("driver-only", secs, refs));
    }
    for t in &per_sink {
        eprintln!("  {:<12} {:.3}s", t.label, t.secs);
    }

    Ok(PipelineReport {
        program: inline_result.program.clone(),
        allocator: inline_result.allocator.clone(),
        scale: args.scale,
        data_refs: refs,
        records: inline_result.trace.total_refs(),
        hardware_threads: default_threads(),
        repeats: args.repeat,
        inline: timing("inline", inline_secs, refs),
        sharded: timing("sharded", sharded_secs, refs),
        speedup: inline_secs / sharded_secs.max(1e-9),
        identical_results: same,
        per_sink,
    })
}

/// The allocators of the `--matrix` sweep: the sequential fit the paper
/// indicts, segregated storage, and the paper's recommended default.
const MATRIX_ALLOCATORS: [AllocatorKind; 3] =
    [AllocatorKind::FirstFit, AllocatorKind::Bsd, AllocatorKind::QuickFit];

/// Best-of-`repeat` replay of a captured stream into a freshly built
/// sink; returns the last build's finished value and the fastest time.
fn time_component<S: AccessSink, R>(
    repeat: u32,
    runs: &[RefRun],
    build: impl Fn() -> S,
    finish: impl Fn(S) -> R,
) -> (R, f64) {
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..repeat {
        let mut sink = build();
        let start = Instant::now();
        sink.record_runs(runs);
        best = best.min(start.elapsed().as_secs_f64());
        result = Some(finish(sink));
    }
    (result.expect("repeat >= 1"), best)
}

/// The bank-vs-sweep report: the single-pass [`SweepCache`] against the
/// per-cache [`CacheBank`] on the paper's five-configuration sweep, per
/// (program, allocator) cell.
///
/// Each cell's run-compressed stream is captured once; both simulators
/// then replay the identical stream, so the measured refs/sec is cache
/// simulation throughput with the (shared, unchanged) workload-driver
/// cost excluded.
fn sweep_report(args: &Args) -> Result<SweepReport, String> {
    let configs = CacheConfig::paper_sweep();
    let cells_spec: Vec<(Program, AllocatorKind)> = if args.matrix {
        Program::FIVE
            .into_iter()
            .flat_map(|p| MATRIX_ALLOCATORS.into_iter().map(move |a| (p, a)))
            .collect()
    } else {
        vec![(Program::Espresso, AllocatorKind::FirstFit)]
    };

    eprintln!(
        "# sweep perf: bank vs single-pass sweep, {} cache configs, {} cell(s), best of {}",
        configs.len(),
        cells_spec.len(),
        args.repeat
    );

    let mut cells = Vec::with_capacity(cells_spec.len());
    let (mut bank_total, mut sweep_total, mut refs_total) = (0.0f64, 0.0f64, 0u64);
    let mut min_speedup = f64::INFINITY;
    let mut all_identical = true;
    for (program, allocator) in cells_spec {
        // No sinks attached: the capture drive only collects the stream.
        let opts = SimOptions { cache_configs: vec![], paging: false, ..SimOptions::default() };
        let exp = cell_experiment(program, allocator, args.scale, opts);
        let runs = exp.capture_runs().map_err(|e| e.to_string())?;
        let mut counter = CountingSink::new();
        counter.record_runs(&runs);
        let refs = counter.stats().total_words();

        let (bank_results, bank_secs) = time_component(
            args.repeat,
            &runs,
            || CacheBank::new(configs.iter().copied()),
            |bank| bank.results(),
        );
        let (sweep_results, sweep_secs) = time_component(
            args.repeat,
            &runs,
            || SweepCache::try_new(configs.iter().copied()).expect("paper sweep is sweepable"),
            |sweep| sweep.results(),
        );

        let same = bank_results == sweep_results;
        let speedup = bank_secs / sweep_secs.max(1e-9);
        eprintln!(
            "  {:<10}/{:<9} bank {bank_secs:.3}s  sweep {sweep_secs:.3}s  {speedup:.2}x  \
             (identical: {same})",
            program.label(),
            allocator.label(),
        );
        if !same {
            eprintln!("WARNING: sweep statistics differ from bank statistics");
        }
        bank_total += bank_secs;
        sweep_total += sweep_secs;
        refs_total += refs;
        min_speedup = min_speedup.min(speedup);
        all_identical &= same;
        cells.push(SweepCell {
            program: program.label().to_string(),
            allocator: allocator.label().to_string(),
            data_refs: refs,
            stream_runs: runs.len() as u64,
            bank: timing("bank", bank_secs, refs),
            sweep: timing("sweep", sweep_secs, refs),
            speedup,
            identical_results: same,
        });
    }

    Ok(SweepReport {
        scale: args.scale,
        repeats: args.repeat,
        matrix: args.matrix,
        cache_configs: configs.iter().map(|c| c.to_string()).collect(),
        cells,
        aggregate_bank_refs_per_sec: refs_total as f64 / bank_total.max(1e-9),
        aggregate_sweep_refs_per_sec: refs_total as f64 / sweep_total.max(1e-9),
        aggregate_speedup: bank_total / sweep_total.max(1e-9),
        min_cell_speedup: min_speedup,
        identical_results: all_identical,
    })
}

/// The cold-vs-warm replay report: every cell of the paper's 5×5 matrix
/// run once against an empty stream cache (generating the workload and
/// storing the captured stream) and then again against the populated
/// cache (replaying the decoded stream straight into the sinks).
///
/// The cold pass is timed once per cell — its second execution would hit
/// the cache it just filled — while the warm pass is best of `--repeat`.
fn replay_report(args: &Args) -> Result<ReplayReport, String> {
    // Start from an empty cache so the first pass is genuinely cold.
    let _ = std::fs::remove_dir_all(&args.replay_cache);
    let configs = CacheConfig::paper_sweep();
    let base = SimOptions {
        cache_configs: configs.clone(),
        paging: true,
        stream_cache: Some(args.replay_cache.clone()),
        ..SimOptions::default()
    };

    eprintln!(
        "# replay perf: 5x5 matrix, {} cache configs + pager, scale {}, warm best of {}",
        configs.len(),
        args.scale,
        args.repeat
    );

    let mut cells = Vec::new();
    let (mut cold_total, mut warm_total) = (0.0f64, 0.0f64);
    let mut min_speedup = f64::INFINITY;
    let mut all_identical = true;
    for program in Program::FIVE {
        for allocator in AllocatorKind::ALL {
            let exp = cell_experiment(program, allocator, args.scale, base.clone());
            let start = Instant::now();
            let cold_result = exp.run().map_err(|e| e.to_string())?;
            let cold_secs = start.elapsed().as_secs_f64();
            let refs = cold_result.data_refs();

            let (warm_result, warm_secs) = time_run(&exp, args.repeat)?;
            let same = identical(&cold_result, &warm_result);
            let speedup = cold_secs / warm_secs.max(1e-9);
            eprintln!(
                "  {:<10}/{:<9} cold {cold_secs:.3}s  warm {warm_secs:.3}s  {speedup:.2}x  \
                 (identical: {same})",
                program.label(),
                allocator.label(),
            );
            if !same {
                eprintln!("WARNING: replayed result differs from the populating run");
            }
            cold_total += cold_secs;
            warm_total += warm_secs;
            min_speedup = min_speedup.min(speedup);
            all_identical &= same;
            cells.push(ReplayCell {
                program: program.label().to_string(),
                allocator: allocator.label().to_string(),
                data_refs: refs,
                cold: timing("cold", cold_secs, refs),
                warm: timing("warm", warm_secs, refs),
                speedup,
                identical_results: same,
            });
        }
    }

    Ok(ReplayReport {
        scale: args.scale,
        repeats: args.repeat,
        cache_configs: configs.iter().map(|c| c.to_string()).collect(),
        cells,
        aggregate_cold_secs: cold_total,
        aggregate_warm_secs: warm_total,
        aggregate_speedup: cold_total / warm_total.max(1e-9),
        min_cell_speedup: min_speedup,
        identical_results: all_identical,
    })
}

/// Run delivery as it was before the run-aware multi-block fast paths:
/// a repeated reference spanning more than one block is expanded back
/// into `count` scalar [`AccessSink::record`] calls, while single-block
/// runs (whose O(1) repeat arithmetic predates this PR) still flow
/// through [`AccessSink::record_runs`].
///
/// Wrapping a current sink in this reproduces the old cost model
/// exactly — the wrapped sink's span fast path never fires because it
/// only ever sees runs it would have absorbed before — which makes it
/// the timing *and* bit-identity baseline for every lane that has no
/// verbatim reference port.
struct OldRunDelivery<S> {
    sink: S,
    /// The wrapped sink's block (or page) size, for the single-block
    /// test the old gate used.
    block: u64,
}

impl<S: AccessSink> AccessSink for OldRunDelivery<S> {
    fn record(&mut self, r: MemRef) {
        self.sink.record(r);
    }

    fn record_runs(&mut self, runs: &[RefRun]) {
        for run in runs {
            if run.count > 1 && !run.r.single_block(self.block) {
                for _ in 0..run.count {
                    self.sink.record(run.r);
                }
            } else {
                self.sink.record_runs(std::slice::from_ref(run));
            }
        }
    }
}

/// Times one sink lane: the current sink against its pre-restructure
/// delivery, both replaying the same captured stream, with the finished
/// statistics compared for bit-identity. The repeats are interleaved
/// (see [`bench::interleaved_best_of`]).
fn sink_lane<S, R, O, Q>(
    label: &str,
    repeat: u32,
    runs: &[RefRun],
    refs: u64,
    current: (impl Fn() -> S, impl Fn(S) -> R),
    reference: (impl Fn() -> O, impl Fn(O) -> Q),
    same: impl Fn(&R, &Q) -> bool,
) -> SinkLane
where
    S: AccessSink,
    O: AccessSink,
{
    let ((cur_result, cur_secs), (ref_result, ref_secs)) = interleaved_best_of(
        repeat,
        || Ok(time_component(1, runs, &current.0, &current.1)),
        || Ok(time_component(1, runs, &reference.0, &reference.1)),
    )
    .expect("sink replay bodies are infallible");
    let identical = same(&cur_result, &ref_result);
    let speedup = ref_secs / cur_secs.max(1e-9);
    eprintln!(
        "  {label:<10} current {cur_secs:.3}s  reference {ref_secs:.3}s  {speedup:.2}x  \
         (identical: {identical})"
    );
    if !identical {
        eprintln!("WARNING: {label} diverged from its pre-restructure delivery");
    }
    SinkLane {
        sink: label.to_string(),
        current: timing("current", cur_secs, refs),
        reference: timing("reference", ref_secs, refs),
        speedup,
        identical_results: identical,
    }
}

/// The isolated sink report: one captured espresso/FirstFit stream
/// replayed into each sink type alone, current vs. pre-restructure
/// delivery (`BENCH_sinks.json`).
fn sinks_report(args: &Args) -> Result<SinksReport, String> {
    let configs = CacheConfig::paper_sweep();
    let single = CacheConfig::direct_mapped(16 * 1024, 32);

    eprintln!(
        "# sinks perf: current vs pre-restructure delivery, scale {}, best of {}",
        args.scale, args.repeat
    );

    // No sinks attached: the capture drive only collects the stream.
    let opts = SimOptions { cache_configs: vec![], paging: false, ..SimOptions::default() };
    let exp = experiment(args.scale, opts);
    let runs = exp.capture_runs().map_err(|e| e.to_string())?;
    let mut counter = CountingSink::new();
    counter.record_runs(&runs);
    let refs = counter.stats().total_words();

    let block = u64::from(single.block);
    let page = vm_sim::PAGE_SIZE;
    let lanes = vec![
        // The sweep lane has a verbatim port of the old implementation,
        // so it measures the SoA restructure itself, not just delivery.
        sink_lane(
            "sweep",
            args.repeat,
            &runs,
            refs,
            (
                || SweepCache::try_new(configs.iter().copied()).expect("paper sweep is sweepable"),
                |sweep: SweepCache| sweep.results(),
            ),
            (
                || {
                    ReferenceSweepCache::try_new(configs.iter().copied())
                        .expect("paper sweep is sweepable")
                },
                |sweep: ReferenceSweepCache| sweep.results(),
            ),
            |a, b| a == b,
        ),
        sink_lane(
            "bank",
            args.repeat,
            &runs,
            refs,
            (|| CacheBank::new(configs.iter().copied()), |bank: CacheBank| bank.results()),
            (
                || OldRunDelivery { sink: CacheBank::new(configs.iter().copied()), block },
                |old: OldRunDelivery<CacheBank>| old.sink.results(),
            ),
            |a, b| a == b,
        ),
        sink_lane(
            "cache-16K",
            args.repeat,
            &runs,
            refs,
            (|| Cache::new(single), |cache: Cache| *cache.stats()),
            (
                || OldRunDelivery { sink: Cache::new(single), block },
                |old: OldRunDelivery<Cache>| *old.sink.stats(),
            ),
            |a, b| a == b,
        ),
        sink_lane(
            "pager",
            args.repeat,
            &runs,
            refs,
            (
                || StackSim::paper(),
                |sim: StackSim| (sim.curve(), sim.accesses(), sim.distinct_pages()),
            ),
            (
                || OldRunDelivery { sink: StackSim::paper(), block: page },
                |old: OldRunDelivery<StackSim>| {
                    (old.sink.curve(), old.sink.accesses(), old.sink.distinct_pages())
                },
            ),
            |a, b| a == b,
        ),
    ];

    let sweep_speedup = lanes[0].speedup;
    let identical_results = lanes.iter().all(|lane| lane.identical_results);
    Ok(SinksReport {
        program: Program::Espresso.label().to_string(),
        allocator: AllocatorKind::FirstFit.label().to_string(),
        scale: args.scale,
        repeats: args.repeat,
        stream_runs: runs.len() as u64,
        data_refs: refs,
        cache_configs: configs.iter().map(|c| c.to_string()).collect(),
        lanes,
        sweep_speedup,
        identical_results,
    })
}

/// One alloc/free step of the extracted allocator script.
#[derive(Debug, Clone, Copy)]
enum AllocOp {
    /// Request `size` bytes from call site `site`; the grant lands in
    /// `slot`.
    Malloc { slot: usize, size: u32, site: u32 },
    /// Release the object in `slot`.
    Free { slot: usize },
}

/// Extracts espresso's malloc/free script at `scale`: the allocator
/// exercise alone, with generator object ids renumbered to dense slots
/// so the replay indexes a flat address table instead of hashing ids.
/// Returns the script and the slot-table size.
fn alloc_script(scale: f64) -> (Vec<AllocOp>, usize) {
    let mut slots: HashMap<u64, usize> = HashMap::new();
    let mut next = 0usize;
    let mut script = Vec::new();
    for event in Program::Espresso.spec().events(Scale(scale)) {
        match event {
            AppEvent::Malloc { id, size, site } => {
                slots.insert(id, next);
                script.push(AllocOp::Malloc { slot: next, size, site });
                next += 1;
            }
            AppEvent::Free { id } => {
                let slot = slots.remove(&id).expect("generator frees live ids");
                script.push(AllocOp::Free { slot });
            }
            _ => {}
        }
    }
    (script, next)
}

/// Builds one side of an allocator lane: the rebuilt engine
/// (`rework: true`) or its verbatim pre-rework port from
/// [`allocators::reference`].
fn build_side(
    kind: AllocatorKind,
    rework: bool,
    ctx: &mut MemCtx<'_>,
) -> Result<Box<dyn Allocator>, String> {
    if rework {
        return kind.build(ctx).map_err(|e| e.to_string());
    }
    Ok(match kind {
        AllocatorKind::FirstFit => {
            Box::new(reference::FirstFit::new(ctx).map_err(|e| e.to_string())?)
        }
        AllocatorKind::GnuGxx => Box::new(reference::GnuGxx::new(ctx).map_err(|e| e.to_string())?),
        AllocatorKind::Bsd => Box::new(reference::Bsd::new(ctx).map_err(|e| e.to_string())?),
        AllocatorKind::GnuLocal => {
            Box::new(reference::GnuLocal::new(ctx).map_err(|e| e.to_string())?)
        }
        AllocatorKind::QuickFit => {
            Box::new(reference::QuickFit::new(ctx).map_err(|e| e.to_string())?)
        }
    })
}

/// Captures the stream exactly as delivered: run boundaries included,
/// since RLE merging and flush cut-points are observable in captured
/// streams and must match across the two engines.
#[derive(Default)]
struct RunSink {
    runs: Vec<RefRun>,
}

impl AccessSink for RunSink {
    fn record(&mut self, r: MemRef) {
        self.runs.push(RefRun::once(r));
    }

    fn record_runs(&mut self, runs: &[RefRun]) {
        self.runs.extend_from_slice(runs);
    }
}

/// Counters only the rebuilt fast paths emit; ignored when comparing
/// recorder state against the reference port.
const NEW_ALLOC_COUNTERS: [&str; 3] =
    ["alloc.bitmap_probe", "alloc.quick_hit", "alloc.boundary_coalesce"];

/// Everything observable about one scripted drive, for the lane's
/// one-time identity check.
#[derive(Debug, PartialEq)]
struct LaneObservation {
    runs: Vec<RefRun>,
    heap_words: Vec<u32>,
    stats: AllocStats,
    instrs: InstrCounter,
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Vec<(u64, u64)>>,
}

/// Drives the extracted script through one side of a lane, mimicking
/// the engine's phase discipline. Returns the stats, per-phase
/// instruction totals, the heap image's words (when `capture_heap`),
/// and the wall-clock seconds from allocator build through final flush
/// (heap and sink setup excluded).
fn drive_script(
    kind: AllocatorKind,
    rework: bool,
    script: &[AllocOp],
    nslots: usize,
    sink: &mut dyn AccessSink,
    rec: Option<&mut MemoryRecorder>,
    capture_heap: bool,
) -> Result<(AllocStats, InstrCounter, Vec<u32>, f64), String> {
    let mut heap = HeapImage::new();
    let mut instrs = InstrCounter::new();
    let mut addrs: Vec<Option<Address>> = vec![None; nslots];
    let start = Instant::now();
    let stats = {
        let mut ctx = MemCtx::batched(&mut heap, sink, &mut instrs);
        if let Some(r) = rec {
            ctx = ctx.with_recorder(r);
        }
        ctx.set_phase(Phase::Malloc);
        let mut alloc = build_side(kind, rework, &mut ctx)?;
        ctx.set_phase(Phase::App);
        for &op in script {
            match op {
                AllocOp::Malloc { slot, size, site } => {
                    ctx.set_phase(Phase::Malloc);
                    let p = alloc
                        .malloc_at(size, site, &mut ctx)
                        .map_err(|e| format!("{}: {e}", kind.label()))?;
                    ctx.set_phase(Phase::App);
                    addrs[slot] = Some(p);
                }
                AllocOp::Free { slot } => {
                    let p = addrs[slot].take().expect("script frees live slots");
                    ctx.set_phase(Phase::Free);
                    alloc.free(p, &mut ctx).map_err(|e| format!("{}: {e}", kind.label()))?;
                    ctx.set_phase(Phase::App);
                }
            }
        }
        ctx.flush();
        *alloc.stats()
    };
    let secs = start.elapsed().as_secs_f64();
    let heap_words = if capture_heap {
        let base = heap.base();
        (0..(heap.brk() - base) / 4).map(|i| heap.read_u32(base + i * 4)).collect()
    } else {
        Vec::new()
    };
    Ok((stats, instrs, heap_words, secs))
}

/// One side's full observation: stream, heap, stats, instruction
/// totals, and recorder state (minus the rebuilt engine's new
/// counters).
fn observe_side(
    kind: AllocatorKind,
    rework: bool,
    script: &[AllocOp],
    nslots: usize,
) -> Result<LaneObservation, String> {
    let mut sink = RunSink::default();
    let mut rec = MemoryRecorder::new();
    let (stats, instrs, heap_words, _) =
        drive_script(kind, rework, script, nslots, &mut sink, Some(&mut rec), true)?;
    let snap = rec.snapshot();
    let counters = snap
        .counters
        .iter()
        .filter(|(name, _)| !NEW_ALLOC_COUNTERS.contains(&name.as_str()))
        .map(|(name, &v)| (name.clone(), v))
        .collect();
    let histograms =
        snap.histograms.iter().map(|(name, h)| (name.clone(), h.buckets.clone())).collect();
    Ok(LaneObservation { runs: sink.runs, heap_words, stats, instrs, counters, histograms })
}

/// One lane's identity verdict, plus what the timed repeats need.
struct LaneIdentity {
    kind: AllocatorKind,
    allocator: String,
    /// Word-granular data references the lane's stream expands to.
    data_refs: u64,
    identical: bool,
}

/// The one-time identity pass plus the shared script.
struct AllocIdentity {
    script: Vec<AllocOp>,
    nslots: usize,
    lanes: Vec<LaneIdentity>,
}

/// Checks every lane's bit-identity exactly once: emitted stream (run
/// boundaries included), heap image, stats, per-phase instruction
/// totals, and recorder state up to the engine's new counters.
fn alloc_identity(args: &Args) -> Result<AllocIdentity, String> {
    let (script, nslots) = alloc_script(args.scale);
    let mallocs = script.iter().filter(|op| matches!(op, AllocOp::Malloc { .. })).count();
    eprintln!(
        "# alloc perf: espresso script, {} events ({mallocs} mallocs), scale {}, best of {}",
        script.len(),
        args.scale,
        args.repeat
    );
    let mut lanes = Vec::new();
    for kind in AllocatorKind::ALL {
        let engine = observe_side(kind, true, &script, nslots)?;
        let reference = observe_side(kind, false, &script, nslots)?;
        let identical = engine == reference;
        if !identical {
            eprintln!("WARNING: {} diverged from its pre-rework reference port", kind.label());
        }
        let mut counter = CountingSink::new();
        counter.record_runs(&engine.runs);
        lanes.push(LaneIdentity {
            kind,
            allocator: kind.label().to_string(),
            data_refs: counter.stats().total_words(),
            identical,
        });
    }
    Ok(AllocIdentity { script, nslots, lanes })
}

/// One paper allocator timed under the rebuilt engine and under its
/// verbatim reference port.
#[derive(Debug, Clone, Serialize)]
struct AllocLane {
    /// The paper allocator that ran.
    allocator: String,
    /// Word-granular data references the lane's stream expands to.
    data_refs: u64,
    /// The rebuilt hot-path engine driving the script.
    engine: Timing,
    /// The verbatim pre-rework port driving the same script.
    reference: Timing,
    /// `reference.secs / engine.secs`.
    speedup: f64,
    /// Whether the two sides were bit-identical (stream, heap, stats,
    /// instruction totals, histograms).
    identical_results: bool,
}

/// The allocator harness's JSON report (`BENCH_alloc.json`).
#[derive(Debug, Clone, Serialize)]
struct AllocReport {
    program: String,
    scale: f64,
    repeats: u32,
    /// Which measurement attempt this report records (1-based; above 1
    /// only when earlier attempts tripped the speedup gate and
    /// `--gate-retries` allowed a re-measurement).
    gate_attempt: u32,
    /// Malloc/free events in the extracted script.
    events: u64,
    lanes: Vec<AllocLane>,
    /// The lane with the largest reference-side time (what
    /// `--min-speedup` gates).
    slowest_lane: String,
    slowest_lane_speedup: f64,
    /// Smallest per-lane speedup (the conservative headline).
    min_lane_speedup: f64,
    /// True iff every lane was bit-identical across the two engines.
    identical_results: bool,
}

/// Times every allocator lane, interleaved best-of-`--repeat` per lane.
/// The identity verdicts come from the (never re-run) `identity` pass.
///
/// The timed drives discard into a [`NullSink`]: sink-side accounting is
/// identical on both sides of a lane (the identity pass proved the runs
/// bit-equal, and `data_refs` comes from there), so counting during the
/// timed pass would only add a shared constant that dilutes the very
/// production-cost difference the lane exists to measure.
fn alloc_report(
    args: &Args,
    identity: &AllocIdentity,
    gate_attempt: u32,
) -> Result<AllocReport, String> {
    let timed = |kind: AllocatorKind, rework: bool| -> Result<((), f64), String> {
        let mut sink = NullSink;
        let (_, _, _, secs) =
            drive_script(kind, rework, &identity.script, identity.nslots, &mut sink, None, false)?;
        Ok(((), secs))
    };
    let mut lanes = Vec::new();
    for lane in &identity.lanes {
        let (((), cur_secs), ((), ref_secs)) = interleaved_best_of(
            args.repeat,
            || timed(lane.kind, true),
            || timed(lane.kind, false),
        )?;
        let speedup = ref_secs / cur_secs.max(1e-9);
        eprintln!(
            "  {:<9} engine {cur_secs:.3}s  reference {ref_secs:.3}s  {speedup:.2}x  \
             (identical: {})",
            lane.allocator, lane.identical
        );
        lanes.push(AllocLane {
            allocator: lane.allocator.clone(),
            data_refs: lane.data_refs,
            engine: timing("engine", cur_secs, lane.data_refs),
            reference: timing("reference", ref_secs, lane.data_refs),
            speedup,
            identical_results: lane.identical,
        });
    }
    let slowest = lanes
        .iter()
        .max_by(|a, b| a.reference.secs.total_cmp(&b.reference.secs))
        .expect("five lanes");
    let min_lane_speedup = lanes.iter().map(|l| l.speedup).fold(f64::INFINITY, f64::min);
    Ok(AllocReport {
        program: Program::Espresso.label().to_string(),
        scale: args.scale,
        repeats: args.repeat,
        gate_attempt,
        events: identity.script.len() as u64,
        slowest_lane: slowest.allocator.clone(),
        slowest_lane_speedup: slowest.speedup,
        min_lane_speedup,
        identical_results: lanes.iter().all(|l| l.identical_results),
        lanes,
    })
}

/// The observability overhead report (`BENCH_obs.json`).
#[derive(Debug, Clone, Serialize)]
struct ObsReport {
    program: String,
    allocator: String,
    scale: f64,
    repeats: u32,
    /// The gate the no-op overhead was checked against.
    max_overhead: f64,
    /// Which measurement attempt this report records (1-based; above 1
    /// only when earlier attempts tripped the gate and `--gate-retries`
    /// allowed a re-measurement).
    gate_attempt: u32,
    /// Recorder absent: the instrumented binary's plain `run()`.
    baseline: Timing,
    /// [`obs::NullRecorder`] attached — what "metrics compiled in but
    /// disabled" costs.
    null_recorder: Timing,
    /// [`obs::MemoryRecorder`] attached — what full collection costs.
    memory_recorder: Timing,
    /// `null_recorder.secs / baseline.secs - 1`.
    noop_overhead: f64,
    /// `memory_recorder.secs / baseline.secs - 1`.
    recording_overhead: f64,
    /// Whether all three runs produced bit-identical [`RunResult`]s.
    identical_results: bool,
    /// Distinct metric names the in-memory recorder captured.
    counters: usize,
    histograms: usize,
    spans: usize,
}

/// The observability harness: the heavy configuration run recorder-free,
/// with a no-op recorder, and with a collecting recorder.
fn obs_report(args: &Args, gate_attempt: u32) -> Result<ObsReport, String> {
    let opts = SimOptions {
        cache_configs: CacheConfig::paper_sweep(),
        paging: true,
        ..SimOptions::default()
    };
    let exp = experiment(args.scale, opts);
    eprintln!(
        "# obs perf: espresso/FirstFit, scale {}, best of {}, no-op gate {:.1}%",
        args.scale,
        args.repeat,
        args.max_overhead * 100.0
    );

    let (base_result, base_secs) = time_run(&exp, args.repeat)?;
    let refs = base_result.data_refs();
    eprintln!("no recorder:     {base_secs:.3}s");

    let (null_result, null_secs) = time_closure(args.repeat, || {
        let mut rec = NullRecorder;
        exp.run_with_recorder(&mut rec).map_err(|e| e.to_string())
    })?;
    eprintln!("null recorder:   {null_secs:.3}s");

    let ((mem_result, metrics), mem_secs) =
        time_closure(args.repeat, || exp.run_instrumented().map_err(|e| e.to_string()))?;
    eprintln!("memory recorder: {mem_secs:.3}s");

    let same = identical(&base_result, &null_result) && identical(&base_result, &mem_result);
    if !same {
        eprintln!("WARNING: recording changed the simulation result");
    }
    Ok(ObsReport {
        program: base_result.program.clone(),
        allocator: base_result.allocator.clone(),
        scale: args.scale,
        repeats: args.repeat,
        max_overhead: args.max_overhead,
        gate_attempt,
        baseline: timing("no-recorder", base_secs, refs),
        null_recorder: timing("null-recorder", null_secs, refs),
        memory_recorder: timing("memory-recorder", mem_secs, refs),
        noop_overhead: null_secs / base_secs.max(1e-9) - 1.0,
        recording_overhead: mem_secs / base_secs.max(1e-9) - 1.0,
        identical_results: same,
        counters: metrics.counters.len(),
        histograms: metrics.histograms.len(),
        spans: metrics.spans.len(),
    })
}

fn write_json<T: Serialize>(path: &PathBuf, value: &T) -> Result<(), String> {
    let json = serde_json::to_string_pretty(value).expect("serialize report");
    std::fs::write(path, json).map_err(|e| format!("write {}: {e}", path.display()))?;
    eprintln!("[wrote {}]", path.display());
    Ok(())
}

fn run() -> Result<(), String> {
    let args = parse_args()?;

    if args.obs {
        // The overhead gate compares two sub-second wall-clock timings,
        // so one preempted run on a loaded CI machine can push a genuine
        // ~0% overhead past the bound. `run_gated` re-measures the whole
        // comparison up to `--gate-retries` extra times before declaring
        // a failure; result identity is never retried — a divergence is
        // a bug, not noise.
        return run_gated(args.gate_retries, |attempt| {
            let report = obs_report(&args, attempt)?;
            eprintln!(
                "no-op overhead: {:+.2}%  full recording: {:+.2}%  (identical results: {})",
                report.noop_overhead * 100.0,
                report.recording_overhead * 100.0,
                report.identical_results
            );
            write_json(&args.obs_out, &report)?;
            if !report.identical_results {
                return Ok(GateOutcome::Diverged("recording changed the simulation result".into()));
            }
            if report.noop_overhead <= args.max_overhead {
                return Ok(GateOutcome::Pass);
            }
            Ok(GateOutcome::Slow {
                note: format!(
                    "overhead {:.2}% over the {:.2}% gate",
                    report.noop_overhead * 100.0,
                    args.max_overhead * 100.0
                ),
                fail: format!(
                    "disabled-recorder overhead {:.2}% exceeds the {:.2}% gate \
                     after {} attempt(s)",
                    report.noop_overhead * 100.0,
                    args.max_overhead * 100.0,
                    attempt
                ),
            })
        });
    }

    if args.sinks {
        // Like the obs overhead gate, the speedup gate compares short
        // wall-clock timings, so the gate is re-measured; a bit-identity
        // divergence is a bug, not noise, and is never retried.
        return run_gated(args.gate_retries, |attempt| {
            let report = sinks_report(&args)?;
            eprintln!(
                "sinks sweep speedup: {:.2}x (identical results: {})",
                report.sweep_speedup, report.identical_results
            );
            write_json(&args.sinks_out, &report)?;
            if !report.identical_results {
                return Ok(GateOutcome::Diverged(
                    "a sink lane diverged from its pre-restructure delivery".into(),
                ));
            }
            if report.sweep_speedup >= args.min_speedup {
                return Ok(GateOutcome::Pass);
            }
            Ok(GateOutcome::Slow {
                note: format!(
                    "sweep speedup {:.2}x below the {:.2}x gate",
                    report.sweep_speedup, args.min_speedup
                ),
                fail: format!(
                    "sweep lane speedup {:.2}x is below the {:.2}x gate after {} attempt(s)",
                    report.sweep_speedup, args.min_speedup, attempt
                ),
            })
        });
    }

    if args.alloc {
        // The allocator lanes' bit-identity (streams, heap images,
        // stats, instruction totals, histograms) is checked exactly once
        // — a divergence is an engine bug and must never be absorbed by
        // a retry. Only the wall-clock speedup gate re-measures.
        let identity = alloc_identity(&args)?;
        if let Some(lane) = identity.lanes.iter().find(|lane| !lane.identical) {
            // Still write the report so CI uploads evidence of what ran.
            let report = alloc_report(&args, &identity, 1)?;
            write_json(&args.alloc_out, &report)?;
            return Err(format!(
                "allocator lane {} diverged from its pre-rework reference port",
                lane.allocator
            ));
        }
        return run_gated(args.gate_retries, |attempt| {
            let report = alloc_report(&args, &identity, attempt)?;
            eprintln!(
                "alloc slowest lane ({}): {:.2}x, min lane {:.2}x (identical results: {})",
                report.slowest_lane,
                report.slowest_lane_speedup,
                report.min_lane_speedup,
                report.identical_results
            );
            write_json(&args.alloc_out, &report)?;
            if report.slowest_lane_speedup >= args.min_speedup {
                return Ok(GateOutcome::Pass);
            }
            Ok(GateOutcome::Slow {
                note: format!(
                    "slowest-lane speedup {:.2}x below the {:.2}x gate",
                    report.slowest_lane_speedup, args.min_speedup
                ),
                fail: format!(
                    "slowest allocator lane ({}) speedup {:.2}x is below the {:.2}x gate \
                     after {} attempt(s)",
                    report.slowest_lane, report.slowest_lane_speedup, args.min_speedup, attempt
                ),
            })
        });
    }

    if args.replay {
        let report = replay_report(&args)?;
        eprintln!(
            "replay speedup: {:.2}x aggregate, {:.2}x min cell (identical results: {})",
            report.aggregate_speedup, report.min_cell_speedup, report.identical_results
        );
        write_json(&args.replay_out, &report)?;
        if !report.identical_results {
            return Err("a replayed cell diverged from its populating run".into());
        }
        if report.aggregate_speedup < args.min_speedup {
            return Err(format!(
                "aggregate replay speedup {:.2}x is below the {:.2}x gate",
                report.aggregate_speedup, args.min_speedup
            ));
        }
        return Ok(());
    }

    let pipeline = pipeline_report(&args)?;
    eprintln!(
        "pipeline speedup: {:.2}x (identical results: {})",
        pipeline.speedup, pipeline.identical_results
    );
    write_json(&args.out, &pipeline)?;

    let sweep = sweep_report(&args)?;
    eprintln!(
        "sweep speedup: {:.2}x aggregate, {:.2}x min cell (identical results: {})",
        sweep.aggregate_speedup, sweep.min_cell_speedup, sweep.identical_results
    );
    write_json(&args.sweep_out, &sweep)?;

    if !pipeline.identical_results {
        return Err("sharded pipeline diverged from inline".into());
    }
    if !sweep.identical_results {
        return Err("single-pass sweep diverged from the per-cache bank".into());
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
