//! One Criterion benchmark per table and figure of the paper.
//!
//! Each bench regenerates its artifact end-to-end (workload generation,
//! allocator simulation, cache/paging simulation, figure extraction) at a
//! reduced scale, so `cargo bench -p bench --bench paper` both exercises
//! every experiment and reports how long regeneration takes. The printed
//! artifacts themselves come from the `repro` binary.

use alloc_locality::experiments::{
    exec_time_figure, fig1, miss_curves, paging_figure, table1, table2, table6, time_table,
};
use alloc_locality::{standard_matrix, AllocChoice, Matrix, SimOptions};
use cache_sim::CacheConfig;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use workloads::{Program, Scale};

/// Bench scale: small enough for Criterion's repeated sampling.
const SCALE: f64 = 0.002;

fn opts(paging: bool) -> SimOptions {
    SimOptions { scale: Scale(SCALE), paging, ..SimOptions::default() }
}

fn main_matrix(paging: bool) -> Matrix {
    standard_matrix(&Program::FIVE, &AllocChoice::paper_five(), &opts(paging))
        .expect("paper sweep runs")
}

fn gs_matrix() -> Matrix {
    standard_matrix(&Program::GS_INPUTS, &AllocChoice::paper_five(), &opts(false))
        .expect("GS sweep runs")
}

fn bench_fig1(c: &mut Criterion) {
    c.bench_function("fig1_time_in_malloc", |b| {
        b.iter(|| {
            let m = standard_matrix(
                &Program::FIVE,
                &AllocChoice::paper_five(),
                &SimOptions {
                    cache_configs: vec![],
                    paging: false,
                    scale: Scale(SCALE),
                    ..SimOptions::default()
                },
            )
            .expect("runs");
            black_box(fig1(&m))
        })
    });
}

fn bench_fig2_fig3(c: &mut Criterion) {
    c.bench_function("fig2_fig3_page_fault_curves", |b| {
        b.iter(|| {
            let m = standard_matrix(
                &[Program::GsLarge, Program::Ptc],
                &AllocChoice::paper_five(),
                &SimOptions {
                    cache_configs: vec![],
                    paging: true,
                    scale: Scale(SCALE),
                    ..SimOptions::default()
                },
            )
            .expect("runs");
            black_box((paging_figure(&m, "GS"), paging_figure(&m, "ptc")))
        })
    });
}

fn bench_fig4_fig5_tables45(c: &mut Criterion) {
    let k16 = CacheConfig::direct_mapped(16 * 1024, 32);
    let k64 = CacheConfig::direct_mapped(64 * 1024, 32);
    c.bench_function("fig4_fig5_table4_table5_exec_time", |b| {
        b.iter(|| {
            let m = main_matrix(false);
            black_box((
                exec_time_figure(&m, k16),
                exec_time_figure(&m, k64),
                time_table(&m, k16),
                time_table(&m, k64),
            ))
        })
    });
}

fn bench_fig678(c: &mut Criterion) {
    c.bench_function("fig6_fig7_fig8_miss_curves", |b| {
        b.iter(|| {
            let m = gs_matrix();
            black_box((
                miss_curves(&m, "GS-Small"),
                miss_curves(&m, "GS-Medium"),
                miss_curves(&m, "GS"),
            ))
        })
    });
}

fn bench_tables123(c: &mut Criterion) {
    c.bench_function("table1_table2_table3_program_stats", |b| {
        b.iter(|| {
            let m = standard_matrix(
                &[
                    Program::Espresso,
                    Program::GsSmall,
                    Program::GsMedium,
                    Program::GsLarge,
                    Program::Ptc,
                    Program::Gawk,
                    Program::Make,
                ],
                &[AllocChoice::Paper(allocators::AllocatorKind::FirstFit)],
                &SimOptions {
                    cache_configs: vec![],
                    paging: false,
                    scale: Scale(SCALE),
                    ..SimOptions::default()
                },
            )
            .expect("runs");
            black_box((table1(), table2(&m, &Program::FIVE), table2(&m, &Program::GS_INPUTS)))
        })
    });
}

fn bench_table6(c: &mut Criterion) {
    let k64 = CacheConfig::direct_mapped(64 * 1024, 32);
    c.bench_function("table6_boundary_tags", |b| {
        b.iter(|| {
            let m = standard_matrix(
                &Program::FIVE,
                &[
                    AllocChoice::Paper(allocators::AllocatorKind::GnuLocal),
                    AllocChoice::GnuLocalTagged,
                ],
                &SimOptions {
                    cache_configs: vec![k64],
                    paging: false,
                    scale: Scale(SCALE),
                    ..SimOptions::default()
                },
            )
            .expect("runs");
            black_box(table6(&m, k64))
        })
    });
}

criterion_group! {
    name = paper;
    config = Criterion::default().sample_size(10);
    targets = bench_fig1, bench_fig2_fig3, bench_fig4_fig5_tables45, bench_fig678,
              bench_tables123, bench_table6
}
criterion_main!(paper);
