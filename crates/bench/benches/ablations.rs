//! Ablation benches for the design choices DESIGN.md calls out.
//!
//! Each bench measures a design knob the paper discusses, reporting the
//! simulated miss count / instruction count trade-off through Criterion
//! timings of the full pipeline plus printed summaries on first run:
//!
//! * coalescing on/off in the first-fit family (§4.1: "coalescing
//!   adjacent free blocks will in most cases both increase total
//!   execution time and reduce program reference locality");
//! * the split threshold (Knuth's optimization);
//! * roving pointer vs. head-anchored search;
//! * size-class policy granularity (powers of two vs. bounded
//!   fragmentation vs. profile-driven exact classes, §4.4).

use alloc_locality::{AllocChoice, Experiment, SimOptions};
use allocators::first_fit::FirstFitConfig;
use allocators::gnu_gxx::GnuGxxConfig;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use workloads::{PhaseBehavior, Program, Scale};

const SCALE: f64 = 0.002;

fn opts() -> SimOptions {
    SimOptions {
        cache_configs: vec![cache_sim::CacheConfig::direct_mapped(64 * 1024, 32)],
        paging: false,
        scale: Scale(SCALE),
        ..SimOptions::default()
    }
}

fn run(choice: AllocChoice) -> alloc_locality::RunResult {
    Experiment::new(Program::Espresso, choice).options(opts()).run().expect("run completes")
}

fn bench_coalescing(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_coalescing");
    for (name, coalesce) in [("on", true), ("off", false)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                black_box(run(AllocChoice::FirstFitTuned(FirstFitConfig {
                    coalesce,
                    ..FirstFitConfig::default()
                })))
            })
        });
    }
    g.finish();
}

fn bench_split_threshold(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_split_threshold");
    for threshold in [0u32, 24, 64, 256] {
        g.bench_function(threshold.to_string(), |b| {
            b.iter(|| {
                black_box(run(AllocChoice::FirstFitTuned(FirstFitConfig {
                    split_threshold: threshold,
                    ..FirstFitConfig::default()
                })))
            })
        });
    }
    g.finish();
}

fn bench_roving_pointer(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_roving_pointer");
    for (name, roving) in [("roving", true), ("head", false)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                black_box(run(AllocChoice::FirstFitTuned(FirstFitConfig {
                    roving,
                    ..FirstFitConfig::default()
                })))
            })
        });
    }
    g.finish();
}

fn bench_size_class_policy(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_size_classes");
    g.bench_function("profile_exact", |b| b.iter(|| black_box(run(AllocChoice::Custom))));
    for bound in [0.1, 0.25, 0.5] {
        g.bench_function(format!("bounded_{bound}"), |b| {
            b.iter(|| black_box(run(AllocChoice::CustomBounded(bound))))
        });
    }
    g.finish();
}

fn bench_gxx_coalescing(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_gxx_coalescing");
    for (name, coalesce) in [("on", true), ("off", false)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                black_box(run(AllocChoice::GnuGxxTuned(GnuGxxConfig {
                    coalesce,
                    ..GnuGxxConfig::default()
                })))
            })
        });
    }
    g.finish();
}

fn bench_phase_structure(c: &mut Criterion) {
    // Coalescing's best case: cohorts dying together at phase
    // boundaries. Compare FirstFit with and without phase structure.
    let mut g = c.benchmark_group("ablation_phase_structure");
    for (name, phases) in
        [("steady", None), ("phased", Some(PhaseBehavior { period: 2000, cohort_fraction: 0.8 }))]
    {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut spec = Program::Espresso.spec();
                spec.phases = phases;
                black_box(
                    Experiment::with_spec(
                        spec,
                        AllocChoice::Paper(allocators::AllocatorKind::FirstFit),
                    )
                    .options(opts())
                    .run()
                    .expect("run completes"),
                )
            })
        });
    }
    g.finish();
}

fn bench_lifetime_prediction(c: &mut Criterion) {
    // §5.1 future work: does call-site prediction pay on a phased
    // workload where sites have distinct fates?
    let mut g = c.benchmark_group("ablation_lifetime_prediction");
    for (name, choice) in [("custom", AllocChoice::Custom), ("predictive", AllocChoice::Predictive)]
    {
        g.bench_function(name, |b| {
            b.iter(|| {
                black_box(
                    Experiment::new(Program::Espresso, choice.clone())
                        .options(opts())
                        .run()
                        .expect("run completes"),
                )
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = ablations;
    config = Criterion::default().sample_size(10);
    targets = bench_coalescing, bench_split_threshold, bench_roving_pointer,
              bench_size_class_policy, bench_gxx_coalescing, bench_phase_structure,
              bench_lifetime_prediction
}
criterion_main!(ablations);
