//! Microbenchmarks of the substrate components, so regressions in the
//! simulators themselves (rather than the allocators under study) are
//! visible: raw allocator op throughput, cache-simulator throughput, and
//! the LRU stack-distance pager.

use allocators::AllocatorKind;
use cache_sim::{Cache, CacheConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use sim_mem::{Address, HeapImage, InstrCounter, MemCtx, MemRef, NullSink};
use std::hint::black_box;
use vm_sim::StackSim;

fn bench_allocator_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("allocator_ops");
    for kind in AllocatorKind::ALL {
        g.bench_function(kind.label(), |b| {
            b.iter(|| {
                let mut heap = HeapImage::new();
                let mut sink = NullSink;
                let mut instrs = InstrCounter::new();
                let mut ctx = MemCtx::new(&mut heap, &mut sink, &mut instrs);
                let mut a = kind.build(&mut ctx).expect("allocator builds");
                let mut live = Vec::with_capacity(512);
                for i in 0..2000u32 {
                    live.push(a.malloc(8 + (i * 13) % 120, &mut ctx).expect("malloc"));
                    if live.len() > 256 {
                        let victim = live.swap_remove((i as usize * 7) % live.len());
                        a.free(victim, &mut ctx).expect("free");
                    }
                }
                black_box(a.stats().mallocs)
            })
        });
    }
    g.finish();
}

fn bench_cache_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache_sim");
    for assoc in [1u32, 4] {
        g.bench_function(format!("{assoc}-way"), |b| {
            b.iter(|| {
                let mut cache = Cache::new(CacheConfig::set_associative(64 * 1024, 32, assoc));
                let mut x = 0x243f_6a88u64;
                for _ in 0..100_000 {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    cache.access(MemRef::app_read(Address::new(x % (1 << 22)), 4));
                }
                black_box(cache.stats().misses())
            })
        });
    }
    g.finish();
}

fn bench_stack_sim(c: &mut Criterion) {
    c.bench_function("vm_sim_stack_distance", |b| {
        b.iter(|| {
            let mut sim = StackSim::paper();
            let mut x = 0x9e37_79b9u64;
            for _ in 0..100_000 {
                x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                sim.access_page(x % 2048);
            }
            black_box(sim.faults_at(256))
        })
    });
}

criterion_group! {
    name = substrates;
    config = Criterion::default().sample_size(10);
    targets = bench_allocator_ops, bench_cache_throughput, bench_stack_sim
}
criterion_main!(substrates);
