//! The `serve` daemon: bind, print the address, run until a
//! `POST /shutdown` (or SIGTERM via process kill) stops it.
//!
//! ```text
//! serve [--addr HOST:PORT] [--workers N] [--queue-depth N]
//!       [--max-body-bytes N] [--read-timeout-ms N]
//!       [--result-cache-entries N] [--report-cache DIR]
//!       [--report-cache-max-bytes N] [--stream-cache DIR]
//!       [--stream-cache-bytes N]
//! ```

use serve::{Server, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: serve [--addr HOST:PORT] [--workers N] [--queue-depth N]\n\
         \x20            [--max-body-bytes N] [--read-timeout-ms N]\n\
         \x20            [--result-cache-entries N] [--report-cache DIR]\n\
         \x20            [--report-cache-max-bytes N] [--stream-cache DIR]\n\
         \x20            [--stream-cache-bytes N]"
    );
    std::process::exit(2);
}

fn parse_flag<T: std::str::FromStr>(args: &mut std::env::Args, flag: &str) -> T {
    let Some(raw) = args.next() else {
        eprintln!("{flag} needs a value");
        usage();
    };
    let Ok(value) = raw.parse::<T>() else {
        eprintln!("{flag}: cannot parse {raw:?}");
        usage();
    };
    value
}

fn main() {
    let mut cfg = ServerConfig { addr: "127.0.0.1:7077".into(), ..ServerConfig::default() };
    cfg.workers = alloc_locality::default_threads().min(4);
    let mut args = std::env::args();
    let _ = args.next();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => cfg.addr = parse_flag(&mut args, "--addr"),
            "--workers" => cfg.workers = parse_flag(&mut args, "--workers"),
            "--queue-depth" => cfg.queue_depth = parse_flag(&mut args, "--queue-depth"),
            "--max-body-bytes" => cfg.max_body_bytes = parse_flag(&mut args, "--max-body-bytes"),
            "--read-timeout-ms" => cfg.read_timeout_ms = parse_flag(&mut args, "--read-timeout-ms"),
            "--result-cache-entries" => {
                cfg.result_cache_entries = parse_flag(&mut args, "--result-cache-entries");
            }
            "--report-cache" => {
                cfg.report_cache = Some(parse_flag::<String>(&mut args, "--report-cache").into());
            }
            "--report-cache-max-bytes" => {
                cfg.report_cache_max_bytes = parse_flag(&mut args, "--report-cache-max-bytes");
            }
            "--stream-cache" => {
                cfg.stream_cache = Some(parse_flag::<String>(&mut args, "--stream-cache").into());
            }
            "--stream-cache-bytes" => {
                cfg.stream_cache_bytes = Some(parse_flag(&mut args, "--stream-cache-bytes"));
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage();
            }
        }
    }
    let workers = cfg.workers;
    let server = match Server::start(cfg) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("serve: bind failed: {e}");
            std::process::exit(1);
        }
    };
    println!("serve: listening on http://{} with {workers} workers", server.addr());
    let summary = server.wait();
    println!(
        "serve: drained and stopped ({} completed, {} failed)",
        summary.completed, summary.failed
    );
}
