//! A blocking, connection-per-request client for the daemon.
//!
//! Used by the integration tests and the `loadgen` harness. Each call
//! opens a fresh `TcpStream`, writes one request, and reads one
//! `Connection: close` response — matching the server's one-request
//! connection model exactly, with no connection pooling to reason about.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use alloc_locality::JobSpec;
use explore::SweepSpec;

use crate::{
    HealthResponse, MetricsResponse, StatusResponse, SubmitResponse, SweepStatusResponse,
    SweepSubmitResponse,
};

/// One parsed response.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// The body, verbatim.
    pub body: String,
}

impl Response {
    /// Parses the body as `T`.
    ///
    /// # Errors
    ///
    /// Returns a [`ClientError::Protocol`] when the body is not valid
    /// JSON for `T`.
    pub fn json<T: serde::Deserialize>(&self) -> Result<T, ClientError> {
        serde_json::from_str(&self.body)
            .map_err(|e| ClientError::Protocol(format!("bad body for HTTP {}: {e}", self.status)))
    }
}

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server answered, but not with what the call expected.
    Protocol(String),
    /// Waiting for a job outlasted the deadline.
    DeadlineExceeded(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket error: {e}"),
            ClientError::Protocol(msg) => f.write_str(msg),
            ClientError::DeadlineExceeded(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A handle on one daemon address.
#[derive(Debug, Clone)]
pub struct Client {
    addr: SocketAddr,
    timeout: Duration,
}

impl Client {
    /// A client for the daemon at `addr` with a 10-second per-request
    /// timeout.
    pub fn new(addr: SocketAddr) -> Self {
        Client { addr, timeout: Duration::from_secs(10) }
    }

    /// Overrides the per-request socket timeout.
    #[must_use]
    pub fn timeout(self, timeout: Duration) -> Self {
        Client { timeout, ..self }
    }

    /// Sends one request and reads the full response.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError::Io`] on socket failure and
    /// [`ClientError::Protocol`] when the response is not parseable HTTP.
    pub fn request(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<Response, ClientError> {
        let mut stream = TcpStream::connect_timeout(&self.addr, self.timeout)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        let body = body.unwrap_or("");
        let request = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
            self.addr,
            body.len()
        );
        stream.write_all(request.as_bytes())?;
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw)?;
        parse_response(&raw)
    }

    /// Submits a job spec.
    ///
    /// # Errors
    ///
    /// Propagates transport errors; returns [`ClientError::Protocol`]
    /// with the server's error body on a non-2xx status.
    pub fn submit(&self, spec: &JobSpec) -> Result<SubmitResponse, ClientError> {
        let body = serde_json::to_string(spec).expect("serialize job spec");
        let response = self.request("POST", "/jobs", Some(&body))?;
        if response.status == 200 || response.status == 202 {
            response.json()
        } else {
            Err(ClientError::Protocol(format!(
                "submit answered HTTP {}: {}",
                response.status, response.body
            )))
        }
    }

    /// Polls `GET /jobs/{id}` until the job is done or failed, or the
    /// deadline passes.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError::DeadlineExceeded`] on timeout,
    /// [`ClientError::Protocol`] when the job failed.
    pub fn wait_done(&self, id: &str, deadline: Duration) -> Result<StatusResponse, ClientError> {
        let start = Instant::now();
        loop {
            let response = self.request("GET", &format!("/jobs/{id}"), None)?;
            let status: StatusResponse = response.json()?;
            match status.status.as_str() {
                "done" => return Ok(status),
                "failed" => {
                    return Err(ClientError::Protocol(format!(
                        "job {id} failed: {}",
                        status.error.unwrap_or_default()
                    )))
                }
                _ => {}
            }
            if start.elapsed() > deadline {
                return Err(ClientError::DeadlineExceeded(format!(
                    "job {id} still {} after {deadline:?}",
                    status.status
                )));
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Submits a sweep spec to `POST /sweeps`.
    ///
    /// # Errors
    ///
    /// Propagates transport errors; returns [`ClientError::Protocol`]
    /// with the server's error body on a non-2xx status (including 429
    /// when the sweep's fresh points do not fit the queue).
    pub fn submit_sweep(&self, spec: &SweepSpec) -> Result<SweepSubmitResponse, ClientError> {
        let body = serde_json::to_string(spec).expect("serialize sweep spec");
        let response = self.request("POST", "/sweeps", Some(&body))?;
        if response.status == 200 || response.status == 202 {
            response.json()
        } else {
            Err(ClientError::Protocol(format!(
                "sweep submit answered HTTP {}: {}",
                response.status, response.body
            )))
        }
    }

    /// `GET /sweeps/{id}` — per-point progress counts.
    ///
    /// # Errors
    ///
    /// Propagates transport errors; protocol error on non-200.
    pub fn sweep_status(&self, id: &str) -> Result<SweepStatusResponse, ClientError> {
        let response = self.request("GET", &format!("/sweeps/{id}"), None)?;
        if response.status == 200 {
            response.json()
        } else {
            Err(ClientError::Protocol(format!(
                "sweep status for {id} answered HTTP {}: {}",
                response.status, response.body
            )))
        }
    }

    /// Polls `GET /sweeps/{id}` until every point is done, or the
    /// deadline passes.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError::DeadlineExceeded`] on timeout,
    /// [`ClientError::Protocol`] when any point failed.
    pub fn wait_sweep_done(
        &self,
        id: &str,
        deadline: Duration,
    ) -> Result<SweepStatusResponse, ClientError> {
        let start = Instant::now();
        loop {
            let status = self.sweep_status(id)?;
            match status.status.as_str() {
                "done" => return Ok(status),
                "failed" => {
                    return Err(ClientError::Protocol(format!(
                        "sweep {id}: {} of {} points failed",
                        status.failed, status.total
                    )))
                }
                _ => {}
            }
            if start.elapsed() > deadline {
                return Err(ClientError::DeadlineExceeded(format!(
                    "sweep {id} still {}/{} done after {deadline:?}",
                    status.done, status.total
                )));
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Fetches the assembled sweep-report JSONL, verbatim.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError::Protocol`] when the sweep is unknown or
    /// has unfinished points.
    pub fn fetch_sweep_report(&self, id: &str) -> Result<String, ClientError> {
        let response = self.request("GET", &format!("/sweeps/{id}/report"), None)?;
        if response.status == 200 {
            Ok(response.body)
        } else {
            Err(ClientError::Protocol(format!(
                "sweep report for {id} answered HTTP {}: {}",
                response.status, response.body
            )))
        }
    }

    /// Fetches the finished run-report JSONL line, verbatim.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError::Protocol`] when the job is unknown or not
    /// done.
    pub fn fetch_report(&self, id: &str) -> Result<String, ClientError> {
        let response = self.request("GET", &format!("/jobs/{id}/report"), None)?;
        if response.status == 200 {
            Ok(response.body)
        } else {
            Err(ClientError::Protocol(format!(
                "report for {id} answered HTTP {}: {}",
                response.status, response.body
            )))
        }
    }

    /// Fetches the finished job's `alloc-locality.trace` v1 JSON line,
    /// verbatim.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError::Protocol`] when the job is unknown, not
    /// done, or its trace was not retained (restored from disk).
    pub fn fetch_trace(&self, id: &str) -> Result<String, ClientError> {
        let response = self.request("GET", &format!("/jobs/{id}/trace"), None)?;
        if response.status == 200 {
            Ok(response.body)
        } else {
            Err(ClientError::Protocol(format!(
                "trace for {id} answered HTTP {}: {}",
                response.status, response.body
            )))
        }
    }

    /// `GET /metrics?format=prometheus` — the text exposition, verbatim.
    ///
    /// # Errors
    ///
    /// Propagates transport errors; protocol error on non-200.
    pub fn metrics_prometheus(&self) -> Result<String, ClientError> {
        let response = self.request("GET", "/metrics?format=prometheus", None)?;
        if response.status == 200 {
            Ok(response.body)
        } else {
            Err(ClientError::Protocol(format!(
                "prometheus metrics answered HTTP {}",
                response.status
            )))
        }
    }

    /// `GET /healthz`.
    ///
    /// # Errors
    ///
    /// Propagates transport errors; protocol error on non-200.
    pub fn healthz(&self) -> Result<HealthResponse, ClientError> {
        let response = self.request("GET", "/healthz", None)?;
        if response.status == 200 {
            response.json()
        } else {
            Err(ClientError::Protocol(format!("healthz answered HTTP {}", response.status)))
        }
    }

    /// `GET /metrics`.
    ///
    /// # Errors
    ///
    /// Propagates transport errors; protocol error on non-200.
    pub fn metrics(&self) -> Result<MetricsResponse, ClientError> {
        let response = self.request("GET", "/metrics", None)?;
        if response.status == 200 {
            response.json()
        } else {
            Err(ClientError::Protocol(format!("metrics answered HTTP {}", response.status)))
        }
    }

    /// `POST /shutdown` — asks the daemon to drain and exit.
    ///
    /// # Errors
    ///
    /// Propagates transport errors; protocol error on non-200.
    pub fn shutdown(&self) -> Result<(), ClientError> {
        let response = self.request("POST", "/shutdown", None)?;
        if response.status == 200 {
            Ok(())
        } else {
            Err(ClientError::Protocol(format!("shutdown answered HTTP {}", response.status)))
        }
    }
}

fn parse_response(raw: &[u8]) -> Result<Response, ClientError> {
    let text = std::str::from_utf8(raw)
        .map_err(|_| ClientError::Protocol("response is not UTF-8".into()))?;
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| ClientError::Protocol("response has no header terminator".into()))?;
    let status_line = head.lines().next().unwrap_or("");
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| ClientError::Protocol(format!("bad status line {status_line:?}")))?;
    Ok(Response { status, body: body.to_string() })
}
