//! `alloc-locality-serve`: a std-only simulation service.
//!
//! The daemon turns the experiment engine into a long-lived service:
//! clients POST a [`JobSpec`] (one program × allocator × cache-geometry
//! cell), the server queues it into a bounded channel, a pool of worker
//! threads executes it through [`Experiment::report`], and the finished
//! [`RunReport`] JSONL line is stored in a content-addressed cache keyed
//! by the spec's canonical hash. Re-submitting an equivalent spec —
//! however its optional fields were spelled — returns the cached result
//! instantly, and every byte the server hands out is the same stable
//! `alloc-locality.run-report` v1 line the `repro` binary would emit, so
//! `report_check` validates server output unchanged.
//!
//! Two optional layers make repeat work cheap across restarts: a
//! [`ServerConfig::report_cache`] directory persists every finished line
//! (size-bounded, oldest evicted) so a restarted server answers
//! duplicates instantly, and a [`ServerConfig::stream_cache`] directory
//! lets the engine replay captured reference streams instead of
//! regenerating workloads. The in-memory result table itself is bounded
//! by [`ServerConfig::result_cache_entries`] with LRU eviction.
//!
//! Everything is built on `std`: `TcpListener` for transport,
//! `Mutex`/`Condvar` for the queue, `AtomicBool` for shutdown. The HTTP
//! subset lives in [`http`]; a blocking client for tests and the load
//! harness lives in [`client`].
//!
//! Every job is traced end to end: submission opens an [`obs::Tracer`]
//! whose span tree covers cache lookup, queue wait, engine execution
//! (with the engine's own drive/replay/finalize spans nested inside),
//! and response serialization. The finished tree is served as a
//! versioned `alloc-locality.trace` v1 artifact — a *separate* artifact,
//! so the run-report schema is untouched — and per-endpoint request
//! latency accumulates into rolling [`obs::Hist`] histograms exposed
//! both in the JSON metrics body and as Prometheus text exposition.
//!
//! Routes:
//!
//! | Route                  | Meaning                                       |
//! |------------------------|-----------------------------------------------|
//! | `POST /jobs`           | submit a [`JobSpec`]; 202 queued / 200 cached |
//! | `GET /jobs/{id}`       | job status + queue-wait/execute telemetry     |
//! | `GET /jobs/{id}/report`| the finished run-report JSONL line            |
//! | `GET /jobs/{id}/trace` | the job's span tree (`alloc-locality.trace`)  |
//! | `POST /sweeps`         | submit a [`SweepSpec`]; points fan into the job queue |
//! | `GET /sweeps/{id}`     | per-point progress counts                     |
//! | `GET /sweeps/{id}/report` | the assembled sweep-report JSONL (409 until done) |
//! | `GET /healthz`         | liveness + queue gauges                       |
//! | `GET /metrics`         | server counters + merged simulation metrics   |
//! | `GET /metrics?format=prometheus` | the same, as Prometheus text        |
//! | `POST /shutdown`       | stop accepting, drain the queue, exit         |

pub mod client;
pub mod http;

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use alloc_locality::JobSpec;
use explore::{SweepExec, SweepReport, SweepSpec};
use obs::{Hist, HistSnapshot, MetricsSnapshot, Recorder as _, Tracer};
use serde::{Deserialize, Serialize};

use http::{read_request, write_response_with_headers, RecvError, Request};

/// How the daemon is shaped. `Default` suits tests: an OS-assigned port,
/// two workers, and small-but-real limits.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 asks the OS for a free port.
    pub addr: String,
    /// Worker threads executing jobs. Zero is allowed — jobs queue but
    /// never run, which tests use to exercise backpressure.
    pub workers: usize,
    /// Bound on queued-but-unstarted jobs; beyond it `POST /jobs`
    /// answers 429.
    pub queue_depth: usize,
    /// Largest request body accepted; beyond it the server answers 413.
    pub max_body_bytes: usize,
    /// Per-connection socket read timeout.
    pub read_timeout_ms: u64,
    /// Bound on finished results kept in memory. Beyond it the
    /// least-recently-used `done` entry is dropped; resubmitting its spec
    /// recomputes (or answers from the on-disk report cache).
    pub result_cache_entries: usize,
    /// Directory finished report lines persist to (one `<job-id>.json`
    /// per job), so a restarted server answers duplicate submissions
    /// instantly. `None` disables persistence.
    pub report_cache: Option<std::path::PathBuf>,
    /// Total-size bound on the on-disk report cache; oldest files are
    /// evicted once the directory exceeds it.
    pub report_cache_max_bytes: u64,
    /// Stream-cache directory handed to every experiment
    /// ([`Experiment::stream_cache`]), so a job whose reference stream was
    /// captured before replays it instead of regenerating the workload.
    pub stream_cache: Option<std::path::PathBuf>,
    /// Total-size bound on the stream-cache directory; after each store
    /// the oldest-written streams are evicted (mirrors
    /// `report_cache_max_bytes`, which already bounds the report cache).
    /// `None` leaves the stream cache unbounded — a long-lived daemon
    /// should set it.
    pub stream_cache_bytes: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_depth: 64,
            max_body_bytes: 64 * 1024,
            read_timeout_ms: 2_000,
            result_cache_entries: 256,
            report_cache: None,
            report_cache_max_bytes: 8 * 1024 * 1024,
            stream_cache: None,
            stream_cache_bytes: None,
        }
    }
}

/// Where one job is in its lifecycle.
#[derive(Debug, Clone)]
enum JobStatus {
    Queued,
    Running,
    /// The finished report line, shared so duplicate fetches hand out
    /// literally the same bytes.
    Done {
        line: Arc<String>,
        /// The job's finished `alloc-locality.trace` v1 line. `None`
        /// for jobs restored from the on-disk report cache — the trace
        /// is not persisted, only the report is.
        trace: Option<Arc<String>>,
    },
    Failed {
        error: String,
    },
}

impl JobStatus {
    fn label(&self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done { .. } => "done",
            JobStatus::Failed { .. } => "failed",
        }
    }
}

#[derive(Debug)]
struct Job {
    spec: JobSpec,
    status: JobStatus,
    /// The job's in-flight tracer: opened by `submit` (cache-lookup and
    /// queue-wait spans already recorded), taken by the worker that
    /// executes the job, absent once the job finishes.
    tracer: Option<Box<Tracer>>,
    /// Nanoseconds between submission and a worker picking the job up,
    /// scraped from the finished trace.
    queue_wait_ns: Option<u64>,
    /// Nanoseconds the engine run took, scraped from the finished trace.
    execute_ns: Option<u64>,
}

impl Job {
    fn new(spec: JobSpec, status: JobStatus, tracer: Option<Box<Tracer>>) -> Self {
        Job { spec, status, tracer, queue_wait_ns: None, execute_ns: None }
    }
}

/// One registered sweep: the normalized spec plus its points' job ids
/// in expansion order (the order [`SweepReport::assemble`] expects).
/// Points are ordinary content-addressed jobs — shared with direct
/// submissions and with other sweeps — so a sweep adds no execution
/// machinery, only bookkeeping. Entries are a spec and an id list, tiny
/// next to the reports themselves, so the map is unbounded.
struct Sweep {
    spec: SweepSpec,
    point_ids: Vec<String>,
    /// Points whose reference stream was already in the stream cache at
    /// submit time (v2 header telemetry; zero without a cache).
    stream_hits: u64,
    /// Points whose stream was not cached at submit time (ditto).
    stream_misses: u64,
    /// The assembled report, memoized on first fetch so duplicate
    /// fetches hand out literally the same bytes.
    report: Option<Arc<String>>,
}

/// Everything behind the mutex.
#[derive(Default)]
struct State {
    /// Ids of submitted-but-unstarted jobs, FIFO.
    queue: VecDeque<String>,
    /// Every live job, keyed by content address. Finished entries beyond
    /// [`ServerConfig::result_cache_entries`] are evicted LRU-first.
    jobs: HashMap<String, Job>,
    /// Registered sweeps, keyed by sweep content address.
    sweeps: HashMap<String, Sweep>,
    /// `done` job ids, least recently used first. A cache hit moves the
    /// id to the back; eviction pops the front.
    done_order: VecDeque<String>,
    /// Simulation metrics merged across completed jobs.
    sim_metrics: MetricsSnapshot,
    /// Rolling request-latency histograms (microseconds), one per
    /// normalized endpoint label (`POST /jobs`, `GET /jobs/{id}`, ...).
    endpoint_latency: BTreeMap<&'static str, Hist>,
    submitted: u64,
    sweeps_submitted: u64,
    completed: u64,
    failed: u64,
    cache_hits: u64,
    report_cache_hits: u64,
    rejected_backpressure: u64,
    rejected_invalid: u64,
    running: u64,
}

struct Shared {
    cfg: ServerConfig,
    state: Mutex<State>,
    queue_cv: Condvar,
    shutdown: AtomicBool,
    /// Monotone per-request sequence backing the `X-Trace-Id` response
    /// header, so client logs and server traces can be correlated.
    request_seq: AtomicU64,
}

/// Body of a successful `POST /jobs`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubmitResponse {
    /// Content-addressed job id.
    pub id: String,
    /// Lifecycle label: `queued`, `running`, `done`, `failed`.
    pub status: String,
    /// True when the id already existed — the result (or the in-flight
    /// run) is shared with the earlier submission.
    pub cached: bool,
}

/// Body of `GET /jobs/{id}`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatusResponse {
    /// Content-addressed job id.
    pub id: String,
    /// Lifecycle label: `queued`, `running`, `done`, `failed`.
    pub status: String,
    /// The failure message when `status` is `failed`.
    #[serde(default)]
    pub error: Option<String>,
    /// Nanoseconds the job waited in the queue before a worker picked
    /// it up. Present once the job finished with a trace.
    #[serde(default)]
    pub queue_wait_ns: Option<u64>,
    /// Nanoseconds the engine run took. Present once the job finished
    /// with a trace.
    #[serde(default)]
    pub execute_ns: Option<u64>,
}

/// Body of a successful `POST /sweeps`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepSubmitResponse {
    /// Content-addressed sweep id ([`SweepSpec::sweep_id`]).
    pub id: String,
    /// `done` when every point was already finished, else `queued`.
    pub status: String,
    /// Expanded, deduplicated points in the sweep.
    pub points: u64,
    /// The subset of `points` newly enqueued by this submission; the
    /// rest were answered by the result or report cache.
    pub fresh: u64,
    /// True when the sweep id was already registered.
    pub cached: bool,
}

/// Body of `GET /sweeps/{id}`: per-point progress counts.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepStatusResponse {
    /// Content-addressed sweep id.
    pub id: String,
    /// `done` once every point finished, `failed` if any point failed,
    /// else `running`.
    pub status: String,
    /// Points in the sweep.
    pub total: u64,
    /// Points waiting in the queue.
    pub queued: u64,
    /// Points currently executing.
    pub running: u64,
    /// Points finished successfully.
    pub done: u64,
    /// Points that failed in the engine.
    pub failed: u64,
}

/// Body of `GET /healthz`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HealthResponse {
    /// Always `ok` while the listener answers.
    pub status: String,
    /// Configured worker-thread count.
    pub workers: u64,
    /// Jobs waiting in the queue.
    pub queued: u64,
    /// Jobs currently executing.
    pub running: u64,
    /// Jobs finished successfully since start.
    pub done: u64,
    /// Jobs that failed since start.
    pub failed: u64,
    /// True once shutdown was requested (draining).
    pub draining: bool,
}

/// Body of `GET /metrics`: server-level counters plus the simulation
/// metrics of every completed job, merged.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsResponse {
    /// Jobs accepted (cache hits not included).
    pub jobs_submitted: u64,
    /// Sweeps registered via `POST /sweeps`.
    #[serde(default)]
    pub sweeps_submitted: u64,
    /// Jobs finished successfully.
    pub jobs_completed: u64,
    /// Jobs that failed in the engine.
    pub jobs_failed: u64,
    /// Submissions answered from the result cache.
    pub cache_hits: u64,
    /// The subset of `cache_hits` answered by reloading a persisted
    /// report file (the in-memory entry was evicted or predates this
    /// process).
    #[serde(default)]
    pub report_cache_hits: u64,
    /// Submissions refused with 429 (queue full).
    pub rejected_backpressure: u64,
    /// Submissions refused with 4xx (bad spec or body).
    pub rejected_invalid: u64,
    /// Request-latency histograms (microseconds) per endpoint label.
    #[serde(default)]
    pub endpoints: BTreeMap<String, HistSnapshot>,
    /// Merged [`MetricsSnapshot`] across completed jobs.
    pub simulation: MetricsSnapshot,
}

/// Body of every error response.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ErrorResponse {
    /// Machine-readable kind: `malformed`, `invalid_spec`, `too_large`,
    /// `queue_full`, `not_found`, `not_done`, `shutting_down`,
    /// `method_not_allowed`.
    pub error: String,
    /// Human-readable detail.
    pub detail: String,
}

impl ErrorResponse {
    fn new(error: &str, detail: impl Into<String>) -> Self {
        ErrorResponse { error: error.into(), detail: detail.into() }
    }
}

/// What the drain saw when the server stopped.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShutdownSummary {
    /// Jobs finished successfully over the server's lifetime.
    pub completed: u64,
    /// Jobs that failed over the server's lifetime.
    pub failed: u64,
    /// Jobs still queued when the listener stopped — all of them were
    /// executed during the drain, so this is informational.
    pub drained: u64,
}

/// A running daemon: the listener thread, the worker pool, and the
/// shared state they communicate through.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_handle: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds the listener, starts the worker pool, and returns once the
    /// server is accepting connections.
    ///
    /// # Errors
    ///
    /// Returns the bind error if the address is unavailable.
    pub fn start(cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            cfg,
            state: Mutex::new(State::default()),
            queue_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            request_seq: AtomicU64::new(0),
        });
        let workers = (0..shared.cfg.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();
        let accept_shared = Arc::clone(&shared);
        let accept_handle = std::thread::Builder::new()
            .name("serve-accept".into())
            .spawn(move || accept_loop(&listener, &accept_shared))
            .expect("spawn accept loop");
        Ok(Server { addr, shared, accept_handle: Some(accept_handle), workers })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Flips the shutdown flag: the listener stops accepting and workers
    /// exit once the queue is drained. Returns immediately.
    pub fn request_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.queue_cv.notify_all();
    }

    /// Requests shutdown and blocks until the queue is drained and every
    /// thread has exited.
    pub fn shutdown(mut self) -> ShutdownSummary {
        self.request_shutdown();
        self.join_all()
    }

    /// Blocks until the server stops (something else must request the
    /// shutdown — e.g. a `POST /shutdown` from a client).
    pub fn wait(mut self) -> ShutdownSummary {
        self.join_all()
    }

    fn join_all(&mut self) -> ShutdownSummary {
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        let state = self.shared.state.lock().expect("state lock");
        ShutdownSummary {
            completed: state.completed,
            failed: state.failed,
            drained: state.queue.len() as u64,
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.request_shutdown();
        self.join_all();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(shared);
                handlers.retain(|h| !h.is_finished());
                handlers.push(
                    std::thread::Builder::new()
                        .name("serve-conn".into())
                        .spawn(move || handle_connection(stream, &shared))
                        .expect("spawn connection handler"),
                );
            }
            // Poll finely: this sleep bounds connection-setup latency,
            // and cached submissions are answered in ~one poll interval.
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_micros(500));
            }
            Err(_) => std::thread::sleep(Duration::from_micros(500)),
        }
    }
    for h in handlers {
        let _ = h.join();
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let picked = {
            let mut state = shared.state.lock().expect("state lock");
            loop {
                if let Some(id) = state.queue.pop_front() {
                    state.running += 1;
                    let (spec, tracer) = match state.jobs.get_mut(&id) {
                        Some(job) => {
                            job.status = JobStatus::Running;
                            (Some(job.spec.clone()), job.tracer.take())
                        }
                        None => (None, None),
                    };
                    break Some((id, spec, tracer));
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                // Timed wait so a shutdown raced against the wait is
                // still seen promptly.
                let (s, _) = shared
                    .queue_cv
                    .wait_timeout(state, Duration::from_millis(50))
                    .expect("queue wait");
                state = s;
            }
        };
        let Some((id, spec, tracer)) = picked else { return };
        // The submit path opened `serve.queue_wait`; close it now that a
        // worker owns the job. A missing tracer (never happens on the
        // submit path) degrades to an empty trace, not a crash.
        let mut tracer = tracer.unwrap_or_default();
        tracer.span_exit();
        tracer.span_enter("serve.execute");
        let outcome =
            spec.ok_or_else(|| "job vanished from the table".to_string()).and_then(|spec| {
                spec.to_experiment().map_err(|e| e.to_string()).and_then(|exp| {
                    let exp = match &shared.cfg.stream_cache {
                        Some(dir) => exp
                            .stream_cache(dir.clone())
                            .stream_cache_bytes(shared.cfg.stream_cache_bytes),
                        None => exp,
                    };
                    exp.run_traced_with(&mut tracer)
                        .map(|(result, metrics)| alloc_locality::RunReport::new(result, metrics))
                        .map_err(|e| e.to_string())
                })
            });
        tracer.span_exit();
        // Persist before publishing, outside the lock: a line visible in
        // memory is already on disk (or persistence is off/broken).
        let outcome = outcome.map(|report| {
            tracer.span_enter("serve.respond");
            let line = report.to_jsonl_line();
            if let Some(dir) = &shared.cfg.report_cache {
                persist_report(dir, shared.cfg.report_cache_max_bytes, &id, &line);
            }
            tracer.span_exit();
            (report, line)
        });
        // Close the `serve.job` root and freeze the trace. Span
        // structure never feeds the flat metrics, so the report line
        // above is byte-identical to an untraced run's.
        tracer.span_exit();
        let (_, trace_report) = tracer.finish(id.clone());
        let queue_wait_ns = trace_report.span("serve.queue_wait").map(|s| s.duration_ns());
        let execute_ns = trace_report.span("serve.execute").map(|s| s.duration_ns());
        let trace_line = Arc::new(trace_report.to_json_line());
        let mut state = shared.state.lock().expect("state lock");
        state.running -= 1;
        match outcome {
            Ok((report, line)) => {
                state.sim_metrics.merge(&report.metrics);
                state.completed += 1;
                if let Some(job) = state.jobs.get_mut(&id) {
                    job.status = JobStatus::Done { line: Arc::new(line), trace: Some(trace_line) };
                    job.queue_wait_ns = queue_wait_ns;
                    job.execute_ns = execute_ns;
                }
                state.remember_done(&id, shared.cfg.result_cache_entries);
            }
            Err(error) => {
                state.failed += 1;
                if let Some(job) = state.jobs.get_mut(&id) {
                    job.status = JobStatus::Failed { error };
                    job.queue_wait_ns = queue_wait_ns;
                    job.execute_ns = execute_ns;
                }
            }
        }
    }
}

impl State {
    /// Marks `id` most recently used and evicts `done` entries beyond the
    /// cap — never the entry just touched, so a cap of zero still lets
    /// the submitting client fetch its report.
    fn remember_done(&mut self, id: &str, cap: usize) {
        self.done_order.retain(|existing| existing != id);
        self.done_order.push_back(id.to_string());
        while self.done_order.len() > cap.max(1) {
            let Some(evicted) = self.done_order.pop_front() else { break };
            self.jobs.remove(&evicted);
        }
    }
}

/// Writes `line` to `<dir>/<id>.json` atomically, then evicts
/// oldest-modified report files until the directory fits the size bound.
/// Best-effort throughout: persistence failures never fail the job.
fn persist_report(dir: &std::path::Path, max_bytes: u64, id: &str, line: &str) {
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{id}.json"));
    let tmp = dir.join(format!(".{id}.tmp"));
    if std::fs::write(&tmp, line).is_err() {
        return;
    }
    if std::fs::rename(&tmp, &path).is_err() {
        let _ = std::fs::remove_file(&tmp);
        return;
    }
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    let mut files: Vec<(std::time::SystemTime, u64, std::path::PathBuf)> = entries
        .flatten()
        .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
        .filter_map(|e| {
            let meta = e.metadata().ok()?;
            Some((meta.modified().ok()?, meta.len(), e.path()))
        })
        .collect();
    let mut total: u64 = files.iter().map(|(_, size, _)| size).sum();
    files.sort_by_key(|entry| entry.0);
    for (_, size, candidate) in files {
        if total <= max_bytes {
            break;
        }
        if candidate == path {
            continue; // never evict the report just written
        }
        if std::fs::remove_file(&candidate).is_ok() {
            total = total.saturating_sub(size);
        }
    }
}

/// Loads a previously persisted report line for `id`, verifying it still
/// parses as a run report (a damaged file is treated as absent).
fn load_persisted_report(dir: &std::path::Path, id: &str) -> Option<String> {
    // Ids are hex strings from `JobSpec::job_id`, but guard anyway: the
    // id becomes a file name.
    if id.is_empty() || !id.bytes().all(|b| b.is_ascii_alphanumeric()) {
        return None;
    }
    let line = std::fs::read_to_string(dir.join(format!("{id}.json"))).ok()?;
    alloc_locality::RunReport::parse(&line).ok()?;
    Some(line)
}

/// One routed response: status, content type, body.
struct Reply {
    status: u16,
    content_type: &'static str,
    body: String,
}

impl Reply {
    fn json(status: u16, body: String) -> Reply {
        Reply { status, content_type: "application/json", body }
    }
}

/// The normalized label request latency is recorded under — parameters
/// collapsed so the histogram key set stays small and static.
fn endpoint_label(method: &str, path: &str) -> &'static str {
    match (method, path) {
        ("POST", "/jobs") => "POST /jobs",
        ("GET", "/healthz") => "GET /healthz",
        ("GET", "/metrics") => "GET /metrics",
        ("POST", "/shutdown") => "POST /shutdown",
        ("POST", "/sweeps") => "POST /sweeps",
        ("GET", p) if p.starts_with("/jobs/") && p.ends_with("/report") => "GET /jobs/{id}/report",
        ("GET", p) if p.starts_with("/jobs/") && p.ends_with("/trace") => "GET /jobs/{id}/trace",
        ("GET", p) if p.starts_with("/jobs/") => "GET /jobs/{id}",
        ("GET", p) if p.starts_with("/sweeps/") && p.ends_with("/report") => {
            "GET /sweeps/{id}/report"
        }
        ("GET", p) if p.starts_with("/sweeps/") => "GET /sweeps/{id}",
        _ => "other",
    }
}

fn handle_connection(mut stream: TcpStream, shared: &Arc<Shared>) {
    let timeout = Duration::from_millis(shared.cfg.read_timeout_ms.max(1));
    let _ = stream.set_read_timeout(Some(timeout));
    let _ = stream.set_write_timeout(Some(timeout));
    let sw = obs::Stopwatch::start();
    let trace_id = shared.request_seq.fetch_add(1, Ordering::Relaxed) + 1;
    let (reply, label) = match read_request(&mut stream, shared.cfg.max_body_bytes) {
        Ok(request) => {
            let path = request.path.split('?').next().unwrap_or("").to_string();
            (route(&request, shared), endpoint_label(&request.method, &path))
        }
        // The peer went away or sat silent: nothing useful to answer.
        Err(RecvError::Closed) | Err(RecvError::Timeout) | Err(RecvError::Io(_)) => return,
        Err(e @ RecvError::BodyTooLarge { declared, .. }) => {
            // Swallow (a bounded amount of) the refused body so closing
            // the socket does not reset it under the client before the
            // 413 is read.
            drain(&mut stream, declared);
            (Reply::json(413, json_body(&ErrorResponse::new("too_large", e.to_string()))), "other")
        }
        Err(e @ RecvError::Malformed(_)) => {
            (Reply::json(400, json_body(&ErrorResponse::new("malformed", e.to_string()))), "other")
        }
    };
    let trace_header = format!("req-{trace_id}");
    let _ = write_response_with_headers(
        &mut stream,
        reply.status,
        reply.content_type,
        &[("X-Trace-Id", &trace_header)],
        reply.body.as_bytes(),
    );
    // Response written: fold the request's wall time into the rolling
    // per-endpoint histogram (microseconds).
    if let Ok(mut state) = shared.state.lock() {
        state.endpoint_latency.entry(label).or_default().record(sw.elapsed_ns() / 1_000);
    }
}

/// Reads and discards up to `n` bytes (capped at 1 MiB), best-effort.
fn drain(stream: &mut TcpStream, n: usize) {
    use std::io::Read;
    let mut left = n.min(1 << 20);
    let mut buf = [0u8; 8192];
    while left > 0 {
        match stream.read(&mut buf[..left.min(8192)]) {
            Ok(0) | Err(_) => return,
            Ok(read) => left -= read,
        }
    }
}

fn json_body<T: Serialize>(value: &T) -> String {
    serde_json::to_string(value).expect("serialize response body")
}

fn route(request: &Request, shared: &Arc<Shared>) -> Reply {
    let (path, query) = match request.path.split_once('?') {
        Some((path, query)) => (path, query),
        None => (request.path.as_str(), ""),
    };
    match (request.method.as_str(), path) {
        ("POST", "/jobs") => submit(request, shared),
        ("POST", "/sweeps") => submit_sweep(request, shared),
        ("GET", "/healthz") => healthz(shared),
        ("GET", "/metrics") => {
            if query.split('&').any(|kv| kv == "format=prometheus") {
                metrics_prometheus(shared)
            } else {
                metrics(shared)
            }
        }
        ("POST", "/shutdown") => {
            shared.shutdown.store(true, Ordering::SeqCst);
            shared.queue_cv.notify_all();
            Reply::json(
                200,
                json_body(&StatusResponse {
                    id: String::new(),
                    status: "shutting_down".into(),
                    error: None,
                    queue_wait_ns: None,
                    execute_ns: None,
                }),
            )
        }
        ("GET", _) if path.starts_with("/jobs/") => {
            let rest = &path["/jobs/".len()..];
            match (rest.strip_suffix("/report"), rest.strip_suffix("/trace")) {
                (Some(id), _) => job_report(id, shared),
                (None, Some(id)) => job_trace(id, shared),
                (None, None) if rest.contains('/') => not_found(path),
                (None, None) => job_status(rest, shared),
            }
        }
        ("GET", _) if path.starts_with("/sweeps/") => {
            let rest = &path["/sweeps/".len()..];
            match rest.strip_suffix("/report") {
                Some(id) => sweep_report(id, shared),
                None if rest.contains('/') => not_found(path),
                None => sweep_status(rest, shared),
            }
        }
        (_, "/jobs" | "/sweeps" | "/healthz" | "/metrics" | "/shutdown") => Reply::json(
            405,
            json_body(&ErrorResponse::new(
                "method_not_allowed",
                format!("{} {} is not supported", request.method, path),
            )),
        ),
        _ => not_found(path),
    }
}

fn not_found(path: &str) -> Reply {
    Reply::json(404, json_body(&ErrorResponse::new("not_found", format!("no route for {path}"))))
}

fn submit(request: &Request, shared: &Arc<Shared>) -> Reply {
    let reject = |state: &mut State, status: u16, err: ErrorResponse| {
        state.rejected_invalid += 1;
        Reply::json(status, json_body(&err))
    };
    let parsed: Result<JobSpec, String> = std::str::from_utf8(&request.body)
        .map_err(|_| "body is not UTF-8".to_string())
        .and_then(|text| serde_json::from_str(text).map_err(|e| e.to_string()));
    let spec = match parsed {
        Ok(spec) => spec,
        Err(detail) => {
            let mut state = shared.state.lock().expect("state lock");
            return reject(
                &mut state,
                400,
                ErrorResponse::new("malformed", format!("body is not a job spec: {detail}")),
            );
        }
    };
    if let Err(e) = spec.validate() {
        let mut state = shared.state.lock().expect("state lock");
        return reject(&mut state, 400, ErrorResponse::new("invalid_spec", e.to_string()));
    }
    let id = spec.job_id();
    // The job's trace starts here: the `serve.job` root opens at
    // submission so queue wait is attributed to the job itself. A cache
    // hit abandons the tracer — the stored job already has its trace.
    let mut tracer = Box::<Tracer>::default();
    tracer.span_enter("serve.job");
    tracer.span_enter("serve.cache_lookup");
    let mut state = shared.state.lock().expect("state lock");
    if let Some(job) = state.jobs.get(&id) {
        let status = job.status.label().to_string();
        let done = matches!(job.status, JobStatus::Done { .. });
        state.cache_hits += 1;
        if done {
            state.remember_done(&id, shared.cfg.result_cache_entries);
        }
        return Reply::json(200, json_body(&SubmitResponse { id, status, cached: true }));
    }
    // Not in memory — an earlier life of this server (or an evicted
    // entry) may have persisted the report.
    if let Some(line) =
        shared.cfg.report_cache.as_deref().and_then(|dir| load_persisted_report(dir, &id))
    {
        state.cache_hits += 1;
        state.report_cache_hits += 1;
        state.jobs.insert(
            id.clone(),
            Job::new(
                spec.normalized(),
                JobStatus::Done { line: Arc::new(line), trace: None },
                None,
            ),
        );
        state.remember_done(&id, shared.cfg.result_cache_entries);
        return Reply::json(
            200,
            json_body(&SubmitResponse { id, status: "done".into(), cached: true }),
        );
    }
    if shared.shutdown.load(Ordering::SeqCst) {
        return Reply::json(
            503,
            json_body(&ErrorResponse::new("shutting_down", "server is draining; try again later")),
        );
    }
    if state.queue.len() >= shared.cfg.queue_depth {
        state.rejected_backpressure += 1;
        return Reply::json(
            429,
            json_body(&ErrorResponse::new(
                "queue_full",
                format!("queue holds {} jobs; retry later", state.queue.len()),
            )),
        );
    }
    state.submitted += 1;
    // The lookup missed: close its span and leave `serve.queue_wait`
    // open for the worker that picks the job up.
    tracer.span_exit();
    tracer.span_enter("serve.queue_wait");
    state.jobs.insert(id.clone(), Job::new(spec.normalized(), JobStatus::Queued, Some(tracer)));
    state.queue.push_back(id.clone());
    shared.queue_cv.notify_one();
    Reply::json(202, json_body(&SubmitResponse { id, status: "queued".into(), cached: false }))
}

/// `POST /sweeps`: registers a [`SweepSpec`] and fans its points into
/// the job queue as ordinary content-addressed jobs. Points already in
/// the result table (from direct submissions, earlier sweeps, or the
/// persisted report cache) are reused; only genuinely fresh points take
/// queue slots, and the whole batch is refused with 429 when they do
/// not all fit — nothing is partially enqueued. A sweep whose fresh
/// points exceed the queue bound can still be driven to completion by
/// resubmitting it after earlier points drain: finished points count as
/// cached on the next attempt.
fn submit_sweep(request: &Request, shared: &Arc<Shared>) -> Reply {
    let reject = |state: &mut State, status: u16, err: ErrorResponse| {
        state.rejected_invalid += 1;
        Reply::json(status, json_body(&err))
    };
    let parsed: Result<SweepSpec, String> = std::str::from_utf8(&request.body)
        .map_err(|_| "body is not UTF-8".to_string())
        .and_then(|text| serde_json::from_str(text).map_err(|e| e.to_string()));
    let spec = match parsed {
        Ok(spec) => spec,
        Err(detail) => {
            let mut state = shared.state.lock().expect("state lock");
            return reject(
                &mut state,
                400,
                ErrorResponse::new("malformed", format!("body is not a sweep spec: {detail}")),
            );
        }
    };
    if let Err(e) = spec.validate() {
        let mut state = shared.state.lock().expect("state lock");
        return reject(&mut state, 400, ErrorResponse::new("invalid_spec", e.to_string()));
    }
    let n = spec.normalized();
    let id = n.sweep_id();
    let points = n.points();
    // Stream-cache telemetry for the v2 sweep header: how many points'
    // reference streams were already cached at submit time. The probe is
    // a metadata-only existence check, so it runs outside the state lock.
    let (stream_hits, stream_misses) = match &shared.cfg.stream_cache {
        Some(dir) => {
            let (mut hits, mut misses) = (0u64, 0u64);
            for point in &points {
                let cached = point.to_experiment().ok().and_then(|exp| {
                    exp.stream_cache(dir.clone())
                        .stream_cache_bytes(shared.cfg.stream_cache_bytes)
                        .stream_cached()
                });
                if cached == Some(true) {
                    hits += 1;
                } else {
                    misses += 1;
                }
            }
            (hits, misses)
        }
        None => (0, 0),
    };
    let mut state = shared.state.lock().expect("state lock");
    let cached = state.sweeps.contains_key(&id);
    // Classify every point: already in the result table, restorable from
    // the persisted report cache, or genuinely fresh.
    let mut fresh: Vec<(String, JobSpec)> = Vec::new();
    let mut restored: Vec<(String, JobSpec, String)> = Vec::new();
    for point in &points {
        let pid = point.job_id();
        if state.jobs.contains_key(&pid) {
            state.cache_hits += 1;
            continue;
        }
        match shared.cfg.report_cache.as_deref().and_then(|dir| load_persisted_report(dir, &pid)) {
            Some(line) => {
                state.cache_hits += 1;
                state.report_cache_hits += 1;
                restored.push((pid, point.clone(), line));
            }
            None => fresh.push((pid, point.clone())),
        }
    }
    if !fresh.is_empty() {
        if shared.shutdown.load(Ordering::SeqCst) {
            return Reply::json(
                503,
                json_body(&ErrorResponse::new(
                    "shutting_down",
                    "server is draining; try again later",
                )),
            );
        }
        if state.queue.len() + fresh.len() > shared.cfg.queue_depth {
            state.rejected_backpressure += 1;
            return Reply::json(
                429,
                json_body(&ErrorResponse::new(
                    "queue_full",
                    format!(
                        "sweep needs {} queue slots but {} of {} are free; retry later",
                        fresh.len(),
                        shared.cfg.queue_depth - state.queue.len().min(shared.cfg.queue_depth),
                        shared.cfg.queue_depth
                    ),
                )),
            );
        }
    }
    let fresh_count = fresh.len() as u64;
    for (pid, point, line) in restored {
        state.jobs.insert(
            pid.clone(),
            Job::new(point, JobStatus::Done { line: Arc::new(line), trace: None }, None),
        );
        state.remember_done(&pid, shared.cfg.result_cache_entries);
    }
    for (pid, point) in fresh {
        state.submitted += 1;
        // Same span structure as a direct submission, so every point's
        // trace and queue-wait telemetry read identically.
        let mut tracer = Box::<Tracer>::default();
        tracer.span_enter("serve.job");
        tracer.span_enter("serve.cache_lookup");
        tracer.span_exit();
        tracer.span_enter("serve.queue_wait");
        state.jobs.insert(pid.clone(), Job::new(point, JobStatus::Queued, Some(tracer)));
        state.queue.push_back(pid);
    }
    if !cached {
        state.sweeps_submitted += 1;
        state.sweeps.insert(
            id.clone(),
            Sweep {
                spec: n,
                point_ids: points.iter().map(JobSpec::job_id).collect(),
                stream_hits,
                stream_misses,
                report: None,
            },
        );
    }
    shared.queue_cv.notify_all();
    let sweep = state.sweeps.get(&id).expect("just inserted");
    let (queued, running, done, failed) = sweep_counts(&state, sweep);
    let all_done = done == sweep.point_ids.len() as u64 && queued + running + failed == 0;
    let (status, label) = if all_done { (200, "done") } else { (202, "queued") };
    Reply::json(
        status,
        json_body(&SweepSubmitResponse {
            id,
            status: label.into(),
            points: points.len() as u64,
            fresh: fresh_count,
            cached,
        }),
    )
}

/// Per-point progress of one sweep. A point missing from the job table
/// counts as done: only `done` entries are ever LRU-evicted, so absence
/// after registration means the point finished and was dropped.
fn sweep_counts(state: &State, sweep: &Sweep) -> (u64, u64, u64, u64) {
    let (mut queued, mut running, mut done, mut failed) = (0, 0, 0, 0);
    for pid in &sweep.point_ids {
        match state.jobs.get(pid).map(|job| &job.status) {
            Some(JobStatus::Queued) => queued += 1,
            Some(JobStatus::Running) => running += 1,
            Some(JobStatus::Done { .. }) | None => done += 1,
            Some(JobStatus::Failed { .. }) => failed += 1,
        }
    }
    (queued, running, done, failed)
}

fn sweep_status(id: &str, shared: &Arc<Shared>) -> Reply {
    let state = shared.state.lock().expect("state lock");
    match state.sweeps.get(id) {
        None => {
            Reply::json(404, json_body(&ErrorResponse::new("not_found", format!("no sweep {id}"))))
        }
        Some(sweep) => {
            let (queued, running, done, failed) = sweep_counts(&state, sweep);
            let total = sweep.point_ids.len() as u64;
            let status = if failed > 0 {
                "failed"
            } else if done == total {
                "done"
            } else {
                "running"
            };
            Reply::json(
                200,
                json_body(&SweepStatusResponse {
                    id: id.to_string(),
                    status: status.into(),
                    total,
                    queued,
                    running,
                    done,
                    failed,
                }),
            )
        }
    }
}

/// `GET /sweeps/{id}/report`: the assembled `alloc-locality.sweep-report`
/// v2 JSONL. 409 until every point is done; the per-point report lines
/// are then parsed back, scored, and assembled exactly as the offline
/// executor does it — the resulting bytes match an `explore` run of the
/// same spec under the same stream-cache configuration. Assembly happens
/// outside the state lock and the result is memoized on the sweep.
fn sweep_report(id: &str, shared: &Arc<Shared>) -> Reply {
    let (spec, lines, exec) = {
        let state = shared.state.lock().expect("state lock");
        let Some(sweep) = state.sweeps.get(id) else {
            return Reply::json(
                404,
                json_body(&ErrorResponse::new("not_found", format!("no sweep {id}"))),
            );
        };
        if let Some(report) = &sweep.report {
            return Reply {
                status: 200,
                content_type: "application/x-ndjson",
                body: report.as_ref().clone(),
            };
        }
        let mut lines: Vec<Arc<String>> = Vec::with_capacity(sweep.point_ids.len());
        for pid in &sweep.point_ids {
            match state.jobs.get(pid).map(|job| &job.status) {
                Some(JobStatus::Done { line, .. }) => lines.push(Arc::clone(line)),
                Some(JobStatus::Failed { error }) => {
                    return Reply::json(
                        409,
                        json_body(&ErrorResponse::new(
                            "failed",
                            format!("sweep point {pid} failed: {error}"),
                        )),
                    )
                }
                Some(status) => {
                    return Reply::json(
                        409,
                        json_body(&ErrorResponse::new(
                            "not_done",
                            format!("sweep point {pid} is {}", status.label()),
                        )),
                    )
                }
                // Evicted after finishing; the persisted line (when
                // configured) still has the bytes.
                None => match shared
                    .cfg
                    .report_cache
                    .as_deref()
                    .and_then(|dir| load_persisted_report(dir, pid))
                {
                    Some(line) => lines.push(Arc::new(line)),
                    None => {
                        return Reply::json(
                            404,
                            json_body(&ErrorResponse::new(
                                "not_found",
                                format!(
                                    "sweep point {pid} was evicted from the result cache and \
                                     no persisted copy exists; resubmit the sweep"
                                ),
                            )),
                        )
                    }
                },
            }
        }
        let exec = SweepExec {
            stream_hits: sweep.stream_hits,
            stream_misses: sweep.stream_misses,
            adaptive: None,
        };
        (sweep.spec.clone(), lines, exec)
    };
    let mut reports = Vec::with_capacity(lines.len());
    for line in &lines {
        match alloc_locality::RunReport::parse(line) {
            Ok(report) => reports.push(report),
            Err(e) => {
                return Reply::json(
                    500,
                    json_body(&ErrorResponse::new(
                        "internal",
                        format!("stored sweep point no longer parses: {e}"),
                    )),
                )
            }
        }
    }
    let text = match SweepReport::assemble_with(&spec, reports, &exec) {
        Ok(report) => report.to_jsonl(),
        Err(e) => {
            return Reply::json(
                500,
                json_body(&ErrorResponse::new("internal", format!("assembling sweep: {e}"))),
            )
        }
    };
    let mut state = shared.state.lock().expect("state lock");
    let body = match state.sweeps.get_mut(id) {
        Some(sweep) => {
            // First assembly wins; a racing fetch reuses its bytes.
            let stored = sweep.report.get_or_insert_with(|| Arc::new(text));
            Arc::clone(stored)
        }
        None => Arc::new(text),
    };
    Reply { status: 200, content_type: "application/x-ndjson", body: body.as_ref().clone() }
}

fn job_status(id: &str, shared: &Arc<Shared>) -> Reply {
    let state = shared.state.lock().expect("state lock");
    match state.jobs.get(id) {
        None => {
            Reply::json(404, json_body(&ErrorResponse::new("not_found", format!("no job {id}"))))
        }
        Some(job) => {
            let error = match &job.status {
                JobStatus::Failed { error } => Some(error.clone()),
                _ => None,
            };
            Reply::json(
                200,
                json_body(&StatusResponse {
                    id: id.to_string(),
                    status: job.status.label().to_string(),
                    error,
                    queue_wait_ns: job.queue_wait_ns,
                    execute_ns: job.execute_ns,
                }),
            )
        }
    }
}

fn job_report(id: &str, shared: &Arc<Shared>) -> Reply {
    let state = shared.state.lock().expect("state lock");
    match state.jobs.get(id) {
        None => {
            Reply::json(404, json_body(&ErrorResponse::new("not_found", format!("no job {id}"))))
        }
        Some(job) => match &job.status {
            JobStatus::Done { line, .. } => Reply::json(200, line.as_ref().clone()),
            JobStatus::Failed { error } => {
                Reply::json(409, json_body(&ErrorResponse::new("failed", error.clone())))
            }
            _ => Reply::json(
                409,
                json_body(&ErrorResponse::new(
                    "not_done",
                    format!("job {id} is {}", job.status.label()),
                )),
            ),
        },
    }
}

/// `GET /jobs/{id}/trace`: the job's finished span tree as one
/// `alloc-locality.trace` v1 JSON line. A duplicate submission shares
/// the original job's entry, so its trace is the original's, verbatim.
fn job_trace(id: &str, shared: &Arc<Shared>) -> Reply {
    let state = shared.state.lock().expect("state lock");
    match state.jobs.get(id) {
        None => {
            Reply::json(404, json_body(&ErrorResponse::new("not_found", format!("no job {id}"))))
        }
        Some(job) => match &job.status {
            JobStatus::Done { trace: Some(trace), .. } => Reply::json(200, trace.as_ref().clone()),
            JobStatus::Done { trace: None, .. } => Reply::json(
                404,
                json_body(&ErrorResponse::new(
                    "not_found",
                    format!(
                        "job {id} was answered from the persisted report cache; \
                         traces are not retained across restarts"
                    ),
                )),
            ),
            JobStatus::Failed { error } => {
                Reply::json(409, json_body(&ErrorResponse::new("failed", error.clone())))
            }
            _ => Reply::json(
                409,
                json_body(&ErrorResponse::new(
                    "not_done",
                    format!("job {id} is {}", job.status.label()),
                )),
            ),
        },
    }
}

fn healthz(shared: &Arc<Shared>) -> Reply {
    let state = shared.state.lock().expect("state lock");
    Reply::json(
        200,
        json_body(&HealthResponse {
            status: "ok".into(),
            workers: shared.cfg.workers as u64,
            queued: state.queue.len() as u64,
            running: state.running,
            done: state.completed,
            failed: state.failed,
            draining: shared.shutdown.load(Ordering::SeqCst),
        }),
    )
}

fn metrics(shared: &Arc<Shared>) -> Reply {
    let state = shared.state.lock().expect("state lock");
    Reply::json(
        200,
        json_body(&MetricsResponse {
            jobs_submitted: state.submitted,
            sweeps_submitted: state.sweeps_submitted,
            jobs_completed: state.completed,
            jobs_failed: state.failed,
            cache_hits: state.cache_hits,
            report_cache_hits: state.report_cache_hits,
            rejected_backpressure: state.rejected_backpressure,
            rejected_invalid: state.rejected_invalid,
            endpoints: state
                .endpoint_latency
                .iter()
                .map(|(label, hist)| (label.to_string(), hist.snapshot()))
                .collect(),
            simulation: state.sim_metrics.clone(),
        }),
    )
}

/// `GET /metrics?format=prometheus`: the same counters, gauges, and
/// histograms as the JSON body, rendered as Prometheus text exposition
/// (server metrics under `serve_`, merged simulation metrics under
/// `sim_`).
fn metrics_prometheus(shared: &Arc<Shared>) -> Reply {
    let state = shared.state.lock().expect("state lock");
    let mut out = String::new();
    obs::prom::push_counter(&mut out, "serve_jobs_submitted_total", state.submitted);
    obs::prom::push_counter(&mut out, "serve_sweeps_submitted_total", state.sweeps_submitted);
    obs::prom::push_counter(&mut out, "serve_jobs_completed_total", state.completed);
    obs::prom::push_counter(&mut out, "serve_jobs_failed_total", state.failed);
    obs::prom::push_counter(&mut out, "serve_cache_hits_total", state.cache_hits);
    obs::prom::push_counter(&mut out, "serve_report_cache_hits_total", state.report_cache_hits);
    obs::prom::push_counter(
        &mut out,
        "serve_rejected_backpressure_total",
        state.rejected_backpressure,
    );
    obs::prom::push_counter(&mut out, "serve_rejected_invalid_total", state.rejected_invalid);
    obs::prom::push_gauge(&mut out, "serve_queue_depth", state.queue.len() as u64);
    obs::prom::push_gauge(&mut out, "serve_jobs_running", state.running);
    obs::prom::push_gauge(&mut out, "serve_workers", shared.cfg.workers as u64);
    let labelled: Vec<([(&str, &str); 1], HistSnapshot)> = state
        .endpoint_latency
        .iter()
        .map(|(label, hist)| ([("endpoint", *label)], hist.snapshot()))
        .collect();
    let series: Vec<(&[(&str, &str)], HistSnapshot)> =
        labelled.iter().map(|(labels, snap)| (&labels[..], snap.clone())).collect();
    if !series.is_empty() {
        obs::prom::push_histogram(&mut out, "serve_request_duration_us", &series);
    }
    obs::prom::push_snapshot(&mut out, "sim", &state.sim_metrics);
    Reply { status: 200, content_type: "text/plain; version=0.0.4", body: out }
}
