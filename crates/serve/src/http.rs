//! A minimal HTTP/1.1 layer over `std::net::TcpStream`.
//!
//! The build is offline and vendored-only, so the daemon hand-rolls
//! exactly the protocol subset it needs: one request per connection
//! (`Connection: close`), a request line, headers, an optional
//! `Content-Length` body, and a fixed-length response. Requests are read
//! under the socket's read timeout and two size caps (header block and
//! body), so a slow or hostile client costs one handler thread for at
//! most the timeout, never unbounded memory.

use std::io::{Read, Write};
use std::net::TcpStream;

/// Cap on the request line + headers, bytes.
pub const MAX_HEADER_BYTES: usize = 8 * 1024;

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method ("GET", "POST", ...).
    pub method: String,
    /// Request path, query string included verbatim.
    pub path: String,
    /// Header `(name, value)` pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body, exactly `Content-Length` bytes.
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum RecvError {
    /// The peer closed before a full request arrived.
    Closed,
    /// The socket's read timeout expired.
    Timeout,
    /// The declared body exceeds the server's cap (HTTP 413).
    BodyTooLarge {
        /// The declared `Content-Length`.
        declared: usize,
        /// The server's cap.
        limit: usize,
    },
    /// The bytes are not a well-formed HTTP/1.1 request (HTTP 400).
    Malformed(String),
    /// Any other socket error.
    Io(std::io::Error),
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvError::Closed => write!(f, "connection closed mid-request"),
            RecvError::Timeout => write!(f, "read timed out"),
            RecvError::BodyTooLarge { declared, limit } => {
                write!(f, "declared body of {declared} bytes exceeds the {limit}-byte limit")
            }
            RecvError::Malformed(msg) => write!(f, "malformed request: {msg}"),
            RecvError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

fn classify_io(e: std::io::Error) -> RecvError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => RecvError::Timeout,
        std::io::ErrorKind::UnexpectedEof => RecvError::Closed,
        _ => RecvError::Io(e),
    }
}

/// Reads one request from the stream, honouring the stream's read
/// timeout and the given body cap.
///
/// # Errors
///
/// See [`RecvError`]; the caller maps each variant to a response (or a
/// silent close for `Closed`/`Timeout`).
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, RecvError> {
    // Accumulate until the blank line; one byte at a time is fine for a
    // header block capped at 8K on a localhost control plane.
    let mut head = Vec::with_capacity(512);
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        if head.len() >= MAX_HEADER_BYTES {
            return Err(RecvError::Malformed(format!(
                "header block exceeds {MAX_HEADER_BYTES} bytes"
            )));
        }
        match stream.read(&mut byte) {
            Ok(0) => {
                return if head.is_empty() {
                    Err(RecvError::Closed)
                } else {
                    Err(RecvError::Malformed("connection closed inside the header block".into()))
                };
            }
            Ok(_) => head.push(byte[0]),
            Err(e) => return Err(classify_io(e)),
        }
    }
    let text = std::str::from_utf8(&head)
        .map_err(|_| RecvError::Malformed("header block is not UTF-8".into()))?;
    let mut lines = text.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && p.starts_with('/') => (m, p, v),
        _ => {
            return Err(RecvError::Malformed(format!("bad request line {request_line:?}")));
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(RecvError::Malformed(format!("unsupported version {version:?}")));
    }
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| RecvError::Malformed(format!("bad header line {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let request = Request {
        method: method.to_ascii_uppercase(),
        path: path.to_string(),
        headers,
        body: Vec::new(),
    };
    let declared = match request.header("content-length") {
        None => 0,
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| RecvError::Malformed(format!("bad Content-Length {v:?}")))?,
    };
    if declared > max_body {
        return Err(RecvError::BodyTooLarge { declared, limit: max_body });
    }
    let mut body = vec![0u8; declared];
    stream.read_exact(&mut body).map_err(classify_io)?;
    Ok(Request { body, ..request })
}

/// Writes a fixed-length `Connection: close` response.
///
/// # Errors
///
/// Returns the socket error, which the caller logs and drops (the
/// connection is closing either way).
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    write_response_with_headers(stream, status, content_type, &[], body)
}

/// [`write_response`] with extra response headers (name, value). Names
/// and values must already be valid header text — no escaping happens.
///
/// # Errors
///
/// Returns the socket error, which the caller logs and drops.
pub fn write_response_with_headers(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    extra: &[(&str, &str)],
    body: &[u8],
) -> std::io::Result<()> {
    let reason = reason_phrase(status);
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (name, value) in extra {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// The phrase printed after the status code.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}
