//! End-to-end tests of the daemon over real sockets: robustness
//! (malformed bodies, size caps, backpressure), the content-addressed
//! result cache, graceful drain, and bit-identity of served reports
//! against direct engine runs.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use alloc_locality::{JobSpec, RunReport};
use serve::client::Client;
use serve::{Server, ServerConfig};

/// A spec small enough that a debug-build run finishes in well under a
/// second: one 16K cache, no pager, 0.2% scale.
fn quick_spec(program: &str, allocator: &str) -> JobSpec {
    JobSpec { cache_kb: vec![16], paging: Some(false), ..JobSpec::cell(program, allocator, 0.002) }
}

fn start(cfg: ServerConfig) -> (Server, Client) {
    let server = Server::start(cfg).expect("bind server");
    let client = Client::new(server.addr());
    (server, client)
}

const WAIT: Duration = Duration::from_secs(60);

#[test]
fn malformed_json_is_a_400_with_a_structured_body() {
    let (server, client) = start(ServerConfig::default());
    let response = client.request("POST", "/jobs", Some("{not json")).unwrap();
    assert_eq!(response.status, 400);
    let err: serve::ErrorResponse = response.json().unwrap();
    assert_eq!(err.error, "malformed");
    assert!(!err.detail.is_empty());
    drop(server);
}

#[test]
fn unknown_labels_are_a_400_naming_the_field() {
    let (server, client) = start(ServerConfig::default());
    let bad_program = serde_json::to_string(&JobSpec::cell("tetris", "BSD", 0.002)).unwrap();
    let response = client.request("POST", "/jobs", Some(&bad_program)).unwrap();
    assert_eq!(response.status, 400);
    let err: serve::ErrorResponse = response.json().unwrap();
    assert_eq!(err.error, "invalid_spec");
    assert!(err.detail.contains("unknown program"), "{}", err.detail);

    let bad_alloc = serde_json::to_string(&JobSpec::cell("make", "jemalloc", 0.002)).unwrap();
    let response = client.request("POST", "/jobs", Some(&bad_alloc)).unwrap();
    assert_eq!(response.status, 400);
    let err: serve::ErrorResponse = response.json().unwrap();
    assert!(err.detail.contains("unknown allocator"), "{}", err.detail);
    drop(server);
}

#[test]
fn oversized_bodies_are_a_413_before_the_body_is_read() {
    let cfg = ServerConfig { max_body_bytes: 128, ..ServerConfig::default() };
    let (server, client) = start(cfg);
    let huge = format!("{{\"pad\":\"{}\"}}", "x".repeat(4096));
    let response = client.request("POST", "/jobs", Some(&huge)).unwrap();
    assert_eq!(response.status, 413);
    let err: serve::ErrorResponse = response.json().unwrap();
    assert_eq!(err.error, "too_large");
    drop(server);
}

#[test]
fn a_full_queue_answers_429_backpressure() {
    // No workers: nothing drains the queue, so the depth bound is exact.
    let cfg = ServerConfig { workers: 0, queue_depth: 1, ..ServerConfig::default() };
    let (server, client) = start(cfg);
    let first = client.submit(&quick_spec("make", "BSD")).unwrap();
    assert_eq!(first.status, "queued");
    assert!(!first.cached);

    let response = client
        .request("POST", "/jobs", Some(&serde_json::to_string(&quick_spec("gawk", "BSD")).unwrap()))
        .unwrap();
    assert_eq!(response.status, 429);
    let err: serve::ErrorResponse = response.json().unwrap();
    assert_eq!(err.error, "queue_full");

    // A duplicate of the queued job is a cache hit, not a new enqueue —
    // it bypasses the full queue.
    let dup = client.submit(&quick_spec("make", "BSD")).unwrap();
    assert!(dup.cached);
    assert_eq!(dup.id, first.id);

    let metrics = client.metrics().unwrap();
    assert_eq!(metrics.rejected_backpressure, 1);
    assert_eq!(metrics.cache_hits, 1);
    drop(server);
}

#[test]
fn unknown_ids_and_routes_are_404s() {
    let (server, client) = start(ServerConfig::default());
    let response = client.request("GET", "/jobs/deadbeefdeadbeef", None).unwrap();
    assert_eq!(response.status, 404);
    let response = client.request("GET", "/nope", None).unwrap();
    assert_eq!(response.status, 404);
    let response = client.request("DELETE", "/jobs", None).unwrap();
    assert_eq!(response.status, 405);
    drop(server);
}

#[test]
fn a_raw_garbage_request_line_is_a_400() {
    let (server, _) = start(ServerConfig::default());
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.write_all(b"BLURB\r\n\r\n").unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    assert!(raw.starts_with("HTTP/1.1 400"), "{raw}");
    drop(server);
}

#[test]
fn duplicate_specs_hit_the_cache_and_serve_identical_bytes() {
    let (server, client) = start(ServerConfig::default());
    let spec = quick_spec("make", "BSD");
    let first = client.submit(&spec).unwrap();
    assert!(!first.cached);
    client.wait_done(&first.id, WAIT).unwrap();

    // An equivalent spelling (defaults made explicit) maps to the same
    // content address and is answered from the cache instantly.
    let explicit = spec.normalized();
    let second = client.submit(&explicit).unwrap();
    assert!(second.cached);
    assert_eq!(second.id, first.id);
    assert_eq!(second.status, "done");

    let a = client.fetch_report(&first.id).unwrap();
    let b = client.fetch_report(&second.id).unwrap();
    assert_eq!(a, b, "duplicate fetches must serve bit-identical bytes");
    drop(server);
}

#[test]
fn served_reports_validate_and_match_a_direct_engine_run() {
    let (server, client) = start(ServerConfig::default());
    let spec = quick_spec("espresso", "GNU local");
    let submitted = client.submit(&spec).unwrap();
    client.wait_done(&submitted.id, WAIT).unwrap();
    let line = client.fetch_report(&submitted.id).unwrap();

    let report = RunReport::parse(&line).expect("served line parses");
    report.validate().expect("served line validates");

    // The server adds nothing to the simulation: the result is
    // bit-identical to the same experiment run by hand.
    let direct = spec.to_experiment().unwrap().run().unwrap();
    assert_eq!(report.result, direct);
    drop(server);
}

#[test]
fn graceful_shutdown_drains_queued_jobs() {
    let cfg = ServerConfig { workers: 1, ..ServerConfig::default() };
    let (server, client) = start(cfg);
    let specs = [quick_spec("make", "BSD"), quick_spec("gawk", "BSD"), quick_spec("ptc", "BSD")];
    for spec in &specs {
        client.submit(spec).unwrap();
    }
    // Drain starts with jobs still queued behind the single worker.
    client.shutdown().unwrap();
    let summary = server.wait();
    assert_eq!(summary.completed, 3, "drain must finish every queued job");
    assert_eq!(summary.failed, 0);
    assert_eq!(summary.drained, 0);
}

#[test]
fn submissions_during_drain_are_refused_with_503() {
    let cfg = ServerConfig { workers: 0, ..ServerConfig::default() };
    let (server, client) = start(cfg);
    client.submit(&quick_spec("make", "BSD")).unwrap();
    // Flip the flag without closing the listener thread yet: POST
    // /shutdown does exactly that.
    let response = client.request("POST", "/shutdown", None).unwrap();
    assert_eq!(response.status, 200);
    // The accept loop may take a poll cycle to exit; a submission that
    // does get through must be refused.
    if let Ok(response) = client.request(
        "POST",
        "/jobs",
        Some(&serde_json::to_string(&quick_spec("gawk", "BSD")).unwrap()),
    ) {
        assert_eq!(response.status, 503);
    }
    drop(server);
}

#[test]
fn healthz_and_metrics_report_progress() {
    let (server, client) = start(ServerConfig::default());
    let health = client.healthz().unwrap();
    assert_eq!(health.status, "ok");
    assert!(!health.draining);

    let spec = quick_spec("make", "GNU local");
    let submitted = client.submit(&spec).unwrap();
    client.wait_done(&submitted.id, WAIT).unwrap();
    client.submit(&spec).unwrap();

    let health = client.healthz().unwrap();
    assert_eq!(health.done, 1);

    let metrics = client.metrics().unwrap();
    assert_eq!(metrics.jobs_submitted, 1);
    assert_eq!(metrics.jobs_completed, 1);
    assert_eq!(metrics.cache_hits, 1);
    // The merged simulation snapshot carries the engine's counters.
    assert!(metrics.simulation.counters.contains_key("ctx.flush.batches"));
    assert!(metrics.simulation.histograms.contains_key("alloc.search_len"));
    drop(server);
}

/// A fresh per-test scratch directory (cleared on entry).
fn scratch_dir(test: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("serve-it-{test}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn the_result_cache_evicts_lru_and_recomputes_on_resubmission() {
    let cfg = ServerConfig { workers: 1, result_cache_entries: 1, ..ServerConfig::default() };
    let (server, client) = start(cfg);

    let first = quick_spec("make", "BSD");
    let second = quick_spec("gawk", "BSD");
    let a = client.submit(&first).unwrap();
    client.wait_done(&a.id, WAIT).unwrap();
    let line_a = client.fetch_report(&a.id).unwrap();

    // Finishing the second job evicts the first (cap is one entry).
    let b = client.submit(&second).unwrap();
    client.wait_done(&b.id, WAIT).unwrap();
    let response = client.request("GET", &format!("/jobs/{}/report", a.id), None).unwrap();
    assert_eq!(response.status, 404, "evicted job must be forgotten");

    // Resubmitting the evicted spec recomputes — same simulation result
    // (timing spans legitimately differ without a stream cache).
    let again = client.submit(&first).unwrap();
    assert!(!again.cached, "evicted spec must be recomputed, not served stale");
    assert_eq!(again.id, a.id, "content address is stable");
    client.wait_done(&again.id, WAIT).unwrap();
    let recomputed = RunReport::parse(&client.fetch_report(&again.id).unwrap()).unwrap();
    assert_eq!(recomputed.result, RunReport::parse(&line_a).unwrap().result);
    drop(server);
}

#[test]
fn persisted_reports_survive_a_server_restart() {
    let report_dir = scratch_dir("restart-reports");
    let stream_dir = scratch_dir("restart-streams");
    let cfg = || ServerConfig {
        workers: 1,
        report_cache: Some(report_dir.clone()),
        stream_cache: Some(stream_dir.clone()),
        ..ServerConfig::default()
    };
    let spec = quick_spec("ptc", "FirstFit");

    let (server, client) = start(cfg());
    let submitted = client.submit(&spec).unwrap();
    client.wait_done(&submitted.id, WAIT).unwrap();
    let line = client.fetch_report(&submitted.id).unwrap();
    drop(server);

    assert!(
        report_dir.join(format!("{}.json", submitted.id)).exists(),
        "finished report must be persisted"
    );

    // A brand-new process (fresh in-memory state) answers the duplicate
    // from disk: 200, cached, same bytes — without re-running anything.
    let (server, client) = start(cfg());
    let resubmitted = client.submit(&spec).unwrap();
    assert!(resubmitted.cached, "restart must answer duplicates from the report cache");
    assert_eq!(resubmitted.status, "done");
    assert_eq!(client.fetch_report(&resubmitted.id).unwrap(), line);
    let metrics = client.metrics().unwrap();
    assert_eq!(metrics.report_cache_hits, 1);
    assert_eq!(metrics.jobs_submitted, 0, "nothing was recomputed");
    drop(server);

    let _ = std::fs::remove_dir_all(&report_dir);
    let _ = std::fs::remove_dir_all(&stream_dir);
}

#[test]
fn the_report_cache_is_size_bounded() {
    let report_dir = scratch_dir("bounded-reports");
    // A bound small enough that a single report line overflows it: each
    // finished job evicts its predecessor.
    let cfg = ServerConfig {
        workers: 1,
        report_cache: Some(report_dir.clone()),
        report_cache_max_bytes: 64,
        ..ServerConfig::default()
    };
    let (server, client) = start(cfg);
    let a = client.submit(&quick_spec("make", "BSD")).unwrap();
    client.wait_done(&a.id, WAIT).unwrap();
    let b = client.submit(&quick_spec("gawk", "BSD")).unwrap();
    client.wait_done(&b.id, WAIT).unwrap();

    let files: Vec<_> = std::fs::read_dir(&report_dir)
        .expect("report dir")
        .map(|e| e.expect("entry").file_name().into_string().expect("utf8 name"))
        .collect();
    assert_eq!(files, vec![format!("{}.json", b.id)], "only the newest report survives");
    drop(server);
    let _ = std::fs::remove_dir_all(&report_dir);
}

#[test]
fn stream_cached_jobs_replay_after_eviction() {
    // With a stream cache, recomputing an evicted job replays the
    // captured stream; the served bytes still match the original.
    let stream_dir = scratch_dir("replay-streams");
    let cfg = ServerConfig {
        workers: 1,
        result_cache_entries: 1,
        stream_cache: Some(stream_dir.clone()),
        ..ServerConfig::default()
    };
    let (server, client) = start(cfg);
    let spec = quick_spec("espresso", "FirstFit");
    let a = client.submit(&spec).unwrap();
    client.wait_done(&a.id, WAIT).unwrap();
    let line = client.fetch_report(&a.id).unwrap();

    let b = client.submit(&quick_spec("make", "FirstFit")).unwrap();
    client.wait_done(&b.id, WAIT).unwrap();

    let again = client.submit(&spec).unwrap();
    assert!(!again.cached);
    client.wait_done(&again.id, WAIT).unwrap();
    let replayed = client.fetch_report(&again.id).unwrap();
    assert_eq!(replayed, line, "replayed job must serve identical bytes");
    // A replayed report carries the *populating* run's metrics verbatim
    // (that is what makes the bytes identical), so the counter to expect
    // is the original miss, not a hit.
    let report: RunReport = RunReport::parse(&replayed).expect("served line parses");
    assert_eq!(report.metrics.counter("stream_cache.miss"), 1);
    assert_eq!(report.metrics.counter("stream_cache.store"), 1);
    drop(server);
    let _ = std::fs::remove_dir_all(&stream_dir);
}

#[test]
fn traces_are_served_and_cached_duplicates_return_the_original() {
    let (server, client) = start(ServerConfig::default());
    let spec = quick_spec("espresso", "FirstFit");
    let first = client.submit(&spec).unwrap();
    let status = client.wait_done(&first.id, WAIT).unwrap();

    // The finished job carries the span-derived telemetry split.
    assert!(status.queue_wait_ns.is_some(), "queue-wait telemetry present");
    assert!(status.execute_ns.unwrap_or(0) > 0, "execute telemetry present and non-zero");

    // The trace is a valid v1 artifact rooted at the serve lifecycle,
    // with the engine's phases nested inside the execute span.
    let line = client.fetch_trace(&first.id).unwrap();
    let trace = obs::TraceReport::parse(&line).expect("trace line parses");
    trace.validate().expect("served trace validates");
    assert_eq!(trace.trace_id, first.id, "trace id is the job id");
    let roots: Vec<_> = trace.roots().collect();
    assert_eq!(roots.len(), 1, "one serve.job root");
    assert_eq!(roots[0].name, "serve.job");
    for name in ["serve.cache_lookup", "serve.queue_wait", "serve.execute", "serve.respond"] {
        let span = trace.span(name).unwrap_or_else(|| panic!("missing span {name}"));
        assert_eq!(span.parent, Some(roots[0].id), "{name} nests under serve.job");
    }
    let execute = trace.span("serve.execute").unwrap();
    let drive = trace.span("engine.drive").expect("engine spans nested in the serve trace");
    assert_eq!(drive.parent, Some(execute.id), "engine.drive nests under serve.execute");

    // A cached duplicate answers with the original job's trace, byte
    // for byte — the duplicate never executed, so it has no trace of
    // its own.
    let dup = client.submit(&spec.normalized()).unwrap();
    assert!(dup.cached);
    let dup_line = client.fetch_trace(&dup.id).unwrap();
    assert_eq!(dup_line, line, "cached duplicate must serve the original trace bytes");
    drop(server);
}

#[test]
fn prometheus_exposition_lints_clean_and_reflects_load() {
    let (server, client) = start(ServerConfig::default());
    let submitted = client.submit(&quick_spec("gawk", "BSD")).unwrap();
    client.wait_done(&submitted.id, WAIT).unwrap();
    client.fetch_report(&submitted.id).unwrap();

    let text = client.metrics_prometheus().unwrap();
    let samples = obs::prom::lint(&text).unwrap_or_else(|e| panic!("exposition lints: {e}"));
    assert!(samples > 0, "exposition is non-empty");
    assert!(text.contains("serve_jobs_completed_total 1"), "completed counter exported:\n{text}");
    assert!(
        text.contains("endpoint=\"POST /jobs\""),
        "per-endpoint latency series labelled:\n{text}"
    );
    assert!(
        text.contains("# TYPE serve_request_duration_us histogram"),
        "latency histogram typed:\n{text}"
    );
    assert!(text.contains("sim_"), "simulation metrics aggregated under the sim prefix:\n{text}");

    // The JSON endpoint still answers, and now carries the endpoint
    // histograms alongside the counters.
    let metrics = client.metrics().unwrap();
    assert_eq!(metrics.jobs_completed, 1);
    assert!(metrics.endpoints.contains_key("POST /jobs"), "{:?}", metrics.endpoints.keys());
    drop(server);
}

/// A four-point sweep small enough for a debug-build test: two FirstFit
/// split thresholds and two QuickFit fast-list bounds over the
/// `quick_spec` workload cell.
fn quick_sweep() -> explore::SweepSpec {
    explore::SweepSpec {
        cache_kb: vec![16],
        paging: Some(false),
        ..explore::SweepSpec::over(
            "espresso",
            0.002,
            vec![
                explore::GridSpec {
                    split_threshold: vec![8, 24],
                    ..explore::GridSpec::baseline("FirstFit")
                },
                explore::GridSpec {
                    fast_max: vec![16, 64],
                    ..explore::GridSpec::baseline("QuickFit")
                },
            ],
        )
    }
}

#[test]
fn served_sweeps_match_the_offline_executor_byte_for_byte() {
    let (server, client) = start(ServerConfig::default());
    let spec = quick_sweep();
    let submitted = client.submit_sweep(&spec).unwrap();
    assert_eq!(submitted.id, spec.sweep_id());
    assert_eq!(submitted.points, 4);
    assert_eq!(submitted.fresh, 4);
    assert!(!submitted.cached);

    let status = client.wait_sweep_done(&submitted.id, WAIT).unwrap();
    assert_eq!((status.done, status.failed), (4, 0));

    // The daemon's assembled artifact is exactly what the offline
    // shared-trace executor emits for the same spec.
    let served = client.fetch_sweep_report(&submitted.id).unwrap();
    let offline = explore::run_sweep(&spec, 2, |_, _| {}).expect("offline sweep");
    assert_eq!(served, offline.to_jsonl(), "served sweep diverged from the offline executor");
    let parsed = explore::SweepReport::parse(&served).expect("served sweep parses");
    parsed.validate().expect("served sweep validates");

    // Each point is an ordinary job whose report the sweep embeds
    // verbatim, modulo the zeroed span wall-times.
    let point = &parsed.points[0];
    let direct = client.fetch_report(&point.point_id).unwrap();
    let mut direct = RunReport::parse(&direct).expect("point report parses");
    explore::report::normalize_report(&mut direct);
    assert_eq!(point.report.to_jsonl_line(), direct.to_jsonl_line());

    // Resubmitting is a cache hit: same id, nothing fresh.
    let again = client.submit_sweep(&spec).unwrap();
    assert!(again.cached);
    assert_eq!(again.fresh, 0);
    assert_eq!(again.status, "done");
    assert_eq!(client.fetch_sweep_report(&again.id).unwrap(), served);

    let metrics = client.metrics().unwrap();
    assert_eq!(metrics.sweeps_submitted, 1);
    drop(server);
}

#[test]
fn sweep_backpressure_refuses_the_whole_batch() {
    let cfg = ServerConfig { workers: 0, queue_depth: 2, ..ServerConfig::default() };
    let (server, client) = start(cfg);
    let err = client.submit_sweep(&quick_sweep()).unwrap_err();
    assert!(err.to_string().contains("429"), "four fresh points exceed two slots: {err}");
    // Nothing was partially enqueued.
    let health = client.healthz().unwrap();
    assert_eq!(health.queued, 0, "the refused batch left no points behind");
    drop(server);
}

#[test]
fn sweep_points_are_shared_with_direct_jobs() {
    let (server, client) = start(ServerConfig::default());
    // The QuickFit default point, submitted directly first.
    let direct = client.submit(&quick_spec("espresso", "QuickFit")).unwrap();
    client.wait_done(&direct.id, WAIT).unwrap();

    // `fast_max: 32` is the family default, so that grid slot
    // normalizes to the point just computed.
    let sweep = quick_sweep();
    let sweep = explore::SweepSpec {
        grids: vec![explore::GridSpec {
            fast_max: vec![16, 32],
            ..explore::GridSpec::baseline("QuickFit")
        }],
        ..sweep
    };
    let submitted = client.submit_sweep(&sweep).unwrap();
    assert_eq!(submitted.points, 2);
    assert_eq!(submitted.fresh, 1, "the default point was already cached");
    client.wait_sweep_done(&submitted.id, WAIT).unwrap();
    let report = client.fetch_sweep_report(&submitted.id).unwrap();
    explore::SweepReport::parse(&report).unwrap().validate().expect("shared-point sweep validates");
    drop(server);
}

#[test]
fn sweep_errors_are_structured() {
    let cfg = ServerConfig { workers: 0, ..ServerConfig::default() };
    let (server, client) = start(cfg);

    // Unknown ids are 404s on both sweep routes.
    for path in ["/sweeps/feedfacefeedface", "/sweeps/feedfacefeedface/report"] {
        let response = client.request("GET", path, None).unwrap();
        assert_eq!(response.status, 404, "{path}: {}", response.body);
    }

    // A sweep over an unknown allocator family is a 400 naming it.
    let response = client
        .request(
            "POST",
            "/sweeps",
            Some(r#"{"program":"espresso","grids":[{"allocator":"SlabFit"}]}"#),
        )
        .unwrap();
    assert_eq!(response.status, 400, "{}", response.body);
    assert!(response.body.contains("SlabFit"), "{}", response.body);

    // With no workers the points never finish: the report is a 409.
    let submitted = client.submit_sweep(&quick_sweep()).unwrap();
    let response =
        client.request("GET", &format!("/sweeps/{}/report", submitted.id), None).unwrap();
    assert_eq!(response.status, 409, "{}", response.body);
    assert!(response.body.contains("not_done"), "{}", response.body);
    drop(server);
}
