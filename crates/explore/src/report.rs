//! The stable JSONL artifact a finished sweep emits.
//!
//! An `alloc-locality.sweep-report` document is a header line, one
//! line per sweep point, and a closing Pareto-front line. Every line
//! carries `schema`, `version`, `kind`, and `sweep_id`, so a consumer
//! can route lines without holding the whole document; the schema is
//! versioned under the same rules as the run report — additions bump
//! [`SWEEP_REPORT_VERSION`], renames and removals are not allowed
//! without a new schema name.
//!
//! Each point row embeds the point's full [`RunReport`] — the *same*
//! bytes a direct `repro` run of that [`JobSpec`] emits, after
//! [`normalize_report`] zeroes the span wall-times both carry (the one
//! nondeterministic telemetry field) — so downstream tooling that
//! already consumes run reports can lift them out of a sweep unchanged.

use alloc_locality::{JobSpec, RunReport};
use serde::{Deserialize, Serialize};

use crate::pareto::{pareto_front, Objectives};
use crate::sweep::SweepSpec;

/// The schema identifier every sweep-report line carries.
pub const SWEEP_REPORT_SCHEMA: &str = "alloc-locality.sweep-report";

/// Current schema version. Bump on additive changes; consumers accept
/// any version `<=` the one they were built against. v2 added the
/// workload axes (`programs`, `scales`), the per-sweep stream-cache
/// tallies (`stream_hits`, `stream_misses`), and the exploration-mode
/// metadata (`mode`, `adaptive_*`) to the header; v1 documents parse
/// with all of them defaulted.
pub const SWEEP_REPORT_VERSION: u32 = 2;

/// The sweep-report's opening line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepHeader {
    /// Always [`SWEEP_REPORT_SCHEMA`].
    pub schema: String,
    /// Always [`SWEEP_REPORT_VERSION`] at emission time.
    pub version: u32,
    /// Always `"header"`.
    pub kind: String,
    /// Content-addressed sweep id ([`SweepSpec::sweep_id`]).
    pub sweep_id: String,
    /// First program of the program axis (the only one pre-v2).
    pub program: String,
    /// First scale of the scale axis (the only one pre-v2).
    pub scale: f64,
    /// The full program axis, in expansion order (v2; empty in v1
    /// documents, where `program` is the whole axis).
    #[serde(default)]
    pub programs: Vec<String>,
    /// The full scale axis, in expansion order (v2; empty in v1
    /// documents, where `scale` is the whole axis).
    #[serde(default)]
    pub scales: Vec<f64>,
    /// Distinct allocator families swept, in grid order.
    pub families: Vec<String>,
    /// Number of point rows that follow.
    pub points: u64,
    /// Points whose stream was already cached when the sweep started
    /// (v2; zero when no stream cache was configured).
    #[serde(default)]
    pub stream_hits: u64,
    /// Points whose stream was generated — and stored — by this sweep
    /// (v2; zero when no stream cache was configured).
    #[serde(default)]
    pub stream_misses: u64,
    /// How the point set was chosen: `"grid"` (exhaustive expansion) or
    /// `"adaptive"` (budgeted refinement); empty in v1 documents, which
    /// are always exhaustive.
    #[serde(default)]
    pub mode: String,
    /// Refinement iterations the adaptive mode ran (zero outside
    /// adaptive mode).
    #[serde(default)]
    pub adaptive_iterations: u64,
    /// Points the adaptive mode evaluated — equals `points` (zero
    /// outside adaptive mode).
    #[serde(default)]
    pub adaptive_evaluated: u64,
    /// Points the exhaustive grid would have evaluated (zero outside
    /// adaptive mode).
    #[serde(default)]
    pub adaptive_exhaustive: u64,
    /// The point budget the adaptive mode ran under (zero outside
    /// adaptive mode).
    #[serde(default)]
    pub adaptive_budget: u64,
}

/// One sweep point's row: identity, scores, and the embedded report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPointRow {
    /// Always [`SWEEP_REPORT_SCHEMA`].
    pub schema: String,
    /// Always [`SWEEP_REPORT_VERSION`] at emission time.
    pub version: u32,
    /// Always `"point"`.
    pub kind: String,
    /// The owning sweep's id.
    pub sweep_id: String,
    /// The point's content address ([`JobSpec::job_id`]).
    pub point_id: String,
    /// Position in the sweep's deterministic expansion order.
    pub index: u64,
    /// The run's allocator label, knobs included (e.g.
    /// `QuickFit(fast_max=64)`).
    pub allocator: String,
    /// The point's job spec, normalized.
    pub spec: JobSpec,
    /// The point's scores on the minimized objectives.
    pub objectives: Objectives,
    /// True when the point is on the Pareto front.
    pub pareto: bool,
    /// The point's full run report — byte-identical to a direct run of
    /// `spec` once both pass through [`normalize_report`].
    pub report: RunReport,
}

/// The sweep-report's closing line: the Pareto front.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepFrontRow {
    /// Always [`SWEEP_REPORT_SCHEMA`].
    pub schema: String,
    /// Always [`SWEEP_REPORT_VERSION`] at emission time.
    pub version: u32,
    /// Always `"front"`.
    pub kind: String,
    /// The owning sweep's id.
    pub sweep_id: String,
    /// Point ids of the Pareto-optimal points, in expansion order.
    pub front: Vec<String>,
}

/// Zeroes the one nondeterministic field a run report carries: span
/// wall-times. Counters, histograms, span *counts*, and the whole
/// [`RunResult`] are deterministic simulation output; `total_ns` is
/// execution telemetry that differs on every run. Normalizing it makes
/// the sweep artifact fully deterministic — the same sweep spec yields
/// byte-identical sweep-report JSONL from the shared-trace executor,
/// the naive baseline, and the serve daemon's job queue.
pub fn normalize_report(report: &mut RunReport) {
    for span in report.metrics.spans.values_mut() {
        span.total_ns = 0;
    }
}

/// Execution telemetry the sweep's runner contributes to the v2 header:
/// how the stream cache answered, and — for the adaptive mode — how the
/// point set was chosen.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SweepExec {
    /// Points whose stream was already cached when the sweep started.
    pub stream_hits: u64,
    /// Points whose stream this sweep generated (and stored).
    pub stream_misses: u64,
    /// Set when the point set came from adaptive refinement rather than
    /// exhaustive grid expansion.
    pub adaptive: Option<AdaptiveMeta>,
}

/// How an adaptive refinement arrived at its point set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveMeta {
    /// Refinement iterations run (the coarse seed round included).
    pub iterations: u64,
    /// Points evaluated across all iterations.
    pub evaluated: u64,
    /// Points the exhaustive grid would have evaluated.
    pub exhaustive: u64,
    /// The evaluation budget the refinement ran under.
    pub budget: u64,
}

/// A full sweep-report document.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// The opening header line.
    pub header: SweepHeader,
    /// One row per sweep point, in expansion order.
    pub points: Vec<SweepPointRow>,
    /// The closing Pareto-front line.
    pub front: SweepFrontRow,
}

impl SweepReport {
    /// [`SweepReport::assemble_with`] with no execution telemetry: an
    /// exhaustive grid sweep that never consulted the stream cache.
    ///
    /// # Errors
    ///
    /// As [`SweepReport::assemble_with`].
    pub fn assemble(spec: &SweepSpec, reports: Vec<RunReport>) -> Result<SweepReport, String> {
        SweepReport::assemble_with(spec, reports, &SweepExec::default())
    }

    /// Assembles the artifact from a sweep and its per-point reports
    /// (one per expanded point, in expansion order — however they were
    /// produced: the shared-trace executor, the serve daemon's job
    /// queue, or direct runs), stamping the runner's execution telemetry
    /// into the header.
    ///
    /// # Errors
    ///
    /// Returns a message when the report count disagrees with the
    /// sweep's point set or a run simulated no caches (its miss-rate
    /// objective would be undefined).
    pub fn assemble_with(
        spec: &SweepSpec,
        mut reports: Vec<RunReport>,
        exec: &SweepExec,
    ) -> Result<SweepReport, String> {
        reports.iter_mut().for_each(normalize_report);
        let sweep_id = spec.sweep_id();
        let n = spec.normalized();
        let specs = n.points();
        if specs.len() != reports.len() {
            return Err(format!(
                "sweep expands to {} points but {} reports were supplied",
                specs.len(),
                reports.len()
            ));
        }
        let objectives = reports
            .iter()
            .map(|r| {
                Objectives::of(&r.result)
                    .ok_or_else(|| format!("{}/{} simulated no caches", r.program, r.allocator))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let front_set = pareto_front(&objectives);
        let points: Vec<SweepPointRow> = specs
            .into_iter()
            .zip(reports)
            .zip(&objectives)
            .enumerate()
            .map(|(index, ((spec, report), &objectives))| SweepPointRow {
                schema: SWEEP_REPORT_SCHEMA.to_string(),
                version: SWEEP_REPORT_VERSION,
                kind: "point".to_string(),
                sweep_id: sweep_id.clone(),
                point_id: spec.job_id(),
                index: index as u64,
                allocator: report.allocator.clone(),
                spec,
                objectives,
                pareto: front_set.contains(&index),
                report,
            })
            .collect();
        let adaptive = exec.adaptive;
        Ok(SweepReport {
            header: SweepHeader {
                schema: SWEEP_REPORT_SCHEMA.to_string(),
                version: SWEEP_REPORT_VERSION,
                kind: "header".to_string(),
                sweep_id: sweep_id.clone(),
                program: n.program.clone(),
                scale: n.scale,
                programs: n.programs_axis(),
                scales: n.scales_axis(),
                families: n.families(),
                points: points.len() as u64,
                stream_hits: exec.stream_hits,
                stream_misses: exec.stream_misses,
                mode: if adaptive.is_some() { "adaptive" } else { "grid" }.to_string(),
                adaptive_iterations: adaptive.map_or(0, |a| a.iterations),
                adaptive_evaluated: adaptive.map_or(0, |a| a.evaluated),
                adaptive_exhaustive: adaptive.map_or(0, |a| a.exhaustive),
                adaptive_budget: adaptive.map_or(0, |a| a.budget),
            },
            front: SweepFrontRow {
                schema: SWEEP_REPORT_SCHEMA.to_string(),
                version: SWEEP_REPORT_VERSION,
                kind: "front".to_string(),
                sweep_id,
                front: front_set.iter().map(|&i| points[i].point_id.clone()).collect(),
            },
            points,
        })
    }

    /// The Pareto-optimal point rows, in expansion order.
    pub fn front_rows(&self) -> impl Iterator<Item = &SweepPointRow> {
        self.points.iter().filter(|p| p.pareto)
    }

    /// Serializes to JSONL: header, points, front — one line each, with
    /// a trailing newline.
    ///
    /// # Panics
    ///
    /// Panics if serialization fails, which for this in-memory tree
    /// would be a serializer bug.
    pub fn to_jsonl(&self) -> String {
        let mut out = serde_json::to_string(&self.header).expect("serialize sweep header");
        out.push('\n');
        for point in &self.points {
            out.push_str(&serde_json::to_string(point).expect("serialize sweep point"));
            out.push('\n');
        }
        out.push_str(&serde_json::to_string(&self.front).expect("serialize sweep front"));
        out.push('\n');
        out
    }

    /// Parses a JSONL document: a header line, point lines, and a front
    /// line, in that order (blank lines are skipped, unknown fields
    /// ignored).
    ///
    /// # Errors
    ///
    /// Returns the offending line number and reason.
    pub fn parse(text: &str) -> Result<SweepReport, String> {
        let mut header: Option<SweepHeader> = None;
        let mut points = Vec::new();
        let mut front: Option<SweepFrontRow> = None;
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let value: serde::Value =
                serde_json::from_str(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            let kind = value
                .as_object()
                .and_then(|fields| serde::__find_field(fields, "kind"))
                .and_then(|v| match v {
                    serde::Value::Str(s) => Some(s.clone()),
                    _ => None,
                })
                .ok_or_else(|| format!("line {}: no \"kind\" field", lineno + 1))?;
            let fail = |e: serde::Error| format!("line {}: {e}", lineno + 1);
            match kind.as_str() {
                "header" if header.is_some() => {
                    return Err(format!("line {}: second header", lineno + 1));
                }
                "header" => header = Some(SweepHeader::from_value(&value).map_err(fail)?),
                "point" if front.is_some() => {
                    return Err(format!("line {}: point after the front row", lineno + 1));
                }
                "point" => points.push(SweepPointRow::from_value(&value).map_err(fail)?),
                "front" if front.is_some() => {
                    return Err(format!("line {}: second front row", lineno + 1));
                }
                "front" => front = Some(SweepFrontRow::from_value(&value).map_err(fail)?),
                other => return Err(format!("line {}: unknown kind {other:?}", lineno + 1)),
            }
        }
        Ok(SweepReport {
            header: header.ok_or("no header line")?,
            points,
            front: front.ok_or("no front line")?,
        })
    }

    /// Checks every invariant an emitted sweep report must satisfy:
    /// schema and version on every row, ids consistent with the header,
    /// point ids matching their specs' content addresses, embedded run
    /// reports valid, objectives re-derivable from the embedded results,
    /// and the Pareto flags and front row exactly the recomputed front.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        let h = &self.header;
        if h.schema != SWEEP_REPORT_SCHEMA {
            return Err(format!("schema is {:?}, expected {SWEEP_REPORT_SCHEMA:?}", h.schema));
        }
        if h.version == 0 || h.version > SWEEP_REPORT_VERSION {
            return Err(format!(
                "version {} outside supported range 1..={SWEEP_REPORT_VERSION}",
                h.version
            ));
        }
        if h.kind != "header" {
            return Err(format!("header kind is {:?}", h.kind));
        }
        if h.points != self.points.len() as u64 {
            return Err(format!(
                "header declares {} points, document carries {}",
                h.points,
                self.points.len()
            ));
        }
        // The v2 additions: axes consistent with the scalar fields they
        // generalize, cache tallies covering every point or none, and
        // adaptive metadata present exactly in adaptive mode. All of
        // them default in v1 documents, which the empty checks accept.
        if !h.programs.is_empty() && h.programs[0] != h.program {
            return Err(format!(
                "program axis starts with {:?}, header program is {:?}",
                h.programs[0], h.program
            ));
        }
        if !h.scales.is_empty() && h.scales[0] != h.scale {
            return Err(format!(
                "scale axis starts with {}, header scale is {}",
                h.scales[0], h.scale
            ));
        }
        let tallied = h.stream_hits + h.stream_misses;
        if tallied != 0 && tallied != h.points {
            return Err(format!(
                "stream-cache tallies cover {tallied} points, sweep has {}",
                h.points
            ));
        }
        match h.mode.as_str() {
            "adaptive" => {
                if h.adaptive_evaluated != h.points {
                    return Err(format!(
                        "adaptive mode evaluated {} points, document carries {}",
                        h.adaptive_evaluated, h.points
                    ));
                }
                if h.adaptive_evaluated > h.adaptive_exhaustive {
                    return Err(format!(
                        "adaptive mode evaluated {} of only {} exhaustive points",
                        h.adaptive_evaluated, h.adaptive_exhaustive
                    ));
                }
                if h.adaptive_iterations == 0 {
                    return Err("adaptive mode ran zero iterations".to_string());
                }
            }
            // "" is a v1 document; exhaustive expansions carry no
            // adaptive metadata.
            "" | "grid" => {
                if h.adaptive_iterations != 0
                    || h.adaptive_evaluated != 0
                    || h.adaptive_exhaustive != 0
                    || h.adaptive_budget != 0
                {
                    return Err(format!("mode {:?} carries adaptive metadata", h.mode));
                }
            }
            other => return Err(format!("unknown exploration mode {other:?}")),
        }
        let mut objectives = Vec::with_capacity(self.points.len());
        for (index, p) in self.points.iter().enumerate() {
            let at = |msg: String| format!("point {index}: {msg}");
            if p.schema != SWEEP_REPORT_SCHEMA || p.version != h.version || p.kind != "point" {
                return Err(at("bad schema/version/kind".into()));
            }
            if p.sweep_id != h.sweep_id {
                return Err(at(format!("sweep_id {:?} differs from header", p.sweep_id)));
            }
            if p.index != index as u64 {
                return Err(at(format!("index {} out of order", p.index)));
            }
            if p.point_id != p.spec.job_id() {
                return Err(at(format!(
                    "point_id {:?} is not the spec's content address {:?}",
                    p.point_id,
                    p.spec.job_id()
                )));
            }
            if p.allocator != p.report.allocator {
                return Err(at(format!(
                    "allocator {:?} disagrees with the embedded report's {:?}",
                    p.allocator, p.report.allocator
                )));
            }
            p.report.validate().map_err(|e| at(format!("embedded report: {e}")))?;
            let derived = Objectives::of(&p.report.result)
                .ok_or_else(|| at("embedded result simulated no caches".into()))?;
            if derived != p.objectives {
                return Err(at(format!(
                    "objectives {:?} disagree with the embedded result's {derived:?}",
                    p.objectives
                )));
            }
            objectives.push(derived);
        }
        let f = &self.front;
        if f.schema != SWEEP_REPORT_SCHEMA || f.version != h.version || f.kind != "front" {
            return Err("front row: bad schema/version/kind".to_string());
        }
        if f.sweep_id != h.sweep_id {
            return Err(format!("front row: sweep_id {:?} differs from header", f.sweep_id));
        }
        let expected: Vec<String> = pareto_front(&objectives)
            .into_iter()
            .map(|i| self.points[i].point_id.clone())
            .collect();
        if f.front != expected {
            return Err(format!(
                "front row {:?} is not the recomputed Pareto front {expected:?}",
                f.front
            ));
        }
        for p in &self.points {
            if p.pareto != expected.contains(&p.point_id) {
                return Err(format!(
                    "point {}: pareto flag {} disagrees with the front",
                    p.index, p.pareto
                ));
            }
        }
        Ok(())
    }
}
