//! `explore`: offline design-space sweeps over allocator configurations.
//!
//! ```text
//! explore --spec SWEEP.json [--out REPORT.jsonl] [--threads N] [--quiet]
//!         [--stream-cache DIR [--stream-cache-bytes N]]
//!         [--bench [--bench-out BENCH_explore.json] [--gate F]]
//!         [--warm [--warm-out REPORT.jsonl] [--warm-gate F]]
//!         [--adaptive [--budget N] [--iterations N]
//!                     [--check-front REPORT.jsonl] [--max-fraction F]]
//! ```
//!
//! The spec file is a [`SweepSpec`] in JSON: a workload cell —
//! optionally with program/scale axes — plus one parameter grid per
//! allocator family. The sweep captures each workload cell's event
//! sequence once and drives every point off the shared trace; the
//! finished `alloc-locality.sweep-report` JSONL goes to `--out`
//! (default stdout) and a Pareto-front table to stderr. `--threads 0`
//! auto-detects the worker count, like `repro`.
//!
//! `--stream-cache` routes every point through the engine's persistent
//! stream cache: points whose streams are already stored replay without
//! generation or allocator simulation, the rest populate the cache for
//! the next run. `--warm` then re-runs the identical sweep against the
//! freshly-populated cache, asserts every point row is byte-identical
//! to the cold run's, and gates the warm speedup (`--warm-gate`).
//!
//! `--bench` re-runs the identical sweep through the naive executor
//! (every point regenerating its own events), asserts the two reports
//! are byte-identical, and gates the shared-trace speedup (`--gate`).
//!
//! `--adaptive` replaces exhaustive expansion with budgeted refinement
//! toward the Pareto front; `--check-front` compares the resulting
//! front against a previously-written exhaustive report's and
//! `--max-fraction` gates the evaluated-points fraction.
//!
//! All benchmark lanes merge their sections into one `--bench-out` JSON
//! artifact, so CI can accumulate `BENCH_explore.json` across lanes.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use explore::{
    run_adaptive, run_sweep_naive, run_sweep_with, AdaptiveOptions, ExecOptions, SweepReport,
    SweepSpec,
};
use serde::{Deserialize, Serialize};

const USAGE: &str = "usage: explore --spec SWEEP.json [--out REPORT.jsonl] [--threads N] \
                     [--quiet] [--stream-cache DIR [--stream-cache-bytes N]] \
                     [--bench [--bench-out FILE] [--gate F]] \
                     [--warm [--warm-out FILE] [--warm-gate F]] \
                     [--adaptive [--budget N] [--iterations N] [--check-front FILE] \
                     [--max-fraction F]]";

struct Args {
    spec: PathBuf,
    out: Option<PathBuf>,
    threads: usize,
    quiet: bool,
    stream_cache: Option<PathBuf>,
    stream_cache_bytes: Option<u64>,
    bench: bool,
    bench_out: PathBuf,
    gate: Option<f64>,
    warm: bool,
    warm_out: Option<PathBuf>,
    warm_gate: Option<f64>,
    adaptive: bool,
    budget: usize,
    iterations: usize,
    check_front: Option<PathBuf>,
    max_fraction: Option<f64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        spec: PathBuf::new(),
        out: None,
        threads: 0,
        quiet: false,
        stream_cache: None,
        stream_cache_bytes: None,
        bench: false,
        bench_out: PathBuf::from("BENCH_explore.json"),
        gate: None,
        warm: false,
        warm_out: None,
        warm_gate: None,
        adaptive: false,
        budget: 0,
        iterations: 0,
        check_front: None,
        max_fraction: None,
    };
    let mut spec = None;
    let mut argv = std::env::args().skip(1);
    let positive_ratio = |v: String, what: &str| -> Result<f64, String> {
        let g: f64 = v.parse().map_err(|e| format!("bad {what} {v}: {e}"))?;
        if g.is_nan() || g <= 0.0 {
            return Err(format!("{what} must be a positive ratio"));
        }
        Ok(g)
    };
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--spec" => spec = Some(PathBuf::from(argv.next().ok_or("--spec needs a path")?)),
            "--out" => args.out = Some(PathBuf::from(argv.next().ok_or("--out needs a path")?)),
            "--threads" => {
                let v = argv.next().ok_or("--threads needs a count")?;
                // 0 auto-detects, the same contract as `repro --threads 0`.
                args.threads = v.parse().map_err(|e| format!("bad thread count {v}: {e}"))?;
            }
            "--quiet" => args.quiet = true,
            "--stream-cache" => {
                let v = argv.next().ok_or("--stream-cache needs a directory")?;
                args.stream_cache = Some(PathBuf::from(v));
            }
            "--stream-cache-bytes" => {
                let v = argv.next().ok_or("--stream-cache-bytes needs a size")?;
                let n: u64 = v.parse().map_err(|e| format!("bad size {v}: {e}"))?;
                args.stream_cache_bytes = Some(n);
            }
            "--bench" => args.bench = true,
            "--bench-out" => {
                args.bench_out = PathBuf::from(argv.next().ok_or("--bench-out needs a path")?);
            }
            "--gate" => {
                args.gate =
                    Some(positive_ratio(argv.next().ok_or("--gate needs a ratio")?, "gate")?)
            }
            "--warm" => args.warm = true,
            "--warm-out" => {
                args.warm_out = Some(PathBuf::from(argv.next().ok_or("--warm-out needs a path")?));
            }
            "--warm-gate" => {
                args.warm_gate = Some(positive_ratio(
                    argv.next().ok_or("--warm-gate needs a ratio")?,
                    "warm gate",
                )?);
            }
            "--adaptive" => args.adaptive = true,
            "--budget" => {
                let v = argv.next().ok_or("--budget needs a count")?;
                args.budget = v.parse().map_err(|e| format!("bad budget {v}: {e}"))?;
            }
            "--iterations" => {
                let v = argv.next().ok_or("--iterations needs a count")?;
                args.iterations = v.parse().map_err(|e| format!("bad iteration count {v}: {e}"))?;
            }
            "--check-front" => {
                args.check_front =
                    Some(PathBuf::from(argv.next().ok_or("--check-front needs a path")?));
            }
            "--max-fraction" => {
                let v = argv.next().ok_or("--max-fraction needs a ratio")?;
                let f = positive_ratio(v, "max fraction")?;
                if f > 1.0 {
                    return Err("max fraction cannot exceed 1".into());
                }
                args.max_fraction = Some(f);
            }
            "--help" | "-h" => return Err(USAGE.into()),
            other => return Err(format!("unexpected argument {other:?}; try --help")),
        }
    }
    args.spec = spec.ok_or(USAGE)?;
    if args.warm && args.stream_cache.is_none() {
        return Err("--warm needs --stream-cache: a warm rerun replays the populated cache".into());
    }
    if args.adaptive && (args.bench || args.warm) {
        return Err("--adaptive is its own lane; run --bench/--warm separately".into());
    }
    if args.bench && args.stream_cache.is_some() {
        return Err("--bench measures shared-trace reuse; run it without --stream-cache \
                    (cache-backed runs carry cache counters the naive baseline lacks)"
            .into());
    }
    Ok(args)
}

/// The committed benchmark artifact (`BENCH_explore.json`). Lanes merge
/// into one file: the shared-vs-naive section from `--bench`, the
/// cold-vs-warm section from `--warm`, the refinement section from
/// `--adaptive`. Every field defaults so artifacts written by older
/// lanes (or truncated ones) still merge.
#[derive(Debug, Default, Serialize, Deserialize)]
struct BenchReport {
    #[serde(default)]
    program: String,
    #[serde(default)]
    scale: f64,
    /// Allocator families the sweep's grids cover.
    #[serde(default)]
    families: Vec<String>,
    /// Expanded, deduplicated sweep points.
    #[serde(default)]
    points: u64,
    /// Resolved worker count (`--threads 0` records the auto-detected
    /// value, not the 0).
    #[serde(default)]
    threads: u64,
    /// One event-generation pass per workload cell, shared by its points.
    #[serde(default)]
    shared_secs: f64,
    /// Every point regenerating its own event stream.
    #[serde(default)]
    naive_secs: f64,
    /// `naive_secs / shared_secs` — the event-trace-reuse saving.
    #[serde(default)]
    speedup: f64,
    /// Finished points per second through the shared-trace executor.
    #[serde(default)]
    points_per_sec: f64,
    /// Whether the two executors emitted byte-identical sweep reports.
    #[serde(default)]
    identical_results: bool,
    /// The `--warm` lane: cold populate vs warm replay.
    #[serde(default)]
    warm: Option<WarmBench>,
    /// The `--adaptive` lane: refinement vs exhaustive expansion.
    #[serde(default)]
    adaptive: Option<AdaptiveBench>,
}

/// Cold-populate vs warm-replay timings for the same sweep.
#[derive(Debug, Default, Serialize, Deserialize)]
struct WarmBench {
    /// Cold run: generate, simulate, and store every point's stream.
    #[serde(default)]
    cold_secs: f64,
    /// Warm rerun: replay every stream from the cache.
    #[serde(default)]
    warm_secs: f64,
    /// `cold_secs / warm_secs` — the replay saving.
    #[serde(default)]
    speedup: f64,
    #[serde(default)]
    cold_hits: u64,
    #[serde(default)]
    cold_misses: u64,
    #[serde(default)]
    warm_hits: u64,
    #[serde(default)]
    warm_misses: u64,
    /// Stream files in the cache directory after the warm run.
    #[serde(default)]
    cache_entries: u64,
    /// Their total size in bytes.
    #[serde(default)]
    cache_bytes: u64,
    /// Whether every warm point row was byte-identical to its cold
    /// counterpart.
    #[serde(default)]
    identical_points: bool,
}

/// Adaptive refinement vs the exhaustive grid.
#[derive(Debug, Default, Serialize, Deserialize)]
struct AdaptiveBench {
    /// Points the refinement evaluated.
    #[serde(default)]
    evaluated: u64,
    /// Points the exhaustive grid expands to.
    #[serde(default)]
    exhaustive: u64,
    /// `evaluated / exhaustive`.
    #[serde(default)]
    fraction: f64,
    #[serde(default)]
    iterations: u64,
    #[serde(default)]
    budget: u64,
    #[serde(default)]
    secs: f64,
    /// Size of the refined Pareto front.
    #[serde(default)]
    front_points: u64,
    /// Whether the refined front equals the exhaustive report's
    /// (`--check-front`); absent when no reference was given.
    #[serde(default)]
    front_matches: Option<bool>,
}

/// Reads the existing artifact (if any) so lanes merge instead of
/// clobbering each other, applies `update`, and writes it back.
fn merge_bench(path: &PathBuf, update: impl FnOnce(&mut BenchReport)) -> Result<(), String> {
    let mut bench = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| serde_json::from_str::<BenchReport>(&text).ok())
        .unwrap_or_default();
    update(&mut bench);
    let json = serde_json::to_string_pretty(&bench).expect("serialize bench report");
    std::fs::write(path, json + "\n").map_err(|e| format!("write {}: {e}", path.display()))
}

fn progress_printer(
    total: usize,
    quiet: bool,
) -> impl Fn(usize, &alloc_locality::RunResult) + Sync {
    move |done, result| {
        if !quiet {
            eprintln!("[{done}/{total}] {} / {}", result.program, result.allocator);
        }
    }
}

/// Renders the Pareto front as an aligned stderr table, best miss rate
/// first, so a terminal run ends with the configurations worth keeping.
fn print_front(report: &SweepReport) {
    eprintln!(
        "sweep {}: {} points, {} on the Pareto front",
        report.header.sweep_id,
        report.points.len(),
        report.front.front.len()
    );
    eprintln!(
        "{:<40} {:>10} {:>14} {:>14}",
        "allocator", "miss rate", "instructions", "peak bytes"
    );
    let mut rows: Vec<_> = report.front_rows().collect();
    rows.sort_by(|a, b| {
        a.objectives
            .miss_rate
            .partial_cmp(&b.objectives.miss_rate)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    for row in rows {
        eprintln!(
            "{:<40} {:>10.4} {:>14} {:>14}",
            row.allocator,
            row.objectives.miss_rate,
            row.objectives.instructions,
            row.objectives.peak_granted
        );
    }
}

fn write_report(jsonl: &str, out: &Option<PathBuf>) -> Result<(), String> {
    match out {
        Some(path) => {
            std::fs::write(path, jsonl).map_err(|e| format!("write {}: {e}", path.display()))
        }
        None => {
            print!("{jsonl}");
            Ok(())
        }
    }
}

/// Stamps the sweep's identity fields into the merged bench artifact.
fn stamp(bench: &mut BenchReport, report: &SweepReport, threads: usize) {
    bench.program = report.header.program.clone();
    bench.scale = report.header.scale;
    bench.families = report.header.families.clone();
    bench.threads = threads as u64;
}

fn run_adaptive_mode(args: &Args, spec: &SweepSpec, exec: &ExecOptions) -> Result<(), String> {
    let exhaustive = spec.points().len();
    let adaptive = AdaptiveOptions { budget: args.budget, iterations: args.iterations };
    let started = Instant::now();
    let report = run_adaptive(spec, exec, adaptive, progress_printer(exhaustive, args.quiet))
        .map_err(|e| e.to_string())?;
    let secs = started.elapsed().as_secs_f64();
    report.validate().map_err(|e| format!("adaptive sweep report failed validation: {e}"))?;
    write_report(&report.to_jsonl(), &args.out)?;
    print_front(&report);

    let h = &report.header;
    let fraction = h.adaptive_evaluated as f64 / h.adaptive_exhaustive.max(1) as f64;
    eprintln!(
        "adaptive: {} of {} points ({:.0}%) in {} iterations, {:.2}s",
        h.adaptive_evaluated,
        h.adaptive_exhaustive,
        fraction * 100.0,
        h.adaptive_iterations,
        secs
    );
    let front_matches = match &args.check_front {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("read {}: {e}", path.display()))?;
            let exhaustive_report =
                SweepReport::parse(&text).map_err(|e| format!("{}: parse: {e}", path.display()))?;
            let matches = report.front.front == exhaustive_report.front.front;
            if !matches {
                eprintln!(
                    "adaptive front {:?} != exhaustive front {:?}",
                    report.front.front, exhaustive_report.front.front
                );
            }
            Some(matches)
        }
        None => None,
    };
    let meta = AdaptiveBench {
        evaluated: h.adaptive_evaluated,
        exhaustive: h.adaptive_exhaustive,
        fraction,
        iterations: h.adaptive_iterations,
        budget: h.adaptive_budget,
        secs,
        front_points: report.front.front.len() as u64,
        front_matches,
    };
    let threads = exec.resolved_threads();
    merge_bench(&args.bench_out, |bench| {
        stamp(bench, &report, threads);
        bench.points = exhaustive as u64;
        bench.adaptive = Some(meta);
    })?;
    if front_matches == Some(false) {
        return Err("adaptive front diverged from the exhaustive front".into());
    }
    if let Some(max) = args.max_fraction {
        if fraction > max {
            return Err(format!(
                "adaptive refinement evaluated {:.0}% of the grid, above the {:.0}% gate",
                fraction * 100.0,
                max * 100.0
            ));
        }
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let text = std::fs::read_to_string(&args.spec)
        .map_err(|e| format!("read {}: {e}", args.spec.display()))?;
    let spec: SweepSpec =
        serde_json::from_str(&text).map_err(|e| format!("{}: parse: {e}", args.spec.display()))?;
    spec.validate().map_err(|e| e.to_string())?;
    let exec = ExecOptions {
        threads: args.threads,
        stream_cache: args.stream_cache.clone(),
        stream_cache_bytes: args.stream_cache_bytes,
    };
    let threads = exec.resolved_threads();
    let total = spec.points().len();
    if !args.quiet {
        eprintln!(
            "sweep {}: {total} points over {:?}, {threads} threads",
            spec.sweep_id(),
            spec.families(),
        );
    }
    if args.adaptive {
        return run_adaptive_mode(&args, &spec, &exec);
    }

    let started = Instant::now();
    let report = run_sweep_with(&spec, &exec, progress_printer(total, args.quiet))
        .map_err(|e| e.to_string())?;
    let shared_secs = started.elapsed().as_secs_f64();
    report.validate().map_err(|e| format!("fresh sweep report failed validation: {e}"))?;

    let jsonl = report.to_jsonl();
    write_report(&jsonl, &args.out)?;
    print_front(&report);

    if args.warm {
        if !args.quiet {
            eprintln!("warm: re-running {total} points against the populated cache");
        }
        let started = Instant::now();
        let warm = run_sweep_with(&spec, &exec, progress_printer(total, args.quiet))
            .map_err(|e| e.to_string())?;
        let warm_secs = started.elapsed().as_secs_f64();
        let identical = warm.points == report.points && warm.front == report.front;
        if !identical {
            return Err("warm rerun diverged from the cold sweep report".into());
        }
        if let Some(path) = &args.warm_out {
            std::fs::write(path, warm.to_jsonl())
                .map_err(|e| format!("write {}: {e}", path.display()))?;
        }
        let stats = sim_mem::StreamCache::new(
            args.stream_cache.as_ref().expect("--warm implies --stream-cache"),
        )
        .stats();
        let meta = WarmBench {
            cold_secs: shared_secs,
            warm_secs,
            speedup: shared_secs / warm_secs,
            cold_hits: report.header.stream_hits,
            cold_misses: report.header.stream_misses,
            warm_hits: warm.header.stream_hits,
            warm_misses: warm.header.stream_misses,
            cache_entries: stats.entries,
            cache_bytes: stats.bytes,
            identical_points: identical,
        };
        eprintln!(
            "warm: cold {shared_secs:.2}s ({} hits/{} misses), warm {warm_secs:.2}s \
             ({} hits/{} misses), speedup {:.2}x, cache {} entries/{} bytes",
            meta.cold_hits,
            meta.cold_misses,
            meta.warm_hits,
            meta.warm_misses,
            meta.speedup,
            meta.cache_entries,
            meta.cache_bytes
        );
        let speedup = meta.speedup;
        merge_bench(&args.bench_out, |bench| {
            stamp(bench, &report, threads);
            bench.points = total as u64;
            bench.warm = Some(meta);
        })?;
        if let Some(gate) = args.warm_gate {
            if speedup < gate {
                return Err(format!("warm replay speedup {speedup:.2}x below the {gate:.2}x gate"));
            }
        }
    }

    if args.bench {
        if !args.quiet {
            eprintln!("bench: re-running {total} points through the naive executor");
        }
        let started = Instant::now();
        let naive = run_sweep_naive(&spec, threads, progress_printer(total, args.quiet))
            .map_err(|e| e.to_string())?;
        let naive_secs = started.elapsed().as_secs_f64();
        let identical = naive.to_jsonl() == jsonl;
        if !identical {
            return Err("naive executor diverged from the shared-trace report".into());
        }
        let speedup = naive_secs / shared_secs;
        merge_bench(&args.bench_out, |bench| {
            stamp(bench, &report, threads);
            bench.points = total as u64;
            bench.shared_secs = shared_secs;
            bench.naive_secs = naive_secs;
            bench.speedup = speedup;
            bench.points_per_sec = total as f64 / shared_secs;
            bench.identical_results = identical;
        })?;
        eprintln!(
            "bench: shared {shared_secs:.2}s, naive {naive_secs:.2}s, speedup {speedup:.2}x, \
             {:.1} points/s -> {}",
            total as f64 / shared_secs,
            args.bench_out.display()
        );
        if let Some(gate) = args.gate {
            if speedup < gate {
                return Err(format!(
                    "event-trace-reuse speedup {speedup:.2}x below the {gate:.2}x gate"
                ));
            }
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
