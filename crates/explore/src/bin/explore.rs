//! `explore`: offline design-space sweeps over allocator configurations.
//!
//! ```text
//! explore --spec SWEEP.json [--out REPORT.jsonl] [--threads N] [--quiet]
//!         [--bench [--bench-out BENCH_explore.json] [--gate F]]
//! ```
//!
//! The spec file is a [`SweepSpec`] in JSON: a workload cell plus one
//! parameter grid per allocator family. The sweep captures the
//! workload's event sequence once and drives every point off the shared
//! trace; the finished `alloc-locality.sweep-report` v1 JSONL goes to
//! `--out` (default stdout) and a Pareto-front table to stderr.
//!
//! `--bench` additionally re-runs the identical sweep through the naive
//! executor (every point regenerating its own events), asserts the two
//! reports are byte-identical, and writes a JSON benchmark artifact
//! with the shared-trace speedup. `--gate F` exits non-zero when the
//! speedup falls below `F` — the CI regression gate for the executor's
//! headline saving.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use explore::{run_sweep, run_sweep_naive, SweepReport, SweepSpec};
use serde::Serialize;

const USAGE: &str = "usage: explore --spec SWEEP.json [--out REPORT.jsonl] [--threads N] \
                     [--quiet] [--bench [--bench-out FILE] [--gate F]]";

struct Args {
    spec: PathBuf,
    out: Option<PathBuf>,
    threads: usize,
    quiet: bool,
    bench: bool,
    bench_out: PathBuf,
    gate: Option<f64>,
}

fn parse_args() -> Result<Args, String> {
    let mut spec = None;
    let mut out = None;
    let mut threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut quiet = false;
    let mut bench = false;
    let mut bench_out = PathBuf::from("BENCH_explore.json");
    let mut gate = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--spec" => {
                let v = args.next().ok_or("--spec needs a path")?;
                spec = Some(PathBuf::from(v));
            }
            "--out" => {
                let v = args.next().ok_or("--out needs a path")?;
                out = Some(PathBuf::from(v));
            }
            "--threads" => {
                let v = args.next().ok_or("--threads needs a count")?;
                threads = v.parse().map_err(|e| format!("bad thread count {v}: {e}"))?;
                if threads == 0 {
                    return Err("--threads must be at least 1".into());
                }
            }
            "--quiet" => quiet = true,
            "--bench" => bench = true,
            "--bench-out" => {
                let v = args.next().ok_or("--bench-out needs a path")?;
                bench_out = PathBuf::from(v);
            }
            "--gate" => {
                let v = args.next().ok_or("--gate needs a ratio")?;
                let g: f64 = v.parse().map_err(|e| format!("bad gate {v}: {e}"))?;
                if g.is_nan() || g <= 0.0 {
                    return Err("gate must be a positive ratio".into());
                }
                gate = Some(g);
            }
            "--help" | "-h" => return Err(USAGE.into()),
            other => return Err(format!("unexpected argument {other:?}; try --help")),
        }
    }
    let spec = spec.ok_or(USAGE)?;
    Ok(Args { spec, out, threads, quiet, bench, bench_out, gate })
}

/// The committed benchmark artifact (`BENCH_explore.json`): the
/// shared-trace sweep executor against naive per-point regeneration on
/// the same sweep.
#[derive(Debug, Serialize)]
struct BenchReport {
    program: String,
    scale: f64,
    /// Allocator families the sweep's grids cover.
    families: Vec<String>,
    /// Expanded, deduplicated sweep points.
    points: usize,
    threads: usize,
    /// One event-generation pass, shared by every point.
    shared_secs: f64,
    /// Every point regenerating its own event stream.
    naive_secs: f64,
    /// `naive_secs / shared_secs` — the event-trace-reuse saving.
    speedup: f64,
    /// Finished points per second through the shared-trace executor.
    points_per_sec: f64,
    /// Whether the two executors emitted byte-identical sweep reports.
    identical_results: bool,
}

fn progress_printer(
    total: usize,
    quiet: bool,
) -> impl Fn(usize, &alloc_locality::RunResult) + Sync {
    move |done, result| {
        if !quiet {
            eprintln!("[{done}/{total}] {} / {}", result.program, result.allocator);
        }
    }
}

/// Renders the Pareto front as an aligned stderr table, best miss rate
/// first, so a terminal run ends with the configurations worth keeping.
fn print_front(report: &SweepReport) {
    eprintln!(
        "sweep {}: {} points, {} on the Pareto front",
        report.header.sweep_id,
        report.points.len(),
        report.front.front.len()
    );
    eprintln!(
        "{:<40} {:>10} {:>14} {:>14}",
        "allocator", "miss rate", "instructions", "peak bytes"
    );
    let mut rows: Vec<_> = report.front_rows().collect();
    rows.sort_by(|a, b| {
        a.objectives
            .miss_rate
            .partial_cmp(&b.objectives.miss_rate)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    for row in rows {
        eprintln!(
            "{:<40} {:>10.4} {:>14} {:>14}",
            row.allocator,
            row.objectives.miss_rate,
            row.objectives.instructions,
            row.objectives.peak_granted
        );
    }
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let text = std::fs::read_to_string(&args.spec)
        .map_err(|e| format!("read {}: {e}", args.spec.display()))?;
    let spec: SweepSpec =
        serde_json::from_str(&text).map_err(|e| format!("{}: parse: {e}", args.spec.display()))?;
    spec.validate().map_err(|e| e.to_string())?;
    let total = spec.points().len();
    if !args.quiet {
        eprintln!(
            "sweep {}: {total} points over {:?}, {} threads",
            spec.sweep_id(),
            spec.families(),
            args.threads
        );
    }

    let started = Instant::now();
    let report = run_sweep(&spec, args.threads, progress_printer(total, args.quiet))
        .map_err(|e| e.to_string())?;
    let shared_secs = started.elapsed().as_secs_f64();
    report.validate().map_err(|e| format!("fresh sweep report failed validation: {e}"))?;

    let jsonl = report.to_jsonl();
    match &args.out {
        Some(path) => {
            std::fs::write(path, &jsonl).map_err(|e| format!("write {}: {e}", path.display()))?
        }
        None => print!("{jsonl}"),
    }
    print_front(&report);

    if args.bench {
        if !args.quiet {
            eprintln!("bench: re-running {total} points through the naive executor");
        }
        let started = Instant::now();
        let naive = run_sweep_naive(&spec, args.threads, progress_printer(total, args.quiet))
            .map_err(|e| e.to_string())?;
        let naive_secs = started.elapsed().as_secs_f64();
        let identical = naive.to_jsonl() == jsonl;
        if !identical {
            return Err("naive executor diverged from the shared-trace report".into());
        }
        let bench = BenchReport {
            program: report.header.program.clone(),
            scale: report.header.scale,
            families: report.header.families.clone(),
            points: total,
            threads: args.threads,
            shared_secs,
            naive_secs,
            speedup: naive_secs / shared_secs,
            points_per_sec: total as f64 / shared_secs,
            identical_results: identical,
        };
        let json = serde_json::to_string_pretty(&bench).expect("serialize bench report");
        std::fs::write(&args.bench_out, json + "\n")
            .map_err(|e| format!("write {}: {e}", args.bench_out.display()))?;
        eprintln!(
            "bench: shared {shared_secs:.2}s, naive {naive_secs:.2}s, speedup {:.2}x, \
             {:.1} points/s -> {}",
            bench.speedup,
            bench.points_per_sec,
            args.bench_out.display()
        );
        if let Some(gate) = args.gate {
            if bench.speedup < gate {
                return Err(format!(
                    "event-trace-reuse speedup {:.2}x below the {gate:.2}x gate",
                    bench.speedup
                ));
            }
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
