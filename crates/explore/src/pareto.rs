//! Pareto analysis over sweep results.
//!
//! Every sweep point is scored on three minimized objectives — the
//! paper's axes of allocator quality:
//!
//! * **miss rate**: data-cache miss rate at the sweep's first cache
//!   configuration (locality, the paper's headline metric),
//! * **instructions**: total simulated instructions (the allocator's
//!   §3 instruction cost plus the application's own),
//! * **peak granted**: peak bytes the allocator granted (memory
//!   overhead — internal fragmentation and metadata).
//!
//! A point is *dominated* when another point is no worse on every
//! objective and strictly better on at least one; the Pareto front is
//! the set of undominated points — the configurations a tuner would
//! actually choose among.

use std::cmp::Ordering;

use alloc_locality::RunResult;
use serde::{Deserialize, Serialize};

/// One sweep point's scores on the three minimized objectives.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Objectives {
    /// Data-cache miss rate at the sweep's first cache configuration.
    pub miss_rate: f64,
    /// Total simulated instructions (application + allocator).
    pub instructions: u64,
    /// Peak bytes granted by the allocator.
    pub peak_granted: u64,
}

impl Objectives {
    /// Scores a finished run; `None` when the run simulated no caches
    /// (the miss-rate objective would be undefined).
    pub fn of(result: &RunResult) -> Option<Objectives> {
        let (_, stats) = result.cache.first()?;
        Some(Objectives {
            miss_rate: stats.miss_rate(),
            instructions: result.instrs.total(),
            peak_granted: result.alloc_stats.peak_granted,
        })
    }

    /// True when `self` is no worse than `other` on every objective and
    /// strictly better on at least one. Equal points do not dominate
    /// each other (both stay on the front).
    pub fn dominates(&self, other: &Objectives) -> bool {
        self.miss_rate <= other.miss_rate
            && self.instructions <= other.instructions
            && self.peak_granted <= other.peak_granted
            && (self.miss_rate < other.miss_rate
                || self.instructions < other.instructions
                || self.peak_granted < other.peak_granted)
    }

    fn lex_cmp(&self, other: &Objectives) -> Ordering {
        self.miss_rate
            .partial_cmp(&other.miss_rate)
            .unwrap_or(Ordering::Equal)
            .then(self.instructions.cmp(&other.instructions))
            .then(self.peak_granted.cmp(&other.peak_granted))
    }
}

/// Indices of the Pareto-optimal points, ascending.
///
/// Candidates are visited in lexicographic objective order, so any
/// dominator of a point precedes it; each candidate is then checked
/// against the accepted front only — O(n·f + n log n) for a front of
/// size f, rather than the brute-force O(n²) all-pairs scan (which the
/// property tests use as the oracle).
pub fn pareto_front(objectives: &[Objectives]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..objectives.len()).collect();
    order.sort_by(|&a, &b| objectives[a].lex_cmp(&objectives[b]).then(a.cmp(&b)));
    let mut front: Vec<usize> = Vec::new();
    for &i in &order {
        if !front.iter().any(|&j| objectives[j].dominates(&objectives[i])) {
            front.push(i);
        }
    }
    front.sort_unstable();
    front
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(miss_rate: f64, instructions: u64, peak_granted: u64) -> Objectives {
        Objectives { miss_rate, instructions, peak_granted }
    }

    #[test]
    fn dominance_requires_a_strict_improvement() {
        let a = obj(0.1, 100, 100);
        assert!(!a.dominates(&a), "equal points do not dominate");
        assert!(obj(0.1, 99, 100).dominates(&a));
        assert!(obj(0.05, 100, 100).dominates(&a));
        assert!(!obj(0.05, 101, 100).dominates(&a), "a trade-off is not dominance");
    }

    #[test]
    fn front_keeps_exactly_the_undominated_points() {
        let pts = [
            obj(0.10, 100, 100), // dominated by [3] (same miss/instrs, more memory)
            obj(0.20, 50, 100),  // front (trades miss for instructions)
            obj(0.20, 60, 100),  // dominated by [1]
            obj(0.10, 100, 90),  // front
            obj(0.30, 200, 200), // dominated by everything
            obj(0.10, 100, 90),  // duplicate of [3]: both stay
        ];
        assert_eq!(pareto_front(&pts), vec![1, 3, 5]);
    }

    #[test]
    fn single_and_empty_inputs() {
        assert!(pareto_front(&[]).is_empty());
        assert_eq!(pareto_front(&[obj(0.5, 1, 1)]), vec![0]);
    }
}
