//! The sweep executor: capture the workload once, simulate every point.
//!
//! Every point of a sweep shares one workload cell, so the expensive
//! part of a naive point-by-point run — regenerating the application's
//! allocation event sequence — is pure waste. [`run_sweep`] generates
//! the event stream once, wraps it in an [`Arc`], and drives every
//! point's experiment off the shared trace through the engine's worker
//! pool; each point pays only its own allocator simulation and sinks.
//!
//! Replayed streams are bit-identical to generated ones (the generator
//! is deterministic and the engine's drive loop is source-agnostic), so
//! each point's [`RunReport`] is byte-identical to a direct run of the
//! same [`JobSpec`] — the invariant the bit-identity tests and the
//! `explore --bench` gate enforce against [`run_sweep_naive`].

use std::sync::Arc;

use alloc_locality::job_spec::program_by_label;
use alloc_locality::{
    run_parallel_instrumented, EngineError, Experiment, RunReport, RunResult, SpecError,
};
use workloads::{AppEvent, Scale};

use crate::report::SweepReport;
use crate::sweep::SweepSpec;

/// Why a sweep failed.
#[derive(Debug)]
pub enum ExploreError {
    /// The sweep (or one of its points) was rejected.
    Spec(SpecError),
    /// A point's simulation failed.
    Engine(EngineError),
    /// The finished results could not be assembled into a report.
    Report(String),
}

impl std::fmt::Display for ExploreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExploreError::Spec(e) => write!(f, "invalid sweep: {e}"),
            ExploreError::Engine(e) => write!(f, "sweep point failed: {e}"),
            ExploreError::Report(e) => write!(f, "assembling sweep report: {e}"),
        }
    }
}

impl std::error::Error for ExploreError {}

impl From<SpecError> for ExploreError {
    fn from(e: SpecError) -> Self {
        ExploreError::Spec(e)
    }
}

impl From<EngineError> for ExploreError {
    fn from(e: EngineError) -> Self {
        ExploreError::Engine(e)
    }
}

/// Runs every point of a sweep off one shared event trace and returns
/// the assembled [`SweepReport`]. `progress` is called after each
/// finished point with the completed count and that point's result.
///
/// # Errors
///
/// Returns [`ExploreError::Spec`] for an invalid sweep and
/// [`ExploreError::Engine`] for the first simulation failure.
pub fn run_sweep(
    spec: &SweepSpec,
    threads: usize,
    progress: impl Fn(usize, &RunResult) + Sync,
) -> Result<SweepReport, ExploreError> {
    spec.validate()?;
    let n = spec.normalized();
    let points = n.points();
    let program = program_by_label(&n.program).expect("validated");
    // The tentpole saving: one generator pass, shared by every point.
    let events: Arc<Vec<AppEvent>> = Arc::new(program.spec().events(Scale(n.scale)).collect());
    let jobs = points
        .iter()
        .map(|point| {
            let choice = point.to_choice().expect("validated");
            let opts = point.to_options().expect("validated");
            Experiment::with_shared_events(program.label(), Arc::clone(&events), choice)
                .options(opts)
        })
        .collect();
    let results = run_parallel_instrumented(jobs, threads, progress)?;
    let reports = results.into_iter().map(|(r, m)| RunReport::new(r, m)).collect();
    SweepReport::assemble(&n, reports).map_err(ExploreError::Report)
}

/// The naive executor: every point builds its experiment directly from
/// the job spec, regenerating the event stream from scratch. Produces a
/// report byte-identical to [`run_sweep`]'s; exists as the baseline the
/// `explore --bench` speedup gate measures against.
///
/// # Errors
///
/// Returns [`ExploreError::Spec`] for an invalid sweep and
/// [`ExploreError::Engine`] for the first simulation failure.
pub fn run_sweep_naive(
    spec: &SweepSpec,
    threads: usize,
    progress: impl Fn(usize, &RunResult) + Sync,
) -> Result<SweepReport, ExploreError> {
    spec.validate()?;
    let n = spec.normalized();
    let jobs = n.points().iter().map(|point| point.to_experiment().expect("validated")).collect();
    let results = run_parallel_instrumented(jobs, threads, progress)?;
    let reports = results.into_iter().map(|(r, m)| RunReport::new(r, m)).collect();
    SweepReport::assemble(&n, reports).map_err(ExploreError::Report)
}
